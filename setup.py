"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, which
PEP-517 editable installs require; keeping a ``setup.py`` (and omitting the
``[build-system]`` table from pyproject.toml) lets ``pip install -e .`` use
the legacy develop path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
