"""Host↔accelerator interconnect descriptors.

The paper's two platforms differ exactly here: K80 over PCI-E 3.0 versus
V100 over NVLink 2.0 — a ~6× effective-bandwidth jump that flips several
offloading decisions in Table I (e.g. 3DCONV).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InterconnectDescriptor", "PCIE3_X16", "NVLINK2"]


@dataclass(frozen=True)
class InterconnectDescriptor:
    """A data-transfer bus between host memory and device memory.

    ``bandwidth_gbs`` is the *effective* (achievable) per-direction rate,
    not the signalling rate; ``latency_us`` is the per-transfer fixed cost
    (driver + DMA setup); ``small_transfer_bytes`` is the size below which
    a transfer is latency-dominated and gets no bandwidth benefit.
    """

    name: str
    bandwidth_gbs: float
    latency_us: float
    small_transfer_bytes: int = 8192
    duplex: bool = True

    def __post_init__(self):
        if self.bandwidth_gbs <= 0 or self.latency_us < 0:
            raise ValueError("invalid interconnect parameters")

    def transfer_seconds(self, nbytes: int) -> float:
        """Time to move ``nbytes`` one way (latency + size/bandwidth)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        effective = max(nbytes, self.small_transfer_bytes)
        return self.latency_us * 1e-6 + effective / (self.bandwidth_gbs * 1e9)


#: PCI Express 3.0 x16 — ~12 GB/s achievable of the 15.75 GB/s signalling.
PCIE3_X16 = InterconnectDescriptor(
    name="PCIe 3.0 x16",
    bandwidth_gbs=12.0,
    latency_us=12.0,
)

#: NVLink 2.0 (3 bricks, POWER9 AC922) — ~68 GB/s achievable of 75 GB/s.
NVLINK2 = InterconnectDescriptor(
    name="NVLink 2.0",
    bandwidth_gbs=68.0,
    latency_us=6.0,
)
