"""GPU machine descriptors.

A :class:`GPUDescriptor` supplies the Hong & Kim model parameters (Table III)
and everything the warp-level timing simulator needs.  Values for the V100
follow the paper's Table III sources — CUDA API queries, vendor manuals and
Zhe Jia's micro-architectural report; the K80 (Kepler) entry uses the specs
the paper quotes in Section III (480 GB/s peak bandwidth) plus published
Kepler latencies.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUDescriptor", "TESLA_K80", "TESLA_P100", "TESLA_V100"]


@dataclass(frozen=True)
class GPUDescriptor:
    """Parameters of a CUDA-class SIMT accelerator."""

    name: str
    arch: str  # "kepler" | "pascal" | "volta"
    num_sms: int
    cores_per_sm: int
    clock_ghz: float  # processor (SM) clock
    mem_size_gib: float
    mem_bandwidth_gbs: float  # peak DRAM bandwidth
    max_warps_per_sm: int
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    # issue machinery
    warp_schedulers_per_sm: int
    issue_rate: int  # instructions issued per scheduler per cycle
    # latencies (cycles)
    int_latency: int
    fp_latency: int
    sfu_latency: int  # div/sqrt/exp special-function path
    mem_latency: int  # DRAM access (the Hong model's Mem_L for uncoalesced)
    tlb_hit_latency: int
    l2_latency: int
    l1_latency: int
    # memory system
    l1_kib_per_sm: int
    l2_kib: int
    l2_bandwidth_gbs: float  # aggregate L2→SM bandwidth
    sector_bytes: int  # memory transaction granularity
    dram_burst_bytes: int
    # kernel machinery
    launch_overhead_us: float
    #: Latency of a global atomic combine (reduction tails).
    atomic_cycles: int = 60
    warp_size: int = 32

    def __post_init__(self):
        if self.num_sms <= 0 or self.cores_per_sm <= 0:
            raise ValueError("SM geometry must be positive")
        if self.warp_size != 32:
            raise ValueError("only 32-wide warps are modelled")

    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def peak_gflops_fp32(self) -> float:
        """Peak single-precision GFLOP/s (2 flops/FMA per core per cycle)."""
        return self.total_cores * self.clock_ghz * 2.0

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.clock_ghz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9)

    def warps_per_block(self, threads_per_block: int) -> int:
        return -(-threads_per_block // self.warp_size)

    def max_grid_blocks(self) -> int:
        """Grid x-dimension limit (2^31-1 post-Kepler; plenty for our use)."""
        return 2**31 - 1


#: NVIDIA Tesla K80 (Kepler GK210 pair; the paper quotes 480 GB/s peak).
TESLA_K80 = GPUDescriptor(
    name="Tesla K80",
    arch="kepler",
    num_sms=26,
    cores_per_sm=192,
    clock_ghz=0.875,  # boost clock used in compute benchmarks
    mem_size_gib=24.0,
    mem_bandwidth_gbs=480.0,
    max_warps_per_sm=64,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=16,
    warp_schedulers_per_sm=4,
    issue_rate=2,
    int_latency=9,
    fp_latency=9,
    sfu_latency=32,
    mem_latency=340,
    tlb_hit_latency=280,
    l2_latency=222,
    l1_latency=35,
    l1_kib_per_sm=48,
    l2_kib=1536,
    l2_bandwidth_gbs=1000.0,
    sector_bytes=32,
    dram_burst_bytes=128,
    launch_overhead_us=9.0,
)

#: NVIDIA Tesla P100 (Pascal) — an intermediate generation for cross-gen
#: studies beyond the paper's two platforms.
TESLA_P100 = GPUDescriptor(
    name="Tesla P100",
    arch="pascal",
    num_sms=56,
    cores_per_sm=64,
    clock_ghz=1.328,
    mem_size_gib=16.0,
    mem_bandwidth_gbs=732.0,
    max_warps_per_sm=64,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
    warp_schedulers_per_sm=2,
    issue_rate=2,
    int_latency=6,
    fp_latency=6,
    sfu_latency=24,
    mem_latency=380,
    tlb_hit_latency=320,
    l2_latency=216,
    l1_latency=30,
    l1_kib_per_sm=24,
    l2_kib=4096,
    l2_bandwidth_gbs=1800.0,
    sector_bytes=32,
    dram_burst_bytes=64,
    launch_overhead_us=6.0,
)

#: NVIDIA Tesla V100 (Volta) — Table III of the paper.
TESLA_V100 = GPUDescriptor(
    name="Tesla V100",
    arch="volta",
    num_sms=80,
    cores_per_sm=64,
    clock_ghz=1.530,
    mem_size_gib=16.0,
    mem_bandwidth_gbs=900.0,
    max_warps_per_sm=64,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
    warp_schedulers_per_sm=4,
    issue_rate=1,
    int_latency=4,
    fp_latency=4,
    sfu_latency=16,
    mem_latency=400,  # DRAM path (Jia: ~375-437 cycles TLB-hit)
    tlb_hit_latency=375,
    l2_latency=193,  # Jia's measured L2 hit latency
    l1_latency=28,  # Jia's measured L1 hit latency
    l1_kib_per_sm=128,
    l2_kib=6144,
    l2_bandwidth_gbs=2500.0,
    sector_bytes=32,
    dram_burst_bytes=64,
    launch_overhead_us=4.0,
)
