"""CPU machine descriptors.

A :class:`CPUDescriptor` carries everything the MCA substrate, the CPU timing
simulator and the Liao/Chapman analytical model need: issue-port structure
and instruction latencies (for the scoreboard), the cache/TLB hierarchy (for
the simulator only — the paper's predictor deliberately has no cache model),
and the OpenMP runtime overheads of Table II.

The POWER8/POWER9 values follow the paper's experimental setup (both hosts
clocked at 3 GHz, 20 cores x SMT-8 = 160 hardware threads) and public POWER
documentation; they are inputs to a simulator, not claims about silicon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

__all__ = ["CPUDescriptor", "POWER8", "POWER9", "GENERIC_X86"]


def _frozen(d: dict) -> Mapping:
    return MappingProxyType(dict(d))


@dataclass(frozen=True)
class CPUDescriptor:
    """Parameters of a multicore SMT CPU.

    Port classes used by the machine-op lowering:

    ``FX``  integer/address arithmetic pipes per core,
    ``LS``  load/store pipes per core,
    ``FP``  scalar floating point pipes per core,
    ``VSX`` vector pipes per core (used when a loop vectorizes),
    ``BR``  branch pipe.
    """

    name: str
    cores: int
    smt: int
    frequency_ghz: float
    dispatch_width: int
    ports: Mapping[str, int]
    latencies: Mapping[str, int]
    vector_width_bits: int
    vector_pipes: int
    has_fma: bool
    # cache hierarchy (simulator only)
    cacheline_bytes: int
    l1_kib: int
    l2_kib: int
    l3_kib_per_core: int
    l1_latency: int
    l2_latency: int
    l3_latency: int
    dram_latency: int
    dram_bw_gbs: float
    # TLB (Table II)
    tlb_entries: int
    tlb_miss_penalty: int
    page_bytes: int
    # OpenMP overheads in cycles (Table II)
    par_startup_cycles: int
    par_schedule_static_cycles: int
    sync_cycles: int
    loop_overhead_per_iter: int
    #: Cost of one dynamic-schedule chunk dispatch (a runtime queue pop;
    #: EPCC's "schedule(dynamic)" overhead) — paid per chunk, per thread.
    par_schedule_dynamic_cycles: int = 180
    #: Cost of one combining step of an OpenMP reduction tree (Liao's
    #: Reduction_c is ceil(log2(team)) of these per reduction clause).
    reduction_step_cycles: int = 150
    #: Whether the compiler can vectorize non-innermost loops on this core
    #: (outer-loop / band vectorization).  POWER9's VSX-3 "broader vector
    #: operation support" (Section III) enables it; POWER8 vectorizes only
    #: innermost stride-1 loops.
    outer_loop_vectorization: bool = True
    #: Fraction of peak DRAM bandwidth a fully-threaded streaming OpenMP
    #: loop sustains (SMT contention, page crossings, RFO traffic).
    stream_efficiency: float = 0.5
    #: Per-core L2→L1 refill bandwidth (GB/s); caps cache-resident kernels.
    l2_refill_gbs_per_core: float = 180.0
    #: Per-core L3→L1/L2 refill bandwidth (GB/s).
    l3_refill_gbs_per_core: float = 90.0
    # SMT throughput scaling: per-core throughput multiplier at a given SMT
    # level relative to single-thread (values beyond the last entry clamp).
    smt_scaling: Mapping[int, float] = field(
        default_factory=lambda: _frozen({1: 1.0, 2: 1.45, 4: 1.8, 8: 2.05})
    )

    def __post_init__(self):
        if self.cores <= 0 or self.smt <= 0:
            raise ValueError("cores and smt must be positive")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        object.__setattr__(self, "ports", _frozen(dict(self.ports)))
        object.__setattr__(self, "latencies", _frozen(dict(self.latencies)))
        object.__setattr__(self, "smt_scaling", _frozen(dict(self.smt_scaling)))

    @property
    def hw_threads(self) -> int:
        """Total hardware threads (cores × SMT ways)."""
        return self.cores * self.smt

    @property
    def cycle_ns(self) -> float:
        """Duration of one cycle in nanoseconds."""
        return 1.0 / self.frequency_ghz

    def latency(self, op_class: str) -> int:
        """Latency in cycles of a machine-op class; raises on unknown class."""
        try:
            return self.latencies[op_class]
        except KeyError as exc:
            raise KeyError(
                f"{self.name} has no latency for op class {op_class!r}"
            ) from exc

    def team_overhead_scale(self, num_threads: int) -> float:
        """Fork/barrier cost multiplier for a team of ``num_threads``.

        Wake-up fan-out and barrier contention grow superlinearly with the
        team; the Table II constants are the 8-thread EPCC baselines, and
        EPCC measurements at wider teams follow this curve.  Both the
        "hardware" (simulator) and the analytical model consult it — the
        paper obtains the model's overhead parameters from EPCC runs at
        the experiment's thread count.
        """
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        return max(1.0, (num_threads / 8.0) ** 1.8)

    def smt_throughput(self, threads_per_core: int) -> float:
        """Per-core throughput multiplier for a given SMT occupancy."""
        if threads_per_core < 1:
            raise ValueError("threads_per_core must be >= 1")
        levels = sorted(self.smt_scaling)
        best = self.smt_scaling[levels[0]]
        for lv in levels:
            if threads_per_core >= lv:
                best = self.smt_scaling[lv]
        return best

    def vector_lanes(self, elem_bytes: int) -> int:
        """SIMD lanes for an element size (e.g. 128-bit VSX / f32 = 4)."""
        return max(1, self.vector_width_bits // (elem_bytes * 8))

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.frequency_ghz * 1e9)


_POWER_COMMON_LAT = {
    # scalar op latencies in cycles (POWER8/9 user manual orders of magnitude)
    "iadd": 1,
    "imul": 4,
    "fadd": 6,
    "fmul": 6,
    "fma": 6,
    "fdiv": 27,
    "fsqrt": 32,
    "fexp": 48,  # libm call approximation
    "fmin": 2,
    "fabs": 1,
    "fneg": 1,
    "fsel": 2,
    "vfsel": 2,
    "cmp": 1,
    "br": 1,
    "load": 3,  # L1-hit base; the cache model adds miss penalties
    "store": 1,
    "vload": 3,
    "vstore": 1,
    "vfadd": 6,
    "vfmul": 6,
    "vfma": 6,
    "vfdiv": 31,
    "vfsqrt": 38,
}

#: POWER8 host of the paper's Table I platform 1 (K80 machine).
POWER8 = CPUDescriptor(
    name="POWER8",
    cores=20,
    smt=8,
    frequency_ghz=3.0,
    dispatch_width=8,
    ports=_frozen({"FX": 2, "LS": 2, "FP": 2, "VSX": 2, "BR": 1}),
    latencies=_frozen(_POWER_COMMON_LAT),
    vector_width_bits=128,
    vector_pipes=2,
    has_fma=True,
    cacheline_bytes=128,
    l1_kib=64,
    l2_kib=512,
    l3_kib_per_core=8192,
    l1_latency=3,
    l2_latency=13,
    l3_latency=27,
    dram_latency=320,
    dram_bw_gbs=110.0,
    tlb_entries=1024,
    tlb_miss_penalty=14,
    page_bytes=65536,  # 64 KiB pages, the ppc64le default
    par_startup_cycles=3000,
    par_schedule_static_cycles=10154,
    sync_cycles=4000,
    loop_overhead_per_iter=4,
    outer_loop_vectorization=False,  # VSX-2: innermost loops only
    stream_efficiency=0.45,
)

#: POWER9 host of platform 2 (AC922 + V100); broader vector support (VSX-3).
POWER9 = CPUDescriptor(
    name="POWER9",
    cores=20,
    smt=8,
    frequency_ghz=3.0,
    dispatch_width=8,
    # 4 execution slices with VSX per SMT-8 core pair: double the vector pipes
    ports=_frozen({"FX": 3, "LS": 2, "FP": 2, "VSX": 4, "BR": 1}),
    latencies=_frozen(
        {
            **_POWER_COMMON_LAT,
            # VSX-3 improved vector op latencies
            "vfadd": 5,
            "vfmul": 5,
            "vfma": 5,
            "vfdiv": 26,
            "vfsqrt": 32,
        }
    ),
    vector_width_bits=128,
    vector_pipes=4,
    has_fma=True,
    cacheline_bytes=128,
    l1_kib=32,
    l2_kib=512,
    l3_kib_per_core=10240,
    l1_latency=3,
    l2_latency=12,
    l3_latency=25,
    dram_latency=300,
    dram_bw_gbs=140.0,
    tlb_entries=1024,
    tlb_miss_penalty=14,
    page_bytes=65536,
    par_startup_cycles=3000,
    par_schedule_static_cycles=10154,
    sync_cycles=4000,
    loop_overhead_per_iter=4,
)

#: A plain 8-core AVX2 workstation; used by examples to show portability.
GENERIC_X86 = CPUDescriptor(
    name="generic-x86",
    cores=8,
    smt=2,
    frequency_ghz=3.6,
    dispatch_width=4,
    ports=_frozen({"FX": 4, "LS": 2, "FP": 2, "VSX": 2, "BR": 1}),
    latencies=_frozen(
        {
            **_POWER_COMMON_LAT,
            "fadd": 4,
            "fmul": 4,
            "fma": 4,
            "fdiv": 14,
            "fsqrt": 18,
            "load": 5,
            "vfadd": 4,
            "vfmul": 4,
            "vfma": 4,
            "vfdiv": 14,
            "vfsqrt": 20,
        }
    ),
    vector_width_bits=256,
    vector_pipes=2,
    has_fma=True,
    cacheline_bytes=64,
    l1_kib=32,
    l2_kib=256,
    l3_kib_per_core=2048,
    l1_latency=4,
    l2_latency=12,
    l3_latency=40,
    dram_latency=250,
    dram_bw_gbs=40.0,
    tlb_entries=1536,
    tlb_miss_penalty=20,
    page_bytes=4096,
    par_startup_cycles=4000,
    par_schedule_static_cycles=9000,
    sync_cycles=3500,
    loop_overhead_per_iter=4,
    smt_scaling=_frozen({1: 1.0, 2: 1.3}),
)
