"""System topology: a host with attached accelerator devices (Figure 1).

A :class:`Platform` bundles the host CPU, one or more GPUs and the bus each
GPU hangs off — the unit over which an offloading decision is made.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cpu import CPUDescriptor
from .gpu import GPUDescriptor
from .interconnect import InterconnectDescriptor

__all__ = ["AcceleratorSlot", "Platform"]


@dataclass(frozen=True)
class AcceleratorSlot:
    """One accelerator attached to the host via a specific bus."""

    gpu: GPUDescriptor
    bus: InterconnectDescriptor

    def __repr__(self) -> str:
        return f"{self.gpu.name} via {self.bus.name}"


@dataclass(frozen=True)
class Platform:
    """A heterogeneous compute node: host CPU + attached accelerators."""

    name: str
    host: CPUDescriptor
    accelerators: tuple[AcceleratorSlot, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "accelerators", tuple(self.accelerators))

    @property
    def gpu(self) -> GPUDescriptor:
        """The primary accelerator (first slot); raises when none attached."""
        if not self.accelerators:
            raise ValueError(f"platform {self.name!r} has no accelerator")
        return self.accelerators[0].gpu

    @property
    def bus(self) -> InterconnectDescriptor:
        if not self.accelerators:
            raise ValueError(f"platform {self.name!r} has no accelerator")
        return self.accelerators[0].bus

    def render(self) -> str:
        """ASCII rendering of the Figure-1 style topology."""
        host_line = (
            f"{self.host.name}: {self.host.cores}c/SMT{self.host.smt} "
            f"@ {self.host.frequency_ghz:g} GHz"
        )
        lines = [
            "+----------------------- host -----------------------+",
            f"| {host_line:<51} |",
            f"| {'main memory, ' + format(self.host.dram_bw_gbs, 'g') + ' GB/s':<51} |",
            "+-----------------------------------------------------+",
        ]
        for slot in self.accelerators:
            lines.append(f"        | {slot.bus.name} ({slot.bus.bandwidth_gbs:g} GB/s)")
            gpu_line = (
                f"{slot.gpu.name}: {slot.gpu.num_sms} SMs, "
                f"{slot.gpu.mem_bandwidth_gbs:g} GB/s"
            )
            lines.append("+------------------- accelerator --------------------+")
            lines.append(f"| {gpu_line:<51} |")
            lines.append("+-----------------------------------------------------+")
        return "\n".join(lines)

    def __repr__(self) -> str:
        accs = ", ".join(repr(a) for a in self.accelerators)
        return f"Platform({self.name!r}: {self.host.name} + [{accs}])"
