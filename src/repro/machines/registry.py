"""Named registry of machine descriptors and the paper's two platforms."""

from __future__ import annotations

from .cpu import CPUDescriptor, GENERIC_X86, POWER8, POWER9
from .gpu import GPUDescriptor, TESLA_K80, TESLA_P100, TESLA_V100
from .interconnect import InterconnectDescriptor, NVLINK2, PCIE3_X16
from .topology import AcceleratorSlot, Platform

__all__ = [
    "cpu_by_name",
    "gpu_by_name",
    "interconnect_by_name",
    "platform_by_name",
    "PLATFORM_P8_K80",
    "PLATFORM_P9_V100",
    "list_platforms",
]

_CPUS: dict[str, CPUDescriptor] = {
    "power8": POWER8,
    "power9": POWER9,
    "generic-x86": GENERIC_X86,
}

_GPUS: dict[str, GPUDescriptor] = {
    "k80": TESLA_K80,
    "p100": TESLA_P100,
    "v100": TESLA_V100,
}

_BUSES: dict[str, InterconnectDescriptor] = {
    "pcie3": PCIE3_X16,
    "nvlink2": NVLINK2,
}

#: Platform 1 of Section III: POWER8 host + Tesla K80 over PCI-E.
PLATFORM_P8_K80 = Platform(
    name="POWER8+K80",
    host=POWER8,
    accelerators=(AcceleratorSlot(TESLA_K80, PCIE3_X16),),
)

#: Platform 2 of Section III / the Section IV testbed: POWER9 (AC922) + V100
#: over NVLink 2.
PLATFORM_P9_V100 = Platform(
    name="POWER9+V100",
    host=POWER9,
    accelerators=(AcceleratorSlot(TESLA_V100, NVLINK2),),
)

_PLATFORMS: dict[str, Platform] = {
    "p8-k80": PLATFORM_P8_K80,
    "p9-v100": PLATFORM_P9_V100,
}


def cpu_by_name(name: str) -> CPUDescriptor:
    """Look up a CPU descriptor by its registry key (case-insensitive)."""
    return _lookup(_CPUS, name, "CPU")


def gpu_by_name(name: str) -> GPUDescriptor:
    """Look up a GPU descriptor by its registry key (case-insensitive)."""
    return _lookup(_GPUS, name, "GPU")


def interconnect_by_name(name: str) -> InterconnectDescriptor:
    """Look up an interconnect descriptor by its registry key."""
    return _lookup(_BUSES, name, "interconnect")


def platform_by_name(name: str) -> Platform:
    """Look up one of the paper's experimental platforms."""
    return _lookup(_PLATFORMS, name, "platform")


def list_platforms() -> list[str]:
    """Registry keys of the available platforms."""
    return sorted(_PLATFORMS)


def _lookup(table: dict, name: str, what: str):
    key = name.strip().lower()
    if key not in table:
        raise KeyError(f"unknown {what} {name!r}; known: {sorted(table)}")
    return table[key]
