"""Machine descriptors: CPUs, GPUs, interconnects and platforms.

These carry the Table II / Table III parameter sets and are shared by the
analytical models (coarse view) and the timing simulators (detailed view).
"""

from .cpu import CPUDescriptor, GENERIC_X86, POWER8, POWER9
from .gpu import GPUDescriptor, TESLA_K80, TESLA_P100, TESLA_V100
from .interconnect import InterconnectDescriptor, NVLINK2, PCIE3_X16
from .topology import AcceleratorSlot, Platform
from .registry import (
    PLATFORM_P8_K80,
    PLATFORM_P9_V100,
    cpu_by_name,
    gpu_by_name,
    interconnect_by_name,
    list_platforms,
    platform_by_name,
)

__all__ = [
    "CPUDescriptor",
    "GENERIC_X86",
    "POWER8",
    "POWER9",
    "GPUDescriptor",
    "TESLA_K80",
    "TESLA_P100",
    "TESLA_V100",
    "InterconnectDescriptor",
    "NVLINK2",
    "PCIE3_X16",
    "AcceleratorSlot",
    "Platform",
    "PLATFORM_P8_K80",
    "PLATFORM_P9_V100",
    "cpu_by_name",
    "gpu_by_name",
    "interconnect_by_name",
    "list_platforms",
    "platform_by_name",
]
