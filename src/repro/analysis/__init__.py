"""Static program analyses and the Program Attribute Database.

The "static features" half of the hybrid framework (Figure 2): instruction
loadout under the paper's trip-count/branch abstractions, and the database
that carries symbolic analysis products from compile time to run time.
"""

from .tripcount import (
    PAPER_BRANCH_PROBABILITY,
    PAPER_LOOP_TRIPS,
    hybrid_trips,
    nest_trips,
    paper_trip_abstraction,
    runtime_trips,
)
from .features import AccessWeight, InstructionLoadout, extract_loadout
from .attribute_db import (
    BoundAttributes,
    ProgramAttributeDatabase,
    RegionAttributes,
)

__all__ = [
    "PAPER_BRANCH_PROBABILITY",
    "PAPER_LOOP_TRIPS",
    "hybrid_trips",
    "nest_trips",
    "paper_trip_abstraction",
    "runtime_trips",
    "AccessWeight",
    "InstructionLoadout",
    "extract_loadout",
    "BoundAttributes",
    "ProgramAttributeDatabase",
    "RegionAttributes",
]
