"""Trip-count abstractions.

The paper's static analysis "assumes all loops execute 128 iterations and
all conditional blocks execute half of the time" (Section IV.B).  The
runtime side of the hybrid framework can instead evaluate symbolic trip
counts once the parameters are known.  Both behaviours are expressed as
*trip functions* ``Loop -> float`` passed into feature extraction and MCA.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..ir import Loop
from ..symbolic import EvalError

__all__ = [
    "PAPER_LOOP_TRIPS",
    "PAPER_BRANCH_PROBABILITY",
    "paper_trip_abstraction",
    "runtime_trips",
    "hybrid_trips",
    "nest_trips",
]

#: The fixed inner-loop iteration count of the paper's abstraction.
PAPER_LOOP_TRIPS = 128

#: The assumed probability that a conditional block executes.
PAPER_BRANCH_PROBABILITY = 0.5

TripFn = Callable[[Loop], float]


def paper_trip_abstraction(loop: Loop) -> float:
    """Every loop executes exactly 128 iterations (the paper's assumption)."""
    return float(PAPER_LOOP_TRIPS)


def runtime_trips(env: Mapping[str, float]) -> TripFn:
    """Trip function that evaluates each loop's symbolic count under ``env``.

    Raises :class:`repro.symbolic.EvalError` when a needed parameter is
    unbound — by design: the simulator must never silently fall back.
    """

    def trips(loop: Loop) -> float:
        return float(loop.count.evaluate(env))

    return trips


def hybrid_trips(env: Mapping[str, float], *, default: float = PAPER_LOOP_TRIPS) -> TripFn:
    """Evaluate what the bindings allow; fall back to the 128 abstraction.

    This is what the paper's predictor actually sees at runtime: the
    parallel trip count arrives via the attribute database, but inner trip
    counts that were not instrumented keep the static assumption.
    """

    def trips(loop: Loop) -> float:
        try:
            return float(loop.count.evaluate(env))
        except EvalError:
            return float(default)

    return trips


def nest_trips(
    region,
    env: Mapping[str, float],
    *,
    default: float | None = None,
) -> TripFn:
    """Nest-aware trip counts supporting non-rectangular loops.

    A triangular loop (``for j2 in j1 .. m``) has a count that references
    an *outer* induction variable; its average trip count is recovered by
    binding each enclosing variable at the midpoint of its own range while
    walking the nest top-down.  Rectangular loops resolve exactly as with
    :func:`runtime_trips`.

    ``default=None`` is strict (unresolvable parameters raise
    :class:`EvalError`); a number reproduces the compile-time fallback of
    :func:`hybrid_trips`.
    """
    from ..ir import If, Loop as _Loop  # local import avoids cycles at init

    table: dict[int, float] = {}

    def walk(stmts, mids: dict[str, float]) -> None:
        for s in stmts:
            if isinstance(s, _Loop):
                bindings = {**env, **mids}
                try:
                    trips = max(0.0, float(s.count.evaluate(bindings)))
                    start = float(s.start.evaluate(bindings))
                    mid = start + trips / 2.0
                    table[id(s)] = trips
                except EvalError:
                    if default is None:
                        raise
                    table[id(s)] = float(default)
                    mid = float(default) / 2.0
                walk(s.body, {**mids, s.var.name: mid})
            elif isinstance(s, If):
                walk(s.then_body, mids)
                walk(s.else_body, mids)

    walk(region.body, {})

    def trip_of(loop: Loop) -> float:
        if id(loop) in table:
            return table[id(loop)]
        # a loop from another region: behave like runtime/hybrid trips
        try:
            return float(loop.count.evaluate(env))
        except EvalError:
            if default is None:
                raise
            return float(default)

    return trip_of
