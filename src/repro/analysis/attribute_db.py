"""The Program Attribute Database (Figure 2).

At "compile" time, the framework stores the static products of analysis for
every outlined target region: the symbolic IPDA strides, the instruction
loadout skeleton, the symbolic parallel-iteration count, and symbolic
transfer sizes.  At execution time, the OpenMP runtime queries the entry by
region key, binds the missing runtime values, and hands completed model
inputs to the performance models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..ir import Region, validate_region
from ..ir.dataflow import RegionDataflow, analyze_transfers
from ..ir.printer import region_to_text
from ..ipda import BoundIPDA, IPDAResult, analyze_region
from ..obs.tracer import current_tracer
from ..parallel.cache import current_cache
from ..symbolic import Expr
from .features import AccessWeight, InstructionLoadout, extract_loadout
from .tripcount import PAPER_LOOP_TRIPS, nest_trips, paper_trip_abstraction

__all__ = ["RegionAttributes", "BoundAttributes", "ProgramAttributeDatabase"]


@dataclass(frozen=True)
class RegionAttributes:
    """Compile-time record for one target region."""

    region: Region
    ipda: IPDAResult
    static_loadout: InstructionLoadout  # under the 128-iteration abstraction
    parallel_iterations: Expr
    required_symbols: frozenset[str]
    #: array liveness / transfer-direction analysis (ir.dataflow); only
    #: consulted when ``transfer_mode == "inferred"``
    dataflow: RegionDataflow | None = None
    #: "declared" prices transfers from the map clauses (the default,
    #: bit-identical to the historical behaviour); "inferred" prices them
    #: from the dataflow analysis (drops provably wasted directions)
    transfer_mode: str = "declared"

    def bind(self, env: Mapping[str, int]) -> "BoundAttributes":
        """Complete the record with runtime values (Figure 2, runtime side).

        ``env`` binds region parameters (array extents / trip counts).
        Missing *inner* trip counts are tolerated — the paper's abstraction
        covers them — but the parallel iteration count must resolve.
        """
        missing = self.parallel_iterations.free_symbols() - set(env)
        if missing:
            raise KeyError(
                f"region {self.region.name!r}: parallel iteration count needs "
                f"unbound symbols {sorted(missing)}"
            )
        runtime_loadout = extract_loadout(
            self.region, nest_trips(self.region, env, default=PAPER_LOOP_TRIPS)
        )
        bound_ipda = self.ipda.bind(env)
        if self.transfer_mode == "inferred":
            dataflow = self.dataflow or analyze_transfers(self.region)
            to_dev, to_host = dataflow.transfer_bytes(env)
        else:
            to_dev, to_host = self.region.transfer_bytes(env)
        return BoundAttributes(
            attributes=self,
            env=dict(env),
            parallel_iterations=int(self.parallel_iterations.evaluate(env)),
            loadout=runtime_loadout,
            ipda=bound_ipda,
            bytes_to_device=to_dev,
            bytes_to_host=to_host,
            transfer_mode=self.transfer_mode,
        )


@dataclass(frozen=True)
class BoundAttributes:
    """Runtime-completed model inputs for one region instance."""

    attributes: RegionAttributes
    env: Mapping[str, int]
    parallel_iterations: int
    loadout: InstructionLoadout
    ipda: BoundIPDA
    bytes_to_device: int
    bytes_to_host: int
    #: where the byte counts came from: "declared" map clauses or the
    #: "inferred" dataflow directions
    transfer_mode: str = "declared"

    @property
    def region(self) -> Region:
        return self.attributes.region


def _cached_static_loadout(region: Region) -> InstructionLoadout:
    """Memoize the static (128-iteration abstraction) loadout.

    Keyed on the printed canonical region text alone — the static
    loadout depends on no machine model and no runtime binding.  Runtime
    loadouts (``RegionAttributes.bind``) are *not* cached: they are
    cheap and environment-dependent.
    """
    cache = current_cache()
    if not cache.enabled:
        return extract_loadout(region, paper_trip_abstraction)
    entry = cache.get_or_compute(
        "analysis.static_loadout",
        region_to_text(region),
        None,
        lambda: _encode_loadout(
            extract_loadout(region, paper_trip_abstraction)
        ),
        validate=_valid_loadout_entry,
    )
    return _decode_loadout(entry)


_LOADOUT_SCALARS = (
    "region_name",
    "fp_insts",
    "int_insts",
    "sfu_insts",
    "load_insts",
    "store_insts",
    "branch_insts",
)


def _encode_loadout(loadout: InstructionLoadout) -> dict:
    entry = {f: getattr(loadout, f) for f in _LOADOUT_SCALARS}
    entry["access_weights"] = [
        [w.access_index, w.array_name, w.is_store, w.weight, w.elem_bytes]
        for w in loadout.access_weights
    ]
    return entry


def _valid_loadout_entry(entry) -> bool:
    return (
        isinstance(entry, dict)
        and all(f in entry for f in _LOADOUT_SCALARS)
        and isinstance(entry.get("access_weights"), list)
        and all(
            isinstance(w, list) and len(w) == 5
            for w in entry["access_weights"]
        )
    )


def _decode_loadout(entry: dict) -> InstructionLoadout:
    return InstructionLoadout(
        region_name=entry["region_name"],
        fp_insts=entry["fp_insts"],
        int_insts=entry["int_insts"],
        sfu_insts=entry["sfu_insts"],
        load_insts=entry["load_insts"],
        store_insts=entry["store_insts"],
        access_weights=tuple(
            AccessWeight(idx, name, bool(store), weight, bytes_)
            for idx, name, store, weight, bytes_ in entry["access_weights"]
        ),
        branch_insts=entry["branch_insts"],
    )


class ProgramAttributeDatabase:
    """Keyed store of compile-time attributes, queried by the runtime.

    Keys are region names (standing in for the paper's "program and
    location" index).

    ``inferred_transfers=True`` opts the database into pricing transfers
    from the array-liveness dataflow analysis instead of the declared map
    clauses: every record compiled here is stamped ``transfer_mode=
    "inferred"`` and ``bind`` drops the provably wasted directions.  The
    default (off) is bit-identical to the historical behaviour.
    """

    def __init__(self, *, inferred_transfers: bool = False) -> None:
        self._entries: dict[str, RegionAttributes] = {}
        self.inferred_transfers = inferred_transfers

    def compile_region(self, region: Region) -> RegionAttributes:
        """Run all static analyses on a region and store the record."""
        if region.name in self._entries:
            raise KeyError(f"region {region.name!r} already compiled")
        tracer = current_tracer()
        with tracer.span("compile", region=region.name):
            validate_region(region)
            with tracer.span("analyse", region=region.name) as sp:
                ipda = analyze_region(region)
                static_loadout = _cached_static_loadout(region)
                if tracer.enabled:
                    sp.set("accesses", len(ipda.accesses))
            attrs = RegionAttributes(
                region=region,
                ipda=ipda,
                static_loadout=static_loadout,
                parallel_iterations=region.parallel_iterations(),
                required_symbols=region.free_symbols(),
                dataflow=analyze_transfers(region),
                transfer_mode=(
                    "inferred" if self.inferred_transfers else "declared"
                ),
            )
        self._entries[region.name] = attrs
        return attrs

    def lookup(self, region_name: str) -> RegionAttributes:
        """Fetch the compile-time record for a region; raises when absent."""
        try:
            return self._entries[region_name]
        except KeyError as exc:
            raise KeyError(
                f"no compiled attributes for region {region_name!r}"
            ) from exc

    def __contains__(self, region_name: str) -> bool:
        return region_name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def region_names(self) -> list[str]:
        return sorted(self._entries)
