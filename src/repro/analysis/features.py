"""Instruction-loadout feature extraction (Section IV.B).

Counts the *dynamic* instructions one thread executes for one parallel work
item, grouped into compute and I/O categories as the paper describes.  IR
instructions stand in for native micro-instructions — "given the closed
nature of the true GPU assembly ISA, this serves as a good estimate."

Counts are parameterized by a trip function so the same walk serves both
the static abstraction (every loop = 128 iterations, branches 50%) and the
runtime-accurate view.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import (
    Bin,
    Cmp,
    ConstV,
    If,
    Load,
    LocalAssign,
    LocalDef,
    LocalRef,
    Loop,
    Region,
    ScalarArg,
    Select,
    Stmt,
    Store,
    Un,
    VExpr,
)
from .tripcount import PAPER_BRANCH_PROBABILITY, TripFn

__all__ = ["InstructionLoadout", "AccessWeight", "extract_loadout"]

#: Op classes billed to the special-function path (GPU SFU / CPU long ops).
_SFU_BIN = frozenset({"div"})
_SFU_UN = frozenset({"sqrt", "exp"})


@dataclass(frozen=True)
class AccessWeight:
    """Dynamic execution count of one static memory access, per work item.

    ``access_index`` aligns with the order of
    :func:`repro.ir.memory_accesses`, which is also the order IPDA reports
    strides in — the GPU model joins the two to weight coalesced versus
    uncoalesced traffic.
    """

    access_index: int
    array_name: str
    is_store: bool
    weight: float
    elem_bytes: int


@dataclass(frozen=True)
class InstructionLoadout:
    """Per-work-item dynamic instruction counts.

    All numbers are *per iteration of the collapsed parallel band* (one
    OpenMP work item / one GPU thread repetition).
    """

    region_name: str
    fp_insts: float
    int_insts: float
    sfu_insts: float
    load_insts: float
    store_insts: float
    access_weights: tuple[AccessWeight, ...]
    branch_insts: float

    @property
    def mem_insts(self) -> float:
        return self.load_insts + self.store_insts

    @property
    def comp_insts(self) -> float:
        """The Hong model's #Comp_insts: everything that is not memory."""
        return self.fp_insts + self.int_insts + self.sfu_insts + self.branch_insts

    @property
    def total_insts(self) -> float:
        return self.comp_insts + self.mem_insts

    def arithmetic_intensity(self) -> float:
        """FP operations per byte moved (a memory-boundedness indicator)."""
        bytes_moved = sum(w.weight * w.elem_bytes for w in self.access_weights)
        if bytes_moved == 0:
            return float("inf")
        return self.fp_insts / bytes_moved


class _Counter:
    def __init__(self, trip_of: TripFn, branch_probability):
        self.trip_of = trip_of
        # a float (the 50% abstraction) or a callable If -> probability
        # (profile-guided mode)
        self.p_branch = branch_probability
        self.fp = 0.0
        self.int_ = 0.0
        self.sfu = 0.0
        self.loads = 0.0
        self.stores = 0.0
        self.branches = 0.0
        self.weights: list[AccessWeight] = []
        self._access_index = 0

    def value(self, v: VExpr, mult: float) -> None:
        if isinstance(v, (ConstV, ScalarArg, LocalRef)):
            return
        if isinstance(v, Load):
            self.loads += mult
            self.weights.append(
                AccessWeight(
                    self._access_index,
                    v.array.name,
                    False,
                    mult,
                    v.array.dtype.size,
                )
            )
            self._access_index += 1
            # address computation
            self.int_ += mult
            return
        if isinstance(v, Bin):
            self.value(v.lhs, mult)
            self.value(v.rhs, mult)
            if v.op in _SFU_BIN:
                self.sfu += mult
            else:
                self.fp += mult
            return
        if isinstance(v, Un):
            self.value(v.operand, mult)
            if v.op in _SFU_UN:
                self.sfu += mult
            else:
                self.fp += mult
            return
        if isinstance(v, Cmp):
            self.value(v.lhs, mult)
            self.value(v.rhs, mult)
            self.int_ += mult
            return
        if isinstance(v, Select):
            self.value(v.cond, mult)
            self.value(v.if_true, mult)
            self.value(v.if_false, mult)
            self.fp += mult  # the select itself
            return
        raise TypeError(f"cannot count {type(v).__name__}")  # pragma: no cover

    def stmts(self, body: list[Stmt], mult: float) -> None:
        for s in body:
            if isinstance(s, Loop):
                trips = self.trip_of(s)
                # loop control: one increment + one compare+branch per trip
                self.int_ += 2 * trips * mult
                self.branches += trips * mult
                self.stmts(s.body, mult * trips)
            elif isinstance(s, If):
                self.value(s.cond, mult)
                self.branches += mult
                p = self.p_branch(s) if callable(self.p_branch) else self.p_branch
                self.stmts(s.then_body, mult * p)
                self.stmts(s.else_body, mult * (1.0 - p))
            elif isinstance(s, Store):
                self.value(s.value, mult)
                self.stores += mult
                self.int_ += mult  # address computation
                from ..ir import ReduceStore

                if isinstance(s, ReduceStore):
                    self.fp += mult  # the per-contribution combine op
                self.weights.append(
                    AccessWeight(
                        self._access_index,
                        s.array.name,
                        True,
                        mult,
                        s.array.dtype.size,
                    )
                )
                self._access_index += 1
            elif isinstance(s, LocalDef):
                self.value(s.init, mult)
            elif isinstance(s, LocalAssign):
                self.value(s.value, mult)
            else:  # pragma: no cover - validator precludes this
                raise TypeError(f"cannot count {type(s).__name__}")


def extract_loadout(
    region: Region,
    trip_of: TripFn,
    *,
    branch_probability=PAPER_BRANCH_PROBABILITY,
) -> InstructionLoadout:
    """Count per-work-item dynamic instructions below the parallel band.

    The walk starts *inside* the innermost band loop: parallel iterations
    are work items, so their multiplicity is carried by grid geometry /
    thread counts, not by the loadout.  ``branch_probability`` is either
    the fixed 50% abstraction or a callable ``If -> probability`` supplied
    by profile-guided analysis.
    """
    band = region.parallel_band()
    counter = _Counter(trip_of, branch_probability)
    counter.stmts(band[-1].body, 1.0)
    return InstructionLoadout(
        region_name=region.name,
        fp_insts=counter.fp,
        int_insts=counter.int_,
        sfu_insts=counter.sfu,
        load_insts=counter.loads,
        store_insts=counter.stores,
        access_weights=tuple(counter.weights),
        branch_insts=counter.branches,
    )
