"""The offloading decision runtime (Figure 2, end to end).

``OffloadingRuntime`` owns the Program Attribute Database and the platform.
``compile_region`` is the compile-time half: outline, analyse, store
attributes.  ``launch`` is the runtime half: bind runtime values, ask the
policy for a target, dispatch to that device, and record everything the
experiments need (both device times are simulated so policies can be scored
against the oracle without re-running).

Dispatch is resilient (docs/ROBUSTNESS.md): an optional
:class:`~repro.faults.FaultInjector` makes accelerator attempts fail, and
the runtime answers with bounded retry + exponential backoff (on a
simulated clock), automatic host fallback, a per-device circuit breaker
and a :class:`~repro.faults.DeviceHealth` penalty that steers the
model-guided selector away from a flaky card.  With no injector the fast
path is taken and every record is bit-identical to the pre-fault-tolerance
runtime.

Dispatch is also *gated* (docs/LINT.md): an optional
:class:`~repro.lint.LintGate` refuses to offload regions whose parallel
band carries race-severity lint findings — raising, forcing the host, or
merely recording, per its mode.  Lint-clean regions leave no trace in the
record (``lint=None``), so they too stay bit-identical.

Dispatch is finally *drift-aware* (docs/ROBUSTNESS.md): an optional
:class:`~repro.drift.DriftSentinel` tracks predicted-vs-observed seconds
per (device, region), a :class:`~repro.drift.Watchdog` turns the
prediction into a per-launch deadline (an overrun becomes a typed
:class:`~repro.faults.DeadlineExceeded` feeding the health/breaker
machinery), and the :class:`~repro.drift.SelfHealingSelector` degrades
the model-guided decision gracefully when a stream is DRIFTED.  While
every stream is CALIBRATED the record carries no drift provenance
(``drift=None``) and sentinel-on runs stay bit-identical too.

Dispatch is, finally, *observable* (docs/OBSERVABILITY.md): an optional
:class:`~repro.obs.Tracer` records nested ``launch`` → ``predict`` →
``dispatch`` spans (with ``compile`` → ``analyse`` on the compile-time
side) and an optional :class:`~repro.obs.MetricsRegistry` counts
launches, retries, fallbacks, lint/drift verdicts and prediction error.
Both default off (:data:`~repro.obs.NULL_TRACER`), record-only, and
leave every ``LaunchRecord`` bit-identical whether attached or not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

from ..analysis import ProgramAttributeDatabase, RegionAttributes
from ..drift import DriftDecision, DriftSentinel, SelfHealingSelector, Watchdog
from ..faults import (
    DeviceHealth,
    FaultEvent,
    FaultInjector,
    RetryPolicy,
    SimulatedClock,
)
from ..ir import Region
from ..lint.gate import FALLBACK_LINT, GateDecision, LintGate, LintGateError
from ..machines import Platform
from ..models import SelectionPrediction
from ..obs import NULL_TRACER, MetricsRegistry, NullTracer, Tracer
from .device import AcceleratorDevice, HostDevice
from .dispatch import (
    FALLBACK_HEDGE,
    Budget,
    Bulkhead,
    DispatchCore,
    HedgeOutcome,
    HedgePolicy,
)
from .memo import ExecutionMemo
from .policies import ModelGuided, Policy

__all__ = ["ADMISSION_DEGRADED", "LaunchRecord", "OffloadingRuntime"]

#: Admission provenance stamped on launches degraded to the host by an
#: admission controller (``launch(..., force_target="cpu")``).
ADMISSION_DEGRADED = "degraded-to-host"


@dataclass(frozen=True)
class LaunchRecord:
    """Everything observed for one target-region launch.

    The trailing fields are fault-tolerance provenance; their defaults
    describe an untroubled launch, so fault-free runs produce records
    identical to the pre-resilience runtime.
    """

    region_name: str
    target: str  # device the launch actually executed on
    policy_name: str
    prediction: SelectionPrediction | None
    cpu_seconds: float  # measured (simulated) host time
    gpu_seconds: float  # measured (simulated) device time incl. transfers
    executed_seconds: float  # time of the chosen target (incl. retry backoff)
    requested_target: str | None = None  # policy's pick before rerouting
    attempts: int = 0  # accelerator dispatch attempts (0 = never tried)
    fault_events: tuple[FaultEvent, ...] = ()
    fallback: str | None = None  # why the launch left the requested target
    overhead_seconds: float = 0.0  # simulated retry backoff
    lint: GateDecision | None = None  # gate verdict (None = clean or no gate)
    drift: DriftDecision | None = None  # sentinel verdict (None = calibrated)
    admission: str | None = None  # admission-control provenance (None = full path)
    transfers: str | None = None  # transfer sizing source (None = declared map)
    hedge: HedgeOutcome | None = None  # hedged-launch provenance (None = no backup)
    tenant: str | None = None  # issuing tenant (None = anonymous/single-tenant)

    @property
    def true_speedup(self) -> float:
        """Actual GPU-offloading speedup (host / device).

        NaN when the device time is zero or non-finite (a failed launch
        measures no useful device time) so experiment tables degrade to
        "nan" instead of raising ZeroDivisionError or propagating inf.
        """
        if self.gpu_seconds <= 0.0 or not (
            math.isfinite(self.gpu_seconds) and math.isfinite(self.cpu_seconds)
        ):
            return math.nan
        return self.cpu_seconds / self.gpu_seconds

    @property
    def predicted_speedup(self) -> float | None:
        if self.prediction is None:
            return None
        cpu, gpu = self.prediction.cpu.seconds, self.prediction.gpu.seconds
        if gpu <= 0.0 or not (math.isfinite(gpu) and math.isfinite(cpu)):
            return math.nan
        return cpu / gpu

    @property
    def decision_correct(self) -> bool:
        """Did the policy match the oracle?"""
        oracle = "gpu" if self.gpu_seconds < self.cpu_seconds else "cpu"
        return self.target == oracle

    @property
    def oracle_seconds(self) -> float:
        return min(self.cpu_seconds, self.gpu_seconds)

    @property
    def fell_back(self) -> bool:
        """Did resilience reroute this launch off the requested target?"""
        return self.fallback is not None

    @property
    def faulted(self) -> bool:
        return bool(self.fault_events)


@dataclass
class OffloadingRuntime:
    """Compile-time + run-time halves of the decision framework."""

    platform: Platform
    policy: Policy = field(default_factory=ModelGuided)
    num_threads: int | None = None  # host team size (None = all hw threads)
    db: ProgramAttributeDatabase = field(default_factory=ProgramAttributeDatabase)
    injector: FaultInjector | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    apply_health_penalty: bool = True
    lint_gate: LintGate | None = None
    sentinel: DriftSentinel | None = None
    watchdog: Watchdog | None = None
    health_decay_halflife_s: float | None = None  # simulated-time penalty decay
    tracer: Tracer | NullTracer = NULL_TRACER  # off by default (records nothing)
    metrics: MetricsRegistry | None = None
    #: optional per-(region, env) cache of the deterministic launch inputs
    #: (simulated times, bindings, footprints); same values, so records
    #: stay bit-identical — the replay engine's 10⁵-launch fast path
    memo: ExecutionMemo | None = None
    #: optional per-launch time dilation: called with the device kind
    #: ("cpu"/"gpu"), returns a multiplier for that device's simulated
    #: seconds this launch.  The chaos hook for mid-stream hardware drift;
    #: None (the default) leaves every launch untouched.
    time_dilation: Callable[[str], float] | None = None
    #: key drift-sentinel streams by (region, env) instead of region
    #: alone.  A mixed-dataset-size workload replayed through one stream
    #: makes every size change look like a residual shift; per-case
    #: streams keep a stable workload CALIBRATED.  Off by default (the
    #: historical keying the drift experiment and its tests pin).
    sentinel_stream_by_env: bool = False
    #: optional per-device bounded scheduled-work slots; a saturated
    #: accelerator reroutes to the host (FALLBACK_BULKHEAD).  None = off.
    bulkheads: Bulkhead | None = None
    #: optional speculative host-backup policy (docs/ROBUSTNESS.md);
    #: None = off, and every record stays bit-identical.
    hedge: HedgePolicy | None = None

    def __post_init__(self):
        self._host = HostDevice(self.platform.host, num_threads=self.num_threads)
        self._accel = AcceleratorDevice(self.platform.gpu, self.platform.bus)
        self.clock = SimulatedClock()
        if self.tracer.enabled and self.tracer.clock is None:
            self.tracer.clock = self.clock  # span timestamps follow this runtime
        if self.sentinel is not None and self.sentinel.clock is None:
            self.sentinel.clock = self.clock  # drift transitions get timestamps
        self.health = DeviceHealth(
            self._accel.name,
            clock=self.clock,
            decay_halflife_s=self.health_decay_halflife_s,
        )
        self._accel_launches = 0  # per-device dispatch ordinal for the injector
        self._healer = (
            SelfHealingSelector(self.sentinel) if self.sentinel else None
        )
        self._core = DispatchCore(self)

    # -- compile time -------------------------------------------------------
    def compile_region(self, region: Region) -> RegionAttributes:
        """Outline + analyse a region into the attribute database."""
        with self.tracer.activate():
            return self.db.compile_region(region)

    # -- run time -------------------------------------------------------------
    def launch(
        self,
        region_name: str,
        env: Mapping[str, int],
        *,
        force_target: str | None = None,
        budget: Budget | None = None,
        tenant: str | None = None,
    ) -> LaunchRecord:
        """Reach a target region with runtime values and dispatch it.

        ``force_target="cpu"`` is the admission controller's degrade hook:
        the launch runs on the host immediately, skipping prediction and
        accelerator dispatch entirely (that cost is exactly what overload
        shedding exists to avoid); the record carries
        ``admission=ADMISSION_DEGRADED``.  The default ``None`` takes the
        full path and leaves the record bit-identical to a runtime without
        admission control.

        ``budget`` is this request's remaining end-to-end deadline
        budget: retry backoff and watchdog burn are charged against it
        and can never overspend it (docs/ROBUSTNESS.md).  ``None`` (the
        default) dispatches unbudgeted, bit-identically.

        ``tenant`` stamps the issuing tenant onto the record (the
        offload service's provenance hook); ``None`` — the anonymous
        single-tenant default — returns the identical record object an
        untenanted runtime would.
        """
        if force_target not in (None, "cpu"):
            raise ValueError(
                f"force_target must be None or 'cpu', got {force_target!r}"
            )
        tracer = self.tracer
        with tracer.activate(), tracer.span(
            "launch", region=region_name, policy=self.policy.name
        ) as span:
            if force_target == "cpu":
                record = self._launch_degraded(region_name, env)
            else:
                record = self._launch(region_name, env, tracer, budget)
            if tenant is not None:
                record = replace(record, tenant=tenant)
            if tracer.enabled:
                span.set("target", record.target)
                if record.fallback is not None:
                    span.set("fallback", record.fallback)
        if self.metrics is not None:
            self._core.record_metrics(
                record,
                executed_device=record.target,
                retries_labels={"device": self._accel.name},
                healths=((self._accel.name, self.health),),
                pred_triples=(
                    (
                        ("cpu", record.prediction.cpu.seconds, record.cpu_seconds),
                        ("gpu", record.prediction.gpu.seconds, record.gpu_seconds),
                    )
                    if record.prediction is not None
                    else ()
                ),
            )
        return record

    def _launch_degraded(
        self, region_name: str, env: Mapping[str, int]
    ) -> LaunchRecord:
        """The admission-degraded path: straight to the host, no models."""
        attrs = self.db.lookup(region_name)
        cpu_seconds = self._core.measure(self._host, attrs, env)
        gpu_seconds = self._core.measure(self._accel, attrs, env)
        return LaunchRecord(
            region_name=region_name,
            target="cpu",
            policy_name=self.policy.name,
            prediction=None,
            cpu_seconds=cpu_seconds,
            gpu_seconds=gpu_seconds,
            executed_seconds=cpu_seconds,
            requested_target="cpu",
            admission=ADMISSION_DEGRADED,
        )

    def _launch(
        self,
        region_name: str,
        env: Mapping[str, int],
        tracer: Tracer | NullTracer,
        budget: Budget | None = None,
    ) -> LaunchRecord:
        core = self._core
        attrs = self.db.lookup(region_name)
        bound = core.bound(attrs, env)

        cpu_seconds = core.measure(self._host, attrs, env)
        gpu_seconds = core.measure(self._accel, attrs, env)

        with tracer.span(
            "predict", region=region_name, policy=self.policy.name
        ) as pspan:
            requested, prediction = self.policy.choose(
                bound,
                self.platform,
                num_threads=self.num_threads,
                sim_cpu_seconds=cpu_seconds,
                sim_gpu_seconds=gpu_seconds,
            )
            # Self-healing selection: when the sentinel has flagged a stream,
            # the healed pick *is* the request (the raw model pick survives in
            # the drift provenance).  None while everything is CALIBRATED.
            drift_decision: DriftDecision | None = None
            if self._healer is not None and prediction is not None:
                drift_decision = self._healer.decide(
                    core.sentinel_key(region_name, env), prediction
                )
                if drift_decision is not None:
                    requested = drift_decision.target
            if tracer.enabled:
                pspan.set("requested", requested)
                if prediction is not None:
                    pspan.set("pred_cpu_s", prediction.cpu.seconds)
                    pspan.set("pred_gpu_s", prediction.gpu.seconds)
                if drift_decision is not None:
                    pspan.set("drift_mode", drift_decision.mode)
                    pspan.set("drift_cpu_state", drift_decision.cpu_state)
                    pspan.set("drift_gpu_state", drift_decision.gpu_state)
        target = requested
        fallback: str | None = None
        attempts = 0
        events: tuple[FaultEvent, ...] = ()
        overhead = 0.0
        plan: tuple[str, float] | None = None
        hedge: HedgeOutcome | None = None

        with tracer.span(
            "dispatch", region=region_name, requested=requested
        ) as dspan:
            lint_decision = core.lint_decision(attrs.region)

            self.health.breaker.on_launch()
            if (
                target == "gpu"
                and lint_decision is not None
                and lint_decision.blocked
            ):
                if lint_decision.action == "raise":
                    raise LintGateError(region_name, lint_decision.codes)
                target, fallback = "cpu", FALLBACK_LINT
            if target == "gpu":
                target, fallback = core.pre_dispatch_reroute(
                    self.health, prediction, "gpu"
                )
            if target == "gpu":
                launch_index = self._accel_launches
                plan = core.hedge_plan(
                    device_name=self._accel.name,
                    region_name=region_name,
                    env=env,
                    drift_flagged=drift_decision is not None,
                    half_open=core.half_open(self.health),
                    budget=budget,
                    predicted_gpu_s=(
                        prediction.gpu.seconds if prediction is not None else None
                    ),
                )
                result = core.attempt(
                    health=self.health,
                    device=self._accel,
                    attrs=attrs,
                    env=env,
                    launch_index=launch_index,
                    budget=budget,
                )
                self._accel_launches += 1
                attempts = result.attempts
                events = result.fault_events
                overhead = result.overhead_seconds
                if not result.ok:
                    target, fallback = "cpu", result.reason
                elif self.watchdog is not None and prediction is not None:
                    # the watchdog budgets from the (drift-healed) prediction
                    basis = prediction.gpu.seconds * (
                        drift_decision.correction_gpu
                        if drift_decision is not None
                        else 1.0
                    )
                    overrun = core.kill_overrun(
                        health=self.health,
                        device_name=self._accel.name,
                        basis_seconds=basis,
                        observed_seconds=gpu_seconds,
                        launch_index=launch_index,
                        attempt=max(attempts, 1),
                        budget=budget,
                        detail=(
                            f" (predicted {basis:.3e}s x "
                            f"{self.watchdog.factor:g} + "
                            f"{self.watchdog.slack_s:g}s)"
                        ),
                    )
                    if overrun is not None:
                        deadline_event, burned, kill_fallback = overrun
                        events = events + (deadline_event,)
                        overhead += burned
                        target, fallback = "cpu", kill_fallback
            if plan is not None:
                hedge = core.hedge_resolve(
                    plan,
                    primary_ok=(target == "gpu"),
                    primary_seconds=gpu_seconds,
                    backup_seconds=cpu_seconds,
                    overhead_seconds=overhead,
                )
                if (
                    hedge is not None
                    and hedge.winner == "backup"
                    and target == "gpu"
                ):
                    target, fallback = "cpu", FALLBACK_HEDGE
            if tracer.enabled:
                dspan.set("target", target)
                dspan.set("attempts", attempts)
                if fallback is not None:
                    dspan.set("fallback", fallback)
                if overhead:
                    dspan.set("overhead_s", overhead)
                if lint_decision is not None:
                    dspan.set("lint_action", lint_decision.action)
                if hedge is not None:
                    dspan.set("hedge_winner", hedge.winner)
                for ev in events:
                    dspan.event(
                        "fault",
                        device=ev.device_name,
                        type=ev.error_type,
                        attempt=ev.attempt,
                    )

        executed = (cpu_seconds if target == "cpu" else gpu_seconds)
        executed += overhead
        if hedge is not None:
            executed = hedge.completion_s
        core.hedge_observe(self._accel.name, region_name, env, gpu_seconds)
        if self.sentinel is not None and prediction is not None:
            # post-mortem: both sides are simulated every launch, so both
            # streams learn regardless of where the region actually ran
            core.observe_sentinel_pair(
                core.sentinel_key(region_name, env),
                prediction,
                cpu_seconds,
                gpu_seconds,
            )
        return LaunchRecord(
            region_name=region_name,
            target=target,
            policy_name=self.policy.name,
            prediction=prediction,
            cpu_seconds=cpu_seconds,
            gpu_seconds=gpu_seconds,
            executed_seconds=executed,
            requested_target=requested,
            attempts=attempts,
            fault_events=events,
            fallback=fallback,
            overhead_seconds=overhead,
            lint=lint_decision,
            drift=drift_decision,
            transfers=core.transfer_provenance(bound),
            hedge=hedge,
        )
