"""The offloading decision runtime (Figure 2, end to end).

``OffloadingRuntime`` owns the Program Attribute Database and the platform.
``compile_region`` is the compile-time half: outline, analyse, store
attributes.  ``launch`` is the runtime half: bind runtime values, ask the
policy for a target, dispatch to that device, and record everything the
experiments need (both device times are simulated so policies can be scored
against the oracle without re-running).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..analysis import ProgramAttributeDatabase, RegionAttributes
from ..ir import Region
from ..machines import Platform
from ..models import SelectionPrediction
from .device import AcceleratorDevice, ExecutionRecord, HostDevice
from .policies import ModelGuided, Policy

__all__ = ["LaunchRecord", "OffloadingRuntime"]


@dataclass(frozen=True)
class LaunchRecord:
    """Everything observed for one target-region launch."""

    region_name: str
    target: str  # device the policy chose
    policy_name: str
    prediction: SelectionPrediction | None
    cpu_seconds: float  # measured (simulated) host time
    gpu_seconds: float  # measured (simulated) device time incl. transfers
    executed_seconds: float  # time of the chosen target

    @property
    def true_speedup(self) -> float:
        """Actual GPU-offloading speedup (host / device)."""
        return self.cpu_seconds / self.gpu_seconds

    @property
    def predicted_speedup(self) -> float | None:
        return None if self.prediction is None else self.prediction.predicted_speedup

    @property
    def decision_correct(self) -> bool:
        """Did the policy match the oracle?"""
        oracle = "gpu" if self.gpu_seconds < self.cpu_seconds else "cpu"
        return self.target == oracle

    @property
    def oracle_seconds(self) -> float:
        return min(self.cpu_seconds, self.gpu_seconds)


@dataclass
class OffloadingRuntime:
    """Compile-time + run-time halves of the decision framework."""

    platform: Platform
    policy: Policy = field(default_factory=ModelGuided)
    num_threads: int | None = None  # host team size (None = all hw threads)
    db: ProgramAttributeDatabase = field(default_factory=ProgramAttributeDatabase)

    def __post_init__(self):
        self._host = HostDevice(self.platform.host, num_threads=self.num_threads)
        self._accel = AcceleratorDevice(self.platform.gpu, self.platform.bus)

    # -- compile time -------------------------------------------------------
    def compile_region(self, region: Region) -> RegionAttributes:
        """Outline + analyse a region into the attribute database."""
        return self.db.compile_region(region)

    # -- run time -------------------------------------------------------------
    def launch(self, region_name: str, env: Mapping[str, int]) -> LaunchRecord:
        """Reach a target region with runtime values and dispatch it."""
        attrs = self.db.lookup(region_name)
        bound = attrs.bind(env)

        cpu_rec: ExecutionRecord = self._host.execute(attrs.region, env)
        gpu_rec: ExecutionRecord = self._accel.execute(attrs.region, env)

        target, prediction = self.policy.choose(
            bound,
            self.platform,
            num_threads=self.num_threads,
            sim_cpu_seconds=cpu_rec.seconds,
            sim_gpu_seconds=gpu_rec.seconds,
        )
        executed = cpu_rec.seconds if target == "cpu" else gpu_rec.seconds
        return LaunchRecord(
            region_name=region_name,
            target=target,
            policy_name=self.policy.name,
            prediction=prediction,
            cpu_seconds=cpu_rec.seconds,
            gpu_seconds=gpu_rec.seconds,
            executed_seconds=executed,
        )
