"""The offloading decision runtime (Figure 2, end to end).

``OffloadingRuntime`` owns the Program Attribute Database and the platform.
``compile_region`` is the compile-time half: outline, analyse, store
attributes.  ``launch`` is the runtime half: bind runtime values, ask the
policy for a target, dispatch to that device, and record everything the
experiments need (both device times are simulated so policies can be scored
against the oracle without re-running).

Dispatch is resilient (docs/ROBUSTNESS.md): an optional
:class:`~repro.faults.FaultInjector` makes accelerator attempts fail, and
the runtime answers with bounded retry + exponential backoff (on a
simulated clock), automatic host fallback, a per-device circuit breaker
and a :class:`~repro.faults.DeviceHealth` penalty that steers the
model-guided selector away from a flaky card.  With no injector the fast
path is taken and every record is bit-identical to the pre-fault-tolerance
runtime.

Dispatch is also *gated* (docs/LINT.md): an optional
:class:`~repro.lint.LintGate` refuses to offload regions whose parallel
band carries race-severity lint findings — raising, forcing the host, or
merely recording, per its mode.  Lint-clean regions leave no trace in the
record (``lint=None``), so they too stay bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from ..analysis import ProgramAttributeDatabase, RegionAttributes
from ..faults import (
    DeviceHealth,
    FaultEvent,
    FaultInjector,
    RetryPolicy,
    SimulatedClock,
    dispatch_with_retries,
    region_footprint_bytes,
)
from ..faults.resilient import FALLBACK_BREAKER, FALLBACK_HEALTH
from ..ir import Region
from ..lint.gate import FALLBACK_LINT, GateDecision, LintGate, LintGateError
from ..machines import Platform
from ..models import SelectionPrediction
from .device import AcceleratorDevice, ExecutionRecord, HostDevice
from .policies import ModelGuided, Policy

__all__ = ["LaunchRecord", "OffloadingRuntime"]


@dataclass(frozen=True)
class LaunchRecord:
    """Everything observed for one target-region launch.

    The trailing fields are fault-tolerance provenance; their defaults
    describe an untroubled launch, so fault-free runs produce records
    identical to the pre-resilience runtime.
    """

    region_name: str
    target: str  # device the launch actually executed on
    policy_name: str
    prediction: SelectionPrediction | None
    cpu_seconds: float  # measured (simulated) host time
    gpu_seconds: float  # measured (simulated) device time incl. transfers
    executed_seconds: float  # time of the chosen target (incl. retry backoff)
    requested_target: str | None = None  # policy's pick before rerouting
    attempts: int = 0  # accelerator dispatch attempts (0 = never tried)
    fault_events: tuple[FaultEvent, ...] = ()
    fallback: str | None = None  # why the launch left the requested target
    overhead_seconds: float = 0.0  # simulated retry backoff
    lint: GateDecision | None = None  # gate verdict (None = clean or no gate)

    @property
    def true_speedup(self) -> float:
        """Actual GPU-offloading speedup (host / device).

        NaN when the device time is zero or non-finite (a failed launch
        measures no useful device time) so experiment tables degrade to
        "nan" instead of raising ZeroDivisionError or propagating inf.
        """
        if self.gpu_seconds <= 0.0 or not (
            math.isfinite(self.gpu_seconds) and math.isfinite(self.cpu_seconds)
        ):
            return math.nan
        return self.cpu_seconds / self.gpu_seconds

    @property
    def predicted_speedup(self) -> float | None:
        if self.prediction is None:
            return None
        cpu, gpu = self.prediction.cpu.seconds, self.prediction.gpu.seconds
        if gpu <= 0.0 or not (math.isfinite(gpu) and math.isfinite(cpu)):
            return math.nan
        return cpu / gpu

    @property
    def decision_correct(self) -> bool:
        """Did the policy match the oracle?"""
        oracle = "gpu" if self.gpu_seconds < self.cpu_seconds else "cpu"
        return self.target == oracle

    @property
    def oracle_seconds(self) -> float:
        return min(self.cpu_seconds, self.gpu_seconds)

    @property
    def fell_back(self) -> bool:
        """Did resilience reroute this launch off the requested target?"""
        return self.fallback is not None

    @property
    def faulted(self) -> bool:
        return bool(self.fault_events)


@dataclass
class OffloadingRuntime:
    """Compile-time + run-time halves of the decision framework."""

    platform: Platform
    policy: Policy = field(default_factory=ModelGuided)
    num_threads: int | None = None  # host team size (None = all hw threads)
    db: ProgramAttributeDatabase = field(default_factory=ProgramAttributeDatabase)
    injector: FaultInjector | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    apply_health_penalty: bool = True
    lint_gate: LintGate | None = None

    def __post_init__(self):
        self._host = HostDevice(self.platform.host, num_threads=self.num_threads)
        self._accel = AcceleratorDevice(self.platform.gpu, self.platform.bus)
        self.clock = SimulatedClock()
        self.health = DeviceHealth(self._accel.name)
        self._accel_launches = 0  # per-device dispatch ordinal for the injector

    # -- compile time -------------------------------------------------------
    def compile_region(self, region: Region) -> RegionAttributes:
        """Outline + analyse a region into the attribute database."""
        return self.db.compile_region(region)

    # -- run time -------------------------------------------------------------
    def launch(self, region_name: str, env: Mapping[str, int]) -> LaunchRecord:
        """Reach a target region with runtime values and dispatch it."""
        attrs = self.db.lookup(region_name)
        bound = attrs.bind(env)

        cpu_rec: ExecutionRecord = self._host.execute(attrs.region, env)
        gpu_rec: ExecutionRecord = self._accel.execute(attrs.region, env)

        requested, prediction = self.policy.choose(
            bound,
            self.platform,
            num_threads=self.num_threads,
            sim_cpu_seconds=cpu_rec.seconds,
            sim_gpu_seconds=gpu_rec.seconds,
        )
        target = requested
        fallback: str | None = None
        attempts = 0
        events: tuple[FaultEvent, ...] = ()
        overhead = 0.0

        lint_decision = (
            self.lint_gate.decide(attrs.region) if self.lint_gate else None
        )

        self.health.breaker.on_launch()
        if target == "gpu" and lint_decision is not None and lint_decision.blocked:
            if lint_decision.action == "raise":
                raise LintGateError(region_name, lint_decision.codes)
            target, fallback = "cpu", FALLBACK_LINT
        if target == "gpu":
            target, fallback = self._pre_dispatch_reroute(prediction)
        if target == "gpu":
            result = dispatch_with_retries(
                injector=self.injector,
                retry=self.retry,
                clock=self.clock,
                health=self.health,
                device_name=self._accel.name,
                launch_index=self._accel_launches,
                footprint_bytes=region_footprint_bytes(attrs.region, env),
                memory_bytes=int(self._accel.gpu.mem_size_gib * 2**30),
            )
            self._accel_launches += 1
            attempts = result.attempts
            events = result.fault_events
            overhead = result.overhead_seconds
            if not result.ok:
                target, fallback = "cpu", result.reason

        executed = (cpu_rec.seconds if target == "cpu" else gpu_rec.seconds)
        executed += overhead
        return LaunchRecord(
            region_name=region_name,
            target=target,
            policy_name=self.policy.name,
            prediction=prediction,
            cpu_seconds=cpu_rec.seconds,
            gpu_seconds=gpu_rec.seconds,
            executed_seconds=executed,
            requested_target=requested,
            attempts=attempts,
            fault_events=events,
            fallback=fallback,
            overhead_seconds=overhead,
            lint=lint_decision,
        )

    def _pre_dispatch_reroute(
        self, prediction: SelectionPrediction | None
    ) -> tuple[str, str | None]:
        """Health feedback: skip an open-breaker device, penalize a flaky one."""
        if not self.health.breaker.allows():
            return "cpu", FALLBACK_BREAKER
        if self.apply_health_penalty and prediction is not None:
            penalty = self.health.penalty()
            if (
                penalty > 1.0
                and prediction.gpu.seconds * penalty >= prediction.cpu.seconds
            ):
                return "cpu", FALLBACK_HEALTH
        return "gpu", None
