"""Multi-accelerator target selection.

Section II.A: "If the programming model allows it, the host may elect to
schedule kernel execution either on the host itself or any of the
available accelerators."  This module generalizes the binary CPU/GPU
decision to a host plus any number of attached accelerators (Figure 1's
topology): the models are evaluated once per candidate device and the
lowest prediction wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..analysis import ProgramAttributeDatabase
from ..calibrate import fit_model_calibration
from ..ir import Region
from ..machines import AcceleratorSlot, Platform
from ..models import SelectionPrediction, predict_both
from .device import AcceleratorDevice, HostDevice

__all__ = ["DeviceOutcome", "MultiLaunchRecord", "MultiDeviceRuntime"]


@dataclass(frozen=True)
class DeviceOutcome:
    """Prediction + measurement for one candidate device."""

    device_name: str
    kind: str  # "cpu" | "gpu"
    predicted_seconds: float
    measured_seconds: float


@dataclass(frozen=True)
class MultiLaunchRecord:
    """Everything observed for one launch across all candidate devices."""

    region_name: str
    outcomes: tuple[DeviceOutcome, ...]
    chosen: str  # device name the models selected

    @property
    def chosen_outcome(self) -> DeviceOutcome:
        for o in self.outcomes:
            if o.device_name == self.chosen:
                return o
        raise KeyError(self.chosen)  # pragma: no cover - construction invariant

    @property
    def oracle_name(self) -> str:
        return min(self.outcomes, key=lambda o: o.measured_seconds).device_name

    @property
    def decision_correct(self) -> bool:
        return self.chosen == self.oracle_name

    @property
    def executed_seconds(self) -> float:
        return self.chosen_outcome.measured_seconds


@dataclass
class MultiDeviceRuntime:
    """An offloading runtime choosing among host + N accelerators."""

    platform: Platform
    num_threads: int | None = None
    db: ProgramAttributeDatabase = field(default_factory=ProgramAttributeDatabase)

    def __post_init__(self):
        if not self.platform.accelerators:
            raise ValueError("MultiDeviceRuntime needs at least one accelerator")
        self._host = HostDevice(self.platform.host, num_threads=self.num_threads)
        self._accels = [
            AcceleratorDevice(slot.gpu, slot.bus)
            for slot in self.platform.accelerators
        ]
        self._calibrations: dict[str, object] = {}

    def compile_region(self, region: Region):
        return self.db.compile_region(region)

    def _slot_prediction(
        self, bound, slot: AcceleratorSlot
    ) -> SelectionPrediction:
        """Evaluate the models for one accelerator slot."""
        view = Platform(
            name=f"{self.platform.host.name}+{slot.gpu.name}",
            host=self.platform.host,
            accelerators=(slot,),
        )
        if view.name not in self._calibrations:
            self._calibrations[view.name] = fit_model_calibration(
                view, num_threads=self.num_threads
            )
        return predict_both(
            bound,
            view,
            num_threads=self.num_threads,
            calibration=self._calibrations[view.name],
        )

    def launch(self, region_name: str, env: Mapping[str, int]) -> MultiLaunchRecord:
        """Predict every candidate device, dispatch to the best."""
        attrs = self.db.lookup(region_name)
        bound = attrs.bind(env)

        outcomes: list[DeviceOutcome] = []
        host_rec = self._host.execute(attrs.region, env)
        host_pred = None
        for slot, dev in zip(self.platform.accelerators, self._accels):
            pred = self._slot_prediction(bound, slot)
            if host_pred is None:
                host_pred = pred.cpu.seconds
                outcomes.append(
                    DeviceOutcome(
                        device_name=self._host.name,
                        kind="cpu",
                        predicted_seconds=pred.cpu.seconds,
                        measured_seconds=host_rec.seconds,
                    )
                )
            measured = dev.execute(attrs.region, env)
            outcomes.append(
                DeviceOutcome(
                    device_name=dev.name,
                    kind="gpu",
                    predicted_seconds=pred.gpu.seconds,
                    measured_seconds=measured.seconds,
                )
            )
        chosen = min(outcomes, key=lambda o: o.predicted_seconds).device_name
        return MultiLaunchRecord(
            region_name=region_name,
            outcomes=tuple(outcomes),
            chosen=chosen,
        )
