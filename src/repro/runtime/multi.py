"""Multi-accelerator target selection.

Section II.A: "If the programming model allows it, the host may elect to
schedule kernel execution either on the host itself or any of the
available accelerators."  This module generalizes the binary CPU/GPU
decision to a host plus any number of attached accelerators (Figure 1's
topology): the models are evaluated once per candidate device and the
lowest prediction wins.

Selection and dispatch are health-aware (docs/ROBUSTNESS.md): each
accelerator's prediction is scaled by its :class:`DeviceHealth` penalty,
devices with an open circuit breaker are skipped outright, and a faulted
dispatch retries with backoff then falls through to the next-best
candidate (the host last, which never faults).  Without an injector and
with all devices healthy the choice is bit-identical to the plain
prediction argmin.

An optional :class:`~repro.lint.LintGate` screens regions before any
accelerator dispatch, exactly as on the single-device runtime: a region
with race-severity findings raises, runs on the host, or is merely
recorded, per the gate mode (docs/LINT.md).

Selection is also drift-aware (docs/ROBUSTNESS.md): with a
:class:`~repro.drift.DriftSentinel` attached, every device's prediction
is additionally scaled by its stream's learned correction factor once
that stream is DRIFTED, and a :class:`~repro.drift.Watchdog` deadline
(from the executed device's own prediction) kills overruns onto the host
as typed :class:`~repro.faults.DeadlineExceeded` failures.  The full
hysteresis/measured-history ladder of the two-device runtime does not
apply here — corrections fold straight into the argmin.  All streams
CALIBRATED leaves records bit-identical (``drift=None``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

from ..analysis import ProgramAttributeDatabase
from ..calibrate import fit_model_calibration
from ..drift import DriftSentinel, DriftState, Watchdog
from ..faults import (
    DeviceHealth,
    FaultEvent,
    FaultInjector,
    RetryPolicy,
    SimulatedClock,
)
from ..faults.resilient import FALLBACK_BREAKER
from ..ir import Region
from ..lint.gate import FALLBACK_LINT, GateDecision, LintGate, LintGateError
from ..machines import AcceleratorSlot, Platform
from ..models import SelectionPrediction, predict_both
from ..obs import NULL_TRACER, MetricsRegistry, NullTracer, Tracer
from .device import AcceleratorDevice, HostDevice
from .dispatch import (
    FALLBACK_BULKHEAD,
    FALLBACK_HEDGE,
    Budget,
    Bulkhead,
    DispatchCore,
    HedgeOutcome,
    HedgePolicy,
)
from .framework import ADMISSION_DEGRADED
from .memo import ExecutionMemo

__all__ = ["DeviceOutcome", "MultiLaunchRecord", "MultiDeviceRuntime"]


@dataclass(frozen=True)
class DeviceOutcome:
    """Prediction + measurement for one candidate device."""

    device_name: str
    kind: str  # "cpu" | "gpu"
    predicted_seconds: float
    measured_seconds: float


@dataclass(frozen=True)
class MultiLaunchRecord:
    """Everything observed for one launch across all candidate devices.

    The trailing fields are fault-tolerance provenance with untroubled
    defaults, as on :class:`~repro.runtime.LaunchRecord`.
    """

    region_name: str
    outcomes: tuple[DeviceOutcome, ...]
    chosen: str  # device name the (health-aware) models selected
    executed_device: str | None = None  # device that ran it (None = chosen)
    attempts: int = 0  # accelerator dispatch attempts across all devices
    fault_events: tuple[FaultEvent, ...] = ()
    fallback: str | None = None  # why the launch left the chosen device
    overhead_seconds: float = 0.0  # simulated retry backoff
    lint: GateDecision | None = None  # gate verdict (None = clean or no gate)
    #: (device_name, drift-state) pairs for streams not CALIBRATED
    drift: tuple[tuple[str, str], ...] | None = None
    admission: str | None = None  # admission-control provenance (None = full path)
    transfers: str | None = None  # transfer sizing source (None = declared map)
    hedge: HedgeOutcome | None = None  # hedged-launch provenance (None = no backup)
    tenant: str | None = None  # issuing tenant (None = anonymous/single-tenant)

    def outcome_of(self, device_name: str) -> DeviceOutcome:
        for o in self.outcomes:
            if o.device_name == device_name:
                return o
        raise KeyError(device_name)

    @property
    def chosen_outcome(self) -> DeviceOutcome:
        return self.outcome_of(self.chosen)

    @property
    def executed_outcome(self) -> DeviceOutcome:
        return self.outcome_of(self.executed_device or self.chosen)

    @property
    def oracle_name(self) -> str:
        return min(self.outcomes, key=lambda o: o.measured_seconds).device_name

    @property
    def decision_correct(self) -> bool:
        return self.chosen == self.oracle_name

    @property
    def executed_seconds(self) -> float:
        if self.hedge is not None:
            return self.hedge.completion_s
        return self.executed_outcome.measured_seconds + self.overhead_seconds

    @property
    def fell_back(self) -> bool:
        return self.fallback is not None


@dataclass
class MultiDeviceRuntime:
    """An offloading runtime choosing among host + N accelerators."""

    platform: Platform
    num_threads: int | None = None
    db: ProgramAttributeDatabase = field(default_factory=ProgramAttributeDatabase)
    injector: FaultInjector | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    apply_health_penalty: bool = True
    lint_gate: LintGate | None = None
    sentinel: DriftSentinel | None = None
    watchdog: Watchdog | None = None
    health_decay_halflife_s: float | None = None  # simulated-time penalty decay
    tracer: Tracer | NullTracer = NULL_TRACER  # off by default (records nothing)
    metrics: MetricsRegistry | None = None
    #: optional per-(region, env) cache of the deterministic launch inputs
    #: (see OffloadingRuntime.memo) — bit-identical records, 10⁵-launch speed
    memo: ExecutionMemo | None = None
    #: optional chaos hook: kind ("cpu"/"gpu") -> simulated-time multiplier
    time_dilation: Callable[[str], float] | None = None
    #: key drift-sentinel streams by (region, env) instead of region alone,
    #: so mixed dataset sizes never conflate into one residual stream.  Off
    #: by default (the historical keying the drift experiment pins).
    sentinel_stream_by_env: bool = False
    #: optional per-device bounded scheduled-work slots; saturated
    #: accelerators are skipped in the dispatch chain (FALLBACK_BULKHEAD).
    bulkheads: Bulkhead | None = None
    #: optional speculative host-backup policy (docs/ROBUSTNESS.md)
    hedge: HedgePolicy | None = None

    def __post_init__(self):
        if not self.platform.accelerators:
            raise ValueError("MultiDeviceRuntime needs at least one accelerator")
        self._host = HostDevice(self.platform.host, num_threads=self.num_threads)
        self._accels = [
            AcceleratorDevice(slot.gpu, slot.bus)
            for slot in self.platform.accelerators
        ]
        self._calibrations: dict[str, object] = {}
        self.clock = SimulatedClock()
        self.health = {
            dev.name: DeviceHealth(
                dev.name,
                clock=self.clock,
                decay_halflife_s=self.health_decay_halflife_s,
            )
            for dev in self._accels
        }
        self._accel_launches = {dev.name: 0 for dev in self._accels}
        if self.tracer.enabled and self.tracer.clock is None:
            self.tracer.clock = self.clock  # span timestamps follow this runtime
        if self.sentinel is not None and self.sentinel.clock is None:
            self.sentinel.clock = self.clock  # drift transitions get timestamps
        self._core = DispatchCore(self)

    def compile_region(self, region: Region):
        with self.tracer.activate():
            return self.db.compile_region(region)

    def _slot_prediction(
        self, bound, slot: AcceleratorSlot
    ) -> SelectionPrediction:
        """Evaluate the models for one accelerator slot."""
        view = Platform(
            name=f"{self.platform.host.name}+{slot.gpu.name}",
            host=self.platform.host,
            accelerators=(slot,),
        )
        if view.name not in self._calibrations:
            self._calibrations[view.name] = fit_model_calibration(
                view, num_threads=self.num_threads
            )
        return predict_both(
            bound,
            view,
            num_threads=self.num_threads,
            calibration=self._calibrations[view.name],
        )

    def _effective_predicted(
        self, outcome: DeviceOutcome, region_name: str | None = None
    ) -> float:
        """Predicted seconds scaled by health penalty and drift correction."""
        predicted = outcome.predicted_seconds
        if self.sentinel is not None and region_name is not None:
            # 1.0 unless this device's stream is DRIFTED
            predicted *= self.sentinel.correction(outcome.device_name, region_name)
        if outcome.kind == "cpu" or not self.apply_health_penalty:
            return predicted
        return predicted * self.health[outcome.device_name].penalty()

    def _observe_outcomes(
        self, region_name: str, outcomes: list[DeviceOutcome]
    ) -> tuple[tuple[str, str], ...] | None:
        """Feed the sentinel post-launch; return the drift provenance."""
        if self.sentinel is None:
            return None
        for o in outcomes:
            self.sentinel.observe(
                o.device_name, region_name, o.predicted_seconds, o.measured_seconds
            )
        flagged = tuple(
            (o.device_name, self.sentinel.state(o.device_name, region_name).value)
            for o in outcomes
            if self.sentinel.state(o.device_name, region_name)
            is not DriftState.CALIBRATED
        )
        return flagged or None

    def _dispatch(
        self,
        region: Region,
        env: Mapping[str, int],
        candidates: list[DeviceOutcome],
        budget: Budget | None = None,
    ) -> tuple[str, int, tuple[FaultEvent, ...], float, str | None]:
        """Try candidates in order; the host (never faults) ends the chain."""
        attempts = 0
        events: list[FaultEvent] = []
        overhead = 0.0
        reason: str | None = None
        attrs = self.db.lookup(region.name)
        core = self._core
        for cand in candidates:
            if cand.kind == "cpu":
                return cand.device_name, attempts, tuple(events), overhead, reason
            health = self.health[cand.device_name]
            if not health.breaker.allows():
                reason = FALLBACK_BREAKER
                continue
            if core.bulkhead_blocks(cand.device_name):
                reason = FALLBACK_BULKHEAD
                continue
            index = self._accel_launches[cand.device_name]
            self._accel_launches[cand.device_name] += 1
            gpu = next(d for d in self._accels if d.name == cand.device_name)
            result = core.attempt(
                health=health,
                device=gpu,
                attrs=attrs,
                env=env,
                launch_index=index,
                budget=budget,
            )
            attempts += result.attempts
            events.extend(result.fault_events)
            overhead += result.overhead_seconds
            if result.ok:
                return cand.device_name, attempts, tuple(events), overhead, reason
            reason = result.reason
        raise AssertionError("host candidate must terminate the chain")

    def _launch_degraded(
        self, region_name: str, env: Mapping[str, int]
    ) -> MultiLaunchRecord:
        """The admission-degraded path: straight to the host, no models."""
        attrs = self.db.lookup(region_name)
        host_seconds = self._core.measure(self._host, attrs, env)
        outcome = DeviceOutcome(
            device_name=self._host.name,
            kind="cpu",
            predicted_seconds=math.nan,
            measured_seconds=host_seconds,
        )
        return MultiLaunchRecord(
            region_name=region_name,
            outcomes=(outcome,),
            chosen=self._host.name,
            admission=ADMISSION_DEGRADED,
        )

    def launch(
        self,
        region_name: str,
        env: Mapping[str, int],
        *,
        force_target: str | None = None,
        budget: Budget | None = None,
        tenant: str | None = None,
    ) -> MultiLaunchRecord:
        """Predict every candidate device, dispatch to the best that works.

        ``force_target="cpu"`` is the admission controller's degrade hook,
        exactly as on :class:`~repro.runtime.OffloadingRuntime`: the host
        runs the region immediately, no models are evaluated, and the
        record carries ``admission=ADMISSION_DEGRADED``.
        """
        if force_target not in (None, "cpu"):
            raise ValueError(
                f"force_target must be None or 'cpu', got {force_target!r}"
            )
        tracer = self.tracer
        with tracer.activate(), tracer.span(
            "launch", region=region_name, devices=1 + len(self._accels)
        ) as span:
            if force_target == "cpu":
                record = self._launch_degraded(region_name, env)
            else:
                record = self._launch(region_name, env, tracer, budget)
            if tenant is not None:
                record = replace(record, tenant=tenant)
            if tracer.enabled:
                span.set("chosen", record.chosen)
                span.set("executed", record.executed_device or record.chosen)
                if record.fallback is not None:
                    span.set("fallback", record.fallback)
        if self.metrics is not None:
            self._core.record_metrics(
                record,
                executed_device=record.executed_device or record.chosen,
                retries_labels={},
                healths=self.health.items(),
                pred_triples=[
                    (o.device_name, o.predicted_seconds, o.measured_seconds)
                    for o in record.outcomes
                ],
            )
        return record

    def _launch(
        self,
        region_name: str,
        env: Mapping[str, int],
        tracer: Tracer | NullTracer,
        budget: Budget | None = None,
    ) -> MultiLaunchRecord:
        core = self._core
        attrs = self.db.lookup(region_name)
        skey = core.sentinel_key(region_name, env)
        bound = core.bound(attrs, env)

        outcomes: list[DeviceOutcome] = []
        host_seconds = core.measure(self._host, attrs, env)
        host_pred = None
        for slot, dev in zip(self.platform.accelerators, self._accels):
            with tracer.span(
                "predict", region=region_name, device=dev.name
            ) as pspan:
                pred = self._slot_prediction(bound, slot)
                if tracer.enabled:
                    pspan.set("pred_cpu_s", pred.cpu.seconds)
                    pspan.set("pred_gpu_s", pred.gpu.seconds)
            if host_pred is None:
                host_pred = pred.cpu.seconds
                outcomes.append(
                    DeviceOutcome(
                        device_name=self._host.name,
                        kind="cpu",
                        predicted_seconds=pred.cpu.seconds,
                        measured_seconds=host_seconds,
                    )
                )
            outcomes.append(
                DeviceOutcome(
                    device_name=dev.name,
                    kind="gpu",
                    predicted_seconds=pred.gpu.seconds,
                    measured_seconds=core.measure(dev, attrs, env),
                )
            )

        for health in self.health.values():
            health.breaker.on_launch()

        # Health- and drift-aware selection: penalized (and, for DRIFTED
        # streams, corrected) predictions, open breakers skipped (the host
        # is always a candidate so the pool is never empty).  Fault-free
        # and fully calibrated this is the plain prediction argmin.
        def effective(o: DeviceOutcome) -> float:
            return self._effective_predicted(o, skey)

        selectable = [
            o
            for o in outcomes
            if o.kind == "cpu" or self.health[o.device_name].breaker.allows()
        ]
        chosen = min(selectable, key=effective).device_name

        # Pre-dispatch lint gate: a region with blocking findings never
        # reaches an accelerator (the host runs it instead), and the
        # verdict lands in the record next to the fault provenance.
        with tracer.span(
            "dispatch", region=region_name, chosen=chosen
        ) as dspan:
            lint_decision = (
                self.lint_gate.decide(attrs.region) if self.lint_gate else None
            )
            if (
                lint_decision is not None
                and lint_decision.blocked
                and self.outcome_by_name(outcomes, chosen).kind == "gpu"
            ):
                if lint_decision.action == "raise":
                    raise LintGateError(region_name, lint_decision.codes)
                host = next(o for o in outcomes if o.kind == "cpu")
                if tracer.enabled:
                    dspan.set("executed", host.device_name)
                    dspan.set("fallback", FALLBACK_LINT)
                return MultiLaunchRecord(
                    region_name=region_name,
                    outcomes=tuple(outcomes),
                    chosen=chosen,
                    executed_device=host.device_name,
                    fallback=FALLBACK_LINT,
                    lint=lint_decision,
                    drift=self._observe_outcomes(skey, outcomes),
                    transfers=core.transfer_provenance(bound),
                )

            # Speculative host backup (docs/ROBUSTNESS.md): armed only when
            # the chosen device is an accelerator whose prediction confidence
            # is low — drift-flagged stream, half-open breaker, or a budget
            # too poor to absorb another retry loop.
            chosen_outcome = self.outcome_by_name(outcomes, chosen)
            plan = None
            if chosen_outcome.kind == "gpu":
                plan = core.hedge_plan(
                    device_name=chosen,
                    region_name=region_name,
                    env=env,
                    drift_flagged=(
                        self.sentinel is not None
                        and self.sentinel.state(chosen, skey)
                        is not DriftState.CALIBRATED
                    ),
                    half_open=core.half_open(self.health[chosen]),
                    budget=budget,
                    predicted_gpu_s=chosen_outcome.predicted_seconds,
                )

            # Dispatch order: chosen first, then the remaining candidates by
            # effective prediction; the host terminates the chain.
            ranked = sorted(outcomes, key=effective)
            order = [chosen_outcome]
            order += [
                o for o in ranked if o.device_name != chosen and o.kind == "gpu"
            ]
            order += [o for o in ranked if o.kind == "cpu"]
            executed, attempts, events, overhead, reason = self._dispatch(
                attrs.region, env, order, budget
            )

            # Watchdog: the executed accelerator's own (corrected) prediction
            # bounds how long the runtime lets it run; an overrun is killed at
            # the deadline (tightened to any remaining budget) and the region
            # reruns on the host.
            fallback = reason if executed != chosen else None
            executed_outcome = self.outcome_by_name(outcomes, executed)
            if (
                self.watchdog is not None
                and executed_outcome.kind == "gpu"
            ):
                predicted = executed_outcome.predicted_seconds
                if self.sentinel is not None:
                    predicted *= self.sentinel.correction(executed, skey)
                killed = core.kill_overrun(
                    health=self.health[executed],
                    device_name=executed,
                    basis_seconds=predicted,
                    observed_seconds=executed_outcome.measured_seconds,
                    launch_index=self._accel_launches[executed] - 1,
                    attempt=max(attempts, 1),
                    budget=budget,
                )
                if killed is not None:
                    event, burned, fallback = killed
                    events = events + (event,)
                    overhead += burned
                    executed = self._host.name

            # Resolve the armed backup against whatever the chain produced.
            # The race is only well-defined against the chosen primary (ok)
            # or the serial host fallback (primary dead); a reroute onto a
            # *different* accelerator leaves the hedge unresolved (None).
            hedge: HedgeOutcome | None = None
            if plan is not None:
                host = next(o for o in outcomes if o.kind == "cpu")
                if executed == chosen:
                    hedge = core.hedge_resolve(
                        plan,
                        primary_ok=True,
                        primary_seconds=executed_outcome.measured_seconds,
                        backup_seconds=host.measured_seconds,
                        overhead_seconds=overhead,
                    )
                    if hedge is not None and hedge.winner == "backup":
                        executed = host.device_name
                        fallback = FALLBACK_HEDGE
                elif executed == host.device_name:
                    hedge = core.hedge_resolve(
                        plan,
                        primary_ok=False,
                        primary_seconds=0.0,
                        backup_seconds=host.measured_seconds,
                        overhead_seconds=overhead,
                    )
            for o in outcomes:
                if o.kind == "gpu":
                    core.hedge_observe(
                        o.device_name, region_name, env, o.measured_seconds
                    )

            if tracer.enabled:
                dspan.set("executed", executed)
                dspan.set("attempts", attempts)
                if fallback is not None:
                    dspan.set("fallback", fallback)
                if hedge is not None:
                    dspan.set("hedge_winner", hedge.winner)
                for ev in events:
                    dspan.event(
                        "fault",
                        device=ev.device_name,
                        type=ev.error_type,
                        attempt=ev.attempt,
                    )
            return MultiLaunchRecord(
                region_name=region_name,
                outcomes=tuple(outcomes),
                chosen=chosen,
                executed_device=executed,
                attempts=attempts,
                fault_events=events,
                fallback=fallback,
                overhead_seconds=overhead,
                lint=lint_decision,
                drift=self._observe_outcomes(skey, outcomes),
                transfers=core.transfer_provenance(bound),
                hedge=hedge,
            )

    @staticmethod
    def outcome_by_name(
        outcomes: list[DeviceOutcome], name: str
    ) -> DeviceOutcome:
        for o in outcomes:
            if o.device_name == name:
                return o
        raise KeyError(name)  # pragma: no cover - construction invariant
