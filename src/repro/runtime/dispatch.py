"""The unified dispatch core both offloading runtimes parameterize.

Both :class:`~repro.runtime.OffloadingRuntime` (host + one accelerator)
and :class:`~repro.runtime.MultiDeviceRuntime` (host + N accelerators)
run the same pipeline per launch::

    predict -> lint-gate -> select -> admit -> resilient-launch
            -> record / drift / metrics

Before this module each runtime carried its own copy of every stage, and
every robustness subsystem (faults, lint, drift, obs, replay) had to be
wired twice.  :class:`DispatchCore` owns the shared stages; the runtimes
keep only their genuinely different selection logic (a binary policy
choice vs. an N-way health-corrected argmin).  The core reads its
collaborators (``injector``, ``lint_gate``, ``sentinel``, ``watchdog``,
``metrics``, ``memo``, ``time_dilation``, ``bulkheads``, ``hedge``)
*dynamically* off the owning runtime — the replay engine assigns the
injector and the chaos dilation hook after runtime construction, so the
core must never snapshot them.

Three robustness mechanisms the duplication previously blocked live
here (docs/ROBUSTNESS.md):

* :class:`Budget` — a per-request end-to-end deadline on the simulated
  clock.  Threaded through retry backoff
  (:func:`~repro.faults.dispatch_with_retries`), watchdog deadlines
  (the tighter of watchdog and remaining budget kills the launch) and
  the replay engine's admission wait, so queueing + retries can never
  spend more than the request has left.  Exhaustion is a typed
  :class:`~repro.faults.BudgetExhausted` feeding the health/breaker
  machinery.
* :class:`HedgePolicy` — speculative host backups.  When predictor
  confidence is low (drift-flagged stream, circuit half-open) or the
  remaining budget is tight, a host backup starts after a
  quantile-derived delay; the first finisher on the simulated clock
  wins, the loser is cancelled, and the duplicated work is attributed
  honestly (:class:`HedgeOutcome` provenance on the record, metrics).
* :class:`Bulkhead` — bounded scheduled-work slots per device, so one
  browned-out card's ballooning service times cannot monopolize
  dispatch: saturated devices are skipped pre-dispatch
  (:data:`FALLBACK_BULKHEAD`) and the work reroutes.

All three default **off** (``None`` on the runtime); disabled, every
record is bit-identical to the pre-core runtimes — the differential
suite in ``tests/test_dispatch.py`` pins this.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

from ..faults import (
    BudgetExhausted,
    DeadlineExceeded,
    FaultEvent,
    dispatch_with_retries,
    region_footprint_bytes,
)
from ..faults.health import BreakerState
from ..faults.resilient import FALLBACK_BREAKER, FALLBACK_BUDGET, FALLBACK_DEADLINE, FALLBACK_HEALTH
from ..obs import QuantileSketch

__all__ = [
    "FALLBACK_BULKHEAD",
    "FALLBACK_HEDGE",
    "Budget",
    "Bulkhead",
    "HedgeOutcome",
    "HedgePolicy",
    "DispatchCore",
]

#: A device whose bulkhead slots were all booked rerouted this launch.
FALLBACK_BULKHEAD = "bulkhead-saturated"
#: The speculative host backup finished before the accelerator primary.
FALLBACK_HEDGE = "hedge-backup-won"


@dataclass
class Budget:
    """A per-request end-to-end deadline budget on the simulated clock.

    ``total_s`` is all the simulated time this request may spend on
    *avoidable* waiting: admission-queue wait, retry backoff and
    watchdog/deadline burn are charged; productive device service time
    is not (the request has to run *somewhere*).  ``remaining()`` never
    goes negative — ``spent_s`` keeps the honest total (it may exceed
    ``total_s`` by the final unavoidable burn) while the floor is
    clamped, a property the budget property tests pin.
    """

    total_s: float
    spent_s: float = 0.0

    def __post_init__(self):
        if not (math.isfinite(self.total_s) and self.total_s > 0.0):
            raise ValueError(f"budget total_s must be finite and > 0, got {self.total_s!r}")
        if self.spent_s < 0.0:
            raise ValueError("spent_s must be >= 0")

    def remaining(self) -> float:
        return max(self.total_s - self.spent_s, 0.0)

    @property
    def exhausted(self) -> bool:
        return self.spent_s >= self.total_s

    def charge(self, seconds: float) -> float:
        """Spend ``seconds``; return what is left.  Refunds are a bug."""
        if not (math.isfinite(seconds) and seconds >= 0.0):
            raise ValueError(f"cannot charge {seconds!r}s against a budget")
        self.spent_s += seconds
        return self.remaining()


class Bulkhead:
    """Bounded scheduled-but-unfinished work slots per device.

    The replay engine books every served launch as ``(device, finish
    time)``; a device whose unfinished bookings at the current simulated
    time have reached ``limit`` refuses new dispatches, which the core
    turns into a :data:`FALLBACK_BULKHEAD` reroute.  Bookings may finish
    **out of order** — the offload service schedules several servers and
    overlapped transfer phases per device, so a later booking can finish
    before an earlier one — and :meth:`pending` drains every finished
    booking, not just a sorted prefix (a stale early entry behind a late
    one would otherwise read as phantom load and pin the bulkhead
    saturated forever).  The point is isolation:
    a brownout that balloons one device's service times saturates *its*
    slots only, and traffic keeps flowing through the other backend
    instead of queueing behind the sick one.
    """

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError(f"bulkhead limit must be >= 1, got {limit}")
        self.limit = limit
        self._pending: dict[str, deque[float]] = {}
        self.max_pending: dict[str, int] = {}
        self.rejections: dict[str, int] = {}

    def pending(self, device_name: str, now: float) -> int:
        """Bookings for ``device_name`` still unfinished at ``now``."""
        q = self._pending.get(device_name)
        if q is None:
            return 0
        while q and q[0] <= now:
            q.popleft()
        # multi-server bookings are not sorted: sweep out any finished
        # entry a still-running earlier booking is hiding behind
        if q and any(t <= now for t in q):
            live = [t for t in q if t > now]
            q.clear()
            q.extend(live)
        return len(q)

    def allows(self, device_name: str, now: float) -> bool:
        return self.pending(device_name, now) < self.limit

    def reject(self, device_name: str) -> None:
        """Account one saturated-reroute (called by the core)."""
        self.rejections[device_name] = self.rejections.get(device_name, 0) + 1

    def book(self, device_name: str, finish_s: float) -> None:
        q = self._pending.setdefault(device_name, deque())
        q.append(finish_s)
        if len(q) > self.max_pending.get(device_name, 0):
            self.max_pending[device_name] = len(q)

    def snapshot(self) -> dict:
        """Deterministic accounting dump for reports and gates."""
        return {
            "limit": self.limit,
            "max_pending": dict(sorted(self.max_pending.items())),
            "rejections": dict(sorted(self.rejections.items())),
        }


@dataclass(frozen=True)
class HedgeOutcome:
    """Provenance of one hedged launch (attached only when the backup ran).

    ``extra_work_s`` is the *duplicated* simulated compute hedging
    burned versus the unhedged flow: backup seconds spent while the
    primary was still alive.  A backup that merely started earlier than
    the serial fallback would have (primary already dead) duplicates
    nothing, so its extra work is zero — that case is pure latency win.
    """

    trigger: str  # "drift" | "half-open" | "low-budget" | "slow"
    delay_s: float  # backup start offset after dispatch began
    winner: str  # "primary" | "backup"
    completion_s: float  # end-to-end seconds of the winning path
    extra_work_s: float  # duplicated compute burned by the loser


@dataclass
class HedgePolicy:
    """When and how late to start a speculative host backup.

    The delay is the ``quantile`` of the *observed* accelerator seconds
    for this exact (device, region, env) case — the classic "hedge past
    the p95" rule, learned online from the same deterministic stream the
    records see, so seeded replays hedge identically.  No delay (and no
    hedge) until a case has ``min_samples`` observations.

    Triggers (any one arms the hedge for a launch):

    * ``on_drift`` — the drift sentinel flagged the stream, i.e. the
      prediction the selector just used is known-miscalibrated;
    * ``on_half_open`` — the device's breaker is probing (the previous
      launches failed; this one is a gamble);
    * a :class:`Budget` whose remaining time is under
      ``low_budget_factor`` × the predicted accelerator seconds — too
      poor to absorb another retry loop;
    * ``on_slow`` — arm *every* launch with a ready sketch (the classic
      tail-at-scale rule).  This stays cheap because an armed hedge is a
      no-op unless the primary actually outlives the delay: a launch
      finishing under its own p95 resolves to None and its record is
      byte-identical to an unhedged one, so only genuinely slow
      launches (chaos dilation, retry storms) ever pay for a backup.
    """

    quantile: float = 0.95
    min_samples: int = 8
    low_budget_factor: float = 2.0
    on_drift: bool = True
    on_half_open: bool = True
    on_slow: bool = False
    _sketches: dict[tuple[str, str], QuantileSketch] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self):
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.low_budget_factor <= 0.0:
            raise ValueError("low_budget_factor must be positive")

    def observe(self, device_name: str, case_key: str, seconds: float) -> None:
        key = (device_name, case_key)
        sketch = self._sketches.get(key)
        if sketch is None:
            sketch = self._sketches[key] = QuantileSketch()
        sketch.observe(seconds)

    def delay(self, device_name: str, case_key: str) -> float | None:
        """Quantile-derived backup delay, or None while under-sampled."""
        sketch = self._sketches.get((device_name, case_key))
        if sketch is None or sketch.count < self.min_samples:
            return None
        return sketch.quantile(self.quantile)

    def trigger(
        self,
        *,
        drift_flagged: bool,
        half_open: bool,
        budget: Budget | None,
        predicted_gpu_s: float | None,
    ) -> str | None:
        """Why this launch should hedge, or None to run it straight."""
        if self.on_drift and drift_flagged:
            return "drift"
        if self.on_half_open and half_open:
            return "half-open"
        if (
            budget is not None
            and predicted_gpu_s is not None
            and math.isfinite(predicted_gpu_s)
            and predicted_gpu_s > 0.0
            and budget.remaining() < self.low_budget_factor * predicted_gpu_s
        ):
            return "low-budget"
        if self.on_slow:
            return "slow"
        return None


class DispatchCore:
    """The shared per-launch pipeline stages, bound to one runtime.

    Holds only a reference to its owner and reads the optional
    collaborators off it at call time (the replay engine attaches the
    injector and chaos dilation *after* construction).  Stateless apart
    from the owner reference — all accounting lives on the runtime, the
    health objects and the policy objects, exactly where it lived before
    the extraction.
    """

    def __init__(self, owner):
        self.owner = owner

    # -- launch inputs ------------------------------------------------------
    def bound(self, attrs, env: Mapping[str, int]):
        """Memo-aware runtime binding of a region's attributes."""
        memo = self.owner.memo
        return memo.bound(attrs, env) if memo is not None else attrs.bind(env)

    def footprint(self, attrs, env: Mapping[str, int]) -> int:
        memo = self.owner.memo
        if memo is not None:
            return memo.footprint(attrs, env, region_footprint_bytes)
        return region_footprint_bytes(attrs.region, env)

    def measure(self, device, attrs, env: Mapping[str, int]) -> float:
        """One device's simulated seconds, memoized and dilation-scaled."""
        owner = self.owner
        if owner.memo is not None:
            seconds = owner.memo.execution(device, attrs, env).seconds
        else:
            seconds = device.execute(attrs.region, env).seconds
        if owner.time_dilation is not None:
            seconds *= owner.time_dilation(device.kind)
        return seconds

    def sentinel_key(self, region_name: str, env: Mapping[str, int]) -> str:
        """The drift-stream key for one launch (see sentinel_stream_by_env)."""
        if not self.owner.sentinel_stream_by_env:
            return region_name
        sizes = ",".join(f"{k}={env[k]}" for k in sorted(env))
        return f"{region_name}@{sizes}"

    @staticmethod
    def case_key(region_name: str, env: Mapping[str, int]) -> str:
        """The hedge-sketch key: always per (region, env), never pooled."""
        sizes = ",".join(f"{k}={env[k]}" for k in sorted(env))
        return f"{region_name}@{sizes}"

    def lint_decision(self, region):
        gate = self.owner.lint_gate
        return gate.decide(region) if gate is not None else None

    @staticmethod
    def transfer_provenance(bound) -> str | None:
        """Record a transfer source only when it deviates from the default."""
        mode = bound.transfer_mode
        return None if mode == "declared" else mode

    # -- admission ----------------------------------------------------------
    def bulkhead_blocks(self, device_name: str) -> bool:
        """Is this device's bulkhead saturated right now?  Counts rejects."""
        bulkheads = getattr(self.owner, "bulkheads", None)
        if bulkheads is None:
            return False
        if bulkheads.allows(device_name, self.owner.clock.now):
            return False
        bulkheads.reject(device_name)
        return True

    def pre_dispatch_reroute(
        self, health, prediction, bulkhead_key: str
    ) -> tuple[str, str | None]:
        """Health feedback: skip an open-breaker or saturated device,
        penalize a flaky one (the two-device runtime's gate)."""
        if not health.breaker.allows():
            return "cpu", FALLBACK_BREAKER
        if self.bulkhead_blocks(bulkhead_key):
            return "cpu", FALLBACK_BULKHEAD
        if self.owner.apply_health_penalty and prediction is not None:
            penalty = health.penalty()
            if (
                penalty > 1.0
                and prediction.gpu.seconds * penalty >= prediction.cpu.seconds
            ):
                return "cpu", FALLBACK_HEALTH
        return "gpu", None

    # -- resilient launch ---------------------------------------------------
    def attempt(
        self,
        *,
        health,
        device,
        attrs,
        env: Mapping[str, int],
        launch_index: int,
        budget: Budget | None = None,
    ):
        """One accelerator's bounded-retry dispatch under the fault plan."""
        owner = self.owner
        return dispatch_with_retries(
            injector=owner.injector,
            retry=owner.retry,
            clock=owner.clock,
            health=health,
            device_name=device.name,
            launch_index=launch_index,
            footprint_bytes=self.footprint(attrs, env),
            memory_bytes=int(device.gpu.mem_size_gib * 2**30),
            budget=budget,
        )

    # -- watchdog / budget kill ---------------------------------------------
    def kill_overrun(
        self,
        *,
        health,
        device_name: str,
        basis_seconds: float,
        observed_seconds: float,
        launch_index: int,
        attempt: int,
        budget: Budget | None = None,
        detail: str = "",
    ) -> tuple[FaultEvent, float, str] | None:
        """Kill a dispatch that overran its deadline; feed the breaker.

        The deadline is the watchdog's ``predicted × factor + slack``,
        tightened to the remaining budget when one is attached and
        poorer.  Returns ``(event, burned_seconds, fallback_label)`` —
        the caller adds the burn to its overhead — or None within
        bounds.  The burn is advanced on the clock and charged to the
        budget here, so every caller accounts it identically.
        """
        owner = self.owner
        deadline = owner.watchdog.deadline(basis_seconds)
        source = "watchdog"
        if budget is not None and budget.remaining() < deadline:
            deadline, source = budget.remaining(), "budget"
        if observed_seconds <= deadline:
            return None
        if source == "watchdog":
            err: BudgetExhausted | DeadlineExceeded = DeadlineExceeded(
                f"device time {observed_seconds:.3e}s exceeded watchdog "
                f"deadline {deadline:.3e}s{detail}",
                device_name=device_name,
                launch_index=launch_index,
                attempt=attempt,
                deadline_seconds=deadline,
                observed_seconds=observed_seconds,
            )
            fallback = FALLBACK_DEADLINE
        else:
            err = BudgetExhausted(
                f"device time {observed_seconds:.3e}s exceeded remaining "
                f"budget {deadline:.3e}s",
                device_name=device_name,
                launch_index=launch_index,
                attempt=attempt,
                budget_seconds=budget.total_s,
                remaining_seconds=deadline,
            )
            fallback = FALLBACK_BUDGET
        health.record_failure(err)
        event = FaultEvent(
            device_name=err.device_name,
            launch_index=err.launch_index,
            attempt=err.attempt,
            error_type=type(err).__name__,
            message=str(err),
        )
        # the deadline's worth of device time was burned before the kill
        owner.clock.advance(deadline)
        if budget is not None:
            budget.charge(deadline)
        return event, deadline, fallback

    # -- hedging -------------------------------------------------------------
    def hedge_plan(
        self,
        *,
        device_name: str,
        region_name: str,
        env: Mapping[str, int],
        drift_flagged: bool,
        half_open: bool,
        budget: Budget | None,
        predicted_gpu_s: float | None,
    ) -> tuple[str, float] | None:
        """Decide pre-dispatch whether to arm a host backup.

        Returns ``(trigger, delay_s)`` or None.  None whenever no hedge
        policy is attached, the trigger conditions are calm, or the
        case's accelerator-seconds sketch is still under-sampled — the
        no-plan path touches nothing, keeping records bit-identical.
        """
        policy = getattr(self.owner, "hedge", None)
        if policy is None:
            return None
        trigger = policy.trigger(
            drift_flagged=drift_flagged,
            half_open=half_open,
            budget=budget,
            predicted_gpu_s=predicted_gpu_s,
        )
        if trigger is None:
            return None
        delay = policy.delay(device_name, self.case_key(region_name, env))
        if delay is None or not math.isfinite(delay):
            return None
        return trigger, delay

    @staticmethod
    def hedge_resolve(
        plan: tuple[str, float] | None,
        *,
        primary_ok: bool,
        primary_seconds: float,
        backup_seconds: float,
        overhead_seconds: float,
    ) -> HedgeOutcome | None:
        """Race the armed backup against the primary on the simulated clock.

        All times are offsets from dispatch begin.  A successful primary
        finishes at ``overhead + primary_seconds``; a failed one died at
        ``overhead`` (backoff burned before giving up).  The backup
        starts at ``delay`` and finishes at ``delay + backup_seconds``.
        First finisher wins; ties go to the primary (deterministic).
        Returns None when the backup never started — that launch is
        byte-identical to an unhedged one.
        """
        if plan is None:
            return None
        trigger, delay = plan
        if primary_ok:
            primary_finish = overhead_seconds + primary_seconds
            if delay >= primary_finish:
                return None  # primary won before the backup would start
            backup_finish = delay + backup_seconds
            if backup_finish < primary_finish:
                # cancel the primary: it burned until the backup finished
                return HedgeOutcome(
                    trigger=trigger,
                    delay_s=delay,
                    winner="backup",
                    completion_s=backup_finish,
                    extra_work_s=backup_seconds,
                )
            # primary won the race; the backup burned from delay until then
            return HedgeOutcome(
                trigger=trigger,
                delay_s=delay,
                winner="primary",
                completion_s=primary_finish,
                extra_work_s=primary_finish - delay,
            )
        # primary failed at `overhead`; the backup is the only finisher
        if delay >= overhead_seconds:
            return None  # the serial fallback starts no later anyway
        return HedgeOutcome(
            trigger=trigger,
            delay_s=delay,
            winner="backup",
            completion_s=delay + backup_seconds,
            extra_work_s=0.0,  # the fallback would run the backup regardless
        )

    def hedge_observe(
        self,
        device_name: str,
        region_name: str,
        env: Mapping[str, int],
        seconds: float,
    ) -> None:
        """Feed a case's accelerator seconds into the delay sketch."""
        policy = getattr(self.owner, "hedge", None)
        if policy is not None:
            policy.observe(device_name, self.case_key(region_name, env), seconds)

    @staticmethod
    def half_open(health) -> bool:
        return health.breaker.state is BreakerState.HALF_OPEN

    # -- sentinel -------------------------------------------------------------
    def observe_sentinel_pair(
        self,
        stream_key: str,
        prediction,
        cpu_seconds: float,
        gpu_seconds: float,
    ) -> None:
        """Feed both streams; count verdict transitions when metrics are on."""
        owner = self.owner
        sentinel, metrics = owner.sentinel, owner.metrics
        before = (
            {dev: sentinel.state(dev, stream_key) for dev in ("cpu", "gpu")}
            if metrics is not None
            else None
        )
        sentinel.observe("cpu", stream_key, prediction.cpu.seconds, cpu_seconds)
        sentinel.observe("gpu", stream_key, prediction.gpu.seconds, gpu_seconds)
        if metrics is not None:
            for dev in ("cpu", "gpu"):
                after = sentinel.state(dev, stream_key)
                if after is not before[dev]:
                    metrics.counter(
                        "drift_transitions_total", device=dev, to=after.value
                    ).inc()

    # -- metrics --------------------------------------------------------------
    def record_metrics(
        self,
        record,
        *,
        executed_device: str,
        retries_labels: Mapping[str, str],
        healths,
        pred_triples,
    ) -> None:
        """Fold one launch's outcome into the registry (observe-only).

        ``healths`` is an iterable of (device name, DeviceHealth);
        ``pred_triples`` of (device label, predicted s, observed s).
        Zero-overhead launches (no retries, no deadline burn — the memo
        fast path among them) are counted separately instead of
        collapsing the overhead sketch's lowest bucket, so the p50/p99
        tails reflect real dispatch work.
        """
        metrics = self.owner.metrics
        metrics.counter("launches_total", device=executed_device).inc()
        tenant = getattr(record, "tenant", None)
        if tenant is not None:
            metrics.counter("tenant_launches_total", tenant=tenant).inc()
        sketch = metrics.quantiles("dispatch_overhead_seconds")
        if record.overhead_seconds != 0.0:
            sketch.observe(record.overhead_seconds)
        else:
            metrics.counter("dispatch_overhead_zero_total").inc()
        if record.admission is not None:
            metrics.counter("admission_total", outcome=record.admission).inc()
        if record.fallback is not None:
            metrics.counter("fallbacks_total", reason=record.fallback).inc()
        if record.attempts > 1:
            metrics.counter("retries_total", **retries_labels).inc(
                record.attempts - 1
            )
        for ev in record.fault_events:
            metrics.counter("fault_events_total", type=ev.error_type).inc()
        for name, health in healths:
            metrics.gauge("breaker_open_transitions", device=name).set(
                health.breaker.transitions.count("open")
            )
        if record.lint is not None:
            metrics.counter("lint_findings_total", severity="error").inc(
                record.lint.errors
            )
            metrics.counter("lint_findings_total", severity="warning").inc(
                record.lint.warnings
            )
            if record.lint.blocked:
                metrics.counter("lint_blocked_total").inc()
        drift = record.drift
        if drift is not None:
            if isinstance(drift, tuple):  # multi-device (device, state) pairs
                for device, state in drift:
                    metrics.counter(
                        "drift_flagged_total", device=device, state=state
                    ).inc()
            else:
                metrics.counter(
                    "drift_decisions_total", mode=drift.mode
                ).inc()
        hedge = getattr(record, "hedge", None)
        if hedge is not None:
            metrics.counter(
                "hedged_launches_total",
                trigger=hedge.trigger,
                winner=hedge.winner,
            ).inc()
            metrics.quantiles("hedge_extra_work_seconds").observe(
                hedge.extra_work_s
            )
        for device, predicted, observed in pred_triples:
            if (
                predicted > 0.0
                and observed > 0.0
                and math.isfinite(predicted)
                and math.isfinite(observed)
            ):
                metrics.histogram(
                    "prediction_abs_log_error", device=device
                ).observe(abs(math.log10(predicted / observed)))
        metrics.gauge("sim_clock_seconds").set(self.owner.clock.now)
