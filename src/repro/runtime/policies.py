"""Target-selection policies.

* ``always-gpu`` — the OpenMP 4.x prescriptive default: target regions go
  to the accelerator unconditionally;
* ``always-cpu`` — never offload (the host fallback);
* ``model-guided`` — the paper's contribution: evaluate both analytical
  models with runtime-bound attributes and pick the lower prediction;
* ``oracle`` — executes both versions and keeps the faster (the upper
  bound a selector can reach; used to score policies).
"""

from __future__ import annotations

from typing import Protocol

from ..analysis import BoundAttributes
from ..machines import Platform
from ..models import SelectionPrediction, predict_both

__all__ = [
    "Policy",
    "AlwaysGPU",
    "AlwaysCPU",
    "ModelGuided",
    "Oracle",
    "policy_by_name",
]


class Policy(Protocol):
    """A target-selection strategy (decides 'gpu' or 'cpu' per launch)."""

    name: str

    def choose(
        self,
        bound: BoundAttributes,
        platform: Platform,
        *,
        num_threads: int | None,
        sim_cpu_seconds: float,
        sim_gpu_seconds: float,
    ) -> tuple[str, SelectionPrediction | None]:
        """Return (target, prediction-if-any)."""
        ...


class AlwaysGPU:
    """Offload every target region (the compiler's default policy)."""

    name = "always-gpu"

    def choose(self, bound, platform, *, num_threads, sim_cpu_seconds, sim_gpu_seconds):
        return "gpu", None


class AlwaysCPU:
    """Never offload; always run the host fallback."""

    name = "always-cpu"

    def choose(self, bound, platform, *, num_threads, sim_cpu_seconds, sim_gpu_seconds):
        return "cpu", None


class ModelGuided:
    """The hybrid analytical selector of Section IV.

    On first use per (platform, team size) the policy fits the
    microbenchmark calibration constants (repro.calibrate) — the paper's
    "parameters obtained from micro-benchmarks" step.  Pass
    ``calibrate=False`` to run the raw uncalibrated models, or
    ``use_runtime_tripcounts=False`` to degrade the predictor to the pure
    compile-time 128-iteration abstraction (both exercised as ablations).
    """

    name = "model-guided"

    def __init__(
        self,
        *,
        use_runtime_tripcounts: bool = True,
        calibrate: bool = True,
    ):
        self.use_runtime_tripcounts = use_runtime_tripcounts
        self.calibrate = calibrate
        self._calibrations: dict[tuple[str, int | None], object] = {}

    def _calibration(self, platform: Platform, num_threads: int | None):
        if not self.calibrate:
            return None
        key = (platform.name, num_threads)
        if key not in self._calibrations:
            from ..calibrate import fit_model_calibration

            self._calibrations[key] = fit_model_calibration(
                platform, num_threads=num_threads
            )
        return self._calibrations[key]

    def choose(self, bound, platform, *, num_threads, sim_cpu_seconds, sim_gpu_seconds):
        prediction = predict_both(
            bound,
            platform,
            num_threads=num_threads,
            use_runtime_tripcounts=self.use_runtime_tripcounts,
            calibration=self._calibration(platform, num_threads),
        )
        return prediction.winner, prediction


class Oracle:
    """Perfect selector: picks whichever version actually runs faster."""

    name = "oracle"

    def choose(self, bound, platform, *, num_threads, sim_cpu_seconds, sim_gpu_seconds):
        return ("gpu" if sim_gpu_seconds < sim_cpu_seconds else "cpu"), None


def policy_by_name(name: str) -> Policy:
    """Construct a policy from its registry name."""
    table = {
        "always-gpu": AlwaysGPU,
        "always-cpu": AlwaysCPU,
        "model-guided": ModelGuided,
        "oracle": Oracle,
    }
    key = name.strip().lower()
    if key not in table:
        raise ValueError(
            f"unknown policy {name!r}; valid policies: "
            + ", ".join(sorted(table))
        )
    return table[key]()
