"""OpenMP-style offloading runtime with target selection (Figure 2)."""

from .device import AcceleratorDevice, Device, ExecutionRecord, HostDevice
from .policies import (
    AlwaysCPU,
    AlwaysGPU,
    ModelGuided,
    Oracle,
    Policy,
    policy_by_name,
)
from .framework import LaunchRecord, OffloadingRuntime
from .multi import DeviceOutcome, MultiDeviceRuntime, MultiLaunchRecord

__all__ = [
    "DeviceOutcome",
    "MultiDeviceRuntime",
    "MultiLaunchRecord",
    "AcceleratorDevice",
    "Device",
    "ExecutionRecord",
    "HostDevice",
    "AlwaysCPU",
    "AlwaysGPU",
    "ModelGuided",
    "Oracle",
    "Policy",
    "policy_by_name",
    "LaunchRecord",
    "OffloadingRuntime",
]
