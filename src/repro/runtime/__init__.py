"""OpenMP-style offloading runtime with target selection (Figure 2).

Fault-tolerant dispatch (retry, fallback, circuit breaking) lives in
:mod:`repro.faults` and drift detection / self-healing in
:mod:`repro.drift`; the commonly-paired pieces are re-exported here so
``from repro.runtime import OffloadingRuntime, DriftSentinel, Watchdog``
reads naturally.
"""

from ..drift import DriftSentinel, SentinelConfig, Watchdog
from ..faults import (
    DeviceHealth,
    FaultInjector,
    RetryPolicy,
    scenario_by_name,
)
from .device import AcceleratorDevice, Device, ExecutionRecord, HostDevice
from .dispatch import (
    FALLBACK_BULKHEAD,
    FALLBACK_HEDGE,
    Budget,
    Bulkhead,
    DispatchCore,
    HedgeOutcome,
    HedgePolicy,
)
from .policies import (
    AlwaysCPU,
    AlwaysGPU,
    ModelGuided,
    Oracle,
    Policy,
    policy_by_name,
)
from .framework import ADMISSION_DEGRADED, LaunchRecord, OffloadingRuntime
from .memo import ExecutionMemo
from .multi import DeviceOutcome, MultiDeviceRuntime, MultiLaunchRecord

__all__ = [
    "ADMISSION_DEGRADED",
    "FALLBACK_BULKHEAD",
    "FALLBACK_HEDGE",
    "Budget",
    "Bulkhead",
    "DispatchCore",
    "HedgeOutcome",
    "HedgePolicy",
    "ExecutionMemo",
    "DeviceOutcome",
    "MultiDeviceRuntime",
    "MultiLaunchRecord",
    "AcceleratorDevice",
    "Device",
    "ExecutionRecord",
    "HostDevice",
    "AlwaysCPU",
    "AlwaysGPU",
    "ModelGuided",
    "Oracle",
    "Policy",
    "policy_by_name",
    "LaunchRecord",
    "OffloadingRuntime",
    "DeviceHealth",
    "DriftSentinel",
    "FaultInjector",
    "RetryPolicy",
    "SentinelConfig",
    "Watchdog",
    "scenario_by_name",
]
