"""Device abstractions the offloading runtime dispatches to.

A :class:`Device` wraps "hardware" (a timing simulator) behind the execute
interface the runtime uses.  ``execute`` returns the region's wall time the
way the paper measures it: host time is the parallel region itself; device
time includes data transfers but never CUDA context initialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..ir import Region
from ..machines import CPUDescriptor, GPUDescriptor, InterconnectDescriptor
from ..sim import simulate_cpu, simulate_gpu_kernel, simulate_transfers

__all__ = ["Device", "HostDevice", "AcceleratorDevice", "ExecutionRecord"]


@dataclass(frozen=True)
class ExecutionRecord:
    """Outcome of executing one region on one device."""

    device_name: str
    kind: str  # "cpu" | "gpu"
    seconds: float
    detail: object  # the underlying simulator result(s)


class Device:
    """Common interface of execution targets."""

    name: str
    kind: str

    def execute(self, region: Region, env: Mapping[str, int]) -> ExecutionRecord:
        raise NotImplementedError


class HostDevice(Device):
    """The host CPU running the parallel fallback version."""

    kind = "cpu"

    def __init__(self, cpu: CPUDescriptor, *, num_threads: int | None = None):
        self.cpu = cpu
        self.num_threads = num_threads
        self.name = cpu.name if num_threads is None else f"{cpu.name}x{num_threads}"

    def execute(self, region: Region, env: Mapping[str, int]) -> ExecutionRecord:
        res = simulate_cpu(region, self.cpu, env, num_threads=self.num_threads)
        return ExecutionRecord(self.name, self.kind, res.seconds, res)

    def __repr__(self) -> str:
        return f"HostDevice({self.name})"


class AcceleratorDevice(Device):
    """A GPU behind a bus, running the SIMT version of the region."""

    kind = "gpu"

    def __init__(
        self,
        gpu: GPUDescriptor,
        bus: InterconnectDescriptor,
        *,
        threads_per_block: int = 128,
    ):
        self.gpu = gpu
        self.bus = bus
        self.threads_per_block = threads_per_block
        self.name = f"{gpu.name} via {bus.name}"

    def execute(self, region: Region, env: Mapping[str, int]) -> ExecutionRecord:
        kernel = simulate_gpu_kernel(
            region, self.gpu, env, threads_per_block=self.threads_per_block
        )
        xfer = simulate_transfers(region, self.bus, env)
        total = kernel.seconds + xfer.total_seconds
        return ExecutionRecord(self.name, self.kind, total, (kernel, xfer))

    def __repr__(self) -> str:
        return f"AcceleratorDevice({self.name})"
