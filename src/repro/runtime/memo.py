"""Per-(region, env) memoization of the deterministic launch inputs.

Every quantity the dispatch path derives from ``(region, env)`` alone is
a pure function in this repository: the simulated host/device times, the
runtime attribute binding, and the device footprint.  A traffic-scale
replay re-launches the same few dozen (kernel, dataset) cases 10⁵+
times, so recomputing them per launch (~15 ms) is the entire cost of a
run.  :class:`ExecutionMemo` caches them once per case, cutting a warm
launch to microseconds while returning the *identical* values — records
stay bit-identical to an unmemoized runtime, which the replay
differential tests pin.

The memo is safe to share across runtimes (and across replay scenarios)
as long as they run the same platform and host team size: keys include
the executing device names, so a memo accidentally shared across
platforms misses rather than lies.
"""

from __future__ import annotations

from typing import Mapping

from ..analysis import BoundAttributes, RegionAttributes
from .device import Device, ExecutionRecord

__all__ = ["ExecutionMemo"]


def _env_key(env: Mapping[str, int]) -> tuple:
    return tuple(sorted(env.items()))


class ExecutionMemo:
    """Cache of deterministic per-(region, env) dispatch inputs."""

    def __init__(self):
        self._bound: dict[tuple, BoundAttributes] = {}
        self._executions: dict[tuple, ExecutionRecord] = {}
        self._footprints: dict[tuple, int] = {}
        self.hits = 0
        self.misses = 0

    def bound(self, attrs: RegionAttributes, env: Mapping[str, int]) -> BoundAttributes:
        """``attrs.bind(env)``, computed once per (region, env)."""
        key = (attrs.region.name, _env_key(env))
        hit = self._bound.get(key)
        if hit is None:
            self.misses += 1
            hit = self._bound[key] = attrs.bind(env)
        else:
            self.hits += 1
        return hit

    def execution(
        self, device: Device, attrs: RegionAttributes, env: Mapping[str, int]
    ) -> ExecutionRecord:
        """``device.execute(region, env)``, computed once per device/case."""
        key = (device.name, attrs.region.name, _env_key(env))
        hit = self._executions.get(key)
        if hit is None:
            self.misses += 1
            hit = self._executions[key] = device.execute(attrs.region, env)
        else:
            self.hits += 1
        return hit

    def footprint(
        self, attrs: RegionAttributes, env: Mapping[str, int], compute
    ) -> int:
        """Device-resident bytes for the launch, computed once per case."""
        key = (attrs.region.name, _env_key(env))
        hit = self._footprints.get(key)
        if hit is None:
            self.misses += 1
            hit = self._footprints[key] = compute(attrs.region, env)
        else:
            self.hits += 1
        return hit

    def __len__(self) -> int:
        return len(self._bound) + len(self._executions) + len(self._footprints)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecutionMemo({len(self)} entries, "
            f"{self.hits} hits / {self.misses} misses)"
        )
