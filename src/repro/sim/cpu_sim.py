"""Semi-analytic CPU timing simulator (the "measured" host time).

Plays the role of the POWER8/POWER9 silicon in the paper's experiments.
Compared to the analytical predictor it adds exactly the detail the paper
says its model lacks:

* a **cache/TLB hierarchy** — per-access average latencies and DRAM traffic
  from the reuse model of :mod:`repro.sim.locality`, injected into the MCA
  scoreboard as load-latency overrides;
* **actual trip counts** — no 128-iteration abstraction;
* a **DRAM bandwidth roofline** shared by all threads;
* **SMT issue sharing** per hardware thread.

Time is per target region (the quantity the paper's tables report for the
host), fork/join/schedule overheads included, no data transfer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..codegen import CPUPlan, OMPSchedule, plan_cpu_execution
from ..ipda import analyze_region
from ..ir import Region
from ..ir.visit import count_reductions, memory_accesses
from ..machines import CPUDescriptor
from ..obs.tracer import current_tracer
from ..mca import (
    MachineOp,
    find_band_level,
    level_cycles_per_iteration,
    lower_region,
)
from ..analysis import nest_trips
from .locality import (
    AccessLocality,
    AccessSpec,
    CacheLevel,
    LoopExtent,
    MemoryHierarchy,
    analyze_access,
    group_accesses,
)

__all__ = ["CPUSimResult", "simulate_cpu", "cpu_memory_hierarchy"]


@dataclass(frozen=True)
class CPUSimResult:
    """Simulated host execution of one region."""

    region_name: str
    cpu_name: str
    plan: CPUPlan
    cycles_per_iteration: float
    compute_seconds: float
    bandwidth_seconds: float  # DRAM roofline term
    l2_refill_seconds: float  # L2→L1 refill roofline
    l3_refill_seconds: float  # L3 refill roofline
    overhead_seconds: float  # fork/schedule/join
    dram_bytes: float
    seconds: float

    @property
    def bound(self) -> str:
        """Which roofline term limits this kernel."""
        terms = {
            "compute": self.compute_seconds,
            "bandwidth": self.bandwidth_seconds,
            "l2": self.l2_refill_seconds,
            "l3": self.l3_refill_seconds,
        }
        return max(terms, key=terms.get)


def cpu_memory_hierarchy(
    cpu: CPUDescriptor, threads_per_core: int
) -> MemoryHierarchy:
    """Per-thread effective cache stack (SMT threads share core caches)."""
    share = max(1, threads_per_core)
    return MemoryHierarchy(
        levels=(
            CacheLevel("L1", cpu.l1_kib * 1024 / share, cpu.l1_latency),
            CacheLevel("L2", cpu.l2_kib * 1024 / share, cpu.l2_latency),
            CacheLevel("L3", cpu.l3_kib_per_core * 1024 / share, cpu.l3_latency),
        ),
        dram_latency_cycles=cpu.dram_latency,
        line_bytes=cpu.cacheline_bytes,
    )


def _access_specs(
    region: Region,
    env: Mapping[str, int],
    plan: CPUPlan,
    trip_of,
) -> tuple[list[AccessSpec], list[list[int]]]:
    """Build per-thread access specs + stencil groups for the region."""
    accesses = memory_accesses(region)
    ipda = analyze_region(region)
    band_vars = [lp.var.name for lp in region.parallel_band()]

    # Per-thread trips of each band loop: inner band dims run fully; the
    # outermost band dim is divided by the thread count.
    band_extents = {
        lp.var.name: float(lp.count.evaluate(env))
        for lp in region.parallel_band()
    }
    inner_product = 1.0
    for name in band_vars[1:]:
        inner_product *= band_extents[name]
    chunk = float(plan.iterations_per_thread)
    outer_trips = max(1.0, chunk / max(1.0, inner_product))

    specs: list[AccessSpec] = []
    keys: list[tuple] = []
    for acc, stride_info in zip(accesses, ipda.accesses):
        loops: list[LoopExtent] = []
        for lp in reversed(acc.loop_path):  # innermost first
            coeff = stride_info.loop_strides.get(lp.var.name)
            stride = None if coeff is None else float(coeff.evaluate(env))
            if lp.parallel:
                if lp.var.name == band_vars[0]:
                    trips = outer_trips
                else:
                    trips = min(band_extents[lp.var.name], max(1.0, chunk))
            else:
                trips = max(1.0, trip_of(lp))
            loops.append(LoopExtent(stride, trips))
        count = 1.0
        for le in loops:
            count *= le.trips
        count *= 0.5**acc.cond_depth
        array_bytes = (
            float(acc.array.element_count().evaluate(env)) * acc.dtype.size
        )
        specs.append(
            AccessSpec(
                elem_bytes=acc.dtype.size,
                loops=tuple(loops),
                dynamic_count=count,
                array_bytes=array_bytes,
                is_store=acc.is_store,
            )
        )
        stride_sig = tuple(
            (lp.var.name, repr(stride_info.loop_strides.get(lp.var.name)))
            for lp in acc.loop_path
        )
        keys.append((acc.array.name, stride_sig))
    return specs, group_accesses(keys)


def simulate_cpu(
    region: Region,
    cpu: CPUDescriptor,
    env: Mapping[str, int],
    *,
    num_threads: int | None = None,
    vectorize: bool = True,
    schedule: OMPSchedule = OMPSchedule.STATIC,
    chunk_size: int | None = None,
) -> CPUSimResult:
    """Simulate host-parallel execution of a region with actual sizes."""
    tracer = current_tracer()
    if not tracer.enabled:
        return _simulate_cpu(
            region, cpu, env, num_threads=num_threads, vectorize=vectorize,
            schedule=schedule, chunk_size=chunk_size,
        )
    with tracer.span("sim.cpu", region=region.name, cpu=cpu.name) as sp:
        result = _simulate_cpu(
            region, cpu, env, num_threads=num_threads, vectorize=vectorize,
            schedule=schedule, chunk_size=chunk_size,
        )
        sp.set("seconds", result.seconds)
        return result


def _simulate_cpu(
    region: Region,
    cpu: CPUDescriptor,
    env: Mapping[str, int],
    *,
    num_threads: int | None = None,
    vectorize: bool = True,
    schedule: OMPSchedule = OMPSchedule.STATIC,
    chunk_size: int | None = None,
) -> CPUSimResult:
    parallel_iters = int(region.parallel_iterations().evaluate(env))
    plan = plan_cpu_execution(
        parallel_iters,
        cpu,
        num_threads=num_threads,
        schedule=schedule,
        chunk_size=chunk_size,
    )
    mem = cpu_memory_hierarchy(cpu, plan.threads_per_core)
    trips = nest_trips(region, env)

    specs, groups = _access_specs(region, env, plan, trips)
    localities: dict[int, AccessLocality] = {}
    for group in groups:
        leader = group[0]
        localities[leader] = analyze_access(specs[leader], mem)
        for other in group[1:]:
            localities[other] = AccessLocality(
                avg_latency_cycles=mem.l1_latency,
                dram_bytes=0.0,
                cold_fraction=0.0,
                repeat_fraction=0.0,
                source="L1",
                repeat_level="L1",
            )

    def latency_of(op: MachineOp) -> float:
        if op.opcode in ("load", "vload") and " acc:" in op.tag:
            idx = int(op.tag.rsplit("acc:", 1)[1])
            return localities[idx].avg_latency_cycles
        return float(cpu.latency(op.opcode))

    root = lower_region(region, cpu, vectorize=vectorize)
    band = find_band_level(root)
    per_iter = level_cycles_per_iteration(
        band, cpu, trips, latency_of=latency_of
    )
    vectorized_accesses = _vectorized_access_indices(root)

    tpc = plan.threads_per_core
    smt_penalty = tpc / cpu.smt_throughput(tpc)
    compute_cycles = per_iter * plan.iterations_per_thread * smt_penalty
    compute_seconds = cpu.cycles_to_seconds(compute_cycles)

    busy_threads = min(plan.num_threads, parallel_iters)
    ipda = analyze_region(region)
    outer_band_var = region.parallel_band()[0].var.name
    total_dram = 0.0
    l2_traffic = 0.0  # per-thread bytes refilled from L2
    l3_traffic = 0.0  # per-thread bytes refilled from L3 (or passing it)
    line = float(cpu.cacheline_bytes)
    for i, (spec_, astride) in enumerate(zip(specs, ipda.accesses)):
        loc = localities[i]
        # Cross-thread sharing: static chunking slices the *outermost* band
        # dimension across threads, so an access invariant along it (e.g.
        # GEMM's B) is one team-wide stream the threads walk in loose
        # lockstep — DRAM sees it roughly once, not once per thread.
        coeff = astride.loop_strides.get(outer_band_var)
        chunk_stride = None if coeff is None else coeff.evaluate(env)
        share = float(busy_threads) if chunk_stride == 0 else 1.0
        total_dram += loc.dram_bytes * busy_threads / share
        # Cold traffic counts distinct lines (already line-granular in the
        # locality fractions); repeat traffic is per re-fetch, and vector
        # loads re-fetch a line once per `lanes` elements.
        lanes_eff = (
            cpu.vector_lanes(spec_.elem_bytes)
            if i in vectorized_accesses
            else 1
        )
        cold_line_bytes = spec_.dynamic_count * loc.cold_fraction * line
        repeat_line_bytes = (
            spec_.dynamic_count / lanes_eff * loc.repeat_fraction * line
        )
        # cold lines transit every level on the way in
        l3_traffic += cold_line_bytes
        l2_traffic += cold_line_bytes
        if loc.repeat_level == "L3":
            l3_traffic += repeat_line_bytes
            l2_traffic += repeat_line_bytes
        elif loc.repeat_level == "L2":
            l2_traffic += repeat_line_bytes

    effective_bw = cpu.dram_bw_gbs * cpu.stream_efficiency * 1e9
    bandwidth_seconds = total_dram / effective_bw
    cores_used = max(1, min(cpu.cores, -(-busy_threads // cpu.smt)))
    l3_refill_seconds = (l3_traffic * busy_threads) / (
        cpu.l3_refill_gbs_per_core * 1e9 * cores_used
    )
    l2_refill_seconds = (l2_traffic * busy_threads) / (
        cpu.l2_refill_gbs_per_core * 1e9 * cores_used
    )

    # Fork and barrier costs grow superlinearly with the team size (wake-up
    # fan-out, barrier contention, SMT oversubscription).
    team_scale = cpu.team_overhead_scale(plan.num_threads)
    per_schedule = (
        cpu.par_schedule_static_cycles
        if plan.schedule is OMPSchedule.STATIC
        else cpu.par_schedule_dynamic_cycles
    )
    n_red = count_reductions(region)
    reduction_cycles = (
        n_red
        * math.ceil(math.log2(max(2, plan.num_threads)))
        * cpu.reduction_step_cycles
    )
    overhead_cycles = (
        cpu.par_startup_cycles * team_scale
        + plan.schedule_times * per_schedule
        + cpu.sync_cycles * team_scale
        + cpu.loop_overhead_per_iter * plan.iterations_per_thread
        + reduction_cycles
    )
    overhead_seconds = cpu.cycles_to_seconds(overhead_cycles)

    seconds = (
        max(
            compute_seconds,
            bandwidth_seconds,
            l2_refill_seconds,
            l3_refill_seconds,
        )
        + overhead_seconds
    )
    return CPUSimResult(
        region_name=region.name,
        cpu_name=cpu.name,
        plan=plan,
        cycles_per_iteration=per_iter,
        compute_seconds=compute_seconds,
        bandwidth_seconds=bandwidth_seconds,
        l2_refill_seconds=l2_refill_seconds,
        l3_refill_seconds=l3_refill_seconds,
        overhead_seconds=overhead_seconds,
        dram_bytes=total_dram,
        seconds=seconds,
    )


def _vectorized_access_indices(root) -> set[int]:
    """Access indices lowered to vector memory ops (lane-wide transfers)."""
    out: set[int] = set()
    stack = [root]
    while stack:
        lv = stack.pop()
        for op in lv.leaf_ops:
            if " acc:" in op.tag and op.opcode.startswith("v"):
                idx = int(op.tag.rsplit("acc:", 1)[1])
                if idx >= 0:
                    out.add(idx)
        stack.extend(lv.sub_loops)
        for t, e in lv.sub_branches:
            stack.append(t)
            stack.append(e)
    return out
