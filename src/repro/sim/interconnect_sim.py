"""Interconnect transfer simulator.

More detailed than the predictor's transfer model: each mapped array is a
separate DMA (its own setup latency), moved through pinned staging buffers
with a realistic efficiency factor — the small systematic difference
between this simulator and :mod:`repro.models.transfer` is part of the
predictor's error budget, as on real machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..ir import Region
from ..machines import InterconnectDescriptor

__all__ = ["TransferSimResult", "simulate_transfers"]

#: Fraction of nominal bus bandwidth achieved through staging buffers.
STAGING_EFFICIENCY = 0.92


@dataclass(frozen=True)
class TransferSimResult:
    """Simulated host↔device data movement for one region launch."""

    bytes_to_device: int
    bytes_to_host: int
    seconds_to_device: float
    seconds_to_host: float
    num_transfers: int

    @property
    def total_seconds(self) -> float:
        """Wall time of all transfers.

        Both studied buses are full duplex and the runtime issues the two
        directions asynchronously, so they overlap: the slower direction
        hides the faster one.  (The analytical transfer model adds the two
        — a deliberate predictor/hardware discrepancy.)
        """
        return max(self.seconds_to_device, self.seconds_to_host)

    @property
    def total_bytes(self) -> int:
        return self.bytes_to_device + self.bytes_to_host


def simulate_transfers(
    region: Region,
    bus: InterconnectDescriptor,
    env: Mapping[str, int],
) -> TransferSimResult:
    """Simulate the per-array DMAs the OpenMP runtime issues for a region."""
    to_dev_bytes = 0
    to_host_bytes = 0
    to_dev_s = 0.0
    to_host_s = 0.0
    transfers = 0
    rate = bus.bandwidth_gbs * 1e9 * STAGING_EFFICIENCY
    for arr in region.arrays.values():
        nbytes = int(arr.element_count().evaluate(env)) * arr.dtype.size
        if arr.is_input:
            to_dev_bytes += nbytes
            to_dev_s += bus.latency_us * 1e-6 + nbytes / rate
            transfers += 1
        if arr.is_output:
            to_host_bytes += nbytes
            to_host_s += bus.latency_us * 1e-6 + nbytes / rate
            transfers += 1
    return TransferSimResult(
        bytes_to_device=to_dev_bytes,
        bytes_to_host=to_host_bytes,
        seconds_to_device=to_dev_s,
        seconds_to_host=to_host_s,
        num_transfers=transfers,
    )
