"""Timing simulators and the functional executor (the "hardware").

These stand in for the paper's POWER8/POWER9 hosts, K80/V100 devices and
PCIe/NVLink buses (see DESIGN.md §2): every "actual"/"measured" number in
the reproduced tables and figures comes from here, while the analytical
models of :mod:`repro.models` provide the "predicted" numbers.
"""

from .locality import (
    AccessLocality,
    AccessSpec,
    CacheLevel,
    LoopExtent,
    MemoryHierarchy,
    analyze_access,
    group_accesses,
)
from .cpu_sim import CPUSimResult, cpu_memory_hierarchy, simulate_cpu
from .gpu_sim import GPUSimResult, simulate_gpu_kernel
from .interconnect_sim import TransferSimResult, simulate_transfers
from .executor import ExecutionProfile, allocate_arrays, execute_region

__all__ = [
    "AccessLocality",
    "AccessSpec",
    "CacheLevel",
    "LoopExtent",
    "MemoryHierarchy",
    "analyze_access",
    "group_accesses",
    "CPUSimResult",
    "cpu_memory_hierarchy",
    "simulate_cpu",
    "GPUSimResult",
    "simulate_gpu_kernel",
    "TransferSimResult",
    "simulate_transfers",
    "ExecutionProfile",
    "allocate_arrays",
    "execute_region",
]
