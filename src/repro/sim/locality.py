"""Reuse-distance locality model for affine loop nests.

The timing simulators need what the paper's analytical predictor lacks by
design: a memory-hierarchy model.  For each static memory access this
module estimates, from its per-loop strides and trip counts, where its data
is served from — giving an average access latency and the DRAM traffic it
generates.

The model classifies each dynamic execution of an access into three reuse
populations:

* **line hits** — the previous iteration of the innermost non-zero-stride
  ("carrier") loop touched the same cache line (spatial locality);
* **sweep repeats** — an enclosing loop with (near-)zero stride re-walks
  the same footprint; these hit in the smallest cache level that holds one
  sweep's footprint;
* **cold accesses** — first touches, served from the level that holds the
  whole array (warm caches across repetitions) or DRAM.

Accesses that differ only by a constant offset (stencil neighbours) are
grouped: one group member pays the full miss profile, the rest hit L1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "CacheLevel",
    "MemoryHierarchy",
    "LoopExtent",
    "AccessSpec",
    "AccessLocality",
    "analyze_access",
    "group_accesses",
]


@dataclass(frozen=True)
class CacheLevel:
    """One cache level as the locality model sees it."""

    name: str
    capacity_bytes: float  # effective capacity for the analysed entity
    latency_cycles: float

    def __post_init__(self):
        if self.capacity_bytes <= 0:
            raise ValueError("cache capacity must be positive")


@dataclass(frozen=True)
class MemoryHierarchy:
    """An ordered cache stack (L1 outward) plus the DRAM endpoint."""

    levels: tuple[CacheLevel, ...]
    dram_latency_cycles: float
    line_bytes: int

    def __post_init__(self):
        if not self.levels:
            raise ValueError("at least one cache level required")
        caps = [lv.capacity_bytes for lv in self.levels]
        if caps != sorted(caps):
            raise ValueError("cache levels must be ordered smallest first")

    @property
    def l1_latency(self) -> float:
        return self.levels[0].latency_cycles

    def level_holding(self, nbytes: float) -> CacheLevel | None:
        """Smallest level whose capacity covers ``nbytes`` (None = DRAM)."""
        for lv in self.levels:
            if nbytes <= lv.capacity_bytes:
                return lv
        return None

    def latency_for_footprint(self, nbytes: float) -> float:
        lv = self.level_holding(nbytes)
        return lv.latency_cycles if lv is not None else self.dram_latency_cycles


@dataclass(frozen=True)
class LoopExtent:
    """One enclosing loop from the access's perspective, innermost first.

    ``stride_elems`` is the element stride of the access along this loop's
    induction variable (``None`` = non-affine / unknown).
    """

    stride_elems: float | None
    trips: float

    def __post_init__(self):
        if self.trips < 1:
            raise ValueError("trips must be >= 1")


@dataclass(frozen=True)
class AccessSpec:
    """Everything the locality model needs about one static access."""

    elem_bytes: int
    loops: tuple[LoopExtent, ...]  # innermost first
    dynamic_count: float  # executions per analysed entity (thread/warp)
    array_bytes: float
    is_store: bool = False


@dataclass(frozen=True)
class AccessLocality:
    """Locality verdict for one static access."""

    avg_latency_cycles: float
    dram_bytes: float  # DRAM traffic over all dynamic executions
    cold_fraction: float
    repeat_fraction: float
    source: str  # where cold accesses are served from
    repeat_level: str  # where sweep repeats hit

    @property
    def l1_fraction(self) -> float:
        return max(0.0, 1.0 - self.cold_fraction - self.repeat_fraction)


def analyze_access(spec: AccessSpec, mem: MemoryHierarchy) -> AccessLocality:
    """Classify one access's dynamic executions into reuse populations."""
    line = mem.line_bytes
    e = spec.elem_bytes

    # Non-affine somewhere: conservatively random — every access cold.
    if any(lp.stride_elems is None for lp in spec.loops):
        return AccessLocality(
            avg_latency_cycles=mem.dram_latency_cycles,
            dram_bytes=spec.dynamic_count * line,
            cold_fraction=1.0,
            repeat_fraction=0.0,
            source="DRAM",
            repeat_level="-",
        )

    carrier_idx = None
    for i, lp in enumerate(spec.loops):
        if lp.stride_elems != 0:
            carrier_idx = i
            break

    if carrier_idx is None:
        # Fully loop-invariant: one cold touch, then a register/L1 resident.
        total = max(1.0, spec.dynamic_count)
        cold = 1.0 / total
        src_lat = mem.latency_for_footprint(spec.array_bytes)
        src = _name_for(mem, spec.array_bytes)
        avg = mem.l1_latency + cold * (src_lat - mem.l1_latency)
        return AccessLocality(
            avg_latency_cycles=avg,
            dram_bytes=(line if src == "DRAM" else 0.0),
            cold_fraction=cold,
            repeat_fraction=0.0,
            source=src,
            repeat_level="-",
        )

    carrier = spec.loops[carrier_idx]
    s_bytes = abs(carrier.stride_elems) * e
    if s_bytes >= line:
        lines_per_sweep = carrier.trips
    else:
        lines_per_sweep = max(1.0, math.ceil(carrier.trips * s_bytes / line))
    spatial_miss = min(1.0, lines_per_sweep / carrier.trips)
    footprint = lines_per_sweep * line

    # Walk outward: zero-stride loops repeat the sweep; sub-line strides
    # quasi-repeat it (line-granularity revisits); large strides stream.
    # A repeat only earns reuse while the footprint being revisited is
    # comparable to the largest cache — revisiting a sweep 4x bigger than
    # every cache is a re-stream, not a reuse; in between, a fraction
    # proportional to capacity/footprint survives eviction.
    max_capacity = mem.levels[-1].capacity_bytes
    repeats = 1.0
    innermost_repeat_footprint: float | None = None
    for lp in spec.loops[carrier_idx + 1 :]:
        s_o = abs(lp.stride_elems) * e
        if s_o == 0:
            if footprint > 4.0 * max_capacity:
                break
            if innermost_repeat_footprint is None:
                innermost_repeat_footprint = footprint
            repeats *= lp.trips
        elif s_o < line:
            if footprint > 4.0 * max_capacity:
                break
            if innermost_repeat_footprint is None:
                innermost_repeat_footprint = footprint
            repeats *= min(lp.trips, line / s_o)
            footprint = min(
                spec.array_bytes, footprint * max(1.0, lp.trips * s_o / line)
            )
        else:
            footprint = min(spec.array_bytes, footprint * lp.trips)
            break  # streaming: reuse beyond this loop is dead

    cold_fraction = spatial_miss / repeats
    repeat_fraction = spatial_miss - cold_fraction

    if innermost_repeat_footprint is not None:
        lv = mem.level_holding(innermost_repeat_footprint)
        if lv is not None:
            fit = 1.0
            repeat_lat = lv.latency_cycles
            repeat_name = lv.name
        else:
            # partially cache-resident sweep: the surviving fraction hits
            # the largest level, the rest spills to the cold source
            fit = max_capacity / innermost_repeat_footprint
            repeat_lat = mem.levels[-1].latency_cycles
            repeat_name = mem.levels[-1].name
        spill = repeat_fraction * (1.0 - fit)
        repeat_fraction -= spill
        cold_fraction += spill
    else:
        repeat_lat = mem.l1_latency
        repeat_name = "-"

    src_bytes = min(spec.array_bytes, footprint)
    src_lat = mem.latency_for_footprint(src_bytes)
    src_name = _name_for(mem, src_bytes)

    l1 = mem.l1_latency
    avg = (
        l1
        + cold_fraction * (src_lat - l1)
        + repeat_fraction * (repeat_lat - l1)
    )
    dram_bytes = (
        spec.dynamic_count * cold_fraction * line if src_name == "DRAM" else 0.0
    )
    if spec.is_store:
        # write-allocate + writeback: dirty lines return to DRAM eventually
        dram_bytes *= 2.0
    return AccessLocality(
        avg_latency_cycles=avg,
        dram_bytes=dram_bytes,
        cold_fraction=cold_fraction,
        repeat_fraction=repeat_fraction,
        source=src_name,
        repeat_level=repeat_name,
    )


def _name_for(mem: MemoryHierarchy, nbytes: float) -> str:
    lv = mem.level_holding(nbytes)
    return lv.name if lv is not None else "DRAM"


def group_accesses(
    keys: Sequence[tuple],
) -> list[list[int]]:
    """Group access indices whose keys match (stencil-neighbour sharing).

    ``keys`` are hashable descriptors (array name + stride tuple); accesses
    with equal keys touch the same lines modulo a constant offset, so only
    one of them pays the miss profile.
    """
    table: dict[tuple, list[int]] = {}
    for i, k in enumerate(keys):
        table.setdefault(k, []).append(i)
    return list(table.values())
