"""Functional reference executor.

Interprets the kernel IR over numpy arrays — the correctness oracle for the
Polybench ports (the timing simulators never touch data).  Interpretation
is straightforward nested Python loops, so keep problem sizes small in
tests (≤ 64 per dimension).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import (
    Bin,
    Cmp,
    ConstV,
    If,
    Load,
    LocalAssign,
    LocalDef,
    LocalRef,
    Loop,
    ReduceStore,
    Region,
    ScalarArg,
    Select,
    Stmt,
    Store,
    Un,
    VExpr,
)

__all__ = ["execute_region", "allocate_arrays", "ExecutionProfile"]


class ExecutionProfile:
    """Observation hooks for profile-guided modelling (Section IV.B).

    Collects, per IR node identity, the dynamic trip counts of loops and
    the taken-fraction of conditionals during functional execution — the
    "profiling information" extension the paper sketches for improving on
    the 128-iteration / 50%-branch abstractions.
    """

    def __init__(self) -> None:
        self._loop_trips: dict[int, list[int]] = {}
        self._branch_outcomes: dict[int, list[bool]] = {}

    # -- recording (called by the executor) --------------------------------
    def record_loop(self, loop, trips: int) -> None:
        self._loop_trips.setdefault(id(loop), []).append(trips)

    def record_branch(self, if_stmt, taken: bool) -> None:
        self._branch_outcomes.setdefault(id(if_stmt), []).append(taken)

    # -- queries (consumed by the models) -----------------------------------
    def mean_trips(self, loop) -> float | None:
        """Average observed trip count of a loop (None = never executed)."""
        samples = self._loop_trips.get(id(loop))
        if not samples:
            return None
        return sum(samples) / len(samples)

    def taken_fraction(self, if_stmt) -> float | None:
        """Observed probability that a conditional's then-branch runs."""
        samples = self._branch_outcomes.get(id(if_stmt))
        if not samples:
            return None
        return sum(samples) / len(samples)

    @property
    def observed_loops(self) -> int:
        return len(self._loop_trips)

    @property
    def observed_branches(self) -> int:
        return len(self._branch_outcomes)

_BIN_FN = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
    "min": np.minimum,
    "max": np.maximum,
}
_UN_FN = {
    "neg": np.negative,
    "sqrt": np.sqrt,
    "abs": np.abs,
    "exp": np.exp,
}
_CMP_FN = {
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "eq": np.equal,
    "ne": np.not_equal,
}


def allocate_arrays(
    region: Region,
    env: Mapping[str, int],
    *,
    seed: int = 0,
) -> dict[str, np.ndarray]:
    """Allocate the region's arrays: inputs random, outputs zero-filled."""
    rng = np.random.default_rng(seed)
    out: dict[str, np.ndarray] = {}
    for arr in region.arrays.values():
        shape = tuple(int(dim.evaluate(env)) for dim in arr.shape)
        if arr.is_input:
            data = rng.uniform(0.1, 1.0, size=shape).astype(arr.dtype.np)
        else:
            data = np.zeros(shape, dtype=arr.dtype.np)
        out[arr.name] = data
    return out


def execute_region(
    region: Region,
    arrays: Mapping[str, np.ndarray],
    scalars: Mapping[str, float] | None = None,
    env: Mapping[str, int] | None = None,
    *,
    profile: "ExecutionProfile | None" = None,
) -> None:
    """Run the region's loop nest, mutating output arrays in place.

    ``env`` binds size parameters; ``scalars`` binds scalar kernel
    arguments (``alpha``...).  Raises ``KeyError`` for anything unbound.
    Pass an :class:`ExecutionProfile` to record trip counts and branch
    outcomes for profile-guided modelling.
    """
    env = dict(env or {})
    scalars = dict(scalars or {})
    for name in region.scalar_args:
        if name not in scalars:
            raise KeyError(f"scalar argument {name!r} not supplied")
    for name in region.arrays:
        if name not in arrays:
            raise KeyError(f"array {name!r} not supplied")

    _exec_stmts(region.body, arrays, scalars, dict(env), {}, profile)


def _exec_stmts(
    stmts: list[Stmt],
    arrays: Mapping[str, np.ndarray],
    scalars: Mapping[str, float],
    bindings: dict[str, float],
    locals_: dict[str, float],
    profile: "ExecutionProfile | None" = None,
) -> None:
    for s in stmts:
        if isinstance(s, Loop):
            start = int(s.start.evaluate(bindings))
            count = int(s.count.evaluate(bindings))
            if profile is not None:
                profile.record_loop(s, count)
            var = s.var.name
            for k in range(start, start + count):
                bindings[var] = k
                _exec_stmts(s.body, arrays, scalars, bindings, locals_, profile)
            bindings.pop(var, None)
        elif isinstance(s, If):
            taken = _eval(s.cond, arrays, scalars, bindings, locals_)
            if profile is not None:
                profile.record_branch(s, taken)
            if taken:
                _exec_stmts(s.then_body, arrays, scalars, bindings, locals_, profile)
            else:
                _exec_stmts(s.else_body, arrays, scalars, bindings, locals_, profile)
        elif isinstance(s, ReduceStore):
            idx = tuple(int(i.evaluate(bindings)) for i in s.idxs)
            contribution = _eval(s.value, arrays, scalars, bindings, locals_)
            arrays[s.array.name][idx] = _BIN_FN[s.op](
                arrays[s.array.name][idx], contribution
            )
        elif isinstance(s, Store):
            idx = tuple(int(i.evaluate(bindings)) for i in s.idxs)
            arrays[s.array.name][idx] = _eval(
                s.value, arrays, scalars, bindings, locals_
            )
        elif isinstance(s, LocalDef):
            locals_[s.name] = _eval(s.init, arrays, scalars, bindings, locals_)
        elif isinstance(s, LocalAssign):
            if s.name not in locals_:
                raise KeyError(f"assignment to undefined local %{s.name}")
            locals_[s.name] = _eval(s.value, arrays, scalars, bindings, locals_)
        else:  # pragma: no cover - validator precludes this
            raise TypeError(f"cannot execute {type(s).__name__}")


def _eval(
    v: VExpr,
    arrays: Mapping[str, np.ndarray],
    scalars: Mapping[str, float],
    bindings: Mapping[str, float],
    locals_: Mapping[str, float],
):
    if isinstance(v, ConstV):
        return v.value
    if isinstance(v, ScalarArg):
        return scalars[v.name]
    if isinstance(v, LocalRef):
        return locals_[v.name]
    if isinstance(v, Load):
        idx = tuple(int(i.evaluate(bindings)) for i in v.idxs)
        return arrays[v.array.name][idx]
    if isinstance(v, Bin):
        return _BIN_FN[v.op](
            _eval(v.lhs, arrays, scalars, bindings, locals_),
            _eval(v.rhs, arrays, scalars, bindings, locals_),
        )
    if isinstance(v, Un):
        return _UN_FN[v.op](_eval(v.operand, arrays, scalars, bindings, locals_))
    if isinstance(v, Cmp):
        return bool(
            _CMP_FN[v.op](
                _eval(v.lhs, arrays, scalars, bindings, locals_),
                _eval(v.rhs, arrays, scalars, bindings, locals_),
            )
        )
    if isinstance(v, Select):
        if _eval(v.cond, arrays, scalars, bindings, locals_):
            return _eval(v.if_true, arrays, scalars, bindings, locals_)
        return _eval(v.if_false, arrays, scalars, bindings, locals_)
    raise TypeError(f"cannot evaluate {type(v).__name__}")  # pragma: no cover
