"""Warp-level semi-analytic GPU timing simulator (the "measured" GPU time).

Plays the role of the K80/V100 silicon.  Where the Hong-model predictor
abstracts, this simulator resolves:

* **actual trip counts** per thread (no 128-iteration assumption);
* a **cache hierarchy** — per-access reuse analysis at sector granularity,
  with warp-shared footprints recognised (small inter-thread strides put a
  whole warp on the same lines);
* **exact transactions** per warp access from the bound IPDA strides;
* a device-wide **DRAM bandwidth roofline**, an issue-throughput bound, and
  a Little's-law memory bound: with N resident warps each keeping one
  request in flight, an SM retires at most ``N / latency`` requests per
  cycle, capped by the per-request service occupancy (transactions ×
  sector-service time).  Small N therefore exposes latency — the same
  physics MWP models, computed here with cache-aware latencies.

Kernel time = max(issue bound, memory bound) per wave × waves, floored by
the DRAM roofline, plus launch overhead.  Transfers are simulated
separately (:mod:`repro.sim.interconnect_sim`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..analysis import extract_loadout, nest_trips
from ..codegen import DEFAULT_THREADS_PER_BLOCK, GPULaunchPlan, plan_gpu_launch
from ..ipda import analyze_region
from ..ir import Region
from ..ir.visit import count_reductions, memory_accesses
from ..machines import GPUDescriptor
from ..obs.tracer import current_tracer
from .locality import (
    AccessLocality,
    AccessSpec,
    CacheLevel,
    LoopExtent,
    MemoryHierarchy,
    analyze_access,
    group_accesses,
)

__all__ = ["GPUSimResult", "simulate_gpu_kernel"]

#: Cycles to service one extra 32B sector of an already-issued request.
SECTOR_SERVICE_CYCLES = 2.0

#: Issue-cycle weight of special-function instructions (few SFU lanes).
SFU_ISSUE_WEIGHT = 8.0

#: Memory-level parallelism per warp: compilers unroll and hoist loads, so
#: one warp keeps several independent requests in flight between uses.
WARP_MLP = 6.0


@dataclass(frozen=True)
class GPUSimResult:
    """Simulated device execution of one kernel (excluding transfers)."""

    region_name: str
    gpu_name: str
    plan: GPULaunchPlan
    issue_seconds: float  # issue-throughput bound (per whole kernel)
    memory_seconds: float  # Little's-law memory bound (latency/occupancy)
    bandwidth_seconds: float  # DRAM roofline
    l2_bandwidth_seconds: float  # L2→SM roofline
    launch_seconds: float
    dram_bytes: float
    seconds: float

    @property
    def bound(self) -> str:
        terms = {
            "issue": self.issue_seconds,
            "memory": self.memory_seconds,
            "bandwidth": self.bandwidth_seconds,
            "l2": self.l2_bandwidth_seconds,
        }
        return max(terms, key=terms.get)


def _gpu_hierarchy(
    gpu: GPUDescriptor, l1_div: float, l2_div: float
) -> MemoryHierarchy:
    """Sector-granular cache stack with per-level capacity-share divisors.

    L1 is per-SM (shared by that SM's resident warps); L2 is device-wide
    (shared by every resident warp on every active SM).  The divisors say
    how many *distinct* footprints compete for each level for this access.
    """
    l1_cap = max(64.0, gpu.l1_kib_per_sm * 1024 / l1_div)
    l2_cap = max(l1_cap + 1.0, gpu.l2_kib * 1024 / l2_div)
    return MemoryHierarchy(
        levels=(
            CacheLevel("L1", l1_cap, gpu.l1_latency),
            CacheLevel("L2", l2_cap, gpu.l2_latency),
        ),
        dram_latency_cycles=gpu.mem_latency,
        line_bytes=gpu.sector_bytes,
    )


def simulate_gpu_kernel(
    region: Region,
    gpu: GPUDescriptor,
    env: Mapping[str, int],
    *,
    threads_per_block: int = DEFAULT_THREADS_PER_BLOCK,
) -> GPUSimResult:
    """Simulate one kernel launch with actual sizes and real coalescing."""
    tracer = current_tracer()
    if not tracer.enabled:
        return _simulate_gpu_kernel(
            region, gpu, env, threads_per_block=threads_per_block
        )
    with tracer.span("sim.gpu", region=region.name, gpu=gpu.name) as sp:
        result = _simulate_gpu_kernel(
            region, gpu, env, threads_per_block=threads_per_block
        )
        sp.set("seconds", result.seconds)
        return result


def _simulate_gpu_kernel(
    region: Region,
    gpu: GPUDescriptor,
    env: Mapping[str, int],
    *,
    threads_per_block: int = DEFAULT_THREADS_PER_BLOCK,
) -> GPUSimResult:
    parallel_iters = int(region.parallel_iterations().evaluate(env))
    plan = plan_gpu_launch(
        parallel_iters, gpu, threads_per_block=threads_per_block
    )
    trip_of = nest_trips(region, env)
    loadout = extract_loadout(region, trip_of)
    ipda = analyze_region(region).bind(
        env, sector_bytes=gpu.sector_bytes, warp_size=gpu.warp_size
    )
    accesses = memory_accesses(region)
    n_warps = plan.active_warps_per_sm
    total_threads = plan.total_threads

    # --- per-access locality at sector granularity -----------------------
    specs: list[AccessSpec] = []
    keys: list[tuple] = []
    hierarchies: list[MemoryHierarchy] = []
    for acc, bound, weight in zip(accesses, ipda.accesses, loadout.access_weights):
        loops: list[LoopExtent] = []
        for lp in reversed(acc.loop_path):
            if lp.parallel:
                continue  # the band is the thread space on the device
            coeff = bound.stride.loop_strides.get(lp.var.name)
            stride = None if coeff is None else float(coeff.evaluate(env))
            loops.append(LoopExtent(stride, max(1.0, trip_of(lp))))
        # an OMP_Rep > 1 thread revisits the body with a huge index jump
        if plan.omp_rep > 1:
            ts = bound.thread_stride_elems
            rep_stride = None if ts is None else float(ts * total_threads)
            loops.append(LoopExtent(rep_stride, float(plan.omp_rep)))
        count = weight.weight * plan.omp_rep
        array_bytes = (
            float(acc.array.element_count().evaluate(env)) * acc.dtype.size
        )
        specs.append(
            AccessSpec(
                elem_bytes=acc.dtype.size,
                loops=tuple(loops),
                dynamic_count=count,
                array_bytes=array_bytes,
                is_store=acc.is_store,
            )
        )
        # Capacity sharing depends on how thread footprints relate:
        # uniform (stride 0) data is one footprint device-wide; a small
        # inter-thread stride makes the warp share one footprint (but each
        # warp still has its own); large strides give every thread its own.
        ts = bound.thread_stride_elems
        device_warps = float(max(1, n_warps * plan.active_sms))
        if ts == 0:
            l1_div, l2_div = 1.0, 1.0
        elif ts is not None and abs(ts) * acc.dtype.size < gpu.sector_bytes * 2:
            l1_div, l2_div = float(n_warps), device_warps
        else:
            l1_div, l2_div = float(n_warps) * gpu.warp_size, device_warps * gpu.warp_size
        hierarchies.append(_gpu_hierarchy(gpu, l1_div, l2_div))
        stride_sig = tuple(
            (lp.var.name, repr(bound.stride.loop_strides.get(lp.var.name)))
            for lp in acc.loop_path
        )
        keys.append((acc.array.name, stride_sig))

    localities: dict[int, AccessLocality] = {}
    for group in group_accesses(keys):
        leader = group[0]
        loc = analyze_access(specs[leader], hierarchies[leader])
        localities[leader] = loc
        for other in group[1:]:
            localities[other] = AccessLocality(
                avg_latency_cycles=hierarchies[other].l1_latency,
                dram_bytes=0.0,
                cold_fraction=0.0,
                repeat_fraction=0.0,
                source="L1",
                repeat_level="L1",
            )

    # --- per-warp time components ----------------------------------------
    issue_cycles_per_inst = max(
        0.5,
        gpu.warp_size * gpu.warp_schedulers_per_sm / gpu.cores_per_sm / gpu.issue_rate,
    )
    comp_insts = (
        loadout.fp_insts
        + loadout.int_insts
        + loadout.branch_insts
        + SFU_ISSUE_WEIGHT * loadout.sfu_insts
    ) * plan.omp_rep
    mem_insts = loadout.mem_insts * plan.omp_rep

    lat_weighted = 0.0  # Σ count × latency (per warp, all requests)
    svc_weighted = 0.0  # Σ count × service occupancy
    device_dram_bytes = 0.0
    device_l2_bytes = 0.0  # traffic crossing the L2→SM interface
    l2_bytes = gpu.l2_kib * 1024.0
    for i, (bound, weight, spec) in enumerate(
        zip(ipda.accesses, loadout.access_weights, specs)
    ):
        loc = localities[i]
        txn = bound.transactions_per_access
        count = weight.weight * plan.omp_rep
        miss = loc.cold_fraction + loc.repeat_fraction
        lat_weighted += count * (
            loc.avg_latency_cycles + (txn - 1) * SECTOR_SERVICE_CYCLES * miss
        )
        # the memory pipe is only occupied for sectors actually fetched; an
        # L1 hit costs a single slot
        svc_weighted += count * (1.0 + txn * SECTOR_SERVICE_CYCLES * miss)
        access_bytes = loc.dram_bytes * txn * plan.total_warps
        if spec.array_bytes <= l2_bytes:
            # an L2-resident array is fetched from DRAM at most once per
            # wave, however many warps walk it
            access_bytes = min(access_bytes, spec.array_bytes * plan.rep)
        device_dram_bytes += access_bytes
        # everything sourced at or below L2 crosses the L2→SM interface
        l2_frac = loc.cold_fraction
        if loc.repeat_level == "L2":
            l2_frac += loc.repeat_fraction
        device_l2_bytes += (
            count * l2_frac * txn * gpu.sector_bytes * plan.total_warps
        )

    issue_per_wave = (comp_insts + mem_insts) * issue_cycles_per_inst * n_warps

    # Little's law: N warps with WARP_MLP requests in flight each retire at
    # most N*MLP/avg_latency requests per cycle; the memory pipe serves at
    # most one request per service-occupancy.  The slower rate prices the
    # wave.
    if mem_insts > 0:
        avg_lat = lat_weighted / mem_insts
        avg_svc = svc_weighted / mem_insts
        per_request = max(avg_lat / (n_warps * WARP_MLP), avg_svc)
        mem_per_wave = mem_insts * n_warps * per_request
    else:
        mem_per_wave = 0.0

    waves = plan.rep
    kernel_cycles = max(issue_per_wave, mem_per_wave) * waves
    n_red = count_reductions(region)
    if n_red:
        # block combining tree + one global atomic per block
        tree = math.log2(max(2, plan.threads_per_block)) * gpu.fp_latency
        kernel_cycles += n_red * (
            tree * waves + plan.num_blocks * gpu.atomic_cycles / 16.0
        )
    issue_seconds = gpu.cycles_to_seconds(issue_per_wave * waves)
    memory_seconds = gpu.cycles_to_seconds(mem_per_wave * waves)

    total_dram = device_dram_bytes
    bandwidth_seconds = total_dram / (gpu.mem_bandwidth_gbs * 1e9)
    l2_bandwidth_seconds = device_l2_bytes / (gpu.l2_bandwidth_gbs * 1e9)

    launch_seconds = gpu.launch_overhead_us * 1e-6
    seconds = (
        max(
            gpu.cycles_to_seconds(kernel_cycles),
            bandwidth_seconds,
            l2_bandwidth_seconds,
        )
        + launch_seconds
    )
    return GPUSimResult(
        region_name=region.name,
        gpu_name=gpu.name,
        plan=plan,
        issue_seconds=issue_seconds,
        memory_seconds=memory_seconds,
        bandwidth_seconds=bandwidth_seconds,
        l2_bandwidth_seconds=l2_bandwidth_seconds,
        launch_seconds=launch_seconds,
        dram_bytes=total_dram,
        seconds=seconds,
    )
