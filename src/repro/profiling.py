"""Profile-guided model refinement (the Section IV.B extension).

The paper's static abstraction prices every loop at 128 iterations and
every branch at 50% taken, noting that "extending this model to include
profiling information could result in more accurate modelling at the cost
of adding the profiling step to the framework".  This module is that
extension: run a region functionally on a (small) training input, record
loop trip counts and branch outcomes, and feed the observations back into
the hybrid predictor.

Profiling complements — never replaces — the runtime-value feed of
Figure 2: trip counts that runtime values resolve exactly keep their
resolved values; profiling fills in what remains (data-dependent branches,
loops whose bounds are not plain parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .analysis import InstructionLoadout, PAPER_BRANCH_PROBABILITY, extract_loadout
from .analysis.tripcount import PAPER_LOOP_TRIPS, TripFn
from .ir import If, Loop, Region
from .sim import ExecutionProfile, allocate_arrays, execute_region
from .symbolic import EvalError

__all__ = ["RegionProfile", "collect_profile", "profiled_trip_fn", "profiled_loadout"]


@dataclass(frozen=True)
class RegionProfile:
    """Profiling observations for one region on one training input."""

    region_name: str
    training_env: Mapping[str, int]
    profile: ExecutionProfile

    def mean_trips(self, loop: Loop) -> float | None:
        return self.profile.mean_trips(loop)

    def taken_fraction(self, if_stmt: If) -> float | None:
        return self.profile.taken_fraction(if_stmt)


def collect_profile(
    region: Region,
    training_env: Mapping[str, int],
    scalars: Mapping[str, float] | None = None,
    *,
    arrays: Mapping[str, np.ndarray] | None = None,
    seed: int = 0,
) -> RegionProfile:
    """Run the region functionally and record its dynamic behaviour.

    ``training_env`` should be a *small* input (the executor interprets
    element by element); the paper's caveat applies — profiling "is
    sensitive to the ability of selecting a collection of workloads that
    can reliably predict the runtime behaviour of future workloads".
    """
    if arrays is None:
        arrays = allocate_arrays(region, training_env, seed=seed)
    profile = ExecutionProfile()
    execute_region(region, arrays, scalars or {}, training_env, profile=profile)
    return RegionProfile(
        region_name=region.name,
        training_env=dict(training_env),
        profile=profile,
    )


def profiled_trip_fn(
    profile: RegionProfile,
    env: Mapping[str, float] | None = None,
    *,
    default: float = PAPER_LOOP_TRIPS,
) -> TripFn:
    """Trip function: runtime values first, then profile, then the 128s.

    When the training input and the launch input differ in size, observed
    trip counts are rescaled by the ratio of the loop bound evaluated at
    both sizes (when that is computable) — a loop profiled at 16 trips on
    an n=16 training run extrapolates to 9600 at n=9600.
    """
    env = dict(env or {})
    training = dict(profile.training_env)

    def trips(loop: Loop) -> float:
        # 1. exact runtime value
        try:
            return float(loop.count.evaluate(env))
        except EvalError:
            pass
        observed = profile.mean_trips(loop)
        if observed is None:
            return float(default)
        # 2. profile observation, rescaled across input sizes if possible
        try:
            at_training = float(loop.count.evaluate(training))
            at_launch = float(loop.count.evaluate({**training, **env}))
            if at_training > 0:
                return observed * (at_launch / at_training)
        except EvalError:
            pass
        return float(observed)

    return trips


def profiled_loadout(
    region: Region,
    profile: RegionProfile,
    env: Mapping[str, float] | None = None,
) -> InstructionLoadout:
    """Instruction loadout with profiled branch probabilities and trips."""

    def branch_probability(if_stmt: If) -> float:
        observed = profile.taken_fraction(if_stmt)
        return PAPER_BRANCH_PROBABILITY if observed is None else observed

    return extract_loadout(
        region,
        profiled_trip_fn(profile, env),
        branch_probability=branch_probability,
    )
