"""The Hong & Kim GPU analytical model with the paper's extensions.

Implements the MWP/CWP (memory-warp / compute-warp parallelism) equations
of Figures 4 and 5, with the two modifications Section IV.B/IV.C describe:

* the ``#OMP_Rep`` factor — when the runtime's capped grid geometry leaves
  fewer threads than parallel-loop iterations, every thread executes
  ``#OMP_Rep`` distinct iterations, multiplying the cycle estimate;
* IPDA-driven coalescing — ``#Coal_Mem_insts`` / ``#Uncoal_Mem_insts`` come
  from symbolic inter-thread stride analysis bound with runtime values,
  instead of trace/profile-driven estimates.

Notation follows Hong & Kim [11]: one warp alternates computation periods
(``Comp_Cycles / #Mem_insts`` between consecutive memory instructions) and
memory waiting periods; MWP says how many warps can overlap their memory
periods, CWP how many warps' compute the memory period of one warp could
hide.  Three regimes follow (Figure 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..analysis import InstructionLoadout
from ..codegen import GPULaunchPlan
from ..ipda import BoundIPDA
from ..machines import GPUDescriptor, InterconnectDescriptor
from .transfer import TransferEstimate, estimate_transfer

__all__ = ["GPUPrediction", "predict_gpu_time", "MWPCWPInputs", "mwp_cwp"]

#: Hong & Kim departure delays (cycles between consecutive memory requests
#: leaving one SM) for coalesced and uncoalesced warp accesses.
DEPARTURE_DELAY_COAL = 4.0
DEPARTURE_DELAY_UNCOAL = 10.0

#: Issue-cycle weight of a special-function (div/sqrt/exp) instruction
#: relative to an ordinary ALU instruction (few SFU lanes per SM).
SFU_ISSUE_WEIGHT = 8.0


@dataclass(frozen=True)
class MWPCWPInputs:
    """Inputs to the Figure-5 equations, fully resolved."""

    n_active_warps: float  # N
    mem_latency: float  # Mem_L (weighted by coalescing mix)
    departure_delay: float
    mem_cycles: float  # per-thread (warp) memory waiting cycles
    comp_cycles: float  # per-thread (warp) computation cycles
    mem_insts: float  # per-thread dynamic memory instructions
    load_bytes_per_warp: float
    active_sms: int


@dataclass(frozen=True)
class MWPCWPResult:
    """MWP/CWP and the execution-cycle regime chosen (Figure 4)."""

    mwp: float
    cwp: float
    mwp_without_bw: float
    mwp_peak_bw: float
    case: str  # "balanced" | "memory-bound" | "compute-bound"
    exec_cycles_one_wave: float  # before #Rep x #OMP_Rep scaling


def mwp_cwp(inputs: MWPCWPInputs, gpu: GPUDescriptor) -> MWPCWPResult:
    """Evaluate the Figure-5 equations and pick the Figure-4 regime."""
    n = max(1.0, inputs.n_active_warps)
    mem_l = max(1.0, inputs.mem_latency)

    mwp_without_bw = mem_l / max(1.0, inputs.departure_delay)
    bw_per_warp = (
        gpu.clock_ghz * inputs.load_bytes_per_warp / mem_l
    )  # GB/s demanded by one warp's in-flight stream
    if bw_per_warp > 0 and inputs.active_sms > 0:
        mwp_peak_bw = gpu.mem_bandwidth_gbs / (
            bw_per_warp * inputs.active_sms
        )
    else:
        mwp_peak_bw = n
    mwp = max(1.0, min(mwp_without_bw, mwp_peak_bw, n))

    comp = max(1.0, inputs.comp_cycles)
    cwp_full = (inputs.mem_cycles + comp) / comp
    cwp = max(1.0, min(cwp_full, n))

    mem_insts = max(1.0, inputs.mem_insts)
    comp_per_period = inputs.comp_cycles / mem_insts

    if math.isclose(mwp, n, rel_tol=1e-9) and math.isclose(cwp, n, rel_tol=1e-9):
        case = "balanced"
        exec_cycles = (
            inputs.mem_cycles + inputs.comp_cycles + comp_per_period * (mwp - 1.0)
        )
    elif cwp >= mwp:
        case = "memory-bound"
        exec_cycles = (
            inputs.mem_cycles * (n / mwp) + comp_per_period * (mwp - 1.0)
        )
    else:
        case = "compute-bound"
        exec_cycles = inputs.mem_latency + inputs.comp_cycles * n
    return MWPCWPResult(
        mwp=mwp,
        cwp=cwp,
        mwp_without_bw=mwp_without_bw,
        mwp_peak_bw=mwp_peak_bw,
        case=case,
        exec_cycles_one_wave=exec_cycles,
    )


@dataclass(frozen=True)
class GPUPrediction:
    """Predicted GPU offloading time with its model internals."""

    region_name: str
    gpu_name: str
    plan: GPULaunchPlan
    mwp: float
    cwp: float
    case: str
    coalesced_insts: float
    uncoalesced_insts: float
    mem_cycles: float
    comp_cycles: float
    exec_cycles: float  # total kernel cycles (all waves, all OMP reps)
    kernel_seconds: float
    launch_seconds: float
    transfer: TransferEstimate
    seconds: float  # total: kernel + launch + transfer


def predict_gpu_time(
    region_name: str,
    loadout: InstructionLoadout,
    ipda: BoundIPDA,
    plan: GPULaunchPlan,
    gpu: GPUDescriptor,
    bus: InterconnectDescriptor,
    bytes_to_device: int,
    bytes_to_host: int,
    num_reductions: int = 0,
) -> GPUPrediction:
    """Evaluate the extended Hong model for one kernel launch.

    ``num_reductions`` counts band-wide reduction clauses: each adds a
    block-level combining tree per thread block plus one global atomic per
    block to the cycle estimate.

    ``loadout`` gives per-work-item dynamic instruction counts;
    ``ipda`` gives the runtime-bound coalescing class per static access.
    The two join on static access order to split dynamic memory
    instructions into coalesced and uncoalesced populations.
    """
    if len(loadout.access_weights) != len(ipda.accesses):
        raise ValueError(
            "loadout and IPDA disagree on the region's static accesses"
        )

    coal_w = 0.0
    uncoal_w = 0.0
    txn_weighted = 0.0
    total_w = 0.0
    for w, b in zip(loadout.access_weights, ipda.accesses):
        if b.is_coalesced:
            coal_w += w.weight
        else:
            uncoal_w += w.weight
        txn_weighted += w.weight * b.transactions_per_access
        total_w += w.weight

    mem_insts = loadout.mem_insts
    # Per-warp latencies: an uncoalesced request serialises its extra
    # transactions behind the departure delay (Hong's Mem_L_Uncoal).
    # Coalesced streams are priced at the Table III "Access on L2 Hit"
    # latency — the adaptation to cached (Kepler+) architectures; the
    # uncoalesced path pays the full DRAM latency plus serialisation,
    # which deliberately over-accounts cache-friendly strided kernels
    # (the SYRK/conv over-estimation Section IV.E discusses).
    mean_txn = txn_weighted / total_w if total_w > 0 else 1.0
    mem_l_coal = float(gpu.l2_latency)
    mem_l_uncoal = gpu.mem_latency + (gpu.warp_size - 1) * DEPARTURE_DELAY_UNCOAL
    if mem_insts > 0:
        coal_ratio = coal_w / max(1e-12, coal_w + uncoal_w)
    else:
        coal_ratio = 1.0
    mem_l = mem_l_coal * coal_ratio + mem_l_uncoal * (1.0 - coal_ratio)
    departure = (
        DEPARTURE_DELAY_COAL * coal_ratio
        + DEPARTURE_DELAY_UNCOAL * mean_txn * (1.0 - coal_ratio)
    )

    mem_cycles = mem_l_uncoal * uncoal_w + mem_l_coal * coal_w

    # Computation cycles: warp-instruction issue cost times dynamic count.
    issue_cycles = max(
        0.5,
        gpu.warp_size
        * gpu.warp_schedulers_per_sm
        / gpu.cores_per_sm
        / gpu.issue_rate,
    )
    comp_cycles = issue_cycles * (
        loadout.fp_insts
        + loadout.int_insts
        + loadout.branch_insts
        + SFU_ISSUE_WEIGHT * loadout.sfu_insts
    )

    # Bytes one warp moves per memory period (drives MWP_peak_BW).
    load_bytes = mean_txn * gpu.sector_bytes

    result = mwp_cwp(
        MWPCWPInputs(
            n_active_warps=plan.active_warps_per_sm,
            mem_latency=mem_l,
            departure_delay=departure,
            mem_cycles=mem_cycles,
            comp_cycles=comp_cycles,
            mem_insts=mem_insts,
            load_bytes_per_warp=load_bytes,
            active_sms=plan.active_sms,
        ),
        gpu,
    )

    exec_cycles = result.exec_cycles_one_wave * plan.rep * plan.omp_rep
    if num_reductions:
        # block tree (log2(tpb) steps at FP latency) + one atomic per block,
        # atomics overlapping across the memory partitions
        tree = math.log2(max(2, plan.threads_per_block)) * gpu.fp_latency
        atomics = plan.num_blocks * gpu.atomic_cycles / 16.0
        exec_cycles += num_reductions * (tree * plan.rep + atomics)
    kernel_seconds = gpu.cycles_to_seconds(exec_cycles)
    transfer = estimate_transfer(bytes_to_device, bytes_to_host, bus)
    launch_seconds = gpu.launch_overhead_us * 1e-6
    return GPUPrediction(
        region_name=region_name,
        gpu_name=gpu.name,
        plan=plan,
        mwp=result.mwp,
        cwp=result.cwp,
        case=result.case,
        coalesced_insts=coal_w,
        uncoalesced_insts=uncoal_w,
        mem_cycles=mem_cycles,
        comp_cycles=comp_cycles,
        exec_cycles=exec_cycles,
        kernel_seconds=kernel_seconds,
        launch_seconds=launch_seconds,
        transfer=transfer,
        seconds=kernel_seconds + launch_seconds + transfer.total_seconds,
    )
