"""The OpenMP CPU cost model of Liao & Chapman (Figure 3, Table II).

Implements the parallel-region equations the paper derives from the OpenUH
model, specialised — like the paper's kernels — to strictly parallel-for
work-sharing::

    Parallel_Region_c = Fork_c
                      + max_i(Thread_i_exe)   (one work-shared loop)
                      + Join_c
    Parallel_for_c    = Schedule_times × (Schedule_c + Loop_chunk_c)
    Loop_chunk_c      = Machine_cycles_per_iter × Chunk_size
                      + Cache_c + Loop_overhead_c

``Machine_cycles_per_iter`` comes from the MCA substrate (Section IV.A.1),
replacing the OpenUH inner-scheduler coupling.  ``Cache_c`` is the TLB-cost
estimate of Table II (the model deliberately has *no* data-cache hierarchy
— the limitation Section IV.A.1 names as primary future work); everything
else is the Table II overhead constants carried by the CPU descriptor.
"""

from __future__ import annotations

from dataclasses import dataclass

import math
from typing import Callable, Mapping

from ..analysis import InstructionLoadout, nest_trips
from ..analysis.tripcount import PAPER_LOOP_TRIPS
from ..codegen import CPUPlan, OMPSchedule, plan_cpu_execution
from ..ipda import analyze_region
from ..ir import Region, count_reductions
from ..machines import CPUDescriptor
from ..mca import MachineOp, machine_cycles_per_iter
from ..symbolic import EvalError

__all__ = ["CPUPrediction", "predict_cpu_time"]


@dataclass(frozen=True)
class CPUPrediction:
    """Predicted host execution time with its Figure-3 breakdown."""

    region_name: str
    cpu_name: str
    plan: CPUPlan
    machine_cycles_per_iter: float
    fork_cycles: float
    schedule_cycles: float
    chunk_cycles: float
    cache_cycles: float  # the TLB term
    loop_overhead_cycles: float
    reduction_cycles: float
    join_cycles: float
    seconds: float

    @property
    def total_cycles(self) -> float:
        return (
            self.fork_cycles
            + self.schedule_cycles
            + self.chunk_cycles
            + self.cache_cycles
            + self.loop_overhead_cycles
            + self.reduction_cycles
            + self.join_cycles
        )

    def breakdown(self) -> dict[str, float]:
        """Component cycles keyed by the Figure-3 term names."""
        return {
            "Fork_c": self.fork_cycles,
            "Schedule_c": self.schedule_cycles,
            "Machine_cycles x Chunk": self.chunk_cycles,
            "Cache_c (TLB)": self.cache_cycles,
            "Loop_overhead_c": self.loop_overhead_cycles,
            "Reduction_c": self.reduction_cycles,
            "Join_c": self.join_cycles,
        }


def predict_cpu_time(
    region: Region,
    loadout: InstructionLoadout,
    parallel_iterations: int,
    cpu: CPUDescriptor,
    *,
    num_threads: int | None = None,
    env: dict | None = None,
    vectorize: bool = True,
    schedule: OMPSchedule = OMPSchedule.STATIC,
    chunk_size: int | None = None,
) -> CPUPrediction:
    """Evaluate the Liao model for one region launch.

    ``env`` carries whatever runtime values the attribute database supplied;
    inner-loop trip counts missing from it keep the paper's 128-iteration
    abstraction.  The execution time of the parallel region is that of the
    most loaded thread between the fork and the join.  A dynamic schedule
    pays Liao's ``Schedule_times × Schedule_c`` with the per-chunk dispatch
    cost instead of the one-off static partitioning cost.
    """
    plan = plan_cpu_execution(
        parallel_iterations,
        cpu,
        num_threads=num_threads,
        schedule=schedule,
        chunk_size=chunk_size,
    )
    trip_of = nest_trips(region, env or {}, default=PAPER_LOOP_TRIPS)
    classes = _classify_accesses(
        region, env or {}, cpu, plan.threads_per_core, trip_of
    )
    latency_of = _ipda_load_latency(classes, cpu)
    mc_per_iter = machine_cycles_per_iter(
        region, cpu, trip_of, vectorize=vectorize, latency_of=latency_of
    )
    # SMT sharing: with T threads per core, each thread sees a slice of the
    # core's issue capacity.  The critical-path thread therefore pays
    # T / smt_throughput(T) times its single-thread cycles.
    tpc = plan.threads_per_core
    smt_penalty = tpc / cpu.smt_throughput(tpc)

    chunk_iters = plan.iterations_per_thread
    chunk_cycles = mc_per_iter * chunk_iters * smt_penalty
    loop_overhead = cpu.loop_overhead_per_iter * chunk_iters
    # SMT threads on a core contend for the shared refill path
    busy_cores = min(cpu.cores, plan.num_threads)
    cache_cycles = _tlb_cost(loadout, chunk_iters, cpu) + _refill_cost(
        classes, loadout, chunk_iters, cpu, busy_cores, tpc
    ) * float(tpc)
    per_schedule = (
        cpu.par_schedule_static_cycles
        if plan.schedule is OMPSchedule.STATIC
        else cpu.par_schedule_dynamic_cycles
    )
    schedule_cycles = float(plan.schedule_times * per_schedule)
    # Table II overheads are EPCC-measured at the team size in use
    team_scale = cpu.team_overhead_scale(plan.num_threads)
    fork = cpu.par_startup_cycles * team_scale
    join = cpu.sync_cycles * team_scale
    # Liao's Reduction_c: a log2(team)-deep combining tree per clause
    n_red = count_reductions(region)
    reduction_cycles = (
        n_red * math.ceil(math.log2(max(2, plan.num_threads)))
        * cpu.reduction_step_cycles
        if n_red
        else 0.0
    )

    total = (
        fork
        + schedule_cycles
        + chunk_cycles
        + cache_cycles
        + loop_overhead
        + reduction_cycles
        + join
    )
    return CPUPrediction(
        region_name=region.name,
        cpu_name=cpu.name,
        plan=plan,
        machine_cycles_per_iter=mc_per_iter,
        fork_cycles=fork,
        schedule_cycles=schedule_cycles,
        chunk_cycles=chunk_cycles,
        cache_cycles=cache_cycles,
        loop_overhead_cycles=loop_overhead,
        reduction_cycles=reduction_cycles,
        join_cycles=join,
        seconds=cpu.cycles_to_seconds(total),
    )


@dataclass(frozen=True)
class _AccessClass:
    """IPDA-derived memory class of one static access (predictor view)."""

    new_line_fraction: float  # fraction of executions starting a new line
    class_latency: float  # latency of the level the array maps to
    beyond_l1: bool  # whether refills actually leave L1
    l3_resident: bool  # whole array fits the socket's aggregate L3 (warm)
    sweep_bytes: float  # footprint of one innermost-stride sweep


def _classify_accesses(
    region: Region,
    env: Mapping[str, float],
    cpu: CPUDescriptor,
    threads_per_core: int,
    trip_of=None,
) -> list[_AccessClass]:
    """The predictor's ``Cache_c`` memory classes (Section II.C).

    The hybrid analysis uses IPDA strides and runtime array sizes to
    estimate, per access, how often a new cache line is touched, which
    level the array's size maps it to, and how big one innermost sweep is.
    No reuse-distance analysis, no stencil grouping, no repeat detection —
    the detailed hierarchy remains the simulator's (and real hardware's)
    edge, the gap Section IV.A.1 calls the model's primary limitation.
    """
    ipda = analyze_region(region)
    line = float(cpu.cacheline_bytes)
    aggregate_l3 = cpu.l3_kib_per_core * 1024.0 * cpu.cores
    out: list[_AccessClass] = []
    for acc in ipda.accesses:
        elem = acc.elem_bytes
        # innermost enclosing loop with a non-zero resolvable stride
        stride_bytes = 0.0
        sweep_trips = 1.0
        for lp in reversed(acc.access.loop_path):
            coeff = acc.loop_strides.get(lp.var.name)
            if coeff is None:
                continue
            try:
                val = abs(float(coeff.evaluate(env))) * elem
            except EvalError:
                continue
            if val > 0:
                stride_bytes = val
                if trip_of is not None:
                    sweep_trips = float(trip_of(lp))
                else:
                    try:
                        sweep_trips = float(lp.count.evaluate(env))
                    except EvalError:
                        sweep_trips = 128.0  # the static abstraction
                break
        try:
            array_bytes = (
                float(acc.access.array.element_count().evaluate(env)) * elem
            )
        except EvalError:
            array_bytes = float("inf")
        beyond_l1 = array_bytes > cpu.l1_kib * 1024
        l3_resident = array_bytes <= aggregate_l3
        if not beyond_l1:
            class_lat = float(cpu.l1_latency)
        elif array_bytes <= cpu.l2_kib * 1024:
            class_lat = float(cpu.l2_latency)
        elif l3_resident:
            class_lat = float(cpu.l3_latency)
        else:
            # streaming big arrays: hardware prefetch hides most of DRAM
            class_lat = float(cpu.l3_latency) + 0.25 * (
                cpu.dram_latency - cpu.l3_latency
            )
        new_line = min(1.0, stride_bytes / line) if stride_bytes else 0.0
        sweep_bytes = sweep_trips * min(line, max(stride_bytes, elem))
        out.append(
            _AccessClass(new_line, class_lat, beyond_l1, l3_resident, sweep_bytes)
        )
    return out


def _ipda_load_latency(
    classes: list[_AccessClass], cpu: CPUDescriptor
) -> Callable[[MachineOp], float]:
    """Per-load latency override for the MCA scoreboard."""
    latencies = {
        i: cpu.l1_latency + c.new_line_fraction * (c.class_latency - cpu.l1_latency)
        for i, c in enumerate(classes)
    }

    def latency_of(op: MachineOp) -> float:
        if op.opcode in ("load", "vload") and " acc:" in op.tag:
            idx = int(op.tag.rsplit("acc:", 1)[1])
            if idx in latencies:
                return latencies[idx]
        return float(cpu.latency(op.opcode))

    return latency_of


def _refill_cost(
    classes: list[_AccessClass],
    loadout: InstructionLoadout,
    chunk_iters: int,
    cpu: CPUDescriptor,
    busy_cores: int,
    threads_per_core: int,
) -> float:
    """The throughput half of ``Cache_c``: line-refill occupancy cycles.

    The scoreboard hides refill *latency* behind independent work, but a
    line crossing L1 still occupies a refill path for
    ``line_bytes / refill_rate`` cycles — unhidable for walks that touch a
    new line per element.  The rate depends on where the lines come from:

    * an L3-resident (warm) array refills at the L3 rate;
    * a *dense* line-crossing walk whose sweep fits this thread's L3 share
      re-visits cached lines (L3 rate); the overhanging fraction of a
      too-big sweep spills to DRAM;
    * a *sparse* spatial stream over a big array fetches fresh lines at
      this core's share of sustained DRAM bandwidth.
    """
    l3_bytes_per_cycle = cpu.l3_refill_gbs_per_core / cpu.frequency_ghz
    dram_share_gbs = min(
        cpu.l3_refill_gbs_per_core,
        cpu.dram_bw_gbs * cpu.stream_efficiency / max(1, busy_cores),
    )
    dram_bytes_per_cycle = dram_share_gbs / cpu.frequency_ghz
    l3_share = cpu.l3_kib_per_core * 1024.0 / max(1, threads_per_core)
    line = float(cpu.cacheline_bytes)
    per_iter = 0.0
    for w, cls in zip(loadout.access_weights, classes):
        if not cls.beyond_l1:
            continue
        # Dense walks re-fetch a line per access event; with outer-loop
        # vectorization one vector load covers `lanes` elements, so the
        # event count shrinks.  Sparse streams are priced by *bytes*
        # (line granularity), which vectorization does not change.
        lanes = (
            cpu.vector_lanes(4) if cpu.outer_loop_vectorization else 1
        )
        if cls.l3_resident:
            cycles_per_refill = line / l3_bytes_per_cycle / lanes
        elif cls.new_line_fraction >= 0.99:
            fit = min(1.0, l3_share / max(1.0, cls.sweep_bytes))
            cycles_per_refill = (
                line * fit / l3_bytes_per_cycle / lanes
                + line * (1.0 - fit) / dram_bytes_per_cycle
            )
        else:
            cycles_per_refill = line / dram_bytes_per_cycle
        per_iter += w.weight * cls.new_line_fraction * cycles_per_refill
    return per_iter * chunk_iters


def _tlb_cost(
    loadout: InstructionLoadout, chunk_iters: int, cpu: CPUDescriptor
) -> float:
    """Table II's TLB-miss estimate (the model's only memory-system term).

    A thread's chunk touches roughly ``bytes_per_iter × chunk`` of data;
    every page beyond what the TLB covers costs one miss penalty.
    """
    bytes_per_iter = sum(
        w.weight * w.elem_bytes for w in loadout.access_weights
    )
    chunk_bytes = bytes_per_iter * chunk_iters
    pages = chunk_bytes / cpu.page_bytes
    covered = float(cpu.tlb_entries)
    misses = max(0.0, pages - covered)
    return misses * cpu.tlb_miss_penalty
