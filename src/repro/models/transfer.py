"""Host↔device data-transfer cost model.

Kernel execution time in all the paper's experiments *includes data
transfer* (but not CUDA context initialization), so the GPU predictor must
price moving the region's mapped arrays both ways.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines import InterconnectDescriptor

__all__ = ["TransferEstimate", "estimate_transfer"]


@dataclass(frozen=True)
class TransferEstimate:
    """Predicted host↔device movement cost for one region launch."""

    bytes_to_device: int
    bytes_to_host: int
    seconds_to_device: float
    seconds_to_host: float

    @property
    def total_seconds(self) -> float:
        return self.seconds_to_device + self.seconds_to_host

    @property
    def total_bytes(self) -> int:
        return self.bytes_to_device + self.bytes_to_host


def estimate_transfer(
    bytes_to_device: int,
    bytes_to_host: int,
    bus: InterconnectDescriptor,
) -> TransferEstimate:
    """Price the two mapped-data movements over the given bus.

    Raises :class:`ValueError` on a negative byte count in either
    direction — a sign of a corrupted binding upstream that would
    otherwise surface as a nonsensical (negative) predicted time.
    """
    if bytes_to_device < 0 or bytes_to_host < 0:
        raise ValueError(
            f"negative transfer size (to_device={bytes_to_device}, "
            f"to_host={bytes_to_host} bytes)"
        )
    return TransferEstimate(
        bytes_to_device=bytes_to_device,
        bytes_to_host=bytes_to_host,
        seconds_to_device=bus.transfer_seconds(bytes_to_device),
        seconds_to_host=bus.transfer_seconds(bytes_to_host),
    )
