"""Cooperative CPU+GPU split execution (the Introduction's motivation).

The paper opens with Valero-Lara et al.'s observation that "for some
tasks, a split of the computation between CPU and GPU execution leads to
better performance".  With both analytical models in hand, the optimal
static split falls out of the same machinery: give a fraction ``f`` of
the parallel band to the device and the rest to the host, predict each
side, and minimise the makespan ``max(T_cpu(1-f), T_gpu(f))``.

The device's transfer volume is scaled by its share — valid for arrays
whose extent is proportional to the parallel band (our suite shape); the
region's broadcast operands (read by every iteration) are transferred in
full whenever ``f > 0``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import BoundAttributes
from ..codegen import DEFAULT_THREADS_PER_BLOCK, plan_gpu_launch
from ..ipda import CoalescingClass
from ..machines import Platform
from .cpu_model import predict_cpu_time
from .gpu_model import predict_gpu_time
from .selector import CalibrationLike

__all__ = ["SplitPrediction", "predict_split"]


@dataclass(frozen=True)
class SplitPrediction:
    """Best static CPU/GPU work split for one region launch."""

    region_name: str
    gpu_fraction: float  # share of parallel iterations offloaded
    makespan_seconds: float  # predicted time of the split execution
    cpu_only_seconds: float
    gpu_only_seconds: float
    curve: tuple[tuple[float, float], ...]  # (fraction, makespan) samples

    @property
    def speedup_over_best_single(self) -> float:
        best_single = min(self.cpu_only_seconds, self.gpu_only_seconds)
        return best_single / self.makespan_seconds

    @property
    def worthwhile(self) -> bool:
        """Does splitting beat running entirely on the better device?"""
        return self.speedup_over_best_single > 1.02  # beyond noise


def predict_split(
    bound: BoundAttributes,
    platform: Platform,
    *,
    num_threads: int | None = None,
    threads_per_block: int = DEFAULT_THREADS_PER_BLOCK,
    calibration: CalibrationLike | None = None,
    samples: int = 32,
) -> SplitPrediction:
    """Sweep the split fraction and return the predicted optimum.

    ``samples`` grid points of ``f`` in [0, 1] are evaluated; the two
    endpoints are the pure-CPU and pure-GPU predictions.
    """
    if samples < 3:
        raise ValueError("need at least 3 samples (the endpoints + one split)")
    iters = bound.parallel_iterations
    env = dict(bound.env)

    def cpu_seconds(share: int) -> float:
        if share <= 0:
            return 0.0
        pred = predict_cpu_time(
            bound.region,
            bound.loadout,
            share,
            platform.host,
            num_threads=num_threads,
            env=env,
        )
        scale = calibration.cpu_time_scale if calibration else 1.0
        return pred.seconds * scale

    def gpu_seconds(share: int) -> float:
        if share <= 0:
            return 0.0
        plan = plan_gpu_launch(
            share, platform.gpu, threads_per_block=threads_per_block
        )
        frac = share / iters
        to_dev, to_host = _scaled_transfers(bound, frac)
        pred = predict_gpu_time(
            bound.region.name,
            bound.loadout,
            bound.ipda,
            plan,
            platform.gpu,
            platform.bus,
            to_dev,
            to_host,
        )
        scale = calibration.gpu_time_scale if calibration else 1.0
        return (
            pred.kernel_seconds * scale
            + pred.launch_seconds
            + pred.transfer.total_seconds
        )

    curve: list[tuple[float, float]] = []
    best_f, best_t = 0.0, float("inf")
    for k in range(samples):
        f = k / (samples - 1)
        gpu_share = round(iters * f)
        cpu_share = iters - gpu_share
        makespan = max(cpu_seconds(cpu_share), gpu_seconds(gpu_share))
        curve.append((f, makespan))
        if makespan < best_t:
            best_f, best_t = f, makespan

    return SplitPrediction(
        region_name=bound.region.name,
        gpu_fraction=best_f,
        makespan_seconds=best_t,
        cpu_only_seconds=curve[0][1],
        gpu_only_seconds=curve[-1][1],
        curve=tuple(curve),
    )


def _scaled_transfers(bound: BoundAttributes, fraction: float) -> tuple[int, int]:
    """Device transfer bytes when only ``fraction`` of the band offloads.

    Arrays indexed by the band (non-uniform inter-thread stride) shrink
    with the share; broadcast operands (uniform, stride 0) must be copied
    whole whenever anything offloads.
    """
    if fraction <= 0:
        return 0, 0
    env = dict(bound.env)
    to_dev = 0.0
    to_host = 0.0
    uniform_arrays = {
        b.stride.access.array.name
        for b in bound.ipda.accesses
        if b.coalescing is CoalescingClass.UNIFORM
    }
    partitioned = {
        b.stride.access.array.name
        for b in bound.ipda.accesses
        if b.coalescing is not CoalescingClass.UNIFORM
    }
    for arr in bound.region.arrays.values():
        nbytes = int(arr.element_count().evaluate(env)) * arr.dtype.size
        share = 1.0 if (arr.name in uniform_arrays and arr.name not in partitioned) else fraction
        if arr.is_input:
            to_dev += nbytes * share
        if arr.is_output:
            to_host += nbytes * share
    return int(to_dev), int(to_host)
