"""The combined predictor: evaluate both models and pick a target.

Section IV.D — "the model that results in the lowest predicted runtime is
chosen as the winner".  This module wires bound attributes, launch plans
and the two analytical models into one call the runtime invokes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Protocol

from ..analysis import BoundAttributes
from ..codegen import DEFAULT_THREADS_PER_BLOCK, plan_gpu_launch
from ..machines import Platform
from .cpu_model import CPUPrediction, predict_cpu_time
from .gpu_model import GPUPrediction, predict_gpu_time

__all__ = ["SelectionPrediction", "predict_both", "CalibrationLike"]


class CalibrationLike(Protocol):
    """Microbenchmark-fitted scale constants (see repro.calibrate)."""

    cpu_time_scale: float
    gpu_time_scale: float


@dataclass(frozen=True)
class SelectionPrediction:
    """Both predictions plus the resulting offloading decision."""

    cpu: CPUPrediction
    gpu: GPUPrediction

    @property
    def offload(self) -> bool:
        """True when the GPU version is predicted to be faster."""
        return self.gpu.seconds < self.cpu.seconds

    @property
    def predicted_speedup(self) -> float:
        """Predicted GPU-offloading speedup (CPU time / GPU time)."""
        return self.cpu.seconds / self.gpu.seconds

    @property
    def winner(self) -> str:
        return "gpu" if self.offload else "cpu"

    def scaled(
        self, cpu_scale: float = 1.0, gpu_scale: float = 1.0
    ) -> "SelectionPrediction":
        """A copy with either side's predicted seconds multiplied.

        The drift machinery's common operation: apply a learned correction
        factor (or an injected calibration skew) to one side without
        rebuilding the underlying model predictions.  Returns ``self``
        when both scales are exactly 1, so the untouched object keeps
        identity-level comparability.
        """
        if cpu_scale == 1.0 and gpu_scale == 1.0:
            return self
        return SelectionPrediction(
            cpu=dataclasses.replace(
                self.cpu, seconds=self.cpu.seconds * cpu_scale
            ),
            gpu=dataclasses.replace(
                self.gpu, seconds=self.gpu.seconds * gpu_scale
            ),
        )


def predict_both(
    bound: BoundAttributes,
    platform: Platform,
    *,
    num_threads: int | None = None,
    threads_per_block: int = DEFAULT_THREADS_PER_BLOCK,
    use_runtime_tripcounts: bool = True,
    calibration: CalibrationLike | None = None,
) -> SelectionPrediction:
    """Evaluate the CPU and GPU analytical models for one region launch.

    Figure 2's runtime half supplies "array sizes, loop trip counts,
    arbitrary variable values" — so by default every trip count that a
    runtime value can resolve is resolved, and only genuinely
    undiscoverable counts keep the 128-iteration compile-time abstraction
    (``hybrid_trips``).  ``use_runtime_tripcounts=False`` forces the pure
    static abstraction everywhere — the degraded predictor Section IV.E's
    error discussion contemplates — and is exercised as an ablation.
    """
    loadout = (
        bound.loadout
        if use_runtime_tripcounts
        else bound.attributes.static_loadout
    )
    env = dict(bound.env) if use_runtime_tripcounts else {}
    cpu_pred = predict_cpu_time(
        bound.region,
        loadout,
        bound.parallel_iterations,
        platform.host,
        num_threads=num_threads,
        env=env,
    )
    plan = plan_gpu_launch(
        bound.parallel_iterations,
        platform.gpu,
        threads_per_block=threads_per_block,
    )
    from ..ir import count_reductions

    gpu_pred = predict_gpu_time(
        bound.region.name,
        loadout,
        bound.ipda,
        plan,
        platform.gpu,
        platform.bus,
        bound.bytes_to_device,
        bound.bytes_to_host,
        num_reductions=count_reductions(bound.region),
    )
    if calibration is not None:
        cpu_pred = dataclasses.replace(
            cpu_pred, seconds=cpu_pred.seconds * calibration.cpu_time_scale
        )
        kernel = gpu_pred.kernel_seconds * calibration.gpu_time_scale
        gpu_pred = dataclasses.replace(
            gpu_pred,
            kernel_seconds=kernel,
            seconds=kernel
            + gpu_pred.launch_seconds
            + gpu_pred.transfer.total_seconds,
        )
    return SelectionPrediction(cpu=cpu_pred, gpu=gpu_pred)
