"""Analytical performance models (the paper's core contribution).

* :mod:`.cpu_model` — Liao & Chapman OpenMP cost model (Figure 3/Table II)
  with MCA-derived ``Machine_cycles_per_iter``;
* :mod:`.gpu_model` — Hong & Kim MWP/CWP model (Figures 4-5) extended with
  ``#OMP_Rep`` and IPDA coalescing;
* :mod:`.transfer` — interconnect cost;
* :mod:`.selector` — the combined lowest-predicted-time decision.
"""

from .transfer import TransferEstimate, estimate_transfer
from .cpu_model import CPUPrediction, predict_cpu_time
from .gpu_model import (
    DEPARTURE_DELAY_COAL,
    DEPARTURE_DELAY_UNCOAL,
    GPUPrediction,
    MWPCWPInputs,
    MWPCWPResult,
    mwp_cwp,
    predict_gpu_time,
)
from .selector import CalibrationLike, SelectionPrediction, predict_both
from .split import SplitPrediction, predict_split

__all__ = [
    "TransferEstimate",
    "estimate_transfer",
    "CPUPrediction",
    "predict_cpu_time",
    "DEPARTURE_DELAY_COAL",
    "DEPARTURE_DELAY_UNCOAL",
    "GPUPrediction",
    "MWPCWPInputs",
    "MWPCWPResult",
    "mwp_cwp",
    "predict_gpu_time",
    "CalibrationLike",
    "SelectionPrediction",
    "predict_both",
    "SplitPrediction",
    "predict_split",
]
