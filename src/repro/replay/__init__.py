"""Traffic-scale scenario replay: seeded workload generation, chaos
schedules, bounded admission control, and recovery scoring.

The experiments sweep the paper's kernel grid uniformly; this package
asks the production question instead — what does the selector do under
six hours of *traffic*?  A seeded :class:`WorkloadConfig` generates a
Zipf-popularity, bursty-arrival, mixed-size request trace on the
simulated clock; a :class:`ChaosSchedule` opens fault storms, device
brownouts, link degradation and genuine mid-stream hardware drift over
simulated-time windows; an :class:`AdmissionQueue` bounds the dispatch
backlog with reject / degrade-to-host / defer overload policies; and
:func:`score_run` reduces the whole run to steady-state selection
accuracy, dispatch-overhead tails, time-to-detect / time-to-recover per
window, and shed/degraded fractions.  See docs/ROBUSTNESS.md.
"""

from .admission import ADMISSION_POLICIES, AdmissionConfig, AdmissionQueue
from .chaos import CHAOS_KINDS, ChaosSchedule, ChaosWindow
from .engine import (
    MemoizedPolicy,
    ReplayConfig,
    ReplayEngine,
    ReplayOutcome,
    ReplayRun,
)
from .score import ReplayScore, TenantScore, WindowScore, score_run
from .service import DeviceLane, OffloadService, ServiceConfig, ServiceStats
from .workload import (
    CaseSpec,
    LaunchRequest,
    WorkloadConfig,
    build_catalog,
    generate_requests,
)

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionConfig",
    "AdmissionQueue",
    "CHAOS_KINDS",
    "CaseSpec",
    "ChaosSchedule",
    "ChaosWindow",
    "DeviceLane",
    "LaunchRequest",
    "MemoizedPolicy",
    "OffloadService",
    "ReplayConfig",
    "ReplayEngine",
    "ReplayOutcome",
    "ReplayRun",
    "ReplayScore",
    "ServiceConfig",
    "ServiceStats",
    "TenantScore",
    "WindowScore",
    "WorkloadConfig",
    "build_catalog",
    "generate_requests",
    "score_run",
]
