"""Bounded admission control for the replay engine's dispatch loop.

The engine models the selector as a **single-server FIFO** on the
simulated clock: launches are serviced in arrival order, each occupying
the server for its ``executed_seconds``.  The admission queue in front
of it is *bounded* — when an arrival finds ``capacity`` launches already
waiting or in service, the configured overload policy decides its fate:

* ``reject``  — the request is shed outright (the caller sees an error;
  the cheapest failure mode, and an honest one);
* ``degrade`` — the request runs **immediately on the host** via the
  runtimes' ``force_target="cpu"`` hook, skipping model evaluation and
  accelerator dispatch entirely: the host path is the overflow lane, so
  shedding load costs none of the machinery the queue is protecting;
* ``defer``   — the request parks in a second bounded buffer and is
  re-admitted (ahead of newer arrivals) once the queue drains below
  ``resume_depth``; a full park buffer sheds.

Everything is deterministic: depth is a pure function of the arrival
times and the simulated service times, so the same trace through the
same policy yields byte-identical accounting.  An **unbounded** queue
(``capacity=None``) admits everything and never consults the policy —
that configuration is the differential-test arm proving the queue is
pure bookkeeping on the happy path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionConfig",
    "AdmissionQueue",
]

ADMISSION_POLICIES = ("reject", "degrade", "defer")


@dataclass(frozen=True)
class AdmissionConfig:
    """Queue bound + overload policy.

    ``capacity`` counts waiting *and* in-service launches; ``None``
    disables admission control entirely (infinite queue, nothing shed).
    ``resume_depth`` (defer only) is the depth the queue must drain to
    before parked requests re-enter; ``defer_capacity`` bounds the park
    buffer.
    """

    capacity: int | None = None
    policy: str = "reject"
    defer_capacity: int = 64
    resume_depth: int | None = None  # default: capacity // 2

    def __post_init__(self):
        if self.capacity is not None and self.capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"policy must be one of {ADMISSION_POLICIES}, got {self.policy!r}"
            )
        if self.defer_capacity < 1:
            raise ValueError("defer_capacity must be >= 1")
        if self.resume_depth is not None and self.resume_depth < 0:
            raise ValueError("resume_depth must be >= 0")

    @property
    def bounded(self) -> bool:
        return self.capacity is not None

    @property
    def effective_resume_depth(self) -> int:
        if self.resume_depth is not None:
            return self.resume_depth
        return max((self.capacity or 2) // 2, 1)


class AdmissionQueue:
    """Deterministic single-server FIFO bookkeeping.

    The engine drives it with three calls per request: ``resumable`` /
    ``decide`` on arrival, then ``start``/``finish`` around each launch
    it actually runs.  The queue never touches the runtime — it only
    watches the clock arithmetic — so attaching it cannot perturb a
    single record.
    """

    def __init__(self, config: AdmissionConfig):
        self.config = config
        self._finish_times: deque[float] = deque()
        self._parked: deque = deque()
        # -- accounting ------------------------------------------------
        self.admitted = 0
        self.shed = 0
        self.degraded = 0
        self.deferred = 0
        self.resumed = 0
        self.max_depth = 0
        self.total_wait_s = 0.0
        self.max_wait_s = 0.0

    # -- depth -------------------------------------------------------------
    def depth(self, now: float) -> int:
        """Launches waiting or in service at ``now`` (drains finished)."""
        ft = self._finish_times
        while ft and ft[0] <= now:
            ft.popleft()
        return len(ft)

    @property
    def server_free_at(self) -> float:
        return self._finish_times[-1] if self._finish_times else 0.0

    # -- arrival -----------------------------------------------------------
    def resumable(self, now: float):
        """Parked requests ready to re-enter before this arrival."""
        resume_at = self.config.effective_resume_depth
        while self._parked and self.depth(now) < resume_at:
            self.resumed += 1
            yield self._parked.popleft()

    def decide(self, now: float) -> str:
        """``admit`` | ``degrade`` | ``shed`` | ``defer`` for one arrival."""
        cfg = self.config
        depth = self.depth(now)
        if not cfg.bounded or depth < cfg.capacity:
            return "admit"
        if cfg.policy == "degrade":
            self.degraded += 1
            return "degrade"
        if cfg.policy == "defer" and len(self._parked) < cfg.defer_capacity:
            self.deferred += 1
            return "defer"
        self.shed += 1
        return "shed"

    def park(self, request) -> None:
        self._parked.append(request)

    # -- service -----------------------------------------------------------
    def start(self, arrival_s: float) -> float:
        """Admit one launch; return its (FIFO) service start time."""
        start = max(arrival_s, self.server_free_at)
        wait = start - arrival_s
        self.admitted += 1
        self.total_wait_s += wait
        self.max_wait_s = max(self.max_wait_s, wait)
        return start

    def finish(self, start_s: float, service_s: float) -> float:
        """Record one launch's service; return its finish time."""
        finish = start_s + max(service_s, 0.0)
        self._finish_times.append(finish)
        self.max_depth = max(self.max_depth, len(self._finish_times))
        return finish

    @property
    def parked_count(self) -> int:
        return len(self._parked)

    def snapshot(self) -> dict:
        """Deterministic accounting dump for reports and gates."""
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "degraded": self.degraded,
            "deferred": self.deferred,
            "resumed": self.resumed,
            "max_depth": self.max_depth,
            "max_wait_s": self.max_wait_s,
            "total_wait_s": self.total_wait_s,
        }
