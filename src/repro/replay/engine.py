"""The traffic replay engine: trace in, scored run out.

``ReplayEngine`` marries the pieces: a generated request trace
(:mod:`.workload`), a chaos schedule compiled onto the runtime's
simulated clock (:mod:`.chaos`), a bounded admission queue
(:mod:`.admission`), and one of the offloading runtimes.  Per request it

1. re-admits any parked (deferred) requests the queue has drained
   enough to take back,
2. asks the admission queue for a verdict — ``admit`` launches through
   the full predict→dispatch path at the FIFO service start time,
   ``degrade`` runs the host-only ``force_target="cpu"`` path at the
   arrival time, ``shed`` drops the request, ``defer`` parks it —
3. advances the runtime's clock to the launch start (chaos windows and
   drift-transition timestamps live on this clock), launches, and books
   the service time back into the queue.

Two throughput levers make 10⁵-launch traces practical without touching
a single recorded value: an :class:`~repro.runtime.ExecutionMemo` caches
the deterministic per-(region, env) simulated times / bindings /
footprints inside the runtime, and :class:`MemoizedPolicy` caches the
policy's (target, prediction) per cached binding.  Both return the
*identical* objects a cold call would compute, so a memoized replay is
bit-identical to an unmemoized one — the differential tests pin this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import ProgramAttributeDatabase
from ..drift import DriftSentinel, Watchdog
from ..machines import Platform
from ..obs import MetricsRegistry
from ..runtime import (
    Budget,
    Bulkhead,
    ExecutionMemo,
    HedgePolicy,
    ModelGuided,
    MultiDeviceRuntime,
    OffloadingRuntime,
)
from .admission import AdmissionConfig, AdmissionQueue
from .chaos import ChaosSchedule
from .service import OffloadService, ServiceConfig
from .workload import LaunchRequest, WorkloadConfig, build_catalog, generate_requests

__all__ = [
    "MemoizedPolicy",
    "ReplayConfig",
    "ReplayOutcome",
    "ReplayRun",
    "ReplayEngine",
]


class MemoizedPolicy:
    """Cache a deterministic policy's decisions per (binding, sim times).

    The wrapped policy's ``choose`` is a pure function of the bound
    attributes, the platform, the team size and the simulated seconds it
    is offered, so its result can be replayed from a dict.  Keys use the
    *identity* of the bound-attributes object — the
    :class:`~repro.runtime.ExecutionMemo` hands the runtime the same
    object per (region, env), and the cache holds a strong reference to
    it, so an id can never be recycled under us.  Cache hits return the
    identical (target, prediction) objects, keeping records bit-identical
    to an unmemoized run.
    """

    def __init__(self, inner=None):
        self.inner = inner if inner is not None else ModelGuided()
        self.name = self.inner.name
        self._cache: dict = {}
        self.hits = 0
        self.misses = 0

    def choose(self, bound, platform, *, num_threads, sim_cpu_seconds, sim_gpu_seconds):
        key = (
            id(bound),
            platform.name,
            num_threads,
            sim_cpu_seconds,
            sim_gpu_seconds,
        )
        hit = self._cache.get(key)
        if hit is not None:
            self.hits += 1
            return hit[1]
        result = self.inner.choose(
            bound,
            platform,
            num_threads=num_threads,
            sim_cpu_seconds=sim_cpu_seconds,
            sim_gpu_seconds=sim_gpu_seconds,
        )
        # the bound reference pins the id for the cache's lifetime
        self._cache[key] = (bound, result)
        self.misses += 1
        return result


@dataclass(frozen=True)
class ReplayOutcome:
    """What happened to one request of the trace."""

    index: int
    arrival_s: float
    outcome: str  # "ok" | "resumed" | "degraded" | "shed" | "expired"
    start_s: float | None = None  # service start (None when never launched)
    record: object | None = None  # LaunchRecord / MultiLaunchRecord / None
    #: pipeline completion (D2H done) — only the offload service models
    #: phase overlap, so the legacy path leaves it None and the scorer
    #: falls back to start + executed_seconds
    finish_s: float | None = None

    @property
    def launched(self) -> bool:
        return self.record is not None


@dataclass(frozen=True)
class ReplayConfig:
    """One replay scenario, fully specified."""

    platform: Platform
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    chaos: ChaosSchedule = field(default_factory=ChaosSchedule)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    num_threads: int | None = None
    multi_device: bool = False
    attach_sentinel: bool = True
    attach_watchdog: bool = True
    watchdog_factor: float = 8.0
    #: simulated-time half-life of the accelerator health penalty; decay
    #: is what lets a post-storm runtime forgive the card instead of
    #:  pinning borderline kernels to the host forever
    health_decay_halflife_s: float | None = 5.0
    #: per-request end-to-end deadline budget (simulated seconds); queue
    #: wait, retry backoff and watchdog burn are charged against it.  A
    #: request whose budget drains while queueing runs the host-only
    #: degraded path instead ("expired").  None = off (bit-identical).
    budget_s: float | None = None
    #: arm speculative host backups (a HedgePolicy on the runtime)
    hedge: bool = False
    hedge_quantile: float = 0.95
    hedge_min_samples: int = 8
    hedge_low_budget_factor: float = 2.0
    #: classic tail-at-scale arming: every sketch-ready launch hedges,
    #: but only primaries that outlive the p-quantile delay ever pay
    hedge_on_slow: bool = True
    #: bounded scheduled-work slots per device (a Bulkhead on the
    #: runtime); saturated devices reroute pre-dispatch.  None = off.
    bulkhead_slots: int | None = None
    #: drive the trace through the multi-tenant :class:`OffloadService`
    #: (per-device admission lanes, batching, phase overlap) instead of
    #: the legacy single-server FIFO.  Off by default — the differential
    #: suite pins that the default stays byte-identical.
    service: bool = False
    service_config: ServiceConfig = field(default_factory=ServiceConfig)


@dataclass
class ReplayRun:
    """Everything one engine run produced (input to the scorer)."""

    config: ReplayConfig
    requests: list[LaunchRequest]
    outcomes: list[ReplayOutcome]
    queue: object  # AdmissionQueue (legacy) | ServiceStats (service mode)
    metrics: MetricsRegistry
    runtime: object  # OffloadingRuntime | MultiDeviceRuntime
    horizon_s: float  # last service finish (or last arrival if none)
    service: OffloadService | None = None  # the lanes, when service mode ran

    @property
    def records(self) -> list:
        return [o.record for o in self.outcomes if o.record is not None]

    @property
    def sentinel(self) -> DriftSentinel | None:
        return self.runtime.sentinel

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for o in self.outcomes:
            counts[o.outcome] = counts.get(o.outcome, 0) + 1
        return dict(sorted(counts.items()))


class ReplayEngine:
    """Drive one runtime through one trace under one chaos schedule."""

    def __init__(
        self,
        config: ReplayConfig,
        *,
        policy=None,
        memo: ExecutionMemo | None = None,
        db: ProgramAttributeDatabase | None = None,
    ):
        self.config = config
        self.memo = memo if memo is not None else ExecutionMemo()
        self.policy = policy if policy is not None else MemoizedPolicy()
        self._db = db
        self.runtime = self._build_runtime()

    def _build_runtime(self):
        cfg = self.config
        sentinel = DriftSentinel() if cfg.attach_sentinel else None
        watchdog = (
            Watchdog(factor=cfg.watchdog_factor) if cfg.attach_watchdog else None
        )
        common = dict(
            platform=cfg.platform,
            num_threads=cfg.num_threads,
            sentinel=sentinel,
            watchdog=watchdog,
            metrics=MetricsRegistry(),
            memo=self.memo,
            health_decay_halflife_s=cfg.health_decay_halflife_s,
            # mixed dataset sizes per region: one drift stream per
            # (region, env) so size changes never read as residual shifts
            sentinel_stream_by_env=True,
        )
        if self._db is not None:
            common["db"] = self._db
        if cfg.multi_device:
            runtime = MultiDeviceRuntime(**common)
        else:
            runtime = OffloadingRuntime(policy=self.policy, **common)
        # chaos compiles onto the runtime's own clock
        runtime.injector = cfg.chaos.build_injector(runtime.clock)
        runtime.time_dilation = cfg.chaos.build_dilation(runtime.clock)
        if cfg.bulkhead_slots is not None:
            runtime.bulkheads = Bulkhead(cfg.bulkhead_slots)
        if cfg.hedge:
            runtime.hedge = HedgePolicy(
                quantile=cfg.hedge_quantile,
                min_samples=cfg.hedge_min_samples,
                low_budget_factor=cfg.hedge_low_budget_factor,
                on_slow=cfg.hedge_on_slow,
            )
        return runtime

    # -- driving ------------------------------------------------------------
    def _advance_to(self, t: float) -> None:
        clock = self.runtime.clock
        if t > clock.now:
            clock.advance(t - clock.now)

    def _launch(self, request: LaunchRequest, *, force_target=None, budget=None):
        return self.runtime.launch(
            request.case.region_name,
            request.case.env_dict(),
            force_target=force_target,
            budget=budget,
            tenant=request.tenant,
        )

    @staticmethod
    def _device_key(record) -> str:
        """The bulkhead booking key: target kind (single) or device name."""
        target = getattr(record, "target", None)
        if target is not None:
            return target
        return record.executed_device or record.chosen

    def _book(self, record, finish_s: float) -> None:
        bulkheads = self.runtime.bulkheads
        if bulkheads is not None:
            bulkheads.book(self._device_key(record), finish_s)

    def _serve(
        self,
        queue: AdmissionQueue,
        request: LaunchRequest,
        outcomes: list[ReplayOutcome],
        label: str,
    ) -> None:
        budget = None
        if self.config.budget_s is not None:
            budget = Budget(self.config.budget_s)
            # the FIFO start time is max(arrival, server_free_at), so the
            # wait is known before the server is committed: a request
            # whose whole budget would burn in the queue sheds at the
            # door ("expired") instead of occupying the server with work
            # its client already gave up on — which is also what keeps a
            # backlogged stretch from cascading
            projected_wait = max(queue.server_free_at - request.arrival_s, 0.0)
            if projected_wait >= budget.total_s:
                outcomes.append(
                    ReplayOutcome(
                        index=request.index,
                        arrival_s=request.arrival_s,
                        outcome="expired",
                    )
                )
                return
        start = queue.start(request.arrival_s)
        wait = start - request.arrival_s
        self.runtime.metrics.quantiles("admission_wait_seconds").observe(wait)
        if budget is not None:
            budget.charge(wait)
        self._advance_to(start)
        record = self._launch(request, budget=budget)
        finish = queue.finish(start, record.executed_seconds)
        self._book(record, finish)
        outcomes.append(
            ReplayOutcome(
                index=request.index,
                arrival_s=request.arrival_s,
                outcome=label,
                start_s=start,
                record=record,
            )
        )

    def run(self, requests: list[LaunchRequest] | None = None) -> ReplayRun:
        cfg = self.config
        cases, regions = build_catalog(cfg.workload.sizes)
        for region in regions.values():
            if region.name not in self.runtime.db:
                self.runtime.compile_region(region)
        if requests is None:
            requests = generate_requests(cfg.workload, cases)
        if cfg.service:
            return self._run_service(requests)
        return self._run_legacy(requests)

    def _run_service(self, requests: list[LaunchRequest]) -> ReplayRun:
        cfg = self.config
        if cfg.multi_device:
            raise ValueError("service mode drives the single-accelerator runtime only")
        service = OffloadService(self, cfg.service_config)
        outcomes, horizon = service.run(requests)
        metrics = self.runtime.metrics
        self._advance_to(horizon)
        metrics.gauge("replay_queue_max_depth").set(service.stats.max_depth)
        metrics.gauge("replay_horizon_seconds").set(horizon)
        for name, lane in service.lanes.items():
            metrics.gauge("service_lane_max_depth", device=name).set(lane.max_depth)
        return ReplayRun(
            config=cfg,
            requests=requests,
            outcomes=outcomes,
            queue=service.stats,
            metrics=metrics,
            runtime=self.runtime,
            horizon_s=horizon,
            service=service,
        )

    def _run_legacy(self, requests: list[LaunchRequest]) -> ReplayRun:
        cfg = self.config
        queue = AdmissionQueue(cfg.admission)
        outcomes: list[ReplayOutcome] = []
        metrics = self.runtime.metrics

        for request in requests:
            for parked in queue.resumable(request.arrival_s):
                self._serve(queue, parked, outcomes, "resumed")
            metrics.quantiles("admission_queue_depth").observe(
                float(queue.depth(request.arrival_s))
            )
            decision = queue.decide(request.arrival_s)
            metrics.counter("replay_requests_total", decision=decision).inc()
            if decision == "admit":
                self._serve(queue, request, outcomes, "ok")
            elif decision == "degrade":
                self._advance_to(request.arrival_s)
                record = self._launch(request, force_target="cpu")
                outcomes.append(
                    ReplayOutcome(
                        index=request.index,
                        arrival_s=request.arrival_s,
                        outcome="degraded",
                        start_s=request.arrival_s,
                        record=record,
                    )
                )
            elif decision == "defer":
                queue.park(request)
            else:  # shed
                outcomes.append(
                    ReplayOutcome(
                        index=request.index,
                        arrival_s=request.arrival_s,
                        outcome="shed",
                    )
                )

        # the trace is over; drain whatever is still parked
        for parked in queue.resumable(float("inf")):
            self._serve(queue, parked, outcomes, "resumed")

        outcomes.sort(key=lambda o: o.index)
        horizon = max(
            queue.server_free_at,
            requests[-1].arrival_s if requests else 0.0,
        )
        self._advance_to(horizon)
        metrics.gauge("replay_queue_max_depth").set(queue.max_depth)
        metrics.gauge("replay_horizon_seconds").set(horizon)
        return ReplayRun(
            config=cfg,
            requests=requests,
            outcomes=outcomes,
            queue=queue,
            metrics=metrics,
            runtime=self.runtime,
            horizon_s=horizon,
        )
