"""Scoring a replay run: selection accuracy, dispatch-overhead tails,
detection/recovery latency per chaos window, graceful-degradation
accounting.

Two accuracy views are reported:

* **overall** — oracle-match rate over every full-path launch of the
  trace (degraded/shed requests never made a model decision and are
  excluded by construction);
* **steady-state** — the same rate restricted to launches whose service
  started *outside* every chaos window plus its trailing recovery
  margin.  This is the number the acceptance gate compares against the
  no-chaos baseline: chaos must not leak into the calm stretches.

Per fault-flavoured chaos window the scorer extracts

* **time-to-detect (TTD)** — first defensive reaction (a fault event, a
  fallback, or a drift transition) at/after the window opens, minus the
  open time;
* **time-to-recover (TTR)** — first clean accelerator launch (GPU
  target, no faults, no fallback) at/after the window closes, minus the
  close time.

For ``hw-drift`` windows the sentinel's own timestamped transition log
provides both edges: TTD is the first ``→ DRIFTED`` transition inside
the window, TTR the first return to CALIBRATED after it closes.  All
times are simulated seconds — a replay scored twice yields the same
bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..drift import DriftState
from ..obs import QuantileSketch
from .chaos import ChaosWindow
from .engine import ReplayRun

__all__ = ["WindowScore", "TenantScore", "ReplayScore", "score_run"]


@dataclass(frozen=True)
class WindowScore:
    """Detection + recovery latency for one chaos window."""

    window: str
    kind: str
    start_s: float
    stop_s: float
    ttd_s: float | None  # None = never detected
    ttr_s: float | None  # None = never recovered

    @property
    def detected(self) -> bool:
        return self.ttd_s is not None

    @property
    def recovered(self) -> bool:
        return self.ttr_s is not None


@dataclass(frozen=True)
class TenantScore:
    """Completion-latency tails one tenant observed."""

    tenant: str  # "default" for the anonymous single-tenant trace
    launches: int  # served requests (admitted + resumed + degraded)
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float


@dataclass(frozen=True)
class ReplayScore:
    """One replay run, reduced to its gateable numbers."""

    launches: int  # full-path launches (admitted + resumed)
    requests: int  # trace length
    horizon_s: float
    overall_accuracy: float
    steady_accuracy: float
    steady_launches: int
    overhead_p50_s: float  # over launches with nonzero overhead only
    overhead_p99_s: float
    overhead_zero: int  # zero-overhead launches excluded from the tails
    overhead_nonfinite: int
    completion_p50_s: float  # arrival -> winning finish, every served request
    completion_p99_s: float
    #: completion tails over the chaos-affected stretch only (service
    #: started inside a window + recovery margin); 0.0 without chaos.
    #: The trace-wide p99 is pinned by steady-state burst peaks, so this
    #: is the tail a mitigation (hedging, bulkheads) can actually move.
    chaos_completion_p50_s: float
    chaos_completion_p99_s: float
    shed_fraction: float
    degraded_fraction: float
    expired: int  # budget drained while queueing (host-only path)
    deferred: int
    resumed: int
    max_queue_depth: int
    max_wait_s: float
    fallbacks: int
    fault_events: int
    hedged: int  # launches whose host backup actually started
    hedge_wins: int  # ... and finished first
    hedge_extra_fraction: float  # duplicated work / total served seconds
    windows: tuple[WindowScore, ...]
    #: per-tenant completion tails, sorted by tenant label
    tenants: tuple[TenantScore, ...] = ()
    #: max/min ratio of per-tenant p99 latency (1.0 = perfectly fair or
    #: fewer than two tenants; inf = some tenant's p99 is zero while
    #: another's is not)
    fairness_p99: float = 1.0
    #: offload-service accounting snapshot (None for legacy FIFO runs)
    service: dict | None = None

    def window(self, name: str) -> WindowScore:
        for w in self.windows:
            if w.window == name:
                return w
        raise KeyError(name)

    def to_payload(self) -> dict:
        """JSON-safe dump (NaN-free: absent latencies become None)."""
        return {
            "launches": self.launches,
            "requests": self.requests,
            "horizon_s": self.horizon_s,
            "overall_accuracy": self.overall_accuracy,
            "steady_accuracy": self.steady_accuracy,
            "steady_launches": self.steady_launches,
            "overhead_p50_s": self.overhead_p50_s,
            "overhead_p99_s": self.overhead_p99_s,
            "overhead_zero": self.overhead_zero,
            "overhead_nonfinite": self.overhead_nonfinite,
            "completion_p50_s": self.completion_p50_s,
            "completion_p99_s": self.completion_p99_s,
            "chaos_completion_p50_s": self.chaos_completion_p50_s,
            "chaos_completion_p99_s": self.chaos_completion_p99_s,
            "shed_fraction": self.shed_fraction,
            "degraded_fraction": self.degraded_fraction,
            "expired": self.expired,
            "deferred": self.deferred,
            "resumed": self.resumed,
            "max_queue_depth": self.max_queue_depth,
            "max_wait_s": self.max_wait_s,
            "fallbacks": self.fallbacks,
            "fault_events": self.fault_events,
            "hedged": self.hedged,
            "hedge_wins": self.hedge_wins,
            "hedge_extra_fraction": self.hedge_extra_fraction,
            "windows": [
                {
                    "window": w.window,
                    "kind": w.kind,
                    "start_s": w.start_s,
                    "stop_s": w.stop_s,
                    "ttd_s": w.ttd_s,
                    "ttr_s": w.ttr_s,
                }
                for w in self.windows
            ],
            "tenants": [
                {
                    "tenant": t.tenant,
                    "launches": t.launches,
                    "latency_p50_s": t.latency_p50_s,
                    "latency_p95_s": t.latency_p95_s,
                    "latency_p99_s": t.latency_p99_s,
                }
                for t in self.tenants
            ],
            "fairness_p99": (
                self.fairness_p99 if math.isfinite(self.fairness_p99) else None
            ),
            "service": self.service,
        }


def _decision_correct(record) -> bool:
    # LaunchRecord and MultiLaunchRecord both expose decision_correct
    return record.decision_correct


def _is_clean_gpu(record) -> bool:
    if record.fault_events or record.fallback is not None:
        return False
    target = getattr(record, "target", None)
    if target is not None:
        return target == "gpu"
    # multi-device: executed on a non-host device
    executed = record.executed_device or record.chosen
    return record.outcome_of(executed).kind == "gpu"


def _fault_window_latencies(
    run: ReplayRun, window: ChaosWindow
) -> tuple[float | None, float | None]:
    ttd = None
    ttr = None
    for o in run.outcomes:
        if o.record is None or o.start_s is None:
            continue
        if ttd is None and window.start_s <= o.start_s < window.stop_s:
            r = o.record
            if r.fault_events or r.fallback is not None:
                ttd = o.start_s - window.start_s
        if ttr is None and o.start_s >= window.stop_s and _is_clean_gpu(o.record):
            ttr = o.start_s - window.stop_s
        if ttd is not None and ttr is not None:
            break
    return ttd, ttr


def _drift_window_latencies(
    run: ReplayRun, window: ChaosWindow
) -> tuple[float | None, float | None]:
    sentinel = run.sentinel
    if sentinel is None:
        return None, None
    ttd = None
    ttr = None
    for t, _device, _region, _before, after in sentinel.transitions:
        if (
            ttd is None
            and after is DriftState.DRIFTED
            and window.start_s <= t
        ):
            ttd = t - window.start_s
        if (
            ttr is None
            and after is DriftState.CALIBRATED
            and t >= window.stop_s
        ):
            ttr = t - window.stop_s
        if ttd is not None and ttr is not None:
            break
    return ttd, ttr


def score_run(run: ReplayRun, *, recovery_margin_s: float = 0.0) -> ReplayScore:
    """Reduce one run to its gateable numbers.

    ``recovery_margin_s`` extends every chaos window when carving out
    the steady-state accuracy view: launches started inside
    ``[start, stop + margin)`` are excluded, so transient post-window
    healing (breaker half-open probes, health-penalty decay, sentinel
    re-promotion) does not count against the steady state it is busy
    restoring.
    """
    windows = run.config.chaos.windows
    # degraded *and* expired requests never made a model decision, so
    # they are excluded from the accuracy/overhead views (but still
    # count toward the completion-latency tails every client feels)
    full_path = [
        o
        for o in run.outcomes
        if o.record is not None and o.outcome not in ("degraded", "expired")
    ]

    def in_any_window(start_s: float) -> bool:
        return any(
            w.start_s <= start_s < w.stop_s + recovery_margin_s for w in windows
        )

    correct = sum(1 for o in full_path if _decision_correct(o.record))
    steady = [o for o in full_path if not in_any_window(o.start_s or 0.0)]
    steady_correct = sum(1 for o in steady if _decision_correct(o.record))

    overhead = QuantileSketch()
    overhead_zero = 0
    fallbacks = 0
    fault_events = 0
    hedged = 0
    hedge_wins = 0
    hedge_extra_s = 0.0
    for o in full_path:
        # zero-overhead launches (no retries, no deadline burn) would
        # collapse the sketch's low buckets and pin p50/p99 to 0.0; they
        # are counted apart so the tails reflect real dispatch work
        if o.record.overhead_seconds != 0.0:
            overhead.observe(o.record.overhead_seconds)
        else:
            overhead_zero += 1
        if o.record.fallback is not None:
            fallbacks += 1
        fault_events += len(o.record.fault_events)
        h = getattr(o.record, "hedge", None)
        if h is not None:
            hedged += 1
            if h.winner == "backup":
                hedge_wins += 1
            hedge_extra_s += h.extra_work_s

    completion = QuantileSketch()
    chaos_completion = QuantileSketch()
    tenant_of = {r.index: r.tenant for r in run.requests}
    tenant_sketches: dict[str, QuantileSketch] = {}
    service_total_s = 0.0
    expired = 0
    for o in run.outcomes:
        if o.outcome == "expired":
            expired += 1
        if o.record is None or o.start_s is None:
            continue
        # the offload service records the pipeline finish (D2H done);
        # the legacy FIFO never sets it, so its latency stays start + E
        finish = (
            o.finish_s
            if o.finish_s is not None
            else o.start_s + o.record.executed_seconds
        )
        latency = finish - o.arrival_s
        completion.observe(latency)
        if in_any_window(o.start_s):
            chaos_completion.observe(latency)
        label = tenant_of.get(o.index) or "default"
        sketch = tenant_sketches.get(label)
        if sketch is None:
            sketch = tenant_sketches[label] = QuantileSketch()
        sketch.observe(latency)
        service_total_s += o.record.executed_seconds

    scored_windows = []
    for w in windows:
        if w.kind == "hw-drift":
            ttd, ttr = _drift_window_latencies(run, w)
        else:
            ttd, ttr = _fault_window_latencies(run, w)
        scored_windows.append(
            WindowScore(
                window=w.name,
                kind=w.kind,
                start_s=w.start_s,
                stop_s=w.stop_s,
                ttd_s=ttd,
                ttr_s=ttr,
            )
        )

    requests = len(run.requests)
    q = run.queue

    def tail(sketch: QuantileSketch, quantile: float) -> float:
        # an empty sketch (e.g. every launch memo-fast) reads as 0.0 so
        # downstream isfinite() gates stay meaningful
        return sketch.quantile(quantile) if sketch.count else 0.0

    tenant_scores = tuple(
        TenantScore(
            tenant=label,
            launches=sketch.count,
            latency_p50_s=tail(sketch, 0.50),
            latency_p95_s=tail(sketch, 0.95),
            latency_p99_s=tail(sketch, 0.99),
        )
        for label, sketch in sorted(tenant_sketches.items())
    )
    fairness = 1.0
    if len(tenant_scores) >= 2:
        p99s = [t.latency_p99_s for t in tenant_scores]
        hi, lo = max(p99s), min(p99s)
        if lo > 0.0:
            fairness = hi / lo
        elif hi > 0.0:
            fairness = math.inf
    service_obj = getattr(run, "service", None)
    service_snapshot = service_obj.stats.snapshot() if service_obj else None

    return ReplayScore(
        launches=len(full_path),
        requests=requests,
        horizon_s=run.horizon_s,
        overall_accuracy=(correct / len(full_path)) if full_path else math.nan,
        steady_accuracy=(steady_correct / len(steady)) if steady else math.nan,
        steady_launches=len(steady),
        overhead_p50_s=tail(overhead, 0.50),
        overhead_p99_s=tail(overhead, 0.99),
        overhead_zero=overhead_zero,
        overhead_nonfinite=overhead.nonfinite,
        completion_p50_s=tail(completion, 0.50),
        completion_p99_s=tail(completion, 0.99),
        chaos_completion_p50_s=tail(chaos_completion, 0.50),
        chaos_completion_p99_s=tail(chaos_completion, 0.99),
        shed_fraction=(q.shed / requests) if requests else 0.0,
        degraded_fraction=(q.degraded / requests) if requests else 0.0,
        expired=expired,
        deferred=q.deferred,
        resumed=q.resumed,
        max_queue_depth=q.max_depth,
        max_wait_s=q.max_wait_s,
        fallbacks=fallbacks,
        fault_events=fault_events,
        hedged=hedged,
        hedge_wins=hedge_wins,
        hedge_extra_fraction=(
            (hedge_extra_s / service_total_s) if service_total_s > 0.0 else 0.0
        ),
        windows=tuple(scored_windows),
        tenants=tenant_scores,
        fairness_p99=fairness,
        service=service_snapshot,
    )
