"""Scoring a replay run: selection accuracy, dispatch-overhead tails,
detection/recovery latency per chaos window, graceful-degradation
accounting.

Two accuracy views are reported:

* **overall** — oracle-match rate over every full-path launch of the
  trace (degraded/shed requests never made a model decision and are
  excluded by construction);
* **steady-state** — the same rate restricted to launches whose service
  started *outside* every chaos window plus its trailing recovery
  margin.  This is the number the acceptance gate compares against the
  no-chaos baseline: chaos must not leak into the calm stretches.

Per fault-flavoured chaos window the scorer extracts

* **time-to-detect (TTD)** — first defensive reaction (a fault event, a
  fallback, or a drift transition) at/after the window opens, minus the
  open time;
* **time-to-recover (TTR)** — first clean accelerator launch (GPU
  target, no faults, no fallback) at/after the window closes, minus the
  close time.

For ``hw-drift`` windows the sentinel's own timestamped transition log
provides both edges: TTD is the first ``→ DRIFTED`` transition inside
the window, TTR the first return to CALIBRATED after it closes.  All
times are simulated seconds — a replay scored twice yields the same
bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..drift import DriftState
from ..obs import QuantileSketch
from .chaos import ChaosWindow
from .engine import ReplayRun

__all__ = ["WindowScore", "ReplayScore", "score_run"]


@dataclass(frozen=True)
class WindowScore:
    """Detection + recovery latency for one chaos window."""

    window: str
    kind: str
    start_s: float
    stop_s: float
    ttd_s: float | None  # None = never detected
    ttr_s: float | None  # None = never recovered

    @property
    def detected(self) -> bool:
        return self.ttd_s is not None

    @property
    def recovered(self) -> bool:
        return self.ttr_s is not None


@dataclass(frozen=True)
class ReplayScore:
    """One replay run, reduced to its gateable numbers."""

    launches: int  # full-path launches (admitted + resumed)
    requests: int  # trace length
    horizon_s: float
    overall_accuracy: float
    steady_accuracy: float
    steady_launches: int
    overhead_p50_s: float
    overhead_p99_s: float
    overhead_nonfinite: int
    shed_fraction: float
    degraded_fraction: float
    deferred: int
    resumed: int
    max_queue_depth: int
    max_wait_s: float
    fallbacks: int
    fault_events: int
    windows: tuple[WindowScore, ...]

    def window(self, name: str) -> WindowScore:
        for w in self.windows:
            if w.window == name:
                return w
        raise KeyError(name)

    def to_payload(self) -> dict:
        """JSON-safe dump (NaN-free: absent latencies become None)."""
        return {
            "launches": self.launches,
            "requests": self.requests,
            "horizon_s": self.horizon_s,
            "overall_accuracy": self.overall_accuracy,
            "steady_accuracy": self.steady_accuracy,
            "steady_launches": self.steady_launches,
            "overhead_p50_s": self.overhead_p50_s,
            "overhead_p99_s": self.overhead_p99_s,
            "overhead_nonfinite": self.overhead_nonfinite,
            "shed_fraction": self.shed_fraction,
            "degraded_fraction": self.degraded_fraction,
            "deferred": self.deferred,
            "resumed": self.resumed,
            "max_queue_depth": self.max_queue_depth,
            "max_wait_s": self.max_wait_s,
            "fallbacks": self.fallbacks,
            "fault_events": self.fault_events,
            "windows": [
                {
                    "window": w.window,
                    "kind": w.kind,
                    "start_s": w.start_s,
                    "stop_s": w.stop_s,
                    "ttd_s": w.ttd_s,
                    "ttr_s": w.ttr_s,
                }
                for w in self.windows
            ],
        }


def _decision_correct(record) -> bool:
    # LaunchRecord and MultiLaunchRecord both expose decision_correct
    return record.decision_correct


def _is_clean_gpu(record) -> bool:
    if record.fault_events or record.fallback is not None:
        return False
    target = getattr(record, "target", None)
    if target is not None:
        return target == "gpu"
    # multi-device: executed on a non-host device
    executed = record.executed_device or record.chosen
    return record.outcome_of(executed).kind == "gpu"


def _fault_window_latencies(
    run: ReplayRun, window: ChaosWindow
) -> tuple[float | None, float | None]:
    ttd = None
    ttr = None
    for o in run.outcomes:
        if o.record is None or o.start_s is None:
            continue
        if ttd is None and window.start_s <= o.start_s < window.stop_s:
            r = o.record
            if r.fault_events or r.fallback is not None:
                ttd = o.start_s - window.start_s
        if ttr is None and o.start_s >= window.stop_s and _is_clean_gpu(o.record):
            ttr = o.start_s - window.stop_s
        if ttd is not None and ttr is not None:
            break
    return ttd, ttr


def _drift_window_latencies(
    run: ReplayRun, window: ChaosWindow
) -> tuple[float | None, float | None]:
    sentinel = run.sentinel
    if sentinel is None:
        return None, None
    ttd = None
    ttr = None
    for t, _device, _region, _before, after in sentinel.transitions:
        if (
            ttd is None
            and after is DriftState.DRIFTED
            and window.start_s <= t
        ):
            ttd = t - window.start_s
        if (
            ttr is None
            and after is DriftState.CALIBRATED
            and t >= window.stop_s
        ):
            ttr = t - window.stop_s
        if ttd is not None and ttr is not None:
            break
    return ttd, ttr


def score_run(run: ReplayRun, *, recovery_margin_s: float = 0.0) -> ReplayScore:
    """Reduce one run to its gateable numbers.

    ``recovery_margin_s`` extends every chaos window when carving out
    the steady-state accuracy view: launches started inside
    ``[start, stop + margin)`` are excluded, so transient post-window
    healing (breaker half-open probes, health-penalty decay, sentinel
    re-promotion) does not count against the steady state it is busy
    restoring.
    """
    windows = run.config.chaos.windows
    full_path = [
        o for o in run.outcomes if o.record is not None and o.outcome != "degraded"
    ]

    def in_any_window(start_s: float) -> bool:
        return any(
            w.start_s <= start_s < w.stop_s + recovery_margin_s for w in windows
        )

    correct = sum(1 for o in full_path if _decision_correct(o.record))
    steady = [o for o in full_path if not in_any_window(o.start_s or 0.0)]
    steady_correct = sum(1 for o in steady if _decision_correct(o.record))

    overhead = QuantileSketch()
    fallbacks = 0
    fault_events = 0
    for o in full_path:
        overhead.observe(o.record.overhead_seconds)
        if o.record.fallback is not None:
            fallbacks += 1
        fault_events += len(o.record.fault_events)

    scored_windows = []
    for w in windows:
        if w.kind == "hw-drift":
            ttd, ttr = _drift_window_latencies(run, w)
        else:
            ttd, ttr = _fault_window_latencies(run, w)
        scored_windows.append(
            WindowScore(
                window=w.name,
                kind=w.kind,
                start_s=w.start_s,
                stop_s=w.stop_s,
                ttd_s=ttd,
                ttr_s=ttr,
            )
        )

    requests = len(run.requests)
    q = run.queue
    return ReplayScore(
        launches=len(full_path),
        requests=requests,
        horizon_s=run.horizon_s,
        overall_accuracy=(correct / len(full_path)) if full_path else math.nan,
        steady_accuracy=(steady_correct / len(steady)) if steady else math.nan,
        steady_launches=len(steady),
        overhead_p50_s=overhead.p50,
        overhead_p99_s=overhead.p99,
        overhead_nonfinite=overhead.nonfinite,
        shed_fraction=(q.shed / requests) if requests else 0.0,
        degraded_fraction=(q.degraded / requests) if requests else 0.0,
        deferred=q.deferred,
        resumed=q.resumed,
        max_queue_depth=q.max_depth,
        max_wait_s=q.max_wait_s,
        fallbacks=fallbacks,
        fault_events=fault_events,
        windows=tuple(scored_windows),
    )
