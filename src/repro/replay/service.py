"""Multi-tenant offload service with per-device admission batching.

The legacy replay loop models the *selector* as a single-server FIFO:
every launch — host or accelerator — waits behind one queue, so devices
never contend and a CPU launch can block a GPU one.  The
:class:`OffloadService` replaces that placeholder with the shape the
ROADMAP's production north-star needs:

* **one admission lane per device** — requests are routed by the
  (memoized) selection policy's undilated preview: host-bound work joins
  the always-available CPU lane, accelerator-bound work joins the GPU
  lane with its own server pool.  Each lane runs the same bounded
  admission policy (reject / degrade / defer) the legacy queue ran
  globally;
* **admission batching** — within a lane, a scheduling quantum groups a
  contiguous run of same-case admissions into one batch (operands are
  already resident after the first member's H2D, so the batch pays one
  transfer);
* **phase overlap** — each accelerator lane owns an H2D channel, a
  compute server pool, and a D2H channel.  A queued launch's host→device
  transfer proceeds while the previous launch computes, and copy-back
  never holds a compute slot: exactly the async-offload pipelining the
  legacy serial model cannot express.

Everything still happens on the engine's simulated clock, through the
engine's own ``_launch`` path — chaos windows, drift, hedging, budgets
and bulkheads all apply unchanged.  The service only decides *when* each
launch starts and what that implies for queueing accounting.

Compatibility is a hard contract, pinned by ``tests/test_service.py``:
``ServiceConfig.legacy_equivalent()`` (no batching, no overlap, one
serial lane) reproduces the legacy engine **byte-identically** — same
outcomes, records, metrics-relevant depths, waits, door-sheds and
horizon, including the legacy quirk that the end-of-trace park drain
resets the FIFO's free time.  The only addition is
``ReplayOutcome.finish_s``, which the legacy path leaves ``None``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from ..runtime import Budget

__all__ = [
    "DeviceLane",
    "OffloadService",
    "ServiceConfig",
    "ServiceStats",
]

#: sentinel returned by the door check when a request's whole budget
#: would burn in the queue (the launch never happens)
_EXPIRED = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Shape of the offload service's per-device scheduling.

    ``quantum_s`` rounds each batch's open time up to the next quantum
    boundary, letting near-simultaneous same-case admissions coalesce;
    ``servers`` / ``host_servers`` size the accelerator and host compute
    pools; ``max_batch`` bounds how many same-case admissions ride one
    transfer.  ``batching=False`` dispatches every admission alone at
    its arrival; ``overlap=False`` collapses all devices back into one
    serial dispatcher lane (the legacy model, where the *dispatcher* is
    the server rather than the devices).
    """

    quantum_s: float = 5e-4
    servers: int = 2
    host_servers: int = 2
    max_batch: int = 8
    batching: bool = True
    overlap: bool = True

    def __post_init__(self):
        if not (math.isfinite(self.quantum_s) and self.quantum_s >= 0.0):
            raise ValueError("quantum_s must be finite and >= 0")
        if self.servers < 1 or self.host_servers < 1:
            raise ValueError("need at least one server per lane")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")

    @classmethod
    def legacy_equivalent(cls) -> ServiceConfig:
        """The configuration that reproduces the legacy FIFO bit-for-bit."""
        return cls(
            quantum_s=0.0,
            servers=1,
            host_servers=1,
            max_batch=1,
            batching=False,
            overlap=False,
        )


class DeviceLane:
    """One device's admission queue + server pool on the simulated clock.

    ``pending`` holds admitted-but-undispatched ``(request, label)``
    pairs in FIFO order; ``parked`` is the defer buffer.  Queue *depth*
    counts pending plus dispatched-but-unfinished launches — the same
    accounting the legacy :class:`~.admission.AdmissionQueue` kept, so
    bounded admission behaves identically in the serial configuration.
    Finish times of a multi-server lane complete out of order, so the
    drain sweeps all elapsed entries rather than a sorted prefix.
    """

    def __init__(self, name: str, *, servers: int, channelled: bool, admission):
        self.name = name
        self.admission = admission
        #: model dedicated H2D/D2H DMA channels (accelerator lanes only)
        self.channelled = channelled
        self.pending: deque = deque()
        self.parked: deque = deque()
        self._finish_times: deque[float] = deque()
        self.compute_free = [0.0] * servers
        self.h2d_free_s = 0.0
        self.d2h_free_s = 0.0
        self.peak_finish = 0.0
        # -- accounting (AdmissionQueue-shaped) ------------------------
        self.admitted = 0
        self.shed = 0
        self.degraded = 0
        self.deferred = 0
        self.resumed = 0
        self.max_depth = 0
        self.total_wait_s = 0.0
        self.max_wait_s = 0.0
        self.batches = 0
        self.transfers_waived = 0

    def depth(self, now: float) -> int:
        """Launches waiting or in service at ``now`` (drains finished)."""
        ft = self._finish_times
        while ft and ft[0] <= now:
            ft.popleft()
        if ft and any(t <= now for t in ft):
            live = [t for t in ft if t > now]
            ft.clear()
            ft.extend(live)
        return len(self.pending) + len(ft)

    @property
    def server_free_at(self) -> float:
        """Last booked finish (serial-lane FIFO accounting)."""
        return self._finish_times[-1] if self._finish_times else 0.0

    def book(self, finish_s: float) -> None:
        self._finish_times.append(finish_s)
        self.peak_finish = max(self.peak_finish, finish_s)

    def snapshot(self) -> dict:
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "degraded": self.degraded,
            "deferred": self.deferred,
            "resumed": self.resumed,
            "max_depth": self.max_depth,
            "max_wait_s": self.max_wait_s,
            "total_wait_s": self.total_wait_s,
            "batches": self.batches,
            "transfers_waived": self.transfers_waived,
            "servers": len(self.compute_free),
        }


class ServiceStats:
    """Aggregate accounting across lanes, duck-typed as the legacy queue.

    ``score_run`` reads the same attribute names off ``run.queue``
    whether the run used the legacy :class:`~.admission.AdmissionQueue`
    or the service; the per-lane split lives under ``snapshot()``.
    """

    def __init__(self, lanes: dict[str, DeviceLane]):
        self._lanes = lanes
        self.admitted = 0
        self.shed = 0
        self.degraded = 0
        self.deferred = 0
        self.resumed = 0
        self.max_depth = 0
        self.total_wait_s = 0.0
        self.max_wait_s = 0.0
        self.batches = 0
        self.batched = 0  # members that rode a batch behind its head
        self.transfers_waived = 0

    def snapshot(self) -> dict:
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "degraded": self.degraded,
            "deferred": self.deferred,
            "resumed": self.resumed,
            "max_depth": self.max_depth,
            "max_wait_s": self.max_wait_s,
            "total_wait_s": self.total_wait_s,
            "batches": self.batches,
            "batched": self.batched,
            "transfers_waived": self.transfers_waived,
            "lanes": {name: lane.snapshot() for name, lane in self._lanes.items()},
        }


class OffloadService:
    """Drive one engine's trace through per-device admission lanes."""

    def __init__(self, engine, config: ServiceConfig):
        self.engine = engine
        self.config = config
        self.runtime = engine.runtime
        self.metrics = engine.runtime.metrics
        admission = engine.config.admission
        if config.overlap:
            self.lanes = {
                "cpu": DeviceLane(
                    "cpu",
                    servers=config.host_servers,
                    channelled=False,
                    admission=admission,
                ),
                "gpu": DeviceLane(
                    "gpu",
                    servers=config.servers,
                    channelled=True,
                    admission=admission,
                ),
            }
        else:
            self.lanes = {
                "dispatcher": DeviceLane(
                    "dispatcher", servers=1, channelled=False, admission=admission
                )
            }
        self._lane_list = list(self.lanes.values())
        self.stats = ServiceStats(self.lanes)
        self._route_cache: dict = {}
        self._phase_fractions: dict = {}
        #: (lane, server, comp_start_s, comp_end_s, index, tenant) per
        #: launch — the property tests assert compute never double-books
        self.timeline: list[tuple] = []
        #: (lane, index, tenant, begin_s, clock_s) in dispatch order —
        #: per-tenant FIFO and clock monotonicity are asserted on this
        self.dispatch_log: list[tuple] = []

    # -- event loop ---------------------------------------------------------
    def run(self, requests) -> tuple[list, float]:
        """Replay the trace; returns (outcomes, horizon_s)."""
        from .engine import ReplayOutcome  # deferred: engine imports this module

        outcomes: list = []
        for request in requests:
            # everything whose batch opens at or before this arrival is
            # dispatched first (the legacy loop serves admits immediately)
            while True:
                lane = self._next_lane()
                if lane is None or self._open_time(lane) > request.arrival_s:
                    break
                self._dispatch_batch(lane, outcomes, ReplayOutcome)
            self._process_arrival(request, outcomes, ReplayOutcome)
        self._drain(outcomes, ReplayOutcome)
        outcomes.sort(key=lambda o: o.index)
        if self.config.overlap:
            busy = max((lane.peak_finish for lane in self._lane_list), default=0.0)
        else:
            # the serial lane mirrors the legacy horizon exactly,
            # including the post-drain reset quirk
            busy = max((lane.server_free_at for lane in self._lane_list), default=0.0)
        horizon = max(busy, requests[-1].arrival_s if requests else 0.0)
        return outcomes, horizon

    def _next_lane(self) -> DeviceLane | None:
        """The lane whose head batch opens earliest (declaration order ties)."""
        best = None
        best_open = math.inf
        for lane in self._lane_list:
            if not lane.pending:
                continue
            open_t = self._open_time(lane)
            if open_t < best_open:
                best, best_open = lane, open_t
        return best

    def _open_time(self, lane: DeviceLane) -> float:
        return self._quantize(lane.pending[0][0].arrival_s)

    def _quantize(self, t: float) -> float:
        q = self.config.quantum_s
        if not self.config.batching or q <= 0.0:
            return t
        # clamp: float division can round the ceiling below t itself
        return max(t, math.ceil(t / q) * q)

    # -- arrivals -----------------------------------------------------------
    def _process_arrival(self, request, outcomes, ReplayOutcome) -> None:
        now = request.arrival_s
        for lane in self._lane_list:
            self._resume_ready(lane, now)
        lane = self._route(request)
        depth = lane.depth(now)
        metrics = self.metrics
        metrics.quantiles("admission_queue_depth").observe(float(depth))
        metrics.quantiles("service_queue_depth", device=lane.name).observe(
            float(depth)
        )
        decision = self._decide(lane, depth)
        metrics.counter("replay_requests_total", decision=decision).inc()
        if decision == "admit":
            lane.pending.append((request, "ok", depth))
        elif decision == "degrade":
            engine = self.engine
            engine._advance_to(now)
            record = engine._launch(request, force_target="cpu")
            lane.degraded += 1
            self.stats.degraded += 1
            outcomes.append(
                ReplayOutcome(
                    index=request.index,
                    arrival_s=now,
                    outcome="degraded",
                    start_s=now,
                    record=record,
                    finish_s=now + max(record.executed_seconds, 0.0),
                )
            )
        elif decision == "defer":
            lane.parked.append(request)
            lane.deferred += 1
            self.stats.deferred += 1
        else:  # shed
            lane.shed += 1
            self.stats.shed += 1
            outcomes.append(
                ReplayOutcome(index=request.index, arrival_s=now, outcome="shed")
            )

    def _decide(self, lane: DeviceLane, depth: int) -> str:
        cfg = lane.admission
        if not cfg.bounded or depth < cfg.capacity:
            return "admit"
        if cfg.policy == "degrade":
            return "degrade"
        if cfg.policy == "defer" and len(lane.parked) < cfg.defer_capacity:
            return "defer"
        return "shed"

    def _resume_ready(self, lane: DeviceLane, now: float) -> None:
        resume_at = lane.admission.effective_resume_depth
        while lane.parked:
            depth = lane.depth(now)
            if depth >= resume_at:
                break
            lane.pending.append((lane.parked.popleft(), "resumed", depth))
            lane.resumed += 1
            self.stats.resumed += 1

    def _touch_depth(self, lane: DeviceLane, depth_before: int) -> None:
        # the newcomer itself counts, and the touch happens only when the
        # request actually launches: identical to the legacy queue's
        # max(len(finish_times)) taken at each finish(), which door-shed
        # ("expired") requests never reach
        d = depth_before + 1
        lane.max_depth = max(lane.max_depth, d)
        self.stats.max_depth = max(self.stats.max_depth, d)

    # -- routing ------------------------------------------------------------
    def _route(self, request) -> DeviceLane:
        """Which lane queues this request (policy preview, cached per case).

        The preview uses the *undilated* memoized times — the same inputs
        the policy sees on a calm run — so routing is a pure function of
        the case.  The launch itself may still land elsewhere (drift
        pinning, bulkhead reroute, hedging); the lane only models where
        the request queued.
        """
        if not self.config.overlap:
            return self._lane_list[0]
        lane = self._route_cache.get(request.case)
        if lane is None:
            rt = self.runtime
            attrs = rt.db.lookup(request.case.region_name)
            env = request.case.env_dict()
            memo = rt.memo
            if memo is not None:
                bound = memo.bound(attrs, env)
                cpu_s = memo.execution(rt._host, attrs, env).seconds
                gpu_s = memo.execution(rt._accel, attrs, env).seconds
            else:
                bound = attrs.bind(env)
                cpu_s = rt._host.execute(attrs.region, env).seconds
                gpu_s = rt._accel.execute(attrs.region, env).seconds
            target, _ = self.engine.policy.choose(
                bound,
                rt.platform,
                num_threads=rt.num_threads,
                sim_cpu_seconds=cpu_s,
                sim_gpu_seconds=gpu_s,
            )
            lane = self.lanes["gpu" if target == "gpu" else "cpu"]
            self._route_cache[request.case] = lane
        return lane

    # -- dispatch -----------------------------------------------------------
    def _dispatch_batch(self, lane: DeviceLane, outcomes, ReplayOutcome) -> None:
        head = lane.pending[0][0]
        members = [lane.pending.popleft()]
        if self.config.batching and self.config.max_batch > 1:
            while (
                len(members) < self.config.max_batch
                and lane.pending
                and lane.pending[0][0].case == head.case
            ):
                members.append(lane.pending.popleft())
        lane.batches += 1
        self.stats.batches += 1
        self.stats.batched += len(members) - 1
        if len(members) > 1:
            self.metrics.counter("service_batches_total", device=lane.name).inc()
        open_t = self._quantize(head.arrival_s)
        if self.config.overlap:
            self._dispatch_overlap(lane, open_t, members, outcomes, ReplayOutcome)
        else:
            self._dispatch_serial(lane, members, outcomes, ReplayOutcome)

    def _dispatch_serial(self, lane, members, outcomes, ReplayOutcome) -> None:
        """Legacy-model dispatch: one serial server, whole-record service."""
        engine = self.engine
        for request, label, depth in members:
            start = max(request.arrival_s, lane.server_free_at)
            wait = start - request.arrival_s
            budget = self._door(request, wait, outcomes, ReplayOutcome)
            if budget is _EXPIRED:
                continue
            self._touch_depth(lane, depth)
            engine._advance_to(start)
            record = engine._launch(request, budget=budget)
            finish = start + max(record.executed_seconds, 0.0)
            lane.compute_free[0] = finish
            self._complete(
                lane,
                request,
                label,
                begin=start,
                finish=finish,
                comp_start=start,
                comp_end=finish,
                server=0,
                record=record,
                outcomes=outcomes,
                ReplayOutcome=ReplayOutcome,
            )

    def _dispatch_overlap(
        self, lane, open_t, members, outcomes, ReplayOutcome
    ) -> None:
        """Pipelined dispatch: shared H2D, pooled compute, serialized D2H."""
        engine = self.engine
        server = min(
            range(len(lane.compute_free)), key=lane.compute_free.__getitem__
        )
        server_free = lane.compute_free[server]
        busy = sum(1 for t in lane.compute_free if t > open_t)
        self.metrics.quantiles("service_occupancy", device=lane.name).observe(
            busy / len(lane.compute_free)
        )
        shared_ready = None  # H2D completion the batch's later members reuse
        prev_comp_end = None
        for request, label, depth in members:
            if prev_comp_end is not None:
                begin = max(open_t, prev_comp_end)
            elif lane.channelled:
                # service begins when the transfer channel picks it up —
                # the compute server may still be busy (that's the overlap)
                begin = max(open_t, lane.h2d_free_s)
            else:
                begin = max(open_t, server_free)
            wait = begin - request.arrival_s
            budget = self._door(request, wait, outcomes, ReplayOutcome)
            if budget is _EXPIRED:
                continue
            self._touch_depth(lane, depth)
            engine._advance_to(begin)
            record = engine._launch(request, budget=budget)
            h2d, comp, d2h = self._phases(request, record)
            base = server_free if prev_comp_end is None else prev_comp_end
            if lane.channelled and record.target == "gpu":
                if shared_ready is None:
                    t0 = max(begin, lane.h2d_free_s)
                    shared_ready = t0 + h2d
                    lane.h2d_free_s = shared_ready
                else:
                    # same case, operands already resident: no transfer
                    lane.transfers_waived += 1
                    self.stats.transfers_waived += 1
                comp_start = max(shared_ready, base)
                comp_end = comp_start + comp
                d2h_start = max(comp_end, lane.d2h_free_s)
                finish = d2h_start + d2h
                lane.d2h_free_s = finish
            else:
                # rerouted-to-host (or host-lane) work has no channel
                # phases: the whole record occupies the compute slot
                comp_start = max(begin, base)
                comp_end = comp_start + (h2d + comp + d2h)
                finish = comp_end
            prev_comp_end = comp_end
            lane.compute_free[server] = comp_end
            self._complete(
                lane,
                request,
                label,
                begin=begin,
                finish=finish,
                comp_start=comp_start,
                comp_end=comp_end,
                server=server,
                record=record,
                outcomes=outcomes,
                ReplayOutcome=ReplayOutcome,
            )

    def _door(self, request, wait: float, outcomes, ReplayOutcome):
        """Budget door-shed; returns the Budget (or None), or ``_EXPIRED``."""
        budget_s = self.engine.config.budget_s
        budget = None
        if budget_s is not None:
            budget = Budget(budget_s)
            if wait >= budget.total_s:
                outcomes.append(
                    ReplayOutcome(
                        index=request.index,
                        arrival_s=request.arrival_s,
                        outcome="expired",
                    )
                )
                return _EXPIRED
        self.metrics.quantiles("admission_wait_seconds").observe(wait)
        if budget is not None:
            budget.charge(wait)
        return budget

    def _complete(
        self,
        lane,
        request,
        label,
        *,
        begin,
        finish,
        comp_start,
        comp_end,
        server,
        record,
        outcomes,
        ReplayOutcome,
    ) -> None:
        wait = begin - request.arrival_s
        lane.admitted += 1
        self.stats.admitted += 1
        lane.total_wait_s += wait
        self.stats.total_wait_s += wait
        lane.max_wait_s = max(lane.max_wait_s, wait)
        self.stats.max_wait_s = max(self.stats.max_wait_s, wait)
        lane.book(finish)
        self.engine._book(record, finish)
        self.timeline.append(
            (lane.name, server, comp_start, comp_end, request.index, request.tenant)
        )
        self.dispatch_log.append(
            (lane.name, request.index, request.tenant, begin, self.runtime.clock.now)
        )
        outcomes.append(
            ReplayOutcome(
                index=request.index,
                arrival_s=request.arrival_s,
                outcome=label,
                start_s=begin,
                record=record,
                finish_s=finish,
            )
        )

    # -- phases -------------------------------------------------------------
    def _phases(self, request, record) -> tuple[float, float, float]:
        """Split one record's executed seconds into (h2d, compute, d2h).

        GPU launches reuse the memoized undilated execution detail —
        kernel vs transfer split — scaled so the phases sum to the
        record's actual (possibly dilated, retried, hedged) executed
        seconds.  Host launches are all compute.
        """
        executed = max(record.executed_seconds, 0.0)
        if getattr(record, "target", None) != "gpu":
            return 0.0, executed, 0.0
        fractions = self._phase_fractions.get(request.case)
        if fractions is None:
            rt = self.runtime
            attrs = rt.db.lookup(request.case.region_name)
            env = request.case.env_dict()
            if rt.memo is not None:
                detail = rt.memo.execution(rt._accel, attrs, env).detail
            else:
                detail = rt._accel.execute(attrs.region, env).detail
            fractions = (0.0, 1.0, 0.0)
            if isinstance(detail, tuple) and len(detail) == 2:
                kernel, xfer = detail
                h2d = max(getattr(xfer, "seconds_to_device", 0.0), 0.0)
                comp = max(getattr(kernel, "seconds", 0.0), 0.0)
                d2h = max(getattr(xfer, "seconds_to_host", 0.0), 0.0)
                serial = h2d + comp + d2h
                if serial > 0.0 and math.isfinite(serial):
                    fractions = (h2d / serial, comp / serial, d2h / serial)
            self._phase_fractions[request.case] = fractions
        return (
            fractions[0] * executed,
            fractions[1] * executed,
            fractions[2] * executed,
        )

    # -- end of trace -------------------------------------------------------
    def _drain(self, outcomes, ReplayOutcome) -> None:
        """Dispatch the backlog, then re-admit everything still parked.

        Mirrors the legacy drain exactly: each parked request is resumed
        against an infinitely-drained queue (the legacy quirk that resets
        the FIFO's free time), one at a time, in park order, lane by
        lane.
        """
        while True:
            lane = self._next_lane()
            if lane is None:
                break
            self._dispatch_batch(lane, outcomes, ReplayOutcome)
        for lane in self._lane_list:
            resume_at = lane.admission.effective_resume_depth
            while lane.parked:
                depth = lane.depth(math.inf)
                if depth >= resume_at:
                    break
                lane.pending.append((lane.parked.popleft(), "resumed", depth))
                lane.resumed += 1
                self.stats.resumed += 1
                while lane.pending:
                    self._dispatch_batch(lane, outcomes, ReplayOutcome)
