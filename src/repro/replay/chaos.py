"""Chaos schedules: clock-gated fault storms, brownouts, link and
hardware degradation for the traffic replay harness.

A :class:`ChaosSchedule` is a set of :class:`ChaosWindow` s, each binding
one disturbance to a simulated-time interval.  Fault-flavoured windows
compile to :class:`~repro.faults.FaultTrigger` s that consult the
runtime's own :class:`~repro.faults.SimulatedClock` (the replay engine
advances it to each launch's start time), so a window fires on exactly
the launches whose service overlaps it — no launch counting, no
wall-clock.  The hardware-drift flavour instead compiles to the
runtimes' ``time_dilation`` hook: inside the window the *actual*
simulated device seconds are scaled, which is a genuine mid-stream
hardware change (thermal throttling, a neighbour tenant) rather than a
model miscalibration — the drift sentinel has to notice it from the
residuals alone.

Every stochastic trigger carries a unique ``stream_label`` (its window
name), so its draws come from a private injector substream: two storms
in one schedule, or a storm added next to an existing brownout, never
reshuffle each other's fault sequences (see
:class:`~repro.faults.FaultInjector`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults import (
    DeviceError,
    FaultInjector,
    LaunchContext,
    SimulatedClock,
    TransferError,
    TransientDeviceError,
)

__all__ = [
    "CHAOS_KINDS",
    "ChaosWindow",
    "ChaosSchedule",
]

#: The disturbance flavours a window can carry.
CHAOS_KINDS = ("fault-storm", "brownout", "link-degraded", "hw-drift")


@dataclass(frozen=True)
class ChaosWindow:
    """One disturbance over one simulated-time interval.

    * ``fault-storm``   — each accelerator attempt inside the window
      faults (retryably) with ``probability``;
    * ``brownout``      — every accelerator attempt inside the window
      fails deterministically (the card browned out);
    * ``link-degraded`` — transfers fault with ``probability`` (a flaky
      interconnect: retryable, usually recovered within the budget);
    * ``hw-drift``      — device seconds are *actually* scaled by
      ``cpu_scale``/``gpu_scale`` while the window is open.
    """

    name: str
    kind: str
    start_s: float
    stop_s: float
    probability: float = 0.5  # storm / link fault rate per attempt
    cpu_scale: float = 1.0  # hw-drift only
    gpu_scale: float = 1.0  # hw-drift only
    device: str | None = None  # substring match; None = every accelerator

    def __post_init__(self):
        if self.kind not in CHAOS_KINDS:
            raise ValueError(f"kind must be one of {CHAOS_KINDS}, got {self.kind!r}")
        if not 0.0 <= self.start_s < self.stop_s:
            raise ValueError("need 0 <= start_s < stop_s")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.cpu_scale <= 0 or self.gpu_scale <= 0:
            raise ValueError("drift scales must be positive")

    def active(self, now: float) -> bool:
        return self.start_s <= now < self.stop_s

    @property
    def duration_s(self) -> float:
        return self.stop_s - self.start_s


class _WindowedFault:
    """Clock-gated fault trigger for one storm/brownout/link window."""

    def __init__(
        self,
        window: ChaosWindow,
        clock: SimulatedClock,
        error: type[DeviceError],
        stochastic: bool,
    ):
        self.window = window
        self.clock = clock
        self.error = error
        self.stochastic = stochastic
        self.stream_label = f"chaos:{window.name}"

    def check(self, ctx: LaunchContext, rng) -> DeviceError | None:
        w = self.window
        if not w.active(self.clock.now):
            return None
        if w.device is not None and w.device not in ctx.device_name:
            return None
        # only in-window attempts draw, so the substream position depends
        # solely on the attempts this window examined
        if self.stochastic and rng.random() >= w.probability:
            return None
        return self.error(
            f"chaos window {w.name!r} ({w.kind}) "
            f"[{w.start_s:g}s, {w.stop_s:g}s)",
            device_name=ctx.device_name,
            launch_index=ctx.launch_index,
            attempt=ctx.attempt,
        )


@dataclass
class ChaosSchedule:
    """A set of windows, compiled onto one runtime's clock."""

    windows: tuple[ChaosWindow, ...] = ()
    seed: int = 0

    def __post_init__(self):
        names = [w.name for w in self.windows]
        if len(set(names)) != len(names):
            raise ValueError(f"window names must be unique, got {names}")

    @property
    def enabled(self) -> bool:
        return bool(self.windows)

    def fault_windows(self) -> tuple[ChaosWindow, ...]:
        return tuple(w for w in self.windows if w.kind != "hw-drift")

    def drift_windows(self) -> tuple[ChaosWindow, ...]:
        return tuple(w for w in self.windows if w.kind == "hw-drift")

    def build_injector(self, clock: SimulatedClock) -> FaultInjector | None:
        """The fault plan for this schedule (None when no fault windows)."""
        triggers = []
        for w in self.fault_windows():
            if w.kind == "fault-storm":
                triggers.append(
                    _WindowedFault(w, clock, TransientDeviceError, stochastic=True)
                )
            elif w.kind == "brownout":
                triggers.append(
                    _WindowedFault(w, clock, TransientDeviceError, stochastic=False)
                )
            else:  # link-degraded
                triggers.append(
                    _WindowedFault(w, clock, TransferError, stochastic=True)
                )
        if not triggers:
            return None
        return FaultInjector(triggers, seed=self.seed)

    def build_dilation(self, clock: SimulatedClock):
        """The ``time_dilation`` hook (None when no hw-drift windows)."""
        windows = self.drift_windows()
        if not windows:
            return None

        def dilation(kind: str) -> float:
            scale = 1.0
            now = clock.now
            for w in windows:
                if w.active(now):
                    scale *= w.cpu_scale if kind == "cpu" else w.gpu_scale
            return scale

        return dilation

    def horizon_guard(self) -> float:
        """Latest window edge (sanity-checked against the trace horizon)."""
        return max((w.stop_s for w in self.windows), default=0.0)
