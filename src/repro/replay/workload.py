"""Deterministic traffic-scale workload generation.

The replay harness drives the runtimes with *production-shaped* traffic
rather than the experiments' uniform sweeps: kernel popularity follows a
Zipf law over the Polybench suite (a few hot kernels dominate, a long
tail trickles), dataset sizes are drawn from a mixed envelope (mostly
small interactive launches, occasional large batch ones), and arrivals
are bursty — a two-state modulated Poisson process on the simulated
clock that alternates calm stretches with arrival storms.

Everything is seeded and **stream-isolated**: each random purpose
(kernel popularity, dataset size, inter-arrival times, burst phase
switching) draws from its own :func:`~repro.util.derive_rng` substream,
so attaching a chaos schedule — or adding a new draw purpose — never
reshuffles the requests an existing configuration generates.  The
request sequence depends only on :class:`WorkloadConfig`, never on what
execution does with it, which is what lets the same trace be replayed
through arbitrarily different runtime configurations (the differential
tests rely on this).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass

from ..ir import Region
from ..polybench import SUITE
from ..util import derive_rng

__all__ = [
    "CaseSpec",
    "LaunchRequest",
    "WorkloadConfig",
    "build_catalog",
    "generate_requests",
]

#: Square-extent envelope the size draw picks from: mostly interactive
#: sizes, an occasional paper-scale "test" launch.  (The paper's
#: 9600-extent benchmark mode is deliberately absent: one such launch
#: runs for simulated minutes and would turn every queueing scenario
#: into a study of a single outlier.)
DEFAULT_SIZES = (256, 512, 1100)
DEFAULT_SIZE_WEIGHTS = (0.5, 0.35, 0.15)


@dataclass(frozen=True)
class CaseSpec:
    """One launchable (kernel, dataset) case of the catalog."""

    benchmark: str
    region_name: str
    env: tuple[tuple[str, int], ...]  # sorted, hashable size bindings

    @property
    def size(self) -> int:
        return self.env[0][1] if self.env else 0

    def env_dict(self) -> dict[str, int]:
        return dict(self.env)


@dataclass(frozen=True)
class LaunchRequest:
    """One arrival of the generated trace."""

    index: int
    arrival_s: float  # simulated arrival time
    case: CaseSpec
    burst: bool  # generated during a burst phase (diagnostic only)
    #: issuing tenant (None = the anonymous single-tenant default, which
    #: keeps single-tenant traces and records byte-identical to traces
    #: generated before tenancy existed)
    tenant: str | None = None


@dataclass(frozen=True)
class WorkloadConfig:
    """Everything the trace depends on (and nothing else).

    ``zipf_s`` is the popularity exponent (1.1 is a classic
    production-ish skew: the top kernel gets ~15% of launches over a
    24-kernel suite, the tail still shows up).  ``mean_interarrival_s``
    is the *calm-phase* mean; bursts compress it by ``burst_factor``.
    Phase switching is geometric with mean lengths
    ``calm_length``/``burst_length`` (in launches).
    """

    launches: int = 10_000
    seed: int = 0
    zipf_s: float = 1.1
    sizes: tuple[int, ...] = DEFAULT_SIZES
    size_weights: tuple[float, ...] = DEFAULT_SIZE_WEIGHTS
    mean_interarrival_s: float = 1e-3
    burst_factor: float = 8.0
    calm_length: int = 200
    burst_length: int = 50
    #: concurrent tenants issuing the trace.  1 (the default) keeps the
    #: historical anonymous trace (``request.tenant is None``); more
    #: draws each request's tenant from its own substream, so turning
    #: tenancy on never reshuffles kernels, sizes or arrival times.
    tenants: int = 1
    #: per-tenant traffic shares (None = uniform).  Skewed weights model
    #: one heavy tenant crowding the others — the fairness scenarios.
    tenant_weights: tuple[float, ...] | None = None

    def __post_init__(self):
        if self.launches < 1:
            raise ValueError("need at least one launch")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")
        if len(self.sizes) != len(self.size_weights) or not self.sizes:
            raise ValueError("sizes and size_weights must match and be non-empty")
        if any(w <= 0 for w in self.size_weights):
            raise ValueError("size weights must be positive")
        if self.mean_interarrival_s <= 0:
            raise ValueError("mean inter-arrival must be positive")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1 (bursts are faster)")
        if self.calm_length < 1 or self.burst_length < 1:
            raise ValueError("phase lengths must be >= 1 launch")
        if self.tenants < 1:
            raise ValueError("need at least one tenant")
        if self.tenant_weights is not None:
            if len(self.tenant_weights) != self.tenants:
                raise ValueError("tenant_weights must have one entry per tenant")
            if any(w <= 0 for w in self.tenant_weights):
                raise ValueError("tenant weights must be positive")


def build_catalog(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
) -> tuple[list[CaseSpec], dict[str, Region]]:
    """The launchable case grid plus the regions the engine must compile.

    One :class:`CaseSpec` per (kernel, square extent); regions are built
    once per benchmark (the suite's ``build`` returns fresh IR each
    call, and the attribute database keys by region name).
    """
    cases: list[CaseSpec] = []
    regions: dict[str, Region] = {}
    for spec in SUITE:
        params = tuple(spec.env("test"))
        for region in spec.build():
            regions[region.name] = region
            for size in sizes:
                cases.append(
                    CaseSpec(
                        benchmark=spec.name,
                        region_name=region.name,
                        env=tuple(sorted((p, size) for p in params)),
                    )
                )
    return cases, regions


def _exponential(rng, mean: float) -> float:
    # inverse-CDF draw; one rng.random() per arrival keeps the stream
    # accounting trivial (expovariate's rejection path would not)
    return -mean * math.log(1.0 - rng.random())


def generate_requests(
    config: WorkloadConfig, cases: list[CaseSpec] | None = None
) -> list[LaunchRequest]:
    """The full seeded trace for one configuration.

    Draw streams (all independent substreams of ``config.seed``):

    * ``popularity`` — which kernel each launch hits (Zipf over a
      seed-shuffled ranking, so which kernels are "hot" varies by seed);
    * ``size`` — the dataset extent (envelope weights);
    * ``arrival`` — the exponential inter-arrival draws;
    * ``phase`` — the calm/burst switching decisions;
    * ``tenant`` — which tenant issued the request (only consumed when
      ``tenants > 1``, so single-tenant traces are byte-identical to
      traces generated before the stream existed).
    """
    if cases is None:
        cases, _ = build_catalog(config.sizes)
    kernels = sorted({c.region_name for c in cases})
    by_kernel_size: dict[tuple[str, int], CaseSpec] = {
        (c.region_name, c.size): c for c in cases
    }

    rank_rng = derive_rng(config.seed, "workload", "ranking")
    rank_rng.shuffle(kernels)
    weights = [1.0 / (rank + 1) ** config.zipf_s for rank in range(len(kernels))]
    pop_cdf = _cumulative(weights)
    size_cdf = _cumulative(list(config.size_weights))

    pop_rng = derive_rng(config.seed, "workload", "popularity")
    size_rng = derive_rng(config.seed, "workload", "size")
    arrival_rng = derive_rng(config.seed, "workload", "arrival")
    phase_rng = derive_rng(config.seed, "workload", "phase")

    tenant_cdf = None
    tenant_rng = None
    if config.tenants > 1:
        tenant_rng = derive_rng(config.seed, "workload", "tenant")
        shares = list(config.tenant_weights or [1.0] * config.tenants)
        tenant_cdf = _cumulative(shares)

    requests: list[LaunchRequest] = []
    now = 0.0
    burst = False
    for index in range(config.launches):
        switch_p = 1.0 / (config.burst_length if burst else config.calm_length)
        if phase_rng.random() < switch_p:
            burst = not burst
        mean = config.mean_interarrival_s
        if burst:
            mean /= config.burst_factor
        now += _exponential(arrival_rng, mean)
        kernel = kernels[bisect_left(pop_cdf, pop_rng.random())]
        size = config.sizes[bisect_left(size_cdf, size_rng.random())]
        tenant = None
        if tenant_cdf is not None:
            tenant = f"t{bisect_left(tenant_cdf, tenant_rng.random())}"
        requests.append(
            LaunchRequest(
                index=index,
                arrival_s=now,
                case=by_kernel_size[(kernel, size)],
                burst=burst,
                tenant=tenant,
            )
        )
    return requests


def _cumulative(weights: list[float]) -> list[float]:
    total = sum(weights)
    acc, cdf = 0.0, []
    for w in weights:
        acc += w / total
        cdf.append(acc)
    cdf[-1] = 1.0  # guard the float tail so bisect never falls off the end
    return cdf
