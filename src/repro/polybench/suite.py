"""The Polybench suite registry.

13 benchmarks / 24 parallel kernels (the paper says "25 kernels from 12
benchmarks" while listing 13 benchmark names; a kernel-by-kernel port of
the listed programs yields 24 — the discrepancy is recorded in
EXPERIMENTS.md).
"""

from __future__ import annotations

from .base import BenchmarkSpec, KernelCase, MODES
from .datamining import CORR, COVAR
from .linalg_mm import GEMM, THREE_MM, TWO_MM
from .linalg_syrk import SYR2K, SYRK
from .linalg_vec import ATAX, BICG, GESUMMV, MVT
from .stencils import CONV2D, CONV3D

__all__ = ["SUITE", "benchmark_by_name", "all_kernel_cases", "kernel_count"]

#: All benchmarks, in the paper's Section IV.E listing order.
SUITE: tuple[BenchmarkSpec, ...] = (
    GEMM,
    MVT,
    THREE_MM,
    TWO_MM,
    ATAX,
    BICG,
    CONV2D,
    CONV3D,
    COVAR,
    GESUMMV,
    SYR2K,
    SYRK,
    CORR,
)


def benchmark_by_name(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by name (case-insensitive)."""
    key = name.strip().lower()
    for spec in SUITE:
        if spec.name == key:
            return spec
    raise KeyError(f"unknown benchmark {name!r}; known: {[s.name for s in SUITE]}")


def all_kernel_cases(mode: str) -> list[KernelCase]:
    """Every kernel of every benchmark at one dataset size."""
    if mode not in MODES:
        raise KeyError(f"mode must be one of {MODES}, got {mode!r}")
    cases: list[KernelCase] = []
    for spec in SUITE:
        cases.extend(spec.kernels(mode))
    return cases


def kernel_count() -> int:
    """Total parallel kernels across the suite."""
    return sum(len(spec.build()) for spec in SUITE)
