"""Symmetric rank-k updates: SYRK, SYR2K.

Both kernels read ``A[j][k]`` with the *band* variable ``j`` scaling a row
stride — the uncoalesced access pattern the paper's Section IV.E discusses
for the SYRK/SYR2K prediction outliers.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import Region
from .base import BenchmarkSpec, square_sizes

__all__ = ["SYRK", "SYR2K"]


def _build_syrk() -> list[Region]:
    r = Region("syrk")
    n, m = r.param_tuple("n", "m")
    A = r.array("A", (n, m))
    C = r.array("C", (n, n), inout=True)
    alpha, beta = r.scalars("alpha", "beta")
    with r.parallel_loop("i", n) as i:
        with r.parallel_loop("j", n) as j:
            acc = r.local("acc", C[i, j] * beta)
            with r.loop("k", m) as k:
                r.assign(acc, acc + alpha * A[i, k] * A[j, k])
            r.store(C[i, j], acc)
    return [r]


def _ref_syrk(arrays: dict[str, np.ndarray], scalars: Mapping[str, float]) -> None:
    A, C = arrays["A"], arrays["C"]
    C[:] = scalars["alpha"] * (A @ A.T) + scalars["beta"] * C


SYRK = BenchmarkSpec(
    name="syrk",
    build=_build_syrk,
    sizes=square_sizes("n", "m"),
    scalars_for=lambda env: {"alpha": 1.5, "beta": 1.2},
    reference=_ref_syrk,
    description="C = alpha*A*A^T + beta*C",
)


def _build_syr2k() -> list[Region]:
    r = Region("syr2k")
    n, m = r.param_tuple("n", "m")
    A = r.array("A", (n, m))
    B = r.array("B", (n, m))
    C = r.array("C", (n, n), inout=True)
    alpha, beta = r.scalars("alpha", "beta")
    with r.parallel_loop("i", n) as i:
        with r.parallel_loop("j", n) as j:
            acc = r.local("acc", C[i, j] * beta)
            with r.loop("k", m) as k:
                r.assign(acc, acc + alpha * A[i, k] * B[j, k])
                r.assign(acc, acc + alpha * B[i, k] * A[j, k])
            r.store(C[i, j], acc)
    return [r]


def _ref_syr2k(arrays: dict[str, np.ndarray], scalars: Mapping[str, float]) -> None:
    A, B, C = arrays["A"], arrays["B"], arrays["C"]
    C[:] = (
        scalars["alpha"] * (A @ B.T)
        + scalars["alpha"] * (B @ A.T)
        + scalars["beta"] * C
    )


SYR2K = BenchmarkSpec(
    name="syr2k",
    build=_build_syr2k,
    sizes=square_sizes("n", "m"),
    scalars_for=lambda env: {"alpha": 1.5, "beta": 1.2},
    reference=_ref_syr2k,
    description="C = alpha*(A*B^T + B*A^T) + beta*C",
)
