"""Convolution stencils: 2DCONV, 3DCONV.

Low arithmetic intensity, fully streaming — the kernels whose offloading
profitability flips between GPU generations in the paper's Table I (3DCONV:
2.1x slowdown on K80/PCIe, 4.41x speedup on V100/NVLink).

The 3-D convolution uses cubic grids (the only suite members whose dataset
extents are not 1100/9600; see DESIGN.md).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import Region
from .base import BenchmarkSpec, square_sizes

__all__ = ["CONV2D", "CONV3D", "CONV3D_TEST_SIZE", "CONV3D_BENCHMARK_SIZE"]

# Polybench-GPU convolution coefficients.
C11, C12, C13 = +0.2, -0.3, +0.4
C21, C22, C23 = +0.5, +0.6, +0.7
C31, C32, C33 = -0.8, -0.9, +0.10

CONV3D_TEST_SIZE = 256
CONV3D_BENCHMARK_SIZE = 640


def _build_conv2d() -> list[Region]:
    r = Region("2dconv")
    ni, nj = r.param_tuple("ni", "nj")
    A = r.array("A", (ni, nj))
    B = r.array("B", (ni, nj), output=True)
    with r.parallel_loop("i", ni - 2, start=1) as i:
        with r.parallel_loop("j", nj - 2, start=1) as j:
            r.store(
                B[i, j],
                C11 * A[i - 1, j - 1]
                + C12 * A[i + 0, j - 1]
                + C13 * A[i + 1, j - 1]
                + C21 * A[i - 1, j + 0]
                + C22 * A[i + 0, j + 0]
                + C23 * A[i + 1, j + 0]
                + C31 * A[i - 1, j + 1]
                + C32 * A[i + 0, j + 1]
                + C33 * A[i + 1, j + 1],
            )
    return [r]


def _ref_conv2d(arrays: dict[str, np.ndarray], scalars: Mapping[str, float]) -> None:
    A, B = arrays["A"], arrays["B"]
    acc = np.zeros_like(A[1:-1, 1:-1], dtype=np.float64)
    coeffs = {
        (-1, -1): C11, (0, -1): C12, (1, -1): C13,
        (-1, 0): C21, (0, 0): C22, (1, 0): C23,
        (-1, 1): C31, (0, 1): C32, (1, 1): C33,
    }
    n0, n1 = A.shape
    for (di, dj), c in coeffs.items():
        acc += np.float32(c) * A[1 + di : n0 - 1 + di, 1 + dj : n1 - 1 + dj].astype(
            np.float64
        )
    B[1:-1, 1:-1] = acc.astype(B.dtype)


CONV2D = BenchmarkSpec(
    name="2dconv",
    build=_build_conv2d,
    sizes=square_sizes("ni", "nj"),
    scalars_for=lambda env: {},
    reference=_ref_conv2d,
    description="3x3 convolution over a 2-D grid",
)


def _build_conv3d() -> list[Region]:
    r = Region("3dconv")
    ni, nj, nk = r.param_tuple("ni", "nj", "nk")
    A = r.array("A", (ni, nj, nk))
    B = r.array("B", (ni, nj, nk), output=True)
    with r.parallel_loop("i", ni - 2, start=1) as i:
        with r.parallel_loop("j", nj - 2, start=1) as j:
            with r.loop("k", nk - 2, start=1) as k:
                r.store(
                    B[i, j, k],
                    C11 * A[i - 1, j - 1, k - 1]
                    + C13 * A[i + 1, j - 1, k - 1]
                    + C21 * A[i - 1, j - 1, k - 1]
                    + C23 * A[i + 1, j - 1, k - 1]
                    + C31 * A[i - 1, j - 1, k - 1]
                    + C33 * A[i + 1, j - 1, k - 1]
                    + C12 * A[i + 0, j - 1, k + 0]
                    + C22 * A[i + 0, j + 0, k + 0]
                    + C32 * A[i + 0, j + 1, k + 0]
                    + C11 * A[i - 1, j - 1, k + 1]
                    + C13 * A[i + 1, j - 1, k + 1]
                    + C21 * A[i - 1, j + 0, k + 1]
                    + C23 * A[i + 1, j + 0, k + 1]
                    + C31 * A[i - 1, j + 1, k + 1]
                    + C33 * A[i + 1, j + 1, k + 1],
                )
    return [r]


def _ref_conv3d(arrays: dict[str, np.ndarray], scalars: Mapping[str, float]) -> None:
    A, B = arrays["A"], arrays["B"]
    terms = [
        (C11, (-1, -1, -1)), (C13, (1, -1, -1)),
        (C21, (-1, -1, -1)), (C23, (1, -1, -1)),
        (C31, (-1, -1, -1)), (C33, (1, -1, -1)),
        (C12, (0, -1, 0)), (C22, (0, 0, 0)), (C32, (0, 1, 0)),
        (C11, (-1, -1, 1)), (C13, (1, -1, 1)),
        (C21, (-1, 0, 1)), (C23, (1, 0, 1)),
        (C31, (-1, 1, 1)), (C33, (1, 1, 1)),
    ]
    n0, n1, n2 = A.shape
    acc = np.zeros_like(A[1:-1, 1:-1, 1:-1], dtype=np.float64)
    for c, (di, dj, dk) in terms:
        acc += np.float32(c) * A[
            1 + di : n0 - 1 + di, 1 + dj : n1 - 1 + dj, 1 + dk : n2 - 1 + dk
        ].astype(np.float64)
    B[1:-1, 1:-1, 1:-1] = acc.astype(B.dtype)


CONV3D = BenchmarkSpec(
    name="3dconv",
    build=_build_conv3d,
    sizes={
        "test": {p: CONV3D_TEST_SIZE for p in ("ni", "nj", "nk")},
        "benchmark": {p: CONV3D_BENCHMARK_SIZE for p in ("ni", "nj", "nk")},
    },
    scalars_for=lambda env: {},
    reference=_ref_conv3d,
    description="27-point-style convolution over a 3-D grid",
)
