"""Datamining benchmarks: COVAR (3 kernels), CORR (4 kernels).

These are the paper's POWER9-favouring cases: every kernel carries
sequential inner loops "well-suited for SIMD vectorization" (Section III),
which our band-vectorizing lowering maps to the wider VSX capability of the
POWER9 descriptor.

Deviation from Polybench: the triangular ``j2 >= j1`` loops are made
rectangular (the full symmetric matrix is computed on both devices), and
CORR computes the full correlation matrix including the diagonal.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import Region, cmp, select, sqrt
from .base import BenchmarkSpec, square_sizes

__all__ = ["COVAR", "CORR", "CORR_EPS"]

CORR_EPS = 0.1


def _mean_kernel(prefix: str) -> Region:
    r = Region(f"{prefix}_mean")
    n, m = r.param_tuple("n", "m")
    data = r.array("data", (n, m))
    mean = r.array("mean", (m,), output=True)
    float_n = r.scalar("float_n")
    with r.parallel_loop("j", m) as j:
        acc = r.local("acc", 0.0)
        with r.loop("i", n) as i:
            r.assign(acc, acc + data[i, j])
        r.store(mean[j], acc / float_n)
    return r


def _build_covar() -> list[Region]:
    k1 = _mean_kernel("covar")

    # kernel 2: centre the data
    k2 = Region("covar_reduce")
    n, m = k2.param_tuple("n", "m")
    data = k2.array("data", (n, m), inout=True)
    mean = k2.array("mean", (m,))
    with k2.parallel_loop("i", n) as i:
        with k2.parallel_loop("j", m) as j:
            k2.store(data[i, j], data[i, j] - mean[j])

    # kernel 3: symmat = data^T data (full symmetric matrix)
    k3 = Region("covar_covar")
    n3, m3 = k3.param_tuple("n", "m")
    data3 = k3.array("data", (n3, m3))
    symmat = k3.array("symmat", (m3, m3), output=True)
    with k3.parallel_loop("j1", m3) as j1:
        with k3.loop("j2", m3) as j2:
            acc = k3.local("acc", 0.0)
            with k3.loop("i", n3) as i:
                k3.assign(acc, acc + data3[i, j1] * data3[i, j2])
            k3.store(symmat[j1, j2], acc)
    return [k1, k2, k3]


def _ref_covar(arrays: dict[str, np.ndarray], scalars: Mapping[str, float]) -> None:
    data = arrays["data"]
    arrays["mean"][:] = data.sum(axis=0) / np.float32(scalars["float_n"])
    data -= arrays["mean"]
    arrays["symmat"][:] = data.T @ data


COVAR = BenchmarkSpec(
    name="covar",
    build=_build_covar,
    sizes=square_sizes("n", "m"),
    scalars_for=lambda env: {"float_n": float(env["n"])},
    reference=_ref_covar,
    description="covariance matrix (mean, centre, covar kernels)",
)


def _build_corr() -> list[Region]:
    k1 = _mean_kernel("corr")

    # kernel 2: per-column standard deviation with the epsilon guard
    k2 = Region("corr_std")
    n, m = k2.param_tuple("n", "m")
    data = k2.array("data", (n, m))
    mean = k2.array("mean", (m,))
    stddev = k2.array("stddev", (m,), output=True)
    float_n = k2.scalar("float_n")
    eps = k2.scalar("eps")
    with k2.parallel_loop("j", m) as j:
        acc = k2.local("acc", 0.0)
        with k2.loop("i", n) as i:
            d = k2.local("d", data[i, j] - mean[j])
            k2.assign(acc, acc + d * d)
        s = k2.local("s", sqrt(acc / float_n))
        k2.store(stddev[j], select(cmp("le", s, eps), 1.0, s))
    return_std = k2

    # kernel 3: centre and scale
    k3 = Region("corr_reduce")
    n3, m3 = k3.param_tuple("n", "m")
    data3 = k3.array("data", (n3, m3), inout=True)
    mean3 = k3.array("mean", (m3,))
    std3 = k3.array("stddev", (m3,))
    float_n3 = k3.scalar("float_n")
    with k3.parallel_loop("i", n3) as i:
        with k3.parallel_loop("j", m3) as j:
            k3.store(
                data3[i, j],
                (data3[i, j] - mean3[j]) / (sqrt(float_n3) * std3[j]),
            )

    # kernel 4: symmat = data^T data (full correlation matrix)
    k4 = Region("corr_corr")
    n4, m4 = k4.param_tuple("n", "m")
    data4 = k4.array("data", (n4, m4))
    symmat = k4.array("symmat", (m4, m4), output=True)
    with k4.parallel_loop("j1", m4) as j1:
        with k4.loop("j2", m4) as j2:
            acc = k4.local("acc", 0.0)
            with k4.loop("i", n4) as i:
                k4.assign(acc, acc + data4[i, j1] * data4[i, j2])
            k4.store(symmat[j1, j2], acc)
    return [k1, return_std, k3, k4]


def _ref_corr(arrays: dict[str, np.ndarray], scalars: Mapping[str, float]) -> None:
    data = arrays["data"]
    float_n = np.float32(scalars["float_n"])
    mean = data.sum(axis=0) / float_n
    arrays["mean"][:] = mean
    std = np.sqrt(((data - mean) ** 2).sum(axis=0) / float_n)
    std = np.where(std <= np.float32(scalars["eps"]), np.float32(1.0), std)
    arrays["stddev"][:] = std
    data -= mean
    data /= np.sqrt(float_n) * std
    arrays["symmat"][:] = data.T @ data


CORR = BenchmarkSpec(
    name="corr",
    build=_build_corr,
    sizes=square_sizes("n", "m"),
    scalars_for=lambda env: {"float_n": float(env["n"]), "eps": CORR_EPS},
    reference=_ref_corr,
    description="correlation matrix (mean, std, reduce, corr kernels)",
)
