"""Matrix-vector benchmarks: ATAX, BICG, MVT, GESUMMV.

1-D parallel bands with a sequential contraction loop per work item — the
kernels whose transposed variants (ATAX k2, BICG k1, MVT k2) walk matrix
columns and exercise the coalescing/caching asymmetry between devices.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import Region
from .base import BenchmarkSpec, square_sizes

__all__ = ["ATAX", "BICG", "MVT", "GESUMMV"]


def _build_atax() -> list[Region]:
    # kernel 1: tmp = A x  (row walk, parallel over rows)
    k1 = Region("atax_k1")
    nx, ny = k1.param_tuple("nx", "ny")
    A = k1.array("A", (nx, ny))
    x = k1.array("x", (ny,))
    tmp = k1.array("tmp", (nx,), output=True)
    with k1.parallel_loop("i", nx) as i:
        acc = k1.local("acc", 0.0)
        with k1.loop("j", ny) as j:
            k1.assign(acc, acc + A[i, j] * x[j])
        k1.store(tmp[i], acc)

    # kernel 2: y = A^T tmp  (column walk, parallel over columns)
    k2 = Region("atax_k2")
    nx2, ny2 = k2.param_tuple("nx", "ny")
    A2 = k2.array("A", (nx2, ny2))
    tmp2 = k2.array("tmp", (nx2,))
    y = k2.array("y", (ny2,), output=True)
    with k2.parallel_loop("j", ny2) as j:
        acc = k2.local("acc", 0.0)
        with k2.loop("i", nx2) as i:
            k2.assign(acc, acc + A2[i, j] * tmp2[i])
        k2.store(y[j], acc)
    return [k1, k2]


def _ref_atax(arrays: dict[str, np.ndarray], scalars: Mapping[str, float]) -> None:
    A, x = arrays["A"], arrays["x"]
    arrays["tmp"][:] = A @ x
    arrays["y"][:] = A.T @ arrays["tmp"]


ATAX = BenchmarkSpec(
    name="atax",
    build=_build_atax,
    sizes=square_sizes("nx", "ny"),
    scalars_for=lambda env: {},
    reference=_ref_atax,
    description="y = A^T (A x) (two kernels)",
)


def _build_bicg() -> list[Region]:
    # kernel 1: s = r^T A (column walk, parallel over columns)
    k1 = Region("bicg_k1")
    nx, ny = k1.param_tuple("nx", "ny")
    A = k1.array("A", (nx, ny))
    rv = k1.array("r", (nx,))
    s = k1.array("s", (ny,), output=True)
    with k1.parallel_loop("j", ny) as j:
        acc = k1.local("acc", 0.0)
        with k1.loop("i", nx) as i:
            k1.assign(acc, acc + rv[i] * A[i, j])
        k1.store(s[j], acc)

    # kernel 2: q = A p (row walk, parallel over rows)
    k2 = Region("bicg_k2")
    nx2, ny2 = k2.param_tuple("nx", "ny")
    A2 = k2.array("A", (nx2, ny2))
    p = k2.array("p", (ny2,))
    q = k2.array("q", (nx2,), output=True)
    with k2.parallel_loop("i", nx2) as i:
        acc = k2.local("acc", 0.0)
        with k2.loop("j", ny2) as j:
            k2.assign(acc, acc + A2[i, j] * p[j])
        k2.store(q[i], acc)
    return [k1, k2]


def _ref_bicg(arrays: dict[str, np.ndarray], scalars: Mapping[str, float]) -> None:
    A = arrays["A"]
    arrays["s"][:] = arrays["r"] @ A
    arrays["q"][:] = A @ arrays["p"]


BICG = BenchmarkSpec(
    name="bicg",
    build=_build_bicg,
    sizes=square_sizes("nx", "ny"),
    scalars_for=lambda env: {},
    reference=_ref_bicg,
    description="s = r A; q = A p (two kernels)",
)


def _build_mvt() -> list[Region]:
    # kernel 1: x1 += A y1
    k1 = Region("mvt_k1")
    n = k1.param("n")
    A = k1.array("A", (n, n))
    y1 = k1.array("y1", (n,))
    x1 = k1.array("x1", (n,), inout=True)
    with k1.parallel_loop("i", n) as i:
        acc = k1.local("acc", x1[i])
        with k1.loop("j", n) as j:
            k1.assign(acc, acc + A[i, j] * y1[j])
        k1.store(x1[i], acc)

    # kernel 2: x2 += A^T y2 (column walk per work item)
    k2 = Region("mvt_k2")
    n2 = k2.param("n")
    A2 = k2.array("A", (n2, n2))
    y2 = k2.array("y2", (n2,))
    x2 = k2.array("x2", (n2,), inout=True)
    with k2.parallel_loop("i", n2) as i:
        acc = k2.local("acc", x2[i])
        with k2.loop("j", n2) as j:
            k2.assign(acc, acc + A2[j, i] * y2[j])
        k2.store(x2[i], acc)
    return [k1, k2]


def _ref_mvt(arrays: dict[str, np.ndarray], scalars: Mapping[str, float]) -> None:
    A = arrays["A"]
    arrays["x1"][:] = arrays["x1"] + A @ arrays["y1"]
    arrays["x2"][:] = arrays["x2"] + A.T @ arrays["y2"]


MVT = BenchmarkSpec(
    name="mvt",
    build=_build_mvt,
    sizes=square_sizes("n"),
    scalars_for=lambda env: {},
    reference=_ref_mvt,
    description="x1 += A y1; x2 += A^T y2 (two kernels)",
)


def _build_gesummv() -> list[Region]:
    r = Region("gesummv")
    n = r.param("n")
    A = r.array("A", (n, n))
    B = r.array("B", (n, n))
    x = r.array("x", (n,))
    y = r.array("y", (n,), output=True)
    alpha, beta = r.scalars("alpha", "beta")
    with r.parallel_loop("i", n) as i:
        ta = r.local("ta", 0.0)
        tb = r.local("tb", 0.0)
        with r.loop("j", n) as j:
            r.assign(ta, ta + A[i, j] * x[j])
            r.assign(tb, tb + B[i, j] * x[j])
        r.store(y[i], alpha * ta + beta * tb)
    return [r]


def _ref_gesummv(arrays: dict[str, np.ndarray], scalars: Mapping[str, float]) -> None:
    A, B, x = arrays["A"], arrays["B"], arrays["x"]
    arrays["y"][:] = scalars["alpha"] * (A @ x) + scalars["beta"] * (B @ x)


GESUMMV = BenchmarkSpec(
    name="gesummv",
    build=_build_gesummv,
    sizes=square_sizes("n"),
    scalars_for=lambda env: {"alpha": 1.5, "beta": 1.2},
    reference=_ref_gesummv,
    description="y = alpha*A*x + beta*B*x",
)
