"""Matrix-multiplication benchmarks: GEMM, 2MM, 3MM.

All use the Polybench-ACC OpenMP-offload parallelization: the 2-D output
space is a collapse(2) parallel band, the contraction loop stays inside
each thread.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import Region
from .base import BenchmarkSpec, square_sizes

__all__ = ["GEMM", "TWO_MM", "THREE_MM"]


def _build_gemm() -> list[Region]:
    r = Region("gemm")
    ni, nj, nk = r.param_tuple("ni", "nj", "nk")
    A = r.array("A", (ni, nk))
    B = r.array("B", (nk, nj))
    C = r.array("C", (ni, nj), inout=True)
    alpha, beta = r.scalars("alpha", "beta")
    with r.parallel_loop("i", ni) as i:
        with r.parallel_loop("j", nj) as j:
            acc = r.local("acc", C[i, j] * beta)
            with r.loop("k", nk) as k:
                r.assign(acc, acc + alpha * A[i, k] * B[k, j])
            r.store(C[i, j], acc)
    return [r]


def _ref_gemm(arrays: dict[str, np.ndarray], scalars: Mapping[str, float]) -> None:
    A, B, C = arrays["A"], arrays["B"], arrays["C"]
    C[:] = scalars["alpha"] * (A @ B) + scalars["beta"] * C


GEMM = BenchmarkSpec(
    name="gemm",
    build=_build_gemm,
    sizes=square_sizes("ni", "nj", "nk"),
    scalars_for=lambda env: {"alpha": 1.5, "beta": 1.2},
    reference=_ref_gemm,
    description="C = alpha*A*B + beta*C",
)


def _build_2mm() -> list[Region]:
    # kernel 1: tmp = alpha * A * B
    k1 = Region("2mm_k1")
    ni, nj, nk = k1.param_tuple("ni", "nj", "nk")
    A = k1.array("A", (ni, nk))
    B = k1.array("B", (nk, nj))
    tmp = k1.array("tmp", (ni, nj), output=True)
    alpha = k1.scalar("alpha")
    with k1.parallel_loop("i", ni) as i:
        with k1.parallel_loop("j", nj) as j:
            acc = k1.local("acc", 0.0)
            with k1.loop("k", nk) as k:
                k1.assign(acc, acc + alpha * A[i, k] * B[k, j])
            k1.store(tmp[i, j], acc)

    # kernel 2: D = tmp * C + beta * D
    k2 = Region("2mm_k2")
    ni2, nj2, nl = k2.param_tuple("ni", "nj", "nl")
    tmp2 = k2.array("tmp", (ni2, nj2))
    C = k2.array("C", (nj2, nl))
    D = k2.array("D", (ni2, nl), inout=True)
    beta = k2.scalar("beta")
    with k2.parallel_loop("i", ni2) as i:
        with k2.parallel_loop("j", nl) as j:
            acc = k2.local("acc", D[i, j] * beta)
            with k2.loop("k", nj2) as k:
                k2.assign(acc, acc + tmp2[i, k] * C[k, j])
            k2.store(D[i, j], acc)
    return [k1, k2]


def _ref_2mm(arrays: dict[str, np.ndarray], scalars: Mapping[str, float]) -> None:
    A, B, C, D = arrays["A"], arrays["B"], arrays["C"], arrays["D"]
    arrays["tmp"][:] = scalars["alpha"] * (A @ B)
    D[:] = arrays["tmp"] @ C + scalars["beta"] * D


TWO_MM = BenchmarkSpec(
    name="2mm",
    build=_build_2mm,
    sizes=square_sizes("ni", "nj", "nk", "nl"),
    scalars_for=lambda env: {"alpha": 1.5, "beta": 1.2},
    reference=_ref_2mm,
    description="D = alpha*A*B*C + beta*D (two kernels)",
)


def _build_3mm() -> list[Region]:
    # E = A * B
    k1 = Region("3mm_k1")
    ni, nj, nk = k1.param_tuple("ni", "nj", "nk")
    A = k1.array("A", (ni, nk))
    B = k1.array("B", (nk, nj))
    E = k1.array("E", (ni, nj), output=True)
    with k1.parallel_loop("i", ni) as i:
        with k1.parallel_loop("j", nj) as j:
            acc = k1.local("acc", 0.0)
            with k1.loop("k", nk) as k:
                k1.assign(acc, acc + A[i, k] * B[k, j])
            k1.store(E[i, j], acc)

    # F = C * D
    k2 = Region("3mm_k2")
    nj2, nl, nm = k2.param_tuple("nj", "nl", "nm")
    C = k2.array("C", (nj2, nm))
    Dm = k2.array("D", (nm, nl))
    F = k2.array("F", (nj2, nl), output=True)
    with k2.parallel_loop("i", nj2) as i:
        with k2.parallel_loop("j", nl) as j:
            acc = k2.local("acc", 0.0)
            with k2.loop("k", nm) as k:
                k2.assign(acc, acc + C[i, k] * Dm[k, j])
            k2.store(F[i, j], acc)

    # G = E * F
    k3 = Region("3mm_k3")
    ni3, nj3, nl3 = k3.param_tuple("ni", "nj", "nl")
    E3 = k3.array("E", (ni3, nj3))
    F3 = k3.array("F", (nj3, nl3))
    G = k3.array("G", (ni3, nl3), output=True)
    with k3.parallel_loop("i", ni3) as i:
        with k3.parallel_loop("j", nl3) as j:
            acc = k3.local("acc", 0.0)
            with k3.loop("k", nj3) as k:
                k3.assign(acc, acc + E3[i, k] * F3[k, j])
            k3.store(G[i, j], acc)
    return [k1, k2, k3]


def _ref_3mm(arrays: dict[str, np.ndarray], scalars: Mapping[str, float]) -> None:
    arrays["E"][:] = arrays["A"] @ arrays["B"]
    arrays["F"][:] = arrays["C"] @ arrays["D"]
    arrays["G"][:] = arrays["E"] @ arrays["F"]


THREE_MM = BenchmarkSpec(
    name="3mm",
    build=_build_3mm,
    sizes=square_sizes("ni", "nj", "nk", "nl", "nm"),
    scalars_for=lambda env: {},
    reference=_ref_3mm,
    description="G = (A*B)*(C*D) (three kernels)",
)
