"""Polybench OpenMP kernels ported to the kernel IR.

The evaluation workload of the paper: GEMM, MVT, 3MM, 2MM, ATAX, BICG,
2DCONV, 3DCONV, COVAR, GESUMMV, SYR2K, SYRK and CORR, each with the
``test`` (1100²) and ``benchmark`` (9600²) datasets.
"""

from .base import BENCHMARK_SIZE, MODES, TEST_SIZE, BenchmarkSpec, KernelCase
from .linalg_mm import GEMM, THREE_MM, TWO_MM
from .linalg_vec import ATAX, BICG, GESUMMV, MVT
from .linalg_syrk import SYR2K, SYRK
from .stencils import CONV2D, CONV3D, CONV3D_BENCHMARK_SIZE, CONV3D_TEST_SIZE
from .datamining import CORR, CORR_EPS, COVAR
from .suite import SUITE, all_kernel_cases, benchmark_by_name, kernel_count

__all__ = [
    "BENCHMARK_SIZE",
    "MODES",
    "TEST_SIZE",
    "BenchmarkSpec",
    "KernelCase",
    "GEMM",
    "THREE_MM",
    "TWO_MM",
    "ATAX",
    "BICG",
    "GESUMMV",
    "MVT",
    "SYR2K",
    "SYRK",
    "CONV2D",
    "CONV3D",
    "CONV3D_BENCHMARK_SIZE",
    "CONV3D_TEST_SIZE",
    "CORR",
    "CORR_EPS",
    "COVAR",
    "SUITE",
    "all_kernel_cases",
    "benchmark_by_name",
    "kernel_count",
]
