"""Polybench suite infrastructure.

Each benchmark is described by a :class:`BenchmarkSpec`: a builder that
returns its target regions (kernels) in program order, the ``test`` /
``benchmark`` dataset sizes of the paper (1100² and 9600² "in most
programs"; the 3-D convolution uses cubic grids), scalar arguments, and a
numpy reference oracle used by the correctness tests.

Deviations from Polybench/ACC, recorded here and in DESIGN.md:

* data type is ``float`` (f32), the Polybench-GPU default;
* the triangular ``j2 >= j1`` loops of COVAR/CORR are made rectangular
  (full symmetric matrix computed) — identical work on both devices, so
  relative CPU/GPU results are unaffected;
* each kernel is a single ``target`` region with the parallelization
  Polybench-ACC's OpenMP-offload codes use (collapse(2) for 2-D outputs,
  1-D ``parallel for`` for vector outputs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..ir import Region

__all__ = ["BenchmarkSpec", "KernelCase", "MODES", "TEST_SIZE", "BENCHMARK_SIZE"]

#: The paper's two execution modes and their square-matrix extents.
TEST_SIZE = 1100
BENCHMARK_SIZE = 9600
MODES = ("test", "benchmark")


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Polybench benchmark: kernels + datasets + oracle."""

    name: str
    build: Callable[[], list[Region]]
    sizes: Mapping[str, Mapping[str, int]]  # mode -> size params
    scalars_for: Callable[[Mapping[str, int]], dict[str, float]]
    reference: Callable[[dict[str, np.ndarray], Mapping[str, float]], None]
    description: str = ""

    def env(self, mode: str) -> dict[str, int]:
        """Size-parameter bindings for a mode ('test' or 'benchmark')."""
        if mode not in self.sizes:
            raise KeyError(f"{self.name} has no dataset {mode!r}")
        return dict(self.sizes[mode])

    def kernels(self, mode: str) -> list["KernelCase"]:
        """Fresh kernel cases (region + bindings) for one mode."""
        env = self.env(mode)
        scalars = self.scalars_for(env)
        return [
            KernelCase(
                benchmark=self.name,
                mode=mode,
                region=region,
                env=env,
                scalars=scalars,
            )
            for region in self.build()
        ]


@dataclass(frozen=True)
class KernelCase:
    """One kernel of one benchmark at one dataset size."""

    benchmark: str
    mode: str
    region: Region
    env: Mapping[str, int]
    scalars: Mapping[str, float]

    @property
    def name(self) -> str:
        return self.region.name

    def __repr__(self) -> str:
        return f"<{self.name} [{self.mode}]>"


def square_sizes(*params: str) -> dict[str, dict[str, int]]:
    """test/benchmark size maps binding every param to the square extents."""
    return {
        "test": {p: TEST_SIZE for p in params},
        "benchmark": {p: BENCHMARK_SIZE for p in params},
    }


def no_scalars(env: Mapping[str, int]) -> dict[str, float]:
    return {}
