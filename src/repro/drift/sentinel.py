"""Online misprediction detection: the drift sentinel.

The paper's framework is hybrid static + runtime, but its runtime half
trusts the analytical predictions unconditionally — a miscalibrated
machine model silently mis-routes every launch.  The sentinel closes the
predict→observe→correct loop: every launch contributes one observation of
``log(observed / predicted)`` per (device, region) stream, and each stream
runs

* an **EWMA** of the log-ratio (the stream's current multiplicative model
  error, whose exponential is the self-healing correction factor), and
* a two-sided **CUSUM** change detector over the residual relative to the
  stream's own warmup baseline (so *static* per-kernel model error — which
  the paper analyses and this reproduction deliberately preserves — is not
  flagged; only a *change* in the error structure is).

Verdicts are three-state:

* ``CALIBRATED`` — residuals within the CUSUM slack; the model is as
  trustworthy as it was at warmup;
* ``SUSPECT`` — the CUSUM statistic has left the noise floor but not yet
  crossed the decision threshold;
* ``DRIFTED`` — the threshold is crossed; corrections apply until the
  residuals recover for ``recover_after`` consecutive observations.

Everything is deterministic and observation-driven: with no drift the
residuals of a deterministic workload are ~0 and every stream stays
CALIBRATED forever, which is what keeps sentinel-on runs bit-identical to
sentinel-off runs (see docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "DriftState",
    "SentinelConfig",
    "Ewma",
    "Cusum",
    "StreamStats",
    "DriftSentinel",
]


class DriftState(str, enum.Enum):
    CALIBRATED = "calibrated"
    SUSPECT = "suspect"
    DRIFTED = "drifted"


@dataclass(frozen=True)
class SentinelConfig:
    """Tuning knobs of the per-stream detectors (defaults are conservative)."""

    ewma_alpha: float = 0.3  # weight of the newest log-ratio
    warmup: int = 3  # observations used to anchor the baseline
    cusum_k: float = 0.05  # slack per observation (log units)
    cusum_h: float = 0.6  # decision threshold (log units)
    suspect_fraction: float = 0.5  # SUSPECT above h * fraction
    recover_band: float = 0.1  # |residual| counted as recovered
    recover_after: int = 4  # consecutive in-band residuals to re-promote
    correction_clamp: float = 64.0  # corrections confined to [1/c, c]
    measured_alpha: float = 0.5  # EWMA weight for measured-seconds history

    def __post_init__(self):
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 < self.measured_alpha <= 1.0:
            raise ValueError("measured_alpha must be in (0, 1]")
        if self.warmup < 1:
            raise ValueError("warmup must be >= 1")
        if self.cusum_k < 0 or self.cusum_h <= 0:
            raise ValueError("cusum_k must be >= 0 and cusum_h > 0")
        if not 0.0 < self.suspect_fraction < 1.0:
            raise ValueError("suspect_fraction must be in (0, 1)")
        if self.recover_band <= 0 or self.recover_after < 1:
            raise ValueError("recovery band/count must be positive")
        if self.correction_clamp < 1.0:
            raise ValueError("correction_clamp must be >= 1")


@dataclass
class Ewma:
    """Exponentially weighted moving average, seeded by the first sample."""

    alpha: float
    value: float = 0.0
    count: int = 0

    def update(self, x: float) -> float:
        if self.count == 0:
            self.value = x
        else:
            self.value += self.alpha * (x - self.value)
        self.count += 1
        return self.value


@dataclass
class Cusum:
    """Two-sided CUSUM change detector (Page's test).

    ``pos`` accumulates upward shifts, ``neg`` downward ones; each step
    sheds the slack ``k``, so a zero-mean residual stream decays both
    sides back to zero.  ``tripped`` when either side exceeds ``h``.
    """

    k: float
    h: float
    pos: float = 0.0
    neg: float = 0.0

    def update(self, x: float) -> bool:
        self.pos = max(0.0, self.pos + x - self.k)
        self.neg = max(0.0, self.neg - x - self.k)
        return self.tripped

    @property
    def statistic(self) -> float:
        return max(self.pos, self.neg)

    @property
    def tripped(self) -> bool:
        return self.statistic > self.h

    def reset(self) -> None:
        self.pos = self.neg = 0.0


class StreamStats:
    """Rolling predicted-vs-observed statistics for one (device, region)."""

    def __init__(self, device: str, region: str, config: SentinelConfig):
        self.device = device
        self.region = region
        self.config = config
        self.state = DriftState.CALIBRATED
        self.observations = 0  # valid (finite, positive) observations
        self.baseline: float | None = None  # mean warmup log-ratio
        self.ratio_ewma = Ewma(config.ewma_alpha)
        #: EWMA of |log-ratio - ratio_ewma|: how *unstable* the model
        #: error is.  A stable bias is fixable by a multiplicative
        #: correction; an unstable one is not (see healing.py).
        self.instability = Ewma(config.ewma_alpha)
        self.cusum = Cusum(config.cusum_k, config.cusum_h)
        self.measured = Ewma(config.measured_alpha)  # observed seconds
        self._warmup_sum = 0.0
        self._recover_streak = 0
        self.drift_count = 0  # CALIBRATED/SUSPECT -> DRIFTED transitions

    def observe(self, predicted: float, observed: float) -> DriftState:
        """Feed one launch's prediction/measurement pair; return the verdict.

        Non-finite or non-positive pairs carry no ratio information (a
        failed launch measures no useful time) and are ignored.
        """
        if not (
            math.isfinite(predicted)
            and math.isfinite(observed)
            and predicted > 0.0
            and observed > 0.0
        ):
            return self.state
        log_ratio = math.log(observed / predicted)
        self.observations += 1
        self.instability.update(
            abs(log_ratio - self.ratio_ewma.value)
            if self.ratio_ewma.count
            else 0.0
        )
        self.ratio_ewma.update(log_ratio)
        self.measured.update(observed)
        if self.observations <= self.config.warmup:
            self._warmup_sum += log_ratio
            if self.observations == self.config.warmup:
                self.baseline = self._warmup_sum / self.config.warmup
            return self.state
        residual = log_ratio - (self.baseline or 0.0)
        self.cusum.update(residual)
        if self.state is DriftState.DRIFTED:
            # recovery is streak-based: the CUSUM statistic only decays by
            # k per observation, which would hold a long drift open far
            # past the point the residuals returned to baseline.
            if abs(residual) <= self.config.recover_band:
                self._recover_streak += 1
                # the model looks right again — re-anchor so the applied
                # correction collapses to ~1 immediately instead of
                # decaying over several EWMA steps while mis-routing
                self.ratio_ewma.value = log_ratio
            else:
                self._recover_streak = 0
            if self._recover_streak >= self.config.recover_after:
                self.state = DriftState.CALIBRATED
                self.cusum.reset()
                self._recover_streak = 0
        elif self.cusum.tripped:
            self.state = DriftState.DRIFTED
            self.drift_count += 1
            self._recover_streak = 0
            # The CUSUM just certified a level shift: re-anchor the ratio
            # estimate on the shifted observation (so the correction is
            # usable immediately) and restart the instability estimator
            # (so the shift transient is not mistaken for an unstable
            # error — only *post-drift* scatter escalates to history mode).
            self.ratio_ewma.value = log_ratio
            self.instability = Ewma(self.config.ewma_alpha)
        elif self.cusum.statistic > self.config.cusum_h * self.config.suspect_fraction:
            self.state = DriftState.SUSPECT
        else:
            self.state = DriftState.CALIBRATED
        return self.state

    def correction(self) -> float:
        """Multiplicative fix for the stream's prediction (1.0 unless DRIFTED).

        The correction undoes the *shift* relative to the warmup baseline
        — ``exp(ewma - baseline)`` — not the full observed/predicted
        ratio: the static per-kernel model error captured by the baseline
        is part of the analytical model's accepted behaviour (both
        devices' predictions carry it, so it cancels in the comparison),
        and correcting only one side's static error would bias the
        selection toward that side.  Clamped so one absurd observation
        cannot blow up the selection.
        """
        if self.state is not DriftState.DRIFTED or self.ratio_ewma.count == 0:
            return 1.0
        shift = self.ratio_ewma.value - (self.baseline or 0.0)
        clamp = self.config.correction_clamp
        return min(max(math.exp(shift), 1.0 / clamp), clamp)

    def measured_seconds(self) -> float | None:
        """Recent observed seconds (None before any valid observation)."""
        return self.measured.value if self.measured.count else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamStats({self.device!r}, {self.region!r}, "
            f"{self.state.value}, n={self.observations}, "
            f"ratio=e^{self.ratio_ewma.value:.3f}, "
            f"cusum={self.cusum.statistic:.3f})"
        )


class DriftSentinel:
    """Per-(device, region) drift detection across a runtime's launches.

    The runtimes feed ``observe`` after every launch; selection-time
    consumers (the self-healing selector, the multi-device argmin) read
    ``state``/``correction``.  ``on_drift`` fires once per
    CALIBRATED/SUSPECT→DRIFTED edge — the hook point for triggering a
    :mod:`repro.calibrate.model_fit` re-fit (see healing.py).

    When a ``clock`` is attached (the runtimes wire their own
    :class:`~repro.runtime.clock.SimulatedClock` in automatically),
    every state change is appended to ``transitions`` with the simulated
    timestamp it happened at — the raw material for time-to-detect /
    time-to-recover scoring in the traffic replay harness.
    """

    def __init__(
        self,
        config: SentinelConfig | None = None,
        *,
        on_drift: Callable[[StreamStats], None] | None = None,
        clock=None,
    ):
        self.config = config or SentinelConfig()
        self.on_drift = on_drift
        self.clock = clock  # anything with a .now attribute (seconds), or None
        self.streams: dict[tuple[str, str], StreamStats] = {}
        #: (sim time, device, region, old state, new state) per edge.
        self.transitions: list[tuple[float, str, str, DriftState, DriftState]] = []

    def stream(self, device: str, region: str) -> StreamStats:
        key = (device, region)
        if key not in self.streams:
            self.streams[key] = StreamStats(device, region, self.config)
        return self.streams[key]

    def observe(
        self, device: str, region: str, predicted: float, observed: float
    ) -> DriftState:
        stream = self.stream(device, region)
        before = stream.state
        state = stream.observe(predicted, observed)
        if state is not before and self.clock is not None:
            self.transitions.append(
                (self.clock.now, device, region, before, state)
            )
        if (
            state is DriftState.DRIFTED
            and before is not DriftState.DRIFTED
            and self.on_drift is not None
        ):
            self.on_drift(stream)
        return state

    def state(self, device: str, region: str) -> DriftState:
        stream = self.streams.get((device, region))
        return stream.state if stream else DriftState.CALIBRATED

    def correction(self, device: str, region: str) -> float:
        stream = self.streams.get((device, region))
        return stream.correction() if stream else 1.0

    def measured(self, device: str, region: str) -> float | None:
        stream = self.streams.get((device, region))
        return stream.measured_seconds() if stream else None

    def instability(self, device: str, region: str) -> float:
        stream = self.streams.get((device, region))
        return stream.instability.value if stream else 0.0

    def drifted_streams(self) -> list[StreamStats]:
        return [s for s in self.streams.values() if s.state is DriftState.DRIFTED]

    def any_drifted(self) -> bool:
        return any(
            s.state is DriftState.DRIFTED for s in self.streams.values()
        )

    def fitted_scales(self) -> dict[str, float]:
        """Per-device geometric-mean observed/predicted ratio.

        The "accumulated observations" a re-fit can fold into the model
        calibration: scaling a device's predictions by its fitted scale
        centres that device's residuals back on zero.
        """
        ratios: dict[str, list[float]] = {}
        for stream in self.streams.values():
            if stream.ratio_ewma.count:
                ratios.setdefault(stream.device, []).append(
                    stream.ratio_ewma.value
                )
        return {
            device: math.exp(sum(vals) / len(vals))
            for device, vals in ratios.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        drifted = sum(
            1 for s in self.streams.values() if s.state is DriftState.DRIFTED
        )
        return f"DriftSentinel({len(self.streams)} streams, {drifted} drifted)"
