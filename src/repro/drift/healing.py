"""Self-healing target selection under model drift.

When the sentinel declares a (device, region) stream DRIFTED the
model-guided decision degrades gracefully instead of trusting a broken
prediction:

1. **corrected** — the drifting side's prediction is multiplied by the
   stream's learned correction factor (``exp`` of the EWMA log-ratio), so
   a stable multiplicative miscalibration is simply divided back out;
2. **history** — when the stream's error is too *unstable* for a scalar
   correction (``instability`` above the configured threshold), selection
   falls back to measured history: pick the side that has actually been
   faster lately;
3. **re-promotion** — once the stream's residuals recover the sentinel
   returns it to CALIBRATED and selection reverts to the pure model.

A hysteresis dead-band around the CPU/GPU break-even point prevents
flip-flopping: while the corrected (or measured) costs are within
``hysteresis_band`` of each other, the previous decision for that region
is held.

The optional re-fit hook (:func:`attach_refit_hook`) closes the loop all
the way back to :mod:`repro.calibrate.model_fit`: on the first DRIFTED
edge the accumulated observations are folded into the policy's cached
:class:`~repro.calibrate.ModelCalibration`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .sentinel import DriftSentinel, DriftState, StreamStats

__all__ = [
    "HealingConfig",
    "DriftDecision",
    "SelfHealingSelector",
    "observed_calibration",
    "attach_refit_hook",
]


@dataclass(frozen=True)
class HealingConfig:
    """Knobs of the degradation ladder."""

    hysteresis_band: float = 0.05  # relative dead-band around break-even
    history_instability: float = 0.35  # log-units; above -> history mode

    def __post_init__(self):
        if not 0.0 <= self.hysteresis_band < 1.0:
            raise ValueError("hysteresis_band must be in [0, 1)")
        if self.history_instability <= 0.0:
            raise ValueError("history_instability must be positive")


@dataclass(frozen=True)
class DriftDecision:
    """Drift provenance stamped on a launch record.

    Only stamped when something is actually off (any stream not
    CALIBRATED); fully calibrated launches leave no trace, keeping them
    bit-identical to sentinel-off runs.
    """

    mode: str  # "model" | "corrected" | "history"
    model_target: str  # the raw model's pick
    target: str  # the healed pick
    cpu_state: str  # DriftState values of the two streams
    gpu_state: str
    correction_cpu: float = 1.0
    correction_gpu: float = 1.0
    held: bool = False  # hysteresis held the previous decision

    @property
    def overrode(self) -> bool:
        """Did healing change the raw model's decision?"""
        return self.target != self.model_target


class SelfHealingSelector:
    """Wraps the sentinel's verdicts into a final cpu/gpu pick."""

    def __init__(
        self, sentinel: DriftSentinel, config: HealingConfig | None = None
    ):
        self.sentinel = sentinel
        self.config = config or HealingConfig()
        self._last: dict[str, str] = {}  # region -> previous healed pick

    def decide(self, region: str, prediction) -> DriftDecision | None:
        """Heal one selection; None when both streams are CALIBRATED.

        ``prediction`` is any object with ``cpu.seconds``, ``gpu.seconds``
        and ``winner`` (a :class:`~repro.models.SelectionPrediction`).
        """
        cpu_state = self.sentinel.state("cpu", region)
        gpu_state = self.sentinel.state("gpu", region)
        model_target = prediction.winner
        if (
            cpu_state is DriftState.CALIBRATED
            and gpu_state is DriftState.CALIBRATED
        ):
            return None

        corr_cpu = self.sentinel.correction("cpu", region)
        corr_gpu = self.sentinel.correction("gpu", region)
        drifted = DriftState.DRIFTED in (cpu_state, gpu_state)
        mode = "corrected" if drifted else "model"
        if mode == "corrected" and self._too_unstable(region, cpu_state, gpu_state):
            mode = "history"

        held = False
        if mode == "model":
            # SUSPECT only: watch, but do not second-guess the model yet.
            target = model_target
        elif mode == "corrected":
            target, held = self._pick(
                region,
                prediction.cpu.seconds * corr_cpu,
                prediction.gpu.seconds * corr_gpu,
                model_target,
            )
        else:
            m_cpu = self.sentinel.measured("cpu", region)
            m_gpu = self.sentinel.measured("gpu", region)
            if m_cpu is None or m_gpu is None:
                # not enough history to overrule anything yet
                mode, target = "corrected", model_target
            else:
                target, held = self._pick(region, m_cpu, m_gpu, model_target)
        self._last[region] = target
        return DriftDecision(
            mode=mode,
            model_target=model_target,
            target=target,
            cpu_state=cpu_state.value,
            gpu_state=gpu_state.value,
            correction_cpu=corr_cpu,
            correction_gpu=corr_gpu,
            held=held,
        )

    def _too_unstable(
        self, region: str, cpu_state: DriftState, gpu_state: DriftState
    ) -> bool:
        limit = self.config.history_instability
        return (
            cpu_state is DriftState.DRIFTED
            and self.sentinel.instability("cpu", region) > limit
        ) or (
            gpu_state is DriftState.DRIFTED
            and self.sentinel.instability("gpu", region) > limit
        )

    def _pick(
        self, region: str, cpu_cost: float, gpu_cost: float, model_target: str
    ) -> tuple[str, bool]:
        """Lower cost wins, with a hysteresis dead-band at break-even."""
        if not (
            math.isfinite(cpu_cost)
            and math.isfinite(gpu_cost)
            and cpu_cost > 0.0
            and gpu_cost > 0.0
        ):
            return model_target, False
        band = self.config.hysteresis_band
        if gpu_cost < cpu_cost * (1.0 - band):
            return "gpu", False
        if gpu_cost > cpu_cost * (1.0 + band):
            return "cpu", False
        previous = self._last.get(region)
        if previous is not None:
            return previous, True
        return ("gpu" if gpu_cost < cpu_cost else "cpu"), False


def observed_calibration(sentinel: DriftSentinel, base):
    """Fold the sentinel's accumulated observations into a calibration.

    ``base`` is a :class:`~repro.calibrate.ModelCalibration`; the returned
    copy scales each side by the geometric-mean observed/predicted ratio
    of that side's streams (identity for sides with no observations), so
    the re-fit model's residuals re-centre on zero.
    """
    import dataclasses

    scales = sentinel.fitted_scales()
    return dataclasses.replace(
        base,
        cpu_time_scale=base.cpu_time_scale * scales.get("cpu", 1.0),
        gpu_time_scale=base.gpu_time_scale * scales.get("gpu", 1.0),
    )


def attach_refit_hook(
    sentinel: DriftSentinel,
    policy,
    platform,
    *,
    num_threads: int | None = None,
) -> None:
    """Arm ``sentinel.on_drift`` to re-fit the policy's model calibration.

    On the first DRIFTED edge the :mod:`repro.calibrate.model_fit`
    constants are re-fitted and adjusted by the accumulated observations,
    replacing the :class:`~repro.runtime.ModelGuided` policy's cached
    calibration for ``(platform, num_threads)``.
    """
    from ..calibrate import fit_model_calibration

    def hook(stream: StreamStats) -> None:
        base = fit_model_calibration(platform, num_threads=num_threads)
        policy._calibrations[(platform.name, num_threads)] = (
            observed_calibration(sentinel, base)
        )

    sentinel.on_drift = hook
