"""Drift sentinel: the predict→observe→correct loop (docs/ROBUSTNESS.md).

Three pieces the runtimes compose, all off by default (a runtime without
a sentinel or watchdog is bit-identical to one that predates this
package):

* :class:`DriftSentinel` — per-(device, region) EWMA + CUSUM statistics
  over ``predicted vs. observed`` seconds, with three-state verdicts
  (CALIBRATED / SUSPECT / DRIFTED);
* :class:`Watchdog` — per-launch deadlines derived from the selector's
  own prediction; an overrun becomes a typed
  :class:`~repro.faults.DeadlineExceeded` feeding the device-health and
  circuit-breaker machinery;
* :class:`SelfHealingSelector` — graceful degradation of the
  model-guided decision under drift: learned multiplicative corrections
  with break-even hysteresis, measured-history fallback, re-promotion to
  the pure model on recovery, and an optional calibration re-fit hook.
"""

from .healing import (
    DriftDecision,
    HealingConfig,
    SelfHealingSelector,
    attach_refit_hook,
    observed_calibration,
)
from .sentinel import (
    Cusum,
    DriftSentinel,
    DriftState,
    Ewma,
    SentinelConfig,
    StreamStats,
)
from .watchdog import Watchdog

__all__ = [
    "Cusum",
    "DriftDecision",
    "DriftSentinel",
    "DriftState",
    "Ewma",
    "HealingConfig",
    "SelfHealingSelector",
    "SentinelConfig",
    "StreamStats",
    "Watchdog",
    "attach_refit_hook",
    "observed_calibration",
]
