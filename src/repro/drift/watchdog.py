"""Watchdog deadlines derived from the selector's own prediction.

A hung device is only caught by the fault injector today; a real runtime
must catch it from *behaviour*.  The watchdog turns the analytical
prediction into a per-launch deadline::

    deadline = predicted_seconds * factor + slack_s

A dispatch whose (simulated) device time exceeds its deadline is killed
at the deadline and surfaces as a typed
:class:`~repro.faults.DeadlineExceeded` — a :class:`~repro.faults.DeviceError`
that feeds the existing :class:`~repro.faults.DeviceHealth` /
:class:`~repro.faults.CircuitBreaker` machinery, so repeated hangs open
the breaker exactly like injected faults do.

``factor`` buys headroom for honest model error (the reproduction's
models are off by a few× on unfriendly kernels — see docs/MODELS.md);
``slack_s`` keeps microsecond-scale predictions from producing
unsatisfiable deadlines.  With no prediction available (the always-*
policies) no deadline can be derived and the watchdog stays silent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Watchdog"]


@dataclass(frozen=True)
class Watchdog:
    """Deadline policy: ``predicted * factor + slack_s`` simulated seconds."""

    factor: float = 8.0
    slack_s: float = 1e-4

    def __post_init__(self):
        if not math.isfinite(self.factor) or self.factor < 1.0:
            raise ValueError("watchdog factor must be finite and >= 1")
        if not math.isfinite(self.slack_s) or self.slack_s < 0.0:
            raise ValueError("watchdog slack must be finite and >= 0")

    def deadline(self, predicted_seconds: float) -> float:
        """Deadline for one launch; inf when no usable prediction exists."""
        if not math.isfinite(predicted_seconds) or predicted_seconds <= 0.0:
            return math.inf
        return predicted_seconds * self.factor + self.slack_s

    def exceeded(self, predicted_seconds: float, observed_seconds: float) -> bool:
        return observed_seconds > self.deadline(predicted_seconds)
