"""Observability: tracing spans, metrics, and trace exporters.

The runtimes accept a :class:`Tracer` and a :class:`MetricsRegistry`
(both off by default — the :data:`NULL_TRACER` fast path records nothing
and allocates nothing) and instrument every stage of the Figure 2
pipeline; :func:`chrome_trace_json` turns a recorded run into a file
``chrome://tracing`` / Perfetto can open.  See docs/OBSERVABILITY.md.
"""

from .tracer import (
    NULL_TRACER,
    InstantRecord,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    current_tracer,
)
from .metrics import (
    DEFAULT_LOG_ERROR_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
)
from .export import chrome_trace_events, chrome_trace_json, render_trace_text

__all__ = [
    "NULL_TRACER",
    "InstantRecord",
    "NullTracer",
    "Span",
    "SpanRecord",
    "Tracer",
    "current_tracer",
    "DEFAULT_LOG_ERROR_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
    "chrome_trace_events",
    "chrome_trace_json",
    "render_trace_text",
]
