"""Counters, gauges and fixed-bucket histograms for the runtimes.

A :class:`MetricsRegistry` is fed by the same instrumentation points as
the tracer (launches by device, retries, breaker trips, drift verdict
transitions, lint findings by severity, predicted-vs-observed error) and
renders to a deterministic :meth:`~MetricsRegistry.snapshot` dict — keys
are ``name{label=value,...}`` strings with sorted labels, so two
identical runs serialize byte-identically.

Everything is plain Python; there is no background aggregation thread
and no dependency.  Instruments are get-or-create: asking for the same
``(name, labels)`` twice returns the same object.
"""

from __future__ import annotations

import math

__all__ = [
    "Counter",
    "DEFAULT_LOG_ERROR_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
]

#: Upper bounds (|log10(predicted/observed)|) for the prediction-error
#: histogram: 0.01 ≈ 2.3% off, 0.3 ≈ 2x off, 1.0 = an order of magnitude.
DEFAULT_LOG_ERROR_BUCKETS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 1.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with cumulative-style bucket counts.

    ``buckets`` are finite upper bounds; an implicit ``+inf`` bucket
    catches the overflow.  Counts are per-bucket (not cumulative) so the
    snapshot reads directly as a distribution.
    """

    __slots__ = ("buckets", "counts", "count", "sum")

    def __init__(self, buckets=DEFAULT_LOG_ERROR_BUCKETS):
        ordered = tuple(sorted(float(b) for b in buckets))
        if not ordered:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in ordered):
            raise ValueError("bucket bounds must be finite (+inf is implicit)")
        self.buckets = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


class QuantileSketch:
    """Deterministic streaming quantiles (p50/p95/p99) over quantized values.

    Observations are quantized to ``significant_digits`` significant
    figures and counted in a value→count map, so the sketch is

    * **streaming** — O(1) per observation, memory bounded by the number
      of *distinct* quantized values (tiny for the repeated simulated
      quantities this repository measures);
    * **deterministic** — no sampling; two identical observation
      sequences (in any order) produce identical sketches and identical
      quantiles, which is what lets replay reports be byte-reproducible;
    * **exact on its quantized domain** — ``quantile(q)`` is the
      nearest-rank quantile of the quantized multiset (rank
      ``ceil(q * count)``), not an approximation scheme with drifting
      error bounds.

    Non-finite observations are counted separately (``nonfinite``) and
    excluded from the quantiles, so one failed launch cannot poison a
    percentile gate — gates check ``nonfinite == 0`` explicitly instead.
    """

    __slots__ = ("significant_digits", "counts", "count", "nonfinite")

    def __init__(self, significant_digits: int = 6):
        if significant_digits < 1:
            raise ValueError("need at least one significant digit")
        self.significant_digits = significant_digits
        self.counts: dict[float, int] = {}
        self.count = 0
        self.nonfinite = 0

    def _quantize(self, value: float) -> float:
        return float(f"%.{self.significant_digits}g" % value)

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            self.nonfinite += 1
            return
        q = self._quantize(value)
        self.counts[q] = self.counts.get(q, 0) + 1
        self.count += 1

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile of the quantized observations (NaN if empty)."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for value in sorted(self.counts):
            seen += self.counts[value]
            if seen >= rank:
                return value
        raise AssertionError("unreachable")  # pragma: no cover

    @property
    def sum(self) -> float:
        """Total of the quantized observations.

        Recomputed from the counts in sorted-value order, so it is
        order-independent: merging worker sketches in any order yields
        the same sum to the last bit.
        """
        return math.fsum(
            value * count for value, count in sorted(self.counts.items())
        )

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in (order-independent, exact counts)."""
        if other.significant_digits != self.significant_digits:
            raise ValueError(
                f"cannot merge sketches with {other.significant_digits} vs "
                f"{self.significant_digits} significant digits"
            )
        for value, count in other.counts.items():
            self.counts[value] = self.counts.get(value, 0) + count
        self.count += other.count
        self.nonfinite += other.nonfinite


def _key(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create registry of named, labelled instruments."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._quantiles: dict[str, QuantileSketch] = {}

    def counter(self, name: str, **labels) -> Counter:
        key = _key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels) -> Gauge:
        key = _key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str, buckets=None, **labels) -> Histogram:
        key = _key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(
                DEFAULT_LOG_ERROR_BUCKETS if buckets is None else buckets
            )
        return inst

    def quantiles(
        self, name: str, significant_digits: int | None = None, **labels
    ) -> QuantileSketch:
        key = _key(name, labels)
        inst = self._quantiles.get(key)
        if inst is None:
            inst = self._quantiles[key] = QuantileSketch(
                6 if significant_digits is None else significant_digits
            )
        return inst

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The merge is **order-independent for counters and histograms**
        (both add), which is what lets the sweep engine combine
        per-worker registries into exactly the totals a single-process
        sweep would have recorded — exactly for every integer count;
        histogram ``sum`` is a float fold, so regrouping observations
        across workers can move its last ulp (float addition is not
        associative).  Gauges are last-write-wins by nature, so the
        merge overwrites them — callers merge snapshots in declaration
        order to keep that deterministic.  Histogram
        bucket bounds are recovered from the snapshot's ``le_`` keys;
        merging histograms with mismatched bounds raises ``ValueError``
        rather than silently misbinning.
        """
        for key, value in snap.get("counters", {}).items():
            inst = self._counters.get(key)
            if inst is None:
                inst = self._counters[key] = Counter()
            inst.inc(value)
        for key, value in snap.get("gauges", {}).items():
            inst = self._gauges.get(key)
            if inst is None:
                inst = self._gauges[key] = Gauge()
            inst.set(value)
        for key, payload in snap.get("histograms", {}).items():
            buckets = payload["buckets"]
            bounds = tuple(
                float(b[len("le_"):]) for b in buckets if b != "le_inf"
            )
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram(buckets=bounds)
            elif hist.buckets != tuple(sorted(bounds)):
                raise ValueError(
                    f"histogram {key!r}: cannot merge bounds {bounds} "
                    f"into {hist.buckets}"
                )
            for i, bound in enumerate(hist.buckets):
                hist.counts[i] += buckets[f"le_{bound:g}"]
            hist.counts[-1] += buckets["le_inf"]
            hist.count += payload["count"]
            hist.sum += payload["sum"]
        for key, payload in snap.get("quantiles", {}).items():
            sketch = self._quantiles.get(key)
            if sketch is None:
                sketch = self._quantiles[key] = QuantileSketch(
                    payload["significant_digits"]
                )
            elif sketch.significant_digits != payload["significant_digits"]:
                raise ValueError(
                    f"quantile sketch {key!r}: cannot merge "
                    f"{payload['significant_digits']} significant digits "
                    f"into {sketch.significant_digits}"
                )
            for value, count in payload["counts"].items():
                v = float(value)
                sketch.counts[v] = sketch.counts.get(v, 0) + count
            sketch.count += payload["count"]
            sketch.nonfinite += payload["nonfinite"]

    def snapshot(self) -> dict:
        """Deterministic plain-dict dump (sorted keys, JSON-safe values)."""
        hists = {}
        for key in sorted(self._histograms):
            h = self._histograms[key]
            bucket_counts = {
                f"le_{bound:g}": h.counts[i] for i, bound in enumerate(h.buckets)
            }
            bucket_counts["le_inf"] = h.counts[-1]
            hists[key] = {
                "count": h.count,
                "sum": h.sum,
                "buckets": bucket_counts,
            }
        sketches = {}
        for key in sorted(self._quantiles):
            s = self._quantiles[key]
            sketches[key] = {
                "count": s.count,
                "nonfinite": s.nonfinite,
                "significant_digits": s.significant_digits,
                "counts": {repr(v): s.counts[v] for v in sorted(s.counts)},
            }
        return {
            "counters": {
                k: self._counters[k].value for k in sorted(self._counters)
            },
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": hists,
            "quantiles": sketches,
        }

    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._gauges)
            + len(self._histograms)
            + len(self._quantiles)
        )
