"""Zero-dependency tracing core for the offloading framework.

A :class:`Tracer` records nested spans — named intervals with structured
attributes — for every stage of the Figure 2 pipeline: ``compile`` and
``analyse`` on the compile-time side, ``launch``/``predict``/``dispatch``
on the runtime side, plus the inner ``ipda.analyze``, ``mca.steady_state``
and ``sim.cpu``/``sim.gpu`` stages.  Spans are keyed on the
:class:`~repro.faults.SimulatedClock`: every timestamp is the simulated
time in integer microseconds plus a strictly increasing tick, so traces
are deterministic, totally ordered and nest exactly even when no
simulated time elapses inside a span.

The default tracer is the :data:`NULL_TRACER` singleton: ``span()``
returns a shared no-op context manager and nothing is recorded, so the
un-instrumented fast path stays allocation-free and every record the
runtimes produce is bit-identical to a tracer-less build — the same
off-by-default discipline as the faults/lint/drift subsystems.

Module-level functions (IPDA, the MCA scheduler, the simulators) reach
the tracer through :func:`current_tracer`; a runtime makes its tracer
current for the duration of a ``compile_region``/``launch`` call via
``tracer.activate()``.  Activation is plain (not thread-local) state —
the whole repository simulates time on a single thread.
"""

from __future__ import annotations

__all__ = [
    "InstantRecord",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanRecord",
    "Tracer",
    "current_tracer",
]


class SpanRecord:
    """One finished (or still open) span: interval + attributes."""

    __slots__ = ("name", "category", "start_ts", "end_ts", "depth", "attrs", "index")

    def __init__(self, name, category, start_ts, depth, attrs, index):
        self.name = name
        self.category = category
        self.start_ts = start_ts
        self.end_ts = None
        self.depth = depth
        self.attrs = attrs
        self.index = index

    @property
    def duration(self) -> int:
        return 0 if self.end_ts is None else self.end_ts - self.start_ts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanRecord({self.name!r}, ts={self.start_ts}, dur={self.duration})"


class InstantRecord:
    """A point event (e.g. a fault) stamped inside the running span."""

    __slots__ = ("name", "ts", "depth", "attrs", "index")

    def __init__(self, name, ts, depth, attrs, index):
        self.name = name
        self.ts = ts
        self.depth = depth
        self.attrs = attrs
        self.index = index


class Span:
    """Context manager for one traced interval; ``set`` adds attributes."""

    __slots__ = ("_tracer", "_record", "name", "category", "_attrs")

    def __init__(self, tracer: "Tracer", name: str, category: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.category = category
        self._attrs = attrs
        self._record: SpanRecord | None = None

    def set(self, key: str, value) -> None:
        """Attach (or overwrite) one structured attribute."""
        self._attrs[key] = value

    def event(self, name: str, **attrs) -> None:
        """Stamp an instant event at the current (simulated) time."""
        self._tracer._instant(name, attrs)

    def __enter__(self) -> "Span":
        self._record = self._tracer._begin(self.name, self.category, self._attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._attrs["error"] = exc_type.__name__
        self._tracer._end(self._record)
        return False


class Tracer:
    """Records spans and instants against a simulated clock.

    ``clock`` may be attached lazily (the runtimes bind their own
    :class:`~repro.faults.SimulatedClock` at construction); without one,
    timestamps are pure tick counts and the trace is still deterministic.
    """

    enabled = True

    def __init__(self, clock=None):
        self.clock = clock
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []
        self._seq = 0
        self._depth = 0

    # -- time ------------------------------------------------------------
    def _now(self) -> int:
        """Simulated microseconds + a strictly increasing tick.

        The tick keeps timestamps totally ordered (and child spans
        strictly inside their parents) even when no simulated time
        elapses between two events.
        """
        self._seq += 1
        base = 0 if self.clock is None else round(self.clock.now * 1e6)
        return base + self._seq

    # -- recording -------------------------------------------------------
    def span(self, name: str, category: str = "repro", **attrs) -> Span:
        """Open a nested span; use as ``with tracer.span(...) as sp:``."""
        return Span(self, name, category, attrs)

    def _begin(self, name: str, category: str, attrs: dict) -> SpanRecord:
        rec = SpanRecord(name, category, self._now(), self._depth, attrs, self._seq)
        self.spans.append(rec)
        self._depth += 1
        return rec

    def _end(self, rec: SpanRecord) -> None:
        self._depth -= 1
        rec.end_ts = self._now()

    def _instant(self, name: str, attrs: dict) -> None:
        self.instants.append(
            InstantRecord(name, self._now(), self._depth, attrs, self._seq)
        )

    def instant(self, name: str, **attrs) -> None:
        """Stamp a free-standing instant event (outside any span)."""
        self._instant(name, attrs)

    def activate(self) -> "_Activation":
        """Make this tracer the :func:`current_tracer` for a ``with`` block."""
        return _Activation(self)

    def clear(self) -> None:
        """Drop all recorded spans/instants (the clock stays attached)."""
        self.spans.clear()
        self.instants.clear()
        self._seq = 0
        self._depth = 0

    def __len__(self) -> int:
        return len(self.spans)


class _NullSpan:
    """Shared no-op span: the allocation-free fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Records nothing; every method returns a shared no-op object."""

    enabled = False
    clock = None
    spans: tuple = ()
    instants: tuple = ()

    def span(self, name: str, category: str = "repro", **attrs) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **attrs) -> None:
        pass

    def activate(self) -> _NullSpan:
        # never touches the active-tracer state: the default *is* null
        return _NULL_SPAN

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()

_ACTIVE: "Tracer | NullTracer" = NULL_TRACER


def current_tracer() -> "Tracer | NullTracer":
    """The tracer instrumented library code should record against."""
    return _ACTIVE


class _Activation:
    """``with tracer.activate():`` — push/pop the module-level tracer."""

    __slots__ = ("_tracer", "_prev")

    def __init__(self, tracer: Tracer):
        self._tracer = tracer
        self._prev: Tracer | NullTracer | None = None

    def __enter__(self) -> Tracer:
        global _ACTIVE
        self._prev = _ACTIVE
        _ACTIVE = self._tracer
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        _ACTIVE = self._prev
        return False
