"""Trace/metrics exporters: Chrome ``trace_event`` JSON and a text summary.

The JSON exporter emits the Trace Event Format consumed by
``chrome://tracing`` and https://ui.perfetto.dev — complete ("X") events
for spans, instant ("i") events for faults and verdicts, and a metadata
event naming the process.  Output is deterministic: events are ordered
by their start tick and serialized with sorted keys, so two identical
seeded runs produce byte-identical files.

The text exporter renders the span tree (indentation = nesting) next to
the metrics snapshot, for terminals without a trace viewer.
"""

from __future__ import annotations

import json

from ..util.tables import render_table
from .metrics import MetricsRegistry
from .tracer import NullTracer, Tracer

__all__ = ["chrome_trace_events", "chrome_trace_json", "render_trace_text"]

_PID = 1
_TID = 1


def _json_safe(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def _safe_attrs(attrs) -> dict:
    return {str(k): _json_safe(v) for k, v in attrs.items()}


def chrome_trace_events(tracer: "Tracer | NullTracer") -> list[dict]:
    """The trace as a list of Trace Event Format dicts (start-tick order)."""
    events: list[tuple[int, dict]] = []
    for rec in tracer.spans:
        end_ts = rec.end_ts if rec.end_ts is not None else rec.start_ts
        events.append(
            (
                rec.index,
                {
                    "name": rec.name,
                    "cat": rec.category,
                    "ph": "X",
                    "ts": rec.start_ts,
                    "dur": end_ts - rec.start_ts,
                    "pid": _PID,
                    "tid": _TID,
                    "args": _safe_attrs(rec.attrs),
                },
            )
        )
    for inst in tracer.instants:
        events.append(
            (
                inst.index,
                {
                    "name": inst.name,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",  # thread-scoped instant
                    "ts": inst.ts,
                    "pid": _PID,
                    "tid": _TID,
                    "args": _safe_attrs(inst.attrs),
                },
            )
        )
    events.sort(key=lambda pair: pair[0])
    meta = {
        "name": "process_name",
        "ph": "M",
        "pid": _PID,
        "tid": _TID,
        "args": {"name": "repro-paper"},
    }
    return [meta] + [e for _, e in events]


def chrome_trace_json(
    tracer: "Tracer | NullTracer",
    metrics: MetricsRegistry | None = None,
) -> str:
    """Serialize the trace (and optional metrics snapshot) to JSON."""
    payload: dict = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        payload["otherData"] = {"metrics": metrics.snapshot()}
    return json.dumps(payload, indent=2, sort_keys=True)


def _format_attr(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_trace_text(
    tracer: "Tracer | NullTracer",
    metrics: MetricsRegistry | None = None,
    *,
    max_attrs: int = 4,
) -> str:
    """Span tree + metrics tables, for terminal consumption."""
    lines = [f"trace: {len(tracer.spans)} spans, {len(tracer.instants)} instants"]
    for rec in sorted(tracer.spans, key=lambda r: r.index):
        attrs = ", ".join(
            f"{k}={_format_attr(v)}" for k, v in list(rec.attrs.items())[:max_attrs]
        )
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(
            f"  {'  ' * rec.depth}{rec.name} ({rec.duration} us){suffix}"
        )
    if metrics is not None and len(metrics):
        snap = metrics.snapshot()
        if snap["counters"]:
            rows = [[k, str(v)] for k, v in snap["counters"].items()]
            lines += ["", render_table(["counter", "value"], rows)]
        if snap["gauges"]:
            rows = [[k, f"{v:g}"] for k, v in snap["gauges"].items()]
            lines += ["", render_table(["gauge", "value"], rows)]
        if snap["histograms"]:
            rows = []
            for key, h in snap["histograms"].items():
                mean = h["sum"] / h["count"] if h["count"] else 0.0
                rows.append([key, str(h["count"]), f"{mean:.4f}"])
            lines += ["", render_table(["histogram", "count", "mean"], rows)]
    return "\n".join(lines)
