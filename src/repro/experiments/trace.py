"""Instrumented suite sweep for ``repro-paper trace``.

Runs the Polybench suite through an :class:`OffloadingRuntime` with a
live :class:`~repro.obs.Tracer` and :class:`~repro.obs.MetricsRegistry`
attached, then exports the recorded pipeline — ``compile`` → ``analyse``
on the compile side, ``launch`` → ``predict`` → ``dispatch`` (with the
inner ``sim.*``/``ipda``/``mca`` stages) per launch — as Chrome
``trace_event`` JSON or a terminal summary.  Everything is simulated and
seeded, so two invocations produce byte-identical output.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines import Platform
from ..obs import MetricsRegistry, Tracer, chrome_trace_json, render_trace_text
from ..parallel import ObsTaskResult, SweepEngine, tracer_payload
from ..polybench import SUITE, benchmark_by_name
from ..runtime import LaunchRecord, ModelGuided, OffloadingRuntime
from .common import _resolve_platform

__all__ = ["TraceResult", "run_trace"]


@dataclass
class TraceResult:
    """One instrumented sweep: records plus the trace/metrics behind them."""

    platform_name: str
    mode: str
    region_names: tuple[str, ...]
    records: tuple[LaunchRecord, ...]
    tracer: Tracer
    metrics: MetricsRegistry

    @property
    def passed(self) -> bool:
        """Self-check: the sweep recorded what it claims it recorded."""
        if not self.records or len(self.records) != len(self.region_names):
            return False
        counters = self.metrics.snapshot()["counters"]
        launches = sum(
            v for k, v in counters.items() if k.startswith("launches_total")
        )
        return launches == len(self.records) and len(self.tracer.spans) > 0

    def chrome_json(self) -> str:
        """The sweep as Chrome trace-event JSON (open in Perfetto)."""
        return chrome_trace_json(self.tracer, self.metrics)

    def render(self) -> str:
        """Span tree + metrics tables for the terminal."""
        header = (
            f"instrumented sweep: {len(self.records)} launches on "
            f"{self.platform_name} ({self.mode} datasets)"
        )
        return header + "\n" + render_trace_text(self.tracer, self.metrics)


def _trace_benchmark(task: tuple) -> ObsTaskResult:
    """Worker task: one benchmark's instrumented sweep, obs included.

    Each worker runs its own :class:`OffloadingRuntime` with a fresh
    tracer/registry pair and ships the snapshot + span payload back for
    the declaration-ordered merge in :func:`run_trace`.
    """
    plat_name, mode, bench_name, num_threads = task
    plat = _resolve_platform(plat_name)
    spec = benchmark_by_name(bench_name)
    tracer = Tracer()
    metrics = MetricsRegistry()
    runtime = OffloadingRuntime(
        plat,
        policy=ModelGuided(),
        num_threads=num_threads,
        tracer=tracer,
        metrics=metrics,
    )
    records: list[LaunchRecord] = []
    names: list[str] = []
    env = spec.env(mode)
    for region in spec.build():
        runtime.compile_region(region)
        records.append(runtime.launch(region.name, env))
        names.append(region.name)
    return ObsTaskResult(
        value=(tuple(names), tuple(records)),
        metrics=metrics.snapshot(),
        trace=tracer_payload(tracer),
    )


def run_trace(
    platform: "Platform | str" = "p9-v100",
    mode: str = "test",
    *,
    benchmarks: list[str] | None = None,
    num_threads: int | None = None,
    jobs: int | None = None,
    chunk: int | None = None,
) -> TraceResult:
    """Compile + launch every (selected) suite region with observability on.

    With ``jobs > 1`` the benchmarks are chunked over the persistent
    warm-worker pool (``chunk`` / ``$REPRO_CHUNK`` overrides the batch
    size); launch records come back in suite-declaration order
    (bit-identical to sequential), worker metrics merge into the same
    totals, and worker spans are spliced into one trace with rebased
    timestamps (deterministic run-to-run, but not byte-identical to the
    sequential trace, whose single clock accumulates across benchmarks).
    """
    plat = _resolve_platform(platform)
    specs = (
        [benchmark_by_name(b) for b in benchmarks]
        if benchmarks
        else list(SUITE)
    )
    engine = SweepEngine(jobs, chunk=chunk)
    if engine.parallel:
        sweep = engine.map_obs(
            _trace_benchmark,
            [(plat.name, mode, spec.name, num_threads) for spec in specs],
            labels=[spec.name for spec in specs],
        )
        names = [n for group_names, _ in sweep.values for n in group_names]
        records = [r for _, group_records in sweep.values for r in group_records]
        return TraceResult(
            platform_name=plat.name,
            mode=mode,
            region_names=tuple(names),
            records=tuple(records),
            tracer=sweep.tracer,
            metrics=sweep.metrics,
        )
    tracer = Tracer()
    metrics = MetricsRegistry()
    runtime = OffloadingRuntime(
        plat,
        policy=ModelGuided(),
        num_threads=num_threads,
        tracer=tracer,
        metrics=metrics,
    )
    records = []
    names = []
    for spec in specs:
        env = spec.env(mode)
        for region in spec.build():
            runtime.compile_region(region)
            records.append(runtime.launch(region.name, env))
            names.append(region.name)
    return TraceResult(
        platform_name=plat.name,
        mode=mode,
        region_names=tuple(names),
        records=tuple(records),
        tracer=tracer,
        metrics=metrics,
    )
