"""Figures 6 and 7 — actual versus predicted GPU offloading speedup.

Per suite kernel, the true (simulated) speedup of offloading over a
4-thread host versus the hybrid predictor's estimate — Figure 6 is the
``test`` execution mode, Figure 7 is ``benchmark``.  Besides the paired
series, the result carries the error metrics the paper's discussion
implies: decision accuracy and the magnitude of prediction error.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines import PLATFORM_P9_V100, Platform
from ..util import correlation, mean_absolute_log_error, render_table
from .common import measure_suite, predict_suite

__all__ = ["PredictionRow", "Figure67Result", "run_figure6", "run_figure7"]

HOST_THREADS = 4  # the paper plots both figures against a 4-thread host


@dataclass(frozen=True)
class PredictionRow:
    kernel: str
    true_speedup: float
    predicted_speedup: float

    @property
    def decision_correct(self) -> bool:
        return (self.true_speedup > 1.0) == (self.predicted_speedup > 1.0)


@dataclass(frozen=True)
class Figure67Result:
    figure: str
    mode: str
    platform_name: str
    rows: tuple[PredictionRow, ...]

    @property
    def decision_accuracy(self) -> float:
        return sum(r.decision_correct for r in self.rows) / len(self.rows)

    @property
    def log_error(self) -> float:
        return mean_absolute_log_error(
            [r.predicted_speedup for r in self.rows],
            [r.true_speedup for r in self.rows],
        )

    @property
    def rank_correlation_proxy(self) -> float:
        """Pearson correlation of log-speedups (ordering fidelity)."""
        import math

        return correlation(
            [math.log(r.true_speedup) for r in self.rows],
            [math.log(r.predicted_speedup) for r in self.rows],
        )

    def render(self) -> str:
        body = [
            [
                r.kernel,
                f"{r.true_speedup:.2f}x",
                f"{r.predicted_speedup:.2f}x",
                "ok" if r.decision_correct else "MISS",
            ]
            for r in self.rows
        ]
        table = render_table(
            ["kernel", "actual speedup", "predicted speedup", "decision"],
            body,
            title=(
                f"{self.figure}: actual vs predicted offloading speedup, "
                f"{self.mode} mode, {HOST_THREADS}-thread host "
                f"({self.platform_name})"
            ),
        )
        return (
            table
            + f"\ndecision accuracy : {self.decision_accuracy:.0%}"
            + f"\nmean |log10 error|: {self.log_error:.3f}"
            + f"\nlog-log correlation: {self.rank_correlation_proxy:.3f}"
        )


def _run(figure: str, mode: str, platform: Platform) -> Figure67Result:
    measured = measure_suite(platform, mode, num_threads=HOST_THREADS)
    predicted = predict_suite(platform, mode, num_threads=HOST_THREADS)
    rows = tuple(
        PredictionRow(
            kernel=m.case.name,
            true_speedup=m.true_speedup,
            predicted_speedup=p.predicted_speedup,
        )
        for m, p in zip(measured, predicted)
    )
    return Figure67Result(
        figure=figure, mode=mode, platform_name=platform.name, rows=rows
    )


def run_figure6(platform: Platform = PLATFORM_P9_V100) -> Figure67Result:
    """Figure 6: test execution mode."""
    return _run("Figure 6", "test", platform)


def run_figure7(platform: Platform = PLATFORM_P9_V100) -> Figure67Result:
    """Figure 7: benchmark execution mode."""
    return _run("Figure 7", "benchmark", platform)


if __name__ == "__main__":  # pragma: no cover
    print(run_figure6().render())
    print()
    print(run_figure7().render())
