"""Declared vs inferred transfer sizing: bytes, decisions, and flips.

Not a paper artefact — the evaluation report for the array-liveness
dataflow analysis (``repro.ir.dataflow``, docs/LINT.md).  Two sections:

* **Suite parity** — every Polybench kernel is bound through a declared
  database and an ``inferred_transfers=True`` database.  The suite's map
  clauses are clean, so the inferred byte counts and selector decisions
  must be identical; anything else is an analysis regression.

* **Over-mapped scenarios** — hand-built regions with defensively wrong
  map clauses (``tofrom`` on a write-only output, a device scratch
  mapped both ways, a dead debug buffer).  Inference drops the provably
  wasted directions; the report quantifies the recovered transfer
  seconds and checks that at least one selector decision flips *toward
  the true oracle* once transfers are priced from liveness.

The simulator prices what the OpenMP runtime would actually move: under
declared sizing that is the map clauses, under inferred sizing the
runtime elides the dead directions, so the "true" GPU time of a scenario
differs between the two modes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Mapping

from ..analysis import BoundAttributes, ProgramAttributeDatabase
from ..ir import Region
from ..ir.dataflow import analyze_transfers
from ..lint import lint_region
from ..machines import Platform
from ..sim import simulate_cpu, simulate_gpu_kernel, simulate_transfers
from ..sim.interconnect_sim import STAGING_EFFICIENCY
from ..util import render_table
from .common import _calibration, _database, _resolve_platform

__all__ = [
    "ScenarioOutcome",
    "SuiteTransferRow",
    "TransfersResult",
    "run_transfers",
]


@dataclass(frozen=True)
class SuiteTransferRow:
    """Declared vs inferred sizing for one clean suite kernel."""

    region: str
    benchmark: str
    declared_to_device: int
    declared_to_host: int
    inferred_to_device: int
    inferred_to_host: int
    decision_declared: str
    decision_inferred: str

    @property
    def agrees(self) -> bool:
        """Bytes and decision both unchanged (expected on clean maps)."""
        return (
            self.declared_to_device == self.inferred_to_device
            and self.declared_to_host == self.inferred_to_host
            and self.decision_declared == self.decision_inferred
        )


@dataclass(frozen=True)
class ScenarioOutcome:
    """One over-mapped scenario priced both ways against the oracle."""

    scenario: str
    region: str
    map_codes: tuple[str, ...]
    declared_to_device: int
    declared_to_host: int
    inferred_to_device: int
    inferred_to_host: int
    cpu_seconds: float
    gpu_kernel_seconds: float
    declared_transfer_seconds: float
    inferred_transfer_seconds: float
    decision_declared: str
    decision_inferred: str

    @property
    def gpu_declared_seconds(self) -> float:
        """True GPU time when the runtime moves the declared clauses."""
        return self.gpu_kernel_seconds + self.declared_transfer_seconds

    @property
    def gpu_inferred_seconds(self) -> float:
        """True GPU time when the runtime elides the dead directions."""
        return self.gpu_kernel_seconds + self.inferred_transfer_seconds

    @property
    def wasted_seconds(self) -> float:
        """Transfer wall time the declared over-mapping burns per launch."""
        return self.declared_transfer_seconds - self.inferred_transfer_seconds

    @property
    def oracle(self) -> str:
        """The true best target once the wasted transfers are elided."""
        return (
            "gpu"
            if self.gpu_inferred_seconds < self.cpu_seconds
            else "cpu"
        )

    @property
    def flipped(self) -> bool:
        return self.decision_declared != self.decision_inferred

    @property
    def fixed(self) -> bool:
        """The flip landed on the oracle target (the headline claim)."""
        return self.flipped and self.decision_inferred == self.oracle

    @property
    def tightened(self) -> bool:
        """Inference never invents transfers — it may only drop them."""
        return (
            self.inferred_to_device <= self.declared_to_device
            and self.inferred_to_host <= self.declared_to_host
        )


@dataclass(frozen=True)
class TransfersResult:
    """Suite-parity rows plus the over-mapped scenario grid."""

    platform: str
    mode: str
    suite: tuple[SuiteTransferRow, ...]
    scenarios: tuple[ScenarioOutcome, ...]

    def scenario(self, name: str) -> ScenarioOutcome:
        for row in self.scenarios:
            if row.scenario == name:
                return row
        raise KeyError(name)

    @property
    def passed(self) -> bool:
        """Self-check: clean suite untouched, scenarios only improve.

        * every clean suite kernel keeps byte-identical sizing and the
          same selector decision;
        * every scenario tightens (never widens) both directions and
          recovers non-negative transfer time;
        * at least one scenario flips the selector decision onto the
          true oracle target while recovering real transfer seconds.
        """
        if not all(row.agrees for row in self.suite):
            return False
        if not all(s.tightened and s.wasted_seconds >= 0 for s in self.scenarios):
            return False
        return any(s.fixed and s.wasted_seconds > 0 for s in self.scenarios)

    def to_payload(self) -> dict:
        """JSON-ready summary of both sections."""
        return {
            "platform": self.platform,
            "mode": self.mode,
            "passed": self.passed,
            "suite": [dataclasses.asdict(row) for row in self.suite],
            "scenarios": [
                {
                    **dataclasses.asdict(row),
                    "map_codes": list(row.map_codes),
                    "wasted_seconds": row.wasted_seconds,
                    "oracle": row.oracle,
                    "flipped": row.flipped,
                    "fixed": row.fixed,
                }
                for row in self.scenarios
            ],
        }

    def render(self) -> str:
        suite_body = [
            [
                row.region,
                _fmt_bytes(row.declared_to_device, row.declared_to_host),
                _fmt_bytes(row.inferred_to_device, row.inferred_to_host),
                row.decision_declared,
                row.decision_inferred,
                "ok" if row.agrees else "DRIFT",
            ]
            for row in self.suite
        ]
        suite_table = render_table(
            ["kernel", "declared (dev/host)", "inferred (dev/host)",
             "declared sel", "inferred sel", ""],
            suite_body,
            title=(
                f"Suite transfer parity on {self.platform} "
                f"({self.mode} datasets) — clean maps must not move"
            ),
        )
        scen_body = [
            [
                row.scenario,
                ",".join(row.map_codes) or "-",
                _fmt_bytes(row.declared_to_device, row.declared_to_host),
                _fmt_bytes(row.inferred_to_device, row.inferred_to_host),
                f"{row.wasted_seconds * 1e6:.1f}",
                f"{row.decision_declared}->{row.decision_inferred}",
                row.oracle,
                "FIXED" if row.fixed else ("flip" if row.flipped else "-"),
            ]
            for row in self.scenarios
        ]
        scen_table = render_table(
            ["scenario", "lint", "declared (dev/host)", "inferred (dev/host)",
             "wasted (us)", "selector", "oracle", ""],
            scen_body,
            title="Over-mapped scenarios — inferred sizing vs the oracle",
        )
        return suite_table + "\n\n" + scen_table


def _fmt_bytes(to_device: int, to_host: int) -> str:
    return f"{to_device}/{to_host}"


# --------------------------------------------------------------------------
# over-mapped scenario kernels
# --------------------------------------------------------------------------


def _build_defensive_vecadd() -> Region:
    """z = x + y with z defensively mapped ``tofrom`` (MAP002).

    The kernel overwrites every element of ``z`` before reading it, so
    the host→device copy of ``z`` is provably wasted.
    """
    r = Region("xfer_defensive")
    n = r.param("n")
    x = r.array("x", (n,))
    y = r.array("y", (n,))
    z = r.array("z", (n,), inout=True)  # should be output=True
    with r.parallel_loop("i", n) as i:
        r.store(z[i], x[i] + y[i])
    return r


def _build_scratch_tofrom() -> Region:
    """Device scratch mapped both ways (MAP003): neither copy survives.

    ``w`` is written then consumed entirely on the device; mapping it
    ``tofrom`` wastes a full round trip of ``n`` doubles per launch.
    """
    r = Region("xfer_scratch")
    n = r.param("n")
    x = r.array("x", (n,))
    w = r.array("w", (n,), inout=True)  # device-only scratch
    y = r.array("y", (n,), output=True)
    with r.parallel_loop("i", n) as i:
        r.store(w[i], x[i] * 2.0)
        r.store(y[i], w[i] + 1.0)
    return r


def _build_dead_debug_buffer() -> Region:
    """Compute-heavy kernel dragging a dead debug buffer (MAP004).

    The matmul itself is firmly GPU territory, but the untouched
    ``dbg`` buffer mapped ``tofrom`` drowns the declared transfer
    estimate — the scenario whose decision inference must flip.
    """
    r = Region("xfer_deadbuf")
    n, m = r.param_tuple("n", "m")
    A = r.array("A", (n, n))
    B = r.array("B", (n, n))
    C = r.array("C", (n, n), output=True)
    dbg = r.array("dbg", (m, m), inout=True)  # never touched
    del dbg
    with r.parallel_loop("i", n) as i:
        with r.parallel_loop("j", n) as j:
            acc = r.local("acc", 0.0)
            with r.loop("k", n) as k:
                r.assign(acc, acc + A[i, k] * B[k, j])
            r.store(C[i, j], acc)
    return r


#: (scenario label, builder, env) — envs sized so the dead-buffer matmul
#: sits on the GPU side of break-even *only* once the dead transfers go.
_SCENARIOS: tuple[tuple[str, Callable[[], Region], dict[str, int]], ...] = (
    ("defensive-tofrom", _build_defensive_vecadd, {"n": 1 << 20}),
    ("scratch-both-ways", _build_scratch_tofrom, {"n": 1 << 20}),
    ("dead-debug-buffer", _build_dead_debug_buffer, {"n": 550, "m": 8192}),
)


def _inferred_transfer_sim_seconds(
    region: Region, bound: BoundAttributes, platform: Platform,
    env: Mapping[str, int],
) -> float:
    """Simulate the DMAs an inference-aware runtime would actually issue.

    Mirrors :func:`repro.sim.simulate_transfers` (per-array DMA latency,
    staging efficiency, full-duplex overlap) but issues only the
    directions the dataflow analysis kept.
    """
    dataflow = bound.attributes.dataflow or analyze_transfers(region)
    bus = platform.bus
    rate = bus.bandwidth_gbs * 1e9 * STAGING_EFFICIENCY
    to_dev_s = 0.0
    to_host_s = 0.0
    for name in sorted(region.arrays):
        info = dataflow[name]
        copy_in = int(info.copy_in.evaluate(env))
        copy_out = int(info.copy_out.evaluate(env))
        if copy_in:
            to_dev_s += bus.latency_us * 1e-6 + copy_in / rate
        if copy_out:
            to_host_s += bus.latency_us * 1e-6 + copy_out / rate
    return max(to_dev_s, to_host_s)


def _decide(
    bound: BoundAttributes, platform: Platform, num_threads: int | None
) -> str:
    from ..models import predict_both

    return predict_both(
        bound,
        platform,
        num_threads=num_threads,
        calibration=_calibration(platform, num_threads),
    ).winner


def _run_scenario(
    label: str,
    region: Region,
    env: Mapping[str, int],
    platform: Platform,
    num_threads: int | None,
) -> ScenarioOutcome:
    declared_db = ProgramAttributeDatabase()
    inferred_db = ProgramAttributeDatabase(inferred_transfers=True)
    declared = declared_db.compile_region(region).bind(env)
    inferred = inferred_db.compile_region(region).bind(env)
    report = lint_region(region, env=env, platform=platform)
    cpu = simulate_cpu(region, platform.host, env, num_threads=num_threads)
    gpu = simulate_gpu_kernel(region, platform.gpu, env)
    declared_xfer = simulate_transfers(region, platform.bus, env)
    inferred_xfer_s = _inferred_transfer_sim_seconds(
        region, inferred, platform, env
    )
    return ScenarioOutcome(
        scenario=label,
        region=region.name,
        map_codes=tuple(
            sorted({d.code for d in report if d.code.startswith("MAP")})
        ),
        declared_to_device=declared.bytes_to_device,
        declared_to_host=declared.bytes_to_host,
        inferred_to_device=inferred.bytes_to_device,
        inferred_to_host=inferred.bytes_to_host,
        cpu_seconds=cpu.seconds,
        gpu_kernel_seconds=gpu.seconds,
        declared_transfer_seconds=declared_xfer.total_seconds,
        inferred_transfer_seconds=inferred_xfer_s,
        decision_declared=_decide(declared, platform, num_threads),
        decision_inferred=_decide(inferred, platform, num_threads),
    )


_INFERRED_DB_CACHE: dict[str, ProgramAttributeDatabase] = {}


def _inferred_database(mode: str) -> ProgramAttributeDatabase:
    """Suite database compiled with ``inferred_transfers=True``."""
    if mode not in _INFERRED_DB_CACHE:
        _, cases = _database(mode)
        db = ProgramAttributeDatabase(inferred_transfers=True)
        for case in cases:
            db.compile_region(case.region)
        _INFERRED_DB_CACHE[mode] = db
    return _INFERRED_DB_CACHE[mode]


def run_transfers(
    platform: "Platform | str" = "p9-v100",
    mode: str = "test",
    *,
    num_threads: int | None = None,
) -> TransfersResult:
    """Compare declared vs inferred transfer sizing suite-wide."""
    plat = _resolve_platform(platform)
    declared_db, cases = _database(mode)
    inferred_db = _inferred_database(mode)
    suite = []
    for case in cases:
        declared = declared_db.lookup(case.name).bind(case.env)
        inferred = inferred_db.lookup(case.name).bind(case.env)
        suite.append(
            SuiteTransferRow(
                region=case.name,
                benchmark=case.benchmark,
                declared_to_device=declared.bytes_to_device,
                declared_to_host=declared.bytes_to_host,
                inferred_to_device=inferred.bytes_to_device,
                inferred_to_host=inferred.bytes_to_host,
                decision_declared=_decide(declared, plat, num_threads),
                decision_inferred=_decide(inferred, plat, num_threads),
            )
        )
    scenarios = [
        _run_scenario(label, build(), env, plat, num_threads)
        for label, build, env in _SCENARIOS
    ]
    return TransfersResult(
        platform=plat.name,
        mode=mode,
        suite=tuple(suite),
        scenarios=tuple(scenarios),
    )
