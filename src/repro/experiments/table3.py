"""Table III — GPU device/bus parameters of the execution model.

Prints the V100 parameter set the model consumes (the paper's sources:
CUDA API queries, vendor manuals, Zhe Jia's microbenchmark report), with
the latency entries re-measured by the Jia-style pointer-chase probe
against the simulated device.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..calibrate import probe_gpu_latencies
from ..machines import GPUDescriptor, InterconnectDescriptor, NVLINK2, TESLA_V100
from ..util import render_kv

__all__ = ["Table3Result", "run_table3"]


@dataclass(frozen=True)
class Table3Result:
    gpu: GPUDescriptor
    bus: InterconnectDescriptor
    measured_l1: float
    measured_l2: float
    measured_dram: float

    def parameters(self) -> list[tuple[str, object]]:
        g = self.gpu
        return [
            ("#SMs", g.num_sms),
            ("Processor Cores", g.total_cores),
            ("Processor Clock", f"{g.clock_ghz * 1000:.0f} MHz"),
            ("Memory Size", f"{g.mem_size_gib:g} GiB"),
            ("Memory Bandwidth", f"{g.mem_bandwidth_gbs:g} GB/s"),
            (
                f"{self.bus.name} Transfer Rate",
                f"{self.bus.bandwidth_gbs:g} GB/s",
            ),
            ("Max Warps/SM", g.max_warps_per_sm),
            ("Max Threads/SM", g.max_threads_per_sm),
            ("Issue Rate", f"{g.issue_rate}/scheduler x {g.warp_schedulers_per_sm}"),
            ("Int Cmpu Inst. Latency", f"{g.int_latency} Cycles"),
            ("Float Cmpu Inst. Latency", f"{g.fp_latency} Cycles"),
            ("Memory Access Latency", f"{self.measured_dram:g} Cycles"),
            ("Access on TLB Hit", f"{g.tlb_hit_latency} Cycles"),
            ("Access on L2 Hit", f"{self.measured_l2:g} Cycles"),
            ("Access on L1 Hit", f"{self.measured_l1:g} Cycles"),
        ]

    def render(self) -> str:
        return render_kv(
            self.parameters(),
            title=f"Table III: GPU device/bus parameters ({self.gpu.name})",
        )


def run_table3(
    gpu: GPUDescriptor = TESLA_V100,
    bus: InterconnectDescriptor = NVLINK2,
) -> Table3Result:
    """Regenerate Table III, re-measuring latencies with the chase probe."""
    probe = probe_gpu_latencies(gpu)
    return Table3Result(
        gpu=gpu,
        bus=bus,
        measured_l1=probe.l1_latency,
        measured_l2=probe.l2_latency,
        measured_dram=probe.dram_latency,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run_table3().render())
