"""Traffic-scale chaos replay: the production-robustness experiment.

Not a paper artefact — the capstone robustness experiment
(docs/ROBUSTNESS.md).  One seeded, Zipf-popularity, bursty trace is
generated per run (:mod:`repro.replay`), its arrival rate calibrated
from a chaos-free probe so the steady scenario sits at a stated
utilization, and then replayed through the full resilient runtime under
a scenario grid:

* **steady**          — no chaos, unbounded queue: the accuracy and
  overhead baseline every other scenario is gated against;
* **fault-storm**     — 75% of accelerator attempts fault (retryably)
  over a mid-trace window;
* **brownout**        — every accelerator attempt fails over the window
  (the card fell over); the breaker must open and later re-close;
* **link-degraded**   — 35% transfer faults over the window (flaky
  interconnect, mostly absorbed by the retry budget);
* **hw-drift**        — the device *actually* runs 6x slower over the
  window (``time_dilation``): the drift sentinel must detect from the
  residuals and re-calibrate after;
* **overload-reject / -degrade / -defer** — the trace is compressed to
  ~3x offered load against a bounded admission queue, one row per
  load-shedding policy;
* **hedged-chaos**    — the fault-storm chaos replayed twice: once with
  speculative host backups armed (tail-at-scale hedging: a backup
  starts once the primary outlives its case's p95), once without.  The
  hedged arm must actually fire and win, cut the chaos-affected p99
  completion latency vs its unhedged twin, and duplicate at most
  :data:`MAX_HEDGE_EXTRA_FRACTION` of the served seconds.

Gates (``ReplayRow.ok`` / ``ReplayResult.passed``): chaos scenarios keep
steady-state selection accuracy within :data:`MAX_ACCURACY_DROP` of the
baseline, detect every window within :data:`MAX_TTD_FRACTION` of its
duration and recover within :data:`MAX_TTR_S`; every scenario's
dispatch-overhead p99 is finite; overload scenarios keep the queue depth
bounded by its capacity while shedding/degrading/deferring a nonzero
fraction.  ``benchmarks/bench_replay.py`` enforces the same numbers from
``benchmarks/traffic_thresholds.json`` at the 10⁵-launch scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..machines import PLATFORM_P9_V100, Platform
from ..parallel import SweepEngine
from ..replay import (
    AdmissionConfig,
    ChaosSchedule,
    ChaosWindow,
    MemoizedPolicy,
    ReplayConfig,
    ReplayEngine,
    ReplayScore,
    WorkloadConfig,
    generate_requests,
    score_run,
)
from ..runtime import ExecutionMemo
from ..util import render_table
from .common import _resolve_platform

__all__ = [
    "MAX_ACCURACY_DROP",
    "MAX_TTD_FRACTION",
    "MAX_TTR_S",
    "MAX_HEDGE_EXTRA_FRACTION",
    "REPLAY_SCENARIOS",
    "ReplayRow",
    "ReplayResult",
    "run_replay",
]

#: Self-check thresholds (mirrored by benchmarks/traffic_thresholds.json).
MAX_ACCURACY_DROP = 0.01  # steady-state accuracy loss vs the no-chaos baseline
MAX_TTD_FRACTION = 0.25  # detection within this fraction of the window
MAX_TTR_S = 2.0  # simulated seconds from window close to clean recovery
MAX_HEDGE_EXTRA_FRACTION = 0.15  # duplicated work hedging may burn

REPLAY_SCENARIOS = (
    "steady",
    "fault-storm",
    "brownout",
    "link-degraded",
    "hw-drift",
    "overload-reject",
    "overload-degrade",
    "overload-defer",
    "hedged-chaos",
)

_OVERLOAD_POLICIES = {
    "overload-reject": "reject",
    "overload-degrade": "degrade",
    "overload-defer": "defer",
}


@dataclass(frozen=True)
class ReplayRow:
    """One scenario's score plus its gate verdict inputs."""

    scenario: str
    flavour: str  # "baseline" | "chaos" | "overload" | "hedged"
    score: ReplayScore
    baseline_steady_accuracy: float
    capacity: int | None  # admission bound (overload rows)
    outcome_counts: dict
    #: the unhedged twin's score (hedged rows only): same trace, same
    #: chaos, same budget — the only delta is the HedgePolicy
    unhedged: ReplayScore | None = None

    @property
    def accuracy_drop(self) -> float:
        return self.baseline_steady_accuracy - self.score.steady_accuracy

    @property
    def ok(self) -> bool:
        s = self.score
        if s.overhead_nonfinite or not math.isfinite(s.overhead_p99_s):
            return False
        if self.flavour == "baseline":
            return (
                s.shed_fraction == 0.0
                and s.degraded_fraction == 0.0
                and s.fault_events == 0
                and s.fallbacks == 0
            )
        if self.flavour == "chaos":
            if self.accuracy_drop > MAX_ACCURACY_DROP:
                return False
            for w in s.windows:
                if not w.detected or w.ttd_s > MAX_TTD_FRACTION * (
                    w.stop_s - w.start_s
                ):
                    return False
                if not w.recovered or w.ttr_s > MAX_TTR_S:
                    return False
            return True
        if self.flavour == "hedged":
            # hedging must actually fire, win at least once, cut the
            # chaos-affected p99 completion latency vs the unhedged twin
            # (the trace-wide p99 is pinned by steady-state burst peaks
            # no backup can touch), and stay under the duplicated-work
            # ceiling — a hedge that only burns is a bug
            u = self.unhedged
            return (
                u is not None
                and s.hedged > 0
                and s.hedge_wins > 0
                and s.chaos_completion_p99_s < u.chaos_completion_p99_s
                and s.hedge_extra_fraction <= MAX_HEDGE_EXTRA_FRACTION
            )
        # overload: the bound must hold and the policy must visibly shed
        if self.capacity is not None and s.max_queue_depth > self.capacity:
            return False
        if self.scenario == "overload-reject":
            return s.shed_fraction > 0.0 and s.degraded_fraction == 0.0
        if self.scenario == "overload-degrade":
            return s.degraded_fraction > 0.0 and s.shed_fraction == 0.0
        return s.deferred > 0 and s.resumed > 0  # overload-defer


@dataclass(frozen=True)
class ReplayResult:
    """The full scenario grid of one traffic replay run."""

    rows: tuple[ReplayRow, ...]
    launches: int
    seed: int
    platform_name: str
    mean_service_s: float
    mean_interarrival_s: float
    utilization: float
    overload_utilization: float

    def get(self, scenario: str) -> ReplayRow:
        for row in self.rows:
            if row.scenario == scenario:
                return row
        raise KeyError(scenario)

    @property
    def passed(self) -> bool:
        return all(row.ok for row in self.rows)

    def render(self) -> str:
        def pct(x: float) -> str:
            return "-" if not math.isfinite(x) else f"{x * 100:.2f}%"

        def lat(w_attr: str, row: ReplayRow) -> str:
            vals = [getattr(w, w_attr) for w in row.score.windows]
            if not vals:
                return "-"
            return "/".join("inf" if v is None else f"{v:.3f}" for v in vals)

        body = [
            [
                row.scenario,
                row.score.launches,
                pct(row.score.steady_accuracy),
                pct(row.score.overall_accuracy),
                f"{row.score.overhead_p99_s * 1e3:.3f}",
                lat("ttd_s", row),
                lat("ttr_s", row),
                pct(row.score.shed_fraction),
                pct(row.score.degraded_fraction),
                row.score.max_queue_depth,
                "ok" if row.ok else "FAIL",
            ]
            for row in self.rows
        ]
        return render_table(
            [
                "scenario",
                "launches",
                "steady acc",
                "overall acc",
                "p99 ovh (ms)",
                "ttd (s)",
                "ttr (s)",
                "shed",
                "degraded",
                "depth",
                "",
            ],
            body,
            title=(
                f"Traffic replay on {self.platform_name}: {self.launches} "
                f"requests/scenario, util {self.utilization:g} steady / "
                f"{self.overload_utilization:g} overload "
                f"(seed {self.seed})"
            ),
        )

    def to_payload(self) -> dict:
        """Deterministic JSON-safe dump (byte-identical across reruns)."""
        return {
            "launches": self.launches,
            "seed": self.seed,
            "platform": self.platform_name,
            "mean_service_s": self.mean_service_s,
            "mean_interarrival_s": self.mean_interarrival_s,
            "utilization": self.utilization,
            "overload_utilization": self.overload_utilization,
            "passed": self.passed,
            "rows": [
                {
                    "scenario": row.scenario,
                    "flavour": row.flavour,
                    "ok": row.ok,
                    "capacity": row.capacity,
                    "baseline_steady_accuracy": row.baseline_steady_accuracy,
                    "outcome_counts": row.outcome_counts,
                    **(
                        {
                            "unhedged_completion_p99_s": (
                                row.unhedged.completion_p99_s
                            ),
                            "unhedged_chaos_completion_p99_s": (
                                row.unhedged.chaos_completion_p99_s
                            ),
                            "unhedged_chaos_completion_p50_s": (
                                row.unhedged.chaos_completion_p50_s
                            ),
                        }
                        if row.unhedged is not None
                        else {}
                    ),
                    **row.score.to_payload(),
                }
                for row in self.rows
            ],
        }


def _probe_mean_service(
    platform: Platform,
    seed: int,
    launches: int,
    policy: MemoizedPolicy,
    memo: ExecutionMemo,
) -> float:
    """Chaos-free mean service time of the workload mix (deterministic)."""
    cfg = ReplayConfig(
        platform=platform,
        workload=WorkloadConfig(launches=launches, seed=seed),
    )
    run = ReplayEngine(cfg, policy=policy, memo=memo).run()
    records = run.records
    return sum(r.executed_seconds for r in records) / len(records)


def _scenario_outcome(
    name: str,
    *,
    platform: Platform,
    seed: int,
    workload: WorkloadConfig,
    overload_workload: WorkloadConfig,
    requests,
    w_start: float,
    w_stop: float,
    margin: float,
    capacity: int,
    policy: MemoizedPolicy,
    memo: ExecutionMemo,
) -> tuple[str, ReplayScore, dict, "ReplayScore | None"]:
    """One scenario's (flavour, score, outcome_counts, unhedged twin).

    The single scenario body shared by the sequential loop (which passes
    the run-wide memo/policy/requests) and by the parallel worker task
    (which rebuilds the same inputs deterministically from scalars), so
    the two paths cannot drift.
    """

    def chaos_for(kind: str) -> ChaosSchedule:
        # the chaos scenario names coincide with the window kinds
        window = ChaosWindow(
            name=kind,
            kind=kind,
            start_s=w_start,
            stop_s=w_stop,
            probability=0.75 if kind == "fault-storm" else 0.35,
            gpu_scale=6.0 if kind == "hw-drift" else 1.0,
        )
        return ChaosSchedule(windows=(window,), seed=seed)

    unhedged = None
    if name == "hedged-chaos":
        # the hedged arm and its unhedged twin share the trace and
        # the fault-storm chaos; the *only* delta is the HedgePolicy,
        # so the chaos-tail p99 comparison is causal
        flavour = "hedged"
        run = ReplayEngine(
            ReplayConfig(
                platform=platform,
                workload=workload,
                chaos=chaos_for("fault-storm"),
                hedge=True,
            ),
            policy=policy,
            memo=memo,
        ).run(requests=requests)
        score = score_run(run, recovery_margin_s=margin)
        plain = ReplayEngine(
            ReplayConfig(
                platform=platform,
                workload=workload,
                chaos=chaos_for("fault-storm"),
            ),
            policy=policy,
            memo=memo,
        ).run(requests=requests)
        unhedged = score_run(plain, recovery_margin_s=margin)
    elif name in _OVERLOAD_POLICIES:
        flavour = "overload"
        cfg = ReplayConfig(
            platform=platform,
            workload=overload_workload,
            admission=AdmissionConfig(
                capacity=capacity,
                policy=_OVERLOAD_POLICIES[name],
                defer_capacity=max(capacity * 8, 64),
            ),
        )
        run = ReplayEngine(cfg, policy=policy, memo=memo).run()
        score = score_run(run)
    else:
        flavour = "baseline" if name == "steady" else "chaos"
        cfg = ReplayConfig(
            platform=platform,
            workload=workload,
            chaos=(ChaosSchedule() if name == "steady" else chaos_for(name)),
        )
        run = ReplayEngine(cfg, policy=policy, memo=memo).run(
            requests=requests
        )
        score = score_run(run, recovery_margin_s=margin)
    return flavour, score, run.outcome_counts(), unhedged


def _replay_scenario_task(
    task: tuple,
) -> tuple[str, ReplayScore, dict, "ReplayScore | None"]:
    """Worker task: one replay scenario, rebuilt from shipped scalars.

    Only the platform *name* and a handful of floats/ints travel with
    the chunk; the worker regenerates the identical seeded trace and
    chaos windows (``generate_requests`` is deterministic in the
    workload config) with its own fresh memo/policy, so scores are
    bit-identical to the sequential loop's.
    """
    (
        plat_name,
        name,
        launches,
        seed,
        utilization,
        overload_utilization,
        capacity,
        mean_service,
    ) = task
    platform = _resolve_platform(plat_name)
    workload = WorkloadConfig(
        launches=launches,
        seed=seed,
        mean_interarrival_s=mean_service / utilization,
    )
    requests = generate_requests(workload)
    w_start = requests[int(0.45 * launches)].arrival_s
    w_stop = requests[int(0.55 * launches)].arrival_s
    overload_workload = WorkloadConfig(
        launches=launches,
        seed=seed,
        mean_interarrival_s=mean_service / overload_utilization,
    )
    return _scenario_outcome(
        name,
        platform=platform,
        seed=seed,
        workload=workload,
        overload_workload=overload_workload,
        requests=requests,
        w_start=w_start,
        w_stop=w_stop,
        margin=w_stop - w_start,
        capacity=capacity,
        policy=MemoizedPolicy(),
        memo=ExecutionMemo(),
    )


def run_replay(
    *,
    launches: int = 20_000,
    seed: int = 0,
    platform: Platform = PLATFORM_P9_V100,
    utilization: float = 0.6,
    overload_utilization: float = 3.0,
    capacity: int = 32,
    scenarios: tuple[str, ...] = REPLAY_SCENARIOS,
    jobs: int | None = None,
    chunk: int | None = None,
) -> ReplayResult:
    """Run the scenario grid over one calibrated trace.

    ``jobs``/``chunk`` fan whole scenarios over the persistent
    warm-worker pool; rows come back in scenario-declaration order with
    payloads identical to the sequential loop (each worker regenerates
    the same seeded trace from the shipped scalars).
    """
    unknown = set(scenarios) - set(REPLAY_SCENARIOS)
    if unknown:
        raise ValueError(f"unknown scenarios {sorted(unknown)}")
    if "steady" not in scenarios:
        raise ValueError("the steady baseline scenario is required")

    memo = ExecutionMemo()
    policy = MemoizedPolicy()
    probe_launches = max(min(launches, 2_000), 200)
    mean_service = _probe_mean_service(
        platform, seed, probe_launches, policy, memo
    )
    mean_interarrival = mean_service / utilization

    workload = WorkloadConfig(
        launches=launches, seed=seed, mean_interarrival_s=mean_interarrival
    )
    requests = generate_requests(workload)
    # chaos occupies the middle tenth of the trace, in *actual* arrival
    # time (windows carve the exact same request prefix for every seed)
    w_start = requests[int(0.45 * launches)].arrival_s
    w_stop = requests[int(0.55 * launches)].arrival_s
    margin = w_stop - w_start  # recovery margin: one window length

    overload_workload = WorkloadConfig(
        launches=launches,
        seed=seed,
        mean_interarrival_s=mean_service / overload_utilization,
    )

    engine = SweepEngine(jobs, chunk=chunk)
    if engine.parallel:
        outcomes = engine.map(
            _replay_scenario_task,
            [
                (
                    platform.name,
                    name,
                    launches,
                    seed,
                    utilization,
                    overload_utilization,
                    capacity,
                    mean_service,
                )
                for name in scenarios
            ],
            labels=list(scenarios),
        )
    else:
        outcomes = [
            _scenario_outcome(
                name,
                platform=platform,
                seed=seed,
                workload=workload,
                overload_workload=overload_workload,
                requests=requests,
                w_start=w_start,
                w_stop=w_stop,
                margin=margin,
                capacity=capacity,
                policy=policy,
                memo=memo,
            )
            for name in scenarios
        ]

    rows: list[ReplayRow] = []
    baseline_steady = math.nan
    for name, (flavour, score, counts, unhedged) in zip(scenarios, outcomes):
        if name == "steady":
            baseline_steady = score.steady_accuracy
        rows.append(
            ReplayRow(
                scenario=name,
                flavour=flavour,
                score=score,
                baseline_steady_accuracy=baseline_steady,
                capacity=capacity if flavour == "overload" else None,
                outcome_counts=counts,
                unhedged=unhedged,
            )
        )

    return ReplayResult(
        rows=tuple(rows),
        launches=launches,
        seed=seed,
        platform_name=platform.name,
        mean_service_s=mean_service,
        mean_interarrival_s=mean_interarrival,
        utilization=utilization,
        overload_utilization=overload_utilization,
    )
