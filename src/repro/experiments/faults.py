"""Policy robustness under injected device faults.

Not a paper artefact — a robustness experiment for the fault-tolerant
runtime (docs/ROBUSTNESS.md).  Every policy replays the same launch
sequence through the resilient :class:`OffloadingRuntime` under each
scenario of the fault grid, and is scored against the **degraded
oracle**: the oracle selector run through the *same* faulty environment
(same scenario, same seed), i.e. the best a perfectly informed selector
achieves once faults, retries and fallbacks are unavoidable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults import FAULT_SCENARIOS, scenario_by_name
from ..machines import PLATFORM_P9_V100, Platform
from ..polybench import benchmark_by_name
from ..runtime import LaunchRecord, OffloadingRuntime, Policy, policy_by_name
from ..util import render_table

__all__ = ["FaultScore", "FaultsResult", "run_faults", "DEFAULT_FAULT_POLICIES"]

DEFAULT_FAULT_POLICIES = ("always-gpu", "always-cpu", "model-guided", "oracle")

#: (benchmark, mode) cycle the launch sequence draws from; the benchmark
#: datasets exceed the oom-prone scenario's 256 MiB usable memory while the
#: test datasets fit, so the OOM trigger discriminates between launches.
_WORKLOAD_CYCLE = (
    ("gemm", "test"),
    ("atax", "benchmark"),
    ("gemm", "benchmark"),
    ("atax", "test"),
)


@dataclass(frozen=True)
class FaultScore:
    """One policy's aggregate behaviour under one fault scenario."""

    scenario: str
    policy: str
    launches: int
    total_seconds: float
    faults: int  # injected fault events suffered
    retries: int  # extra accelerator attempts beyond the first
    fallbacks: int  # launches rerouted off the requested target
    breaker_state: str  # final breaker state of the accelerator
    vs_oracle: float  # total / degraded-oracle total (1.0 = oracle)


@dataclass(frozen=True)
class FaultsResult:
    """The full scenario x policy robustness grid."""

    rows: tuple[FaultScore, ...]
    launches: int

    def get(self, scenario: str, policy: str) -> FaultScore:
        for row in self.rows:
            if row.scenario == scenario and row.policy == policy:
                return row
        raise KeyError((scenario, policy))

    def _maybe(self, scenario: str, policy: str) -> FaultScore | None:
        try:
            return self.get(scenario, policy)
        except KeyError:
            return None

    @property
    def passed(self) -> bool:
        """The robustness invariants bench_faults.py enforces, as one flag.

        Checks apply to whichever (scenario, policy) cells the grid
        actually contains, so reduced grids still self-check.
        """
        for row in self.rows:
            if row.scenario != "fault-free":
                continue
            if row.faults or row.retries or row.fallbacks:
                return False
            if row.breaker_state != "closed" or row.vs_oracle < 1.0:
                return False
        dead = self._maybe("dead-gpu", "always-gpu")
        if dead is not None and (
            dead.fallbacks != dead.launches or dead.breaker_state == "closed"
        ):
            return False
        flaky_gpu = self._maybe("flaky-transfer", "always-gpu")
        flaky_mg = self._maybe("flaky-transfer", "model-guided")
        if flaky_gpu is not None and (
            flaky_gpu.faults == 0 or flaky_gpu.retries == 0
        ):
            return False
        # no ordering vs always-gpu: each policy's dispatch sequence draws
        # its own fault pattern, so a blind policy can land under 1.0 by
        # luck — the invariant is that model-guided stays at the optimum
        if flaky_mg is not None and flaky_mg.vs_oracle > 1.02:
            return False
        oom = self._maybe("oom-prone", "always-gpu")
        if oom is not None and oom.fallbacks == 0:
            return False
        return True

    def render(self) -> str:
        body = [
            [
                row.scenario,
                row.policy,
                f"{row.total_seconds * 1e3:.2f}",
                f"{row.vs_oracle:.2f}x",
                row.faults,
                row.retries,
                row.fallbacks,
                row.breaker_state,
            ]
            for row in self.rows
        ]
        return render_table(
            [
                "scenario",
                "policy",
                "total (ms)",
                "vs oracle",
                "faults",
                "retries",
                "fallbacks",
                "breaker",
            ],
            body,
            title=(
                "Policy robustness under injected faults "
                f"({self.launches} launches/run, degraded-oracle baseline)"
            ),
        )


def _build_workload(launches: int) -> list[tuple[str, dict]]:
    """(region_name, env) launch sequence cycling sizes and kernels."""
    specs = {name: benchmark_by_name(name) for name, _ in _WORKLOAD_CYCLE}
    regions: dict[str, list] = {
        name: spec.build() for name, spec in specs.items()
    }
    sequence: list[tuple[str, dict]] = []
    i = 0
    while len(sequence) < launches:
        name, mode = _WORKLOAD_CYCLE[i % len(_WORKLOAD_CYCLE)]
        env = specs[name].env(mode)
        for region in regions[name]:
            if len(sequence) >= launches:
                break
            sequence.append((region.name, env))
        i += 1
    return sequence


def _run_one(
    platform: Platform,
    policy: Policy,
    scenario: str,
    seed: int,
    workload: list[tuple[str, dict]],
    regions,
) -> tuple[float, list[LaunchRecord], OffloadingRuntime]:
    runtime = OffloadingRuntime(
        platform,
        policy=policy,
        injector=scenario_by_name(scenario, seed=seed),
    )
    for region in regions:
        runtime.compile_region(region)
    records = [runtime.launch(name, env) for name, env in workload]
    return sum(r.executed_seconds for r in records), records, runtime


def run_faults(
    *,
    platform: Platform = PLATFORM_P9_V100,
    scenarios: tuple[str, ...] = FAULT_SCENARIOS,
    policies: tuple[str, ...] = DEFAULT_FAULT_POLICIES,
    launches: int = 12,
    seed: int = 4,
) -> FaultsResult:
    """Score every policy under every fault scenario."""
    workload = _build_workload(launches)
    all_regions = [
        region
        for name in dict(_WORKLOAD_CYCLE)
        for region in benchmark_by_name(name).build()
    ]
    # one policy instance per name, shared across scenarios so the
    # model-guided calibration is fitted once
    instances = {name: policy_by_name(name) for name in policies}
    oracle = instances.get("oracle") or policy_by_name("oracle")

    rows: list[FaultScore] = []
    for scenario in scenarios:
        oracle_run = _run_one(
            platform, oracle, scenario, seed, workload, all_regions
        )
        oracle_total = oracle_run[0]
        for name in policies:
            if name == "oracle":
                total, records, runtime = oracle_run
            else:
                total, records, runtime = _run_one(
                    platform, instances[name], scenario, seed, workload, all_regions
                )
            rows.append(
                FaultScore(
                    scenario=scenario,
                    policy=name,
                    launches=len(records),
                    total_seconds=total,
                    faults=sum(len(r.fault_events) for r in records),
                    retries=sum(max(r.attempts - 1, 0) for r in records),
                    fallbacks=sum(r.fell_back for r in records),
                    breaker_state=runtime.health.breaker.state.value,
                    vs_oracle=total / oracle_total if oracle_total > 0 else float("nan"),
                )
            )
    return FaultsResult(rows=tuple(rows), launches=launches)


if __name__ == "__main__":  # pragma: no cover
    print(run_faults().render())
