"""Cross-generation sweep (the Section III study, generalized).

The paper compares two platform generations; with descriptors for Kepler,
Pascal and Volta the study generalizes: fix the host (POWER9), sweep the
attached accelerator and its bus, and watch offloading profitability evolve
kernel by kernel — "the idea is to underscore the need for accurate
analytical performance models and to provide insights in the evolution of
GPU accelerators".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines import (
    AcceleratorSlot,
    NVLINK2,
    PCIE3_X16,
    POWER9,
    Platform,
    TESLA_K80,
    TESLA_P100,
    TESLA_V100,
)
from ..polybench import all_kernel_cases
from ..sim import simulate_cpu, simulate_gpu_kernel, simulate_transfers
from ..util import geomean, render_table

__all__ = ["CrossGenResult", "run_crossgen", "GENERATIONS"]

#: The swept accelerator generations (device + the bus of its era).
GENERATIONS: tuple[Platform, ...] = (
    Platform("Kepler/PCIe", POWER9, (AcceleratorSlot(TESLA_K80, PCIE3_X16),)),
    Platform("Pascal/PCIe", POWER9, (AcceleratorSlot(TESLA_P100, PCIE3_X16),)),
    Platform("Volta/NVLink", POWER9, (AcceleratorSlot(TESLA_V100, NVLINK2),)),
)


@dataclass(frozen=True)
class CrossGenResult:
    mode: str
    generations: tuple[str, ...]
    rows: tuple[tuple[str, tuple[float, ...]], ...]  # kernel -> speedups

    def geomeans(self) -> tuple[float, ...]:
        return tuple(
            geomean([speedups[g] for _, speedups in self.rows])
            for g in range(len(self.generations))
        )

    def flips(self) -> list[str]:
        """Kernels whose offloading decision changes along the sweep."""
        out = []
        for kernel, speedups in self.rows:
            decisions = [s > 1.0 for s in speedups]
            if len(set(decisions)) > 1:
                out.append(kernel)
        return out

    def monotone_kernels(self) -> int:
        """Kernels whose speedup strictly improves with every generation."""
        return sum(
            1
            for _, sp in self.rows
            if all(b > a for a, b in zip(sp, sp[1:]))
        )

    def render(self) -> str:
        body = [
            [kernel] + [f"{s:.2f}x" for s in speedups]
            for kernel, speedups in self.rows
        ]
        body.append(["geomean"] + [f"{g:.2f}x" for g in self.geomeans()])
        table = render_table(
            ["kernel"] + list(self.generations),
            body,
            title=(
                f"Cross-generation offloading sweep on a {POWER9.name} host "
                f"({self.mode} datasets, 160 threads)"
            ),
        )
        return (
            table
            + f"\ndecision flips along the sweep: {', '.join(self.flips()) or 'none'}"
            + f"\nstrictly improving kernels: {self.monotone_kernels()}"
            f"/{len(self.rows)}"
        )


def run_crossgen(mode: str = "benchmark") -> CrossGenResult:
    """Sweep the three accelerator generations over the suite."""
    rows = []
    for case in all_kernel_cases(mode):
        speedups = []
        for plat in GENERATIONS:
            cpu = simulate_cpu(case.region, plat.host, case.env)
            gpu = simulate_gpu_kernel(case.region, plat.gpu, case.env)
            xfer = simulate_transfers(case.region, plat.bus, case.env)
            speedups.append(cpu.seconds / (gpu.seconds + xfer.total_seconds))
        rows.append((case.name, tuple(speedups)))
    return CrossGenResult(
        mode=mode,
        generations=tuple(p.name for p in GENERATIONS),
        rows=tuple(rows),
    )


if __name__ == "__main__":  # pragma: no cover
    for mode in ("test", "benchmark"):
        print(run_crossgen(mode).render())
        print()
