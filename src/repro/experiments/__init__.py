"""Experiment harness: one module per paper table/figure.

Each ``run_*`` function returns a result object with a ``render()`` method
producing the paper-style text artefact; the ``benchmarks/`` directory
wraps these in pytest-benchmark targets.
"""

from .common import (
    KernelMeasurement,
    clear_caches,
    measure_suite,
    predict_suite,
)
from .table1 import Table1Result, Table1Row, run_table1
from .table2 import Table2Result, run_table2
from .table3 import Table3Result, run_table3
from .figure3 import Figure3Result, run_figure3
from .figure45 import Figure45Result, RegimePoint, run_figure45
from .figure67 import Figure67Result, PredictionRow, run_figure6, run_figure7
from .figure8 import Figure8Result, Figure8Row, run_figure8
from .ablations import AblationResult, AblationScore, run_ablations
from .drift import (
    DriftResult,
    DriftScore,
    SkewScenario,
    default_scenarios,
    run_drift,
)
from .faults import FaultScore, FaultsResult, run_faults
from .hedge import (
    BUDGET_FACTORS,
    HEDGE_FLAVOURS,
    HedgeCell,
    HedgeResult,
    run_hedge,
)
from .replay import (
    REPLAY_SCENARIOS,
    ReplayResult,
    ReplayRow,
    run_replay,
)
from .service import (
    SERVICE_SCENARIOS,
    ServiceResult,
    ServiceRow,
    run_service,
)
from .trace import TraceResult, run_trace
from .transfers import (
    ScenarioOutcome,
    SuiteTransferRow,
    TransfersResult,
    run_transfers,
)
from .summary import Claim, SummaryResult, run_summary
from .crossgen import CrossGenResult, GENERATIONS, run_crossgen

__all__ = [
    "KernelMeasurement",
    "clear_caches",
    "measure_suite",
    "predict_suite",
    "Table1Result",
    "Table1Row",
    "run_table1",
    "Table2Result",
    "run_table2",
    "Table3Result",
    "run_table3",
    "Figure3Result",
    "run_figure3",
    "FaultScore",
    "FaultsResult",
    "run_faults",
    "REPLAY_SCENARIOS",
    "ReplayResult",
    "ReplayRow",
    "run_replay",
    "SERVICE_SCENARIOS",
    "ServiceResult",
    "ServiceRow",
    "run_service",
    "BUDGET_FACTORS",
    "HEDGE_FLAVOURS",
    "HedgeCell",
    "HedgeResult",
    "run_hedge",
    "TraceResult",
    "run_trace",
    "ScenarioOutcome",
    "SuiteTransferRow",
    "TransfersResult",
    "run_transfers",
    "DriftResult",
    "DriftScore",
    "SkewScenario",
    "default_scenarios",
    "run_drift",
    "Figure45Result",
    "RegimePoint",
    "run_figure45",
    "Figure67Result",
    "PredictionRow",
    "run_figure6",
    "run_figure7",
    "Figure8Result",
    "Figure8Row",
    "run_figure8",
    "AblationResult",
    "AblationScore",
    "run_ablations",
    "Claim",
    "SummaryResult",
    "run_summary",
    "CrossGenResult",
    "GENERATIONS",
    "run_crossgen",
]
