"""Figures 4 and 5 — the Hong & Kim MWP/CWP machinery.

The paper reproduces the model equations; the runnable artefact is a
regime sweep: for a memory-heavy and a compute-heavy synthetic workload,
vary the number of active warps per SM (N) and record MWP, CWP, the
selected Figure-4 case and the execution-cycle estimate — exposing the
memory-bound → balanced → compute-bound transitions, plus the ``#OMP_Rep``
multiplier the paper adds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines import GPUDescriptor, TESLA_V100
from ..models import MWPCWPInputs, mwp_cwp
from ..util import render_table

__all__ = ["RegimePoint", "Figure45Result", "run_figure45"]


@dataclass(frozen=True)
class RegimePoint:
    n_warps: int
    mwp: float
    cwp: float
    case: str
    exec_cycles: float


@dataclass(frozen=True)
class Figure45Result:
    gpu_name: str
    memory_heavy: tuple[RegimePoint, ...]
    compute_heavy: tuple[RegimePoint, ...]

    def cases_seen(self) -> set[str]:
        return {p.case for p in self.memory_heavy + self.compute_heavy}

    def render(self) -> str:
        def table(points, title):
            rows = [
                [p.n_warps, f"{p.mwp:.1f}", f"{p.cwp:.1f}", p.case, f"{p.exec_cycles:,.0f}"]
                for p in points
            ]
            return render_table(
                ["N (warps/SM)", "MWP", "CWP", "Figure-4 case", "exec cycles"],
                rows,
                title=title,
            )

        return (
            table(
                self.memory_heavy,
                f"Figures 4+5: MWP/CWP sweep, memory-heavy kernel ({self.gpu_name})",
            )
            + "\n\n"
            + table(
                self.compute_heavy,
                f"Figures 4+5: MWP/CWP sweep, compute-heavy kernel ({self.gpu_name})",
            )
        )


def _sweep(
    gpu: GPUDescriptor,
    *,
    comp_cycles: float,
    mem_insts: float,
    mem_latency: float,
    n_values: tuple[int, ...],
) -> tuple[RegimePoint, ...]:
    points = []
    for n in n_values:
        inputs = MWPCWPInputs(
            n_active_warps=float(n),
            mem_latency=mem_latency,
            departure_delay=4.0,
            mem_cycles=mem_latency * mem_insts,
            comp_cycles=comp_cycles,
            mem_insts=mem_insts,
            load_bytes_per_warp=128.0,
            active_sms=gpu.num_sms,
        )
        res = mwp_cwp(inputs, gpu)
        points.append(
            RegimePoint(
                n_warps=n,
                mwp=res.mwp,
                cwp=res.cwp,
                case=res.case,
                exec_cycles=res.exec_cycles_one_wave,
            )
        )
    return tuple(points)


def run_figure45(gpu: GPUDescriptor = TESLA_V100) -> Figure45Result:
    """Sweep occupancy for the two canonical workload shapes."""
    n_values = (1, 2, 4, 8, 16, 32, 64)
    memory_heavy = _sweep(
        gpu,
        comp_cycles=2_000.0,
        mem_insts=1_000.0,
        mem_latency=float(gpu.mem_latency),
        n_values=n_values,
    )
    compute_heavy = _sweep(
        gpu,
        comp_cycles=200_000.0,
        mem_insts=50.0,
        mem_latency=float(gpu.l2_latency),
        n_values=n_values,
    )
    return Figure45Result(
        gpu_name=gpu.name,
        memory_heavy=memory_heavy,
        compute_heavy=compute_heavy,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run_figure45().render())
