"""Table II — CPU processor/parallel parameters of the execution model.

The parameters and where each comes from (the paper's provenance):

* CPU frequency — the machine configuration (both hosts at 3 GHz);
* TLB entries and miss penalty — the libhugetlbfs probe;
* loop overhead / schedule / synchronization / startup — EPCC
  microbenchmarks.

The experiment re-measures the measurable ones against the simulators and
prints them next to the descriptor (ground-truth) values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..calibrate import overhead_curve, probe_tlb
from ..machines import CPUDescriptor, POWER9
from ..util import render_kv, render_table

__all__ = ["Table2Result", "run_table2"]


@dataclass(frozen=True)
class Table2Result:
    cpu: CPUDescriptor
    measured_tlb_entries: int
    measured_tlb_penalty: float
    epcc_curve: tuple  # ParallelOverhead per team size

    def parameters(self) -> list[tuple[str, object]]:
        """The Table II rows."""
        return [
            ("CPU Frequency", f"{self.cpu.frequency_ghz:g} GHz"),
            ("TLB Entries", self.measured_tlb_entries),
            ("TLB Miss Penalty", f"{self.measured_tlb_penalty:g} Cycles"),
            (
                "Loop_overhead_per_iter",
                f"{self.cpu.loop_overhead_per_iter} Cycles",
            ),
            (
                "Par_Schedule_Overhead_static",
                f"{self.cpu.par_schedule_static_cycles} Cycles",
            ),
            ("Synchronization_Overhead", f"{self.cpu.sync_cycles} Cycles"),
            ("Par_Startup", f"{self.cpu.par_startup_cycles} Cycles"),
        ]

    def render(self) -> str:
        head = render_kv(
            self.parameters(),
            title=f"Table II: CPU processor/parallel parameters ({self.cpu.name})",
        )
        rows = [
            [m.num_threads, f"{m.overhead_cycles:,.0f}", f"{m.overhead_us:.1f}"]
            for m in self.epcc_curve
        ]
        curve = render_table(
            ["team size", "overhead (cycles)", "overhead (us)"],
            rows,
            title="EPCC parallel-for overhead vs team size",
        )
        return head + "\n\n" + curve


def run_table2(cpu: CPUDescriptor = POWER9) -> Table2Result:
    """Regenerate Table II by probing the simulated host."""
    tlb = probe_tlb(cpu)
    curve = tuple(overhead_curve(cpu))
    return Table2Result(
        cpu=cpu,
        measured_tlb_entries=tlb.measured_entries,
        measured_tlb_penalty=tlb.measured_miss_penalty_cycles,
        epcc_curve=curve,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run_table2().render())
