"""Figure 3 — the Liao & Chapman cost-model equations in action.

The figure in the paper lists the equations; the reproducible artefact is
their evaluation: a component-by-component breakdown of the predicted host
time for every suite kernel, showing how Fork/Schedule/Machine-cycles/
Cache/Loop-overhead/Join compose (and which term dominates where).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines import CPUDescriptor, POWER9
from ..polybench import all_kernel_cases
from ..analysis import ProgramAttributeDatabase
from ..models import predict_cpu_time
from ..util import render_table

__all__ = ["Figure3Result", "run_figure3"]

_COMPONENTS = [
    "Fork_c",
    "Schedule_c",
    "Machine_cycles x Chunk",
    "Cache_c (TLB)",
    "Loop_overhead_c",
    "Reduction_c",
    "Join_c",
]


@dataclass(frozen=True)
class Figure3Result:
    cpu_name: str
    mode: str
    num_threads: int | None
    rows: tuple[tuple[str, dict[str, float]], ...]  # kernel -> component cycles

    def dominant_component(self, kernel: str) -> str:
        for name, comps in self.rows:
            if name == kernel:
                return max(comps, key=comps.get)
        raise KeyError(kernel)

    def render(self) -> str:
        body = []
        for name, comps in self.rows:
            total = sum(comps.values())
            body.append(
                [name]
                + [f"{comps[c]:,.0f}" for c in _COMPONENTS]
                + [f"{total:,.0f}", max(comps, key=comps.get)]
            )
        return render_table(
            ["kernel"] + _COMPONENTS + ["total cycles", "dominant"],
            body,
            title=(
                f"Figure 3: Liao/Chapman cost-model breakdown "
                f"({self.cpu_name}, {self.mode}, "
                f"{self.num_threads or 'all'} threads)"
            ),
        )


def run_figure3(
    cpu: CPUDescriptor = POWER9,
    mode: str = "test",
    num_threads: int | None = None,
) -> Figure3Result:
    """Evaluate the Figure 3 equations for every suite kernel."""
    db = ProgramAttributeDatabase()
    rows = []
    for case in all_kernel_cases(mode):
        attrs = db.compile_region(case.region)
        bound = attrs.bind(case.env)
        pred = predict_cpu_time(
            case.region,
            bound.loadout,
            bound.parallel_iterations,
            cpu,
            num_threads=num_threads,
            env=dict(case.env),
        )
        rows.append((case.name, pred.breakdown()))
    return Figure3Result(
        cpu_name=cpu.name,
        mode=mode,
        num_threads=num_threads,
        rows=tuple(rows),
    )


if __name__ == "__main__":  # pragma: no cover
    print(run_figure3().render())
