"""The claim-by-claim reproduction scorecard (EXPERIMENTS.md, live).

Re-derives the summary table of EXPERIMENTS.md from current code — every
paper claim with its reproduced value and pass/fail status — so the
scorecard can never drift from the implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..calibrate import probe_gpu_latencies, probe_tlb
from ..machines import POWER9, TESLA_V100
from ..util import render_table
from .figure67 import run_figure6, run_figure7
from .figure8 import run_figure8
from .table1 import run_table1

__all__ = ["Claim", "SummaryResult", "run_summary"]

P8 = "POWER8+K80"
P9 = "POWER9+V100"


@dataclass(frozen=True)
class Claim:
    claim: str
    paper: str
    reproduced: str
    holds: bool


@dataclass(frozen=True)
class SummaryResult:
    claims: tuple[Claim, ...]

    @property
    def all_hold(self) -> bool:
        return all(c.holds for c in self.claims)

    def render(self) -> str:
        rows = [
            [c.claim, c.paper, c.reproduced, "PASS" if c.holds else "partial"]
            for c in self.claims
        ]
        return render_table(
            ["claim", "paper", "reproduced", "status"],
            rows,
            title="Reproduction scorecard (shape-level claims)",
            align_right=False,
        )


def run_summary() -> SummaryResult:
    """Evaluate every shape claim against freshly computed results."""
    t1 = run_table1()
    by = {r.kernel: r for r in t1.rows}
    f6 = run_figure6()
    f7 = run_figure7()
    f8 = {m: run_figure8(m) for m in ("test", "benchmark")}
    tlb = probe_tlb(POWER9)
    jia = probe_gpu_latencies(TESLA_V100)

    conv = by["3dconv"]
    corr = by["corr_corr"]
    atax = by["atax_k2"]
    claims = [
        Claim(
            "3DCONV flips slowdown->speedup across generations",
            "0.48x -> 4.41x",
            f"{conv.get('benchmark', P8):.2f}x -> {conv.get('benchmark', P9):.2f}x",
            conv.get("benchmark", P8) < 1.0 < conv.get("benchmark", P9),
        ),
        Claim(
            "CORR main kernel: far better candidate on POWER8",
            "offload on P8, not on P9",
            f"{corr.get('benchmark', P8):.1f}x vs {corr.get('benchmark', P9):.1f}x "
            f"(test: {corr.get('test', P8):.2f}x vs {corr.get('test', P9):.2f}x)",
            corr.get("benchmark", P8) > 3 * corr.get("benchmark", P9)
            and corr.get("test", P9) < 1.0,
        ),
        Claim(
            "Decision stable, magnitude shifts (ATAX2 test)",
            "1.24x -> 40.69x",
            f"{atax.get('test', P8):.2f}x -> {atax.get('test', P9):.2f}x",
            atax.get("test", P8) > 1.0
            and atax.get("test", P9) > 2 * atax.get("test", P8),
        ),
        Claim(
            "Model-guided beats always-offload (test mode)",
            "10.2x -> 14.2x",
            f"{f8['test'].geomeans()['always-gpu']:.2f}x -> "
            f"{f8['test'].geomeans()['model-guided']:.2f}x",
            f8["test"].geomeans()["model-guided"]
            >= f8["test"].geomeans()["always-gpu"] * 0.999,
        ),
        Claim(
            "Model-guided beats always-offload (benchmark mode)",
            "2.9x -> 3.7x",
            f"{f8['benchmark'].geomeans()['always-gpu']:.2f}x -> "
            f"{f8['benchmark'].geomeans()['model-guided']:.2f}x",
            f8["benchmark"].geomeans()["model-guided"]
            >= f8["benchmark"].geomeans()["always-gpu"] * 0.999,
        ),
        Claim(
            "Close-call mispredictions survive (conv class)",
            "2DCONV bench: pred 0.913x vs true 1.48x",
            f"{sum(len(r.misses()) for r in f8.values())} misses across modes",
            sum(len(r.misses()) for r in f8.values()) >= 1,
        ),
        Claim(
            "Predictions track reality at 4 threads (Figs 6/7)",
            "visual correlation",
            f"acc {f6.decision_accuracy:.0%}/{f7.decision_accuracy:.0%}, "
            f"log-corr {f6.rank_correlation_proxy:.2f}/"
            f"{f7.rank_correlation_proxy:.2f}",
            f6.decision_accuracy >= 0.8 and f7.decision_accuracy >= 0.8,
        ),
        Claim(
            "Table II parameters recoverable by microbenchmark",
            "1024 entries / 14 cycles",
            f"{tlb.measured_entries} entries / "
            f"{tlb.measured_miss_penalty_cycles:g} cycles",
            tlb.measured_entries == 1024
            and tlb.measured_miss_penalty_cycles == 14.0,
        ),
        Claim(
            "Table III latencies recoverable by pointer chase",
            "28 / 193 / ~400 cycles",
            f"{jia.l1_latency:g} / {jia.l2_latency:g} / {jia.dram_latency:g}",
            (jia.l1_latency, jia.l2_latency, jia.dram_latency)
            == (28.0, 193.0, 400.0),
        ),
    ]
    return SummaryResult(tuple(claims))


if __name__ == "__main__":  # pragma: no cover
    print(run_summary().render())
