"""Figure 8 — suite speedup under target-selection policies.

The paper's headline: against the 160-thread host, switching from the
compiler's default policy (always offload) to the model-guided selector
improves the geometric-mean suite speedup (10.2x → 14.2x in test mode,
2.9x → 3.7x in benchmark mode on their hardware).  This experiment
regenerates the per-kernel speedups under ``always-gpu``, ``model-guided``
and ``oracle`` policies and reports the geomeans plus the close-call
mispredictions the paper singles out (its 2DCONV benchmark case).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines import PLATFORM_P9_V100, Platform
from ..util import geomean, render_table
from .common import measure_suite, predict_suite

__all__ = ["Figure8Row", "Figure8Result", "run_figure8"]


@dataclass(frozen=True)
class Figure8Row:
    kernel: str
    true_speedup: float  # GPU offloading speedup over the host
    predicted_speedup: float
    always_gpu: float  # suite speedup contribution under each policy
    model_guided: float
    oracle: float

    @property
    def model_choice(self) -> str:
        return "gpu" if self.predicted_speedup > 1.0 else "cpu"

    @property
    def miss(self) -> bool:
        return (self.true_speedup > 1.0) != (self.predicted_speedup > 1.0)


@dataclass(frozen=True)
class Figure8Result:
    mode: str
    platform_name: str
    num_threads: int | None
    rows: tuple[Figure8Row, ...]

    def geomeans(self) -> dict[str, float]:
        return {
            "always-gpu": geomean([r.always_gpu for r in self.rows]),
            "model-guided": geomean([r.model_guided for r in self.rows]),
            "oracle": geomean([r.oracle for r in self.rows]),
        }

    def misses(self) -> list[Figure8Row]:
        return [r for r in self.rows if r.miss]

    def render(self) -> str:
        body = [
            [
                r.kernel,
                f"{r.always_gpu:.2f}x",
                f"{r.model_guided:.2f}x",
                f"{r.oracle:.2f}x",
                r.model_choice,
                "MISS" if r.miss else "",
            ]
            for r in self.rows
        ]
        gms = self.geomeans()
        body.append(
            [
                "geomean",
                f"{gms['always-gpu']:.2f}x",
                f"{gms['model-guided']:.2f}x",
                f"{gms['oracle']:.2f}x",
                "",
                "",
            ]
        )
        table = render_table(
            ["kernel", "always-offload", "model-guided", "oracle", "choice", ""],
            body,
            title=(
                f"Figure 8: suite speedup over the "
                f"{self.num_threads or 'full'}-thread host under selection "
                f"policies ({self.platform_name}, {self.mode} mode)"
            ),
        )
        miss_text = ", ".join(
            f"{r.kernel} (true {r.true_speedup:.2f}x, predicted "
            f"{r.predicted_speedup:.2f}x)"
            for r in self.misses()
        )
        return table + "\nclose-call mispredictions: " + (miss_text or "none")


def run_figure8(
    mode: str = "benchmark",
    platform: Platform = PLATFORM_P9_V100,
    *,
    num_threads: int | None = None,
) -> Figure8Result:
    """Regenerate Figure 8 for one mode (run both modes for the paper)."""
    measured = measure_suite(platform, mode, num_threads=num_threads)
    predicted = predict_suite(platform, mode, num_threads=num_threads)
    rows = []
    for m, p in zip(measured, predicted):
        executed_model = m.gpu_seconds if p.offload else m.cpu_seconds
        rows.append(
            Figure8Row(
                kernel=m.case.name,
                true_speedup=m.true_speedup,
                predicted_speedup=p.predicted_speedup,
                always_gpu=m.cpu_seconds / m.gpu_seconds,
                model_guided=m.cpu_seconds / executed_model,
                oracle=m.cpu_seconds / m.oracle_seconds,
            )
        )
    return Figure8Result(
        mode=mode,
        platform_name=platform.name,
        num_threads=num_threads,
        rows=tuple(rows),
    )


if __name__ == "__main__":  # pragma: no cover
    for mode in ("test", "benchmark"):
        print(run_figure8(mode).render())
        print()
