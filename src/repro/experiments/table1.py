"""Table I — GPU offloading benefit across GPU generations.

Per Polybench kernel, the speedup of GPU offloading (transfers included)
over the 160-thread host, on POWER8+K80 (PCI-E) and POWER9+V100 (NVLink 2),
in both ``test`` and ``benchmark`` execution modes.

The paper's anchor observations this experiment must reproduce in shape:

* 3DCONV (benchmark) is a *slowdown* on the K80 platform but a clear
  *speedup* on the V100 platform (paper: 0.48x → 4.41x);
* the CORR/COVAR main kernels are far better offloading candidates on the
  POWER8 host than on the POWER9 host (the host's wider vector units claw
  the kernel back);
* magnitudes shift drastically between generations even where the decision
  is unchanged (paper's ATAX2 test: 1.24x → 40.69x).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines import PLATFORM_P8_K80, PLATFORM_P9_V100
from ..polybench import MODES
from ..util import geomean, render_table
from .common import measure_suite

__all__ = ["Table1Row", "Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Row:
    """Offloading speedups of one kernel on both platforms and modes."""

    benchmark: str
    kernel: str
    speedup: dict[tuple[str, str], float]  # (mode, platform name) -> speedup

    def get(self, mode: str, platform_name: str) -> float:
        return self.speedup[(mode, platform_name)]


@dataclass(frozen=True)
class Table1Result:
    rows: tuple[Table1Row, ...]
    platforms: tuple[str, str]

    def geomeans(self) -> dict[tuple[str, str], float]:
        out = {}
        for mode in MODES:
            for plat in self.platforms:
                out[(mode, plat)] = geomean(
                    [r.get(mode, plat) for r in self.rows]
                )
        return out

    def decision_flips(self) -> list[str]:
        """Kernels whose offloading decision differs across generations."""
        flips = []
        for row in self.rows:
            for mode in MODES:
                a = row.get(mode, self.platforms[0]) > 1.0
                b = row.get(mode, self.platforms[1]) > 1.0
                if a != b:
                    flips.append(f"{row.kernel} [{mode}]")
        return flips

    def render(self) -> str:
        headers = ["kernel"] + [
            f"{mode}/{plat}" for mode in MODES for plat in self.platforms
        ]
        body = []
        for row in self.rows:
            body.append(
                [row.kernel]
                + [
                    f"{row.get(mode, plat):.2f}x"
                    for mode in MODES
                    for plat in self.platforms
                ]
            )
        gms = self.geomeans()
        body.append(
            ["geomean"]
            + [f"{gms[(mode, plat)]:.2f}x" for mode in MODES for plat in self.platforms]
        )
        table = render_table(
            headers,
            body,
            title=(
                "Table I: GPU offloading speedup over the 160-thread host "
                "(transfers included)"
            ),
        )
        flips = self.decision_flips()
        return table + "\ncross-generation decision flips: " + (
            ", ".join(flips) if flips else "none"
        )


def run_table1() -> Table1Result:
    """Regenerate Table I from the simulators."""
    platforms = (PLATFORM_P8_K80, PLATFORM_P9_V100)
    per_kernel: dict[str, dict[tuple[str, str], float]] = {}
    meta: dict[str, str] = {}
    for mode in MODES:
        for plat in platforms:
            for m in measure_suite(plat, mode):
                per_kernel.setdefault(m.case.name, {})[(mode, plat.name)] = (
                    m.true_speedup
                )
                meta[m.case.name] = m.case.benchmark
    rows = tuple(
        Table1Row(benchmark=meta[name], kernel=name, speedup=sp)
        for name, sp in per_kernel.items()
    )
    return Table1Result(rows=rows, platforms=tuple(p.name for p in platforms))


if __name__ == "__main__":  # pragma: no cover
    print(run_table1().render())
