"""Shared measurement infrastructure for the experiment harness.

Runs the Polybench suite on a platform ("measuring" with the simulators)
and through the analytical predictor, with memoization so that the
table/figure modules and the pytest benchmarks can share results.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import ProgramAttributeDatabase
from ..calibrate import ModelCalibration, fit_model_calibration
from ..machines import PLATFORM_P8_K80, PLATFORM_P9_V100, Platform, platform_by_name
from ..models import SelectionPrediction, predict_both
from ..polybench import KernelCase, all_kernel_cases
from ..sim import simulate_cpu, simulate_gpu_kernel, simulate_transfers

__all__ = ["KernelMeasurement", "measure_suite", "predict_suite", "clear_caches"]


def _resolve_platform(platform: "Platform | str") -> Platform:
    """Accept a Platform, a registry key ('p9-v100') or a display name."""
    if isinstance(platform, Platform):
        return platform
    for known in (PLATFORM_P8_K80, PLATFORM_P9_V100):
        if platform == known.name:
            return known
    return platform_by_name(platform)


@dataclass(frozen=True)
class KernelMeasurement:
    """Measured (simulated) CPU and GPU times for one kernel case."""

    case: KernelCase
    cpu_seconds: float
    gpu_kernel_seconds: float
    gpu_transfer_seconds: float

    @property
    def gpu_seconds(self) -> float:
        return self.gpu_kernel_seconds + self.gpu_transfer_seconds

    @property
    def true_speedup(self) -> float:
        """Actual GPU-offloading speedup (host time / device time)."""
        return self.cpu_seconds / self.gpu_seconds

    @property
    def oracle_seconds(self) -> float:
        return min(self.cpu_seconds, self.gpu_seconds)


_MEASURE_CACHE: dict[tuple, list[KernelMeasurement]] = {}
_PREDICT_CACHE: dict[tuple, list[SelectionPrediction]] = {}
_DB_CACHE: dict[str, ProgramAttributeDatabase] = {}
_CAL_CACHE: dict[tuple, ModelCalibration] = {}


def clear_caches() -> None:
    """Drop all experiment memoization (for tests)."""
    _MEASURE_CACHE.clear()
    _PREDICT_CACHE.clear()
    _DB_CACHE.clear()
    _CAL_CACHE.clear()


def _database(mode: str) -> tuple[ProgramAttributeDatabase, list[KernelCase]]:
    cases = all_kernel_cases(mode)
    if mode not in _DB_CACHE:
        db = ProgramAttributeDatabase()
        for case in cases:
            db.compile_region(case.region)
        _DB_CACHE[mode] = db
    # regions must come from the compiled database so attribute lookups hit
    db = _DB_CACHE[mode]
    cases = [
        KernelCase(
            benchmark=c.benchmark,
            mode=c.mode,
            region=db.lookup(c.name).region,
            env=c.env,
            scalars=c.scalars,
        )
        for c in cases
    ]
    return db, cases


def measure_suite(
    platform: Platform | str,
    mode: str,
    *,
    num_threads: int | None = None,
) -> list[KernelMeasurement]:
    """Simulate every suite kernel on both devices of a platform."""
    plat = _resolve_platform(platform)
    key = (plat.name, mode, num_threads)
    if key in _MEASURE_CACHE:
        return _MEASURE_CACHE[key]
    _, cases = _database(mode)
    out: list[KernelMeasurement] = []
    for case in cases:
        cpu = simulate_cpu(
            case.region, plat.host, case.env, num_threads=num_threads
        )
        gpu = simulate_gpu_kernel(case.region, plat.gpu, case.env)
        xfer = simulate_transfers(case.region, plat.bus, case.env)
        out.append(
            KernelMeasurement(
                case=case,
                cpu_seconds=cpu.seconds,
                gpu_kernel_seconds=gpu.seconds,
                gpu_transfer_seconds=xfer.total_seconds,
            )
        )
    _MEASURE_CACHE[key] = out
    return out


def predict_suite(
    platform: Platform | str,
    mode: str,
    *,
    num_threads: int | None = None,
    calibrated: bool = True,
    use_runtime_tripcounts: bool = True,
) -> list[SelectionPrediction]:
    """Run the analytical predictor over every suite kernel."""
    plat = _resolve_platform(platform)
    key = (plat.name, mode, num_threads, calibrated, use_runtime_tripcounts)
    if key in _PREDICT_CACHE:
        return _PREDICT_CACHE[key]
    db, cases = _database(mode)
    calibration = None
    if calibrated:
        cal_key = (plat.name, num_threads)
        if cal_key not in _CAL_CACHE:
            _CAL_CACHE[cal_key] = fit_model_calibration(
                plat, num_threads=num_threads
            )
        calibration = _CAL_CACHE[cal_key]
    out: list[SelectionPrediction] = []
    for case in cases:
        bound = db.lookup(case.name).bind(case.env)
        out.append(
            predict_both(
                bound,
                plat,
                num_threads=num_threads,
                calibration=calibration,
                use_runtime_tripcounts=use_runtime_tripcounts,
            )
        )
    _PREDICT_CACHE[key] = out
    return out
