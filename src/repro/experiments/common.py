"""Shared measurement infrastructure for the experiment harness.

Runs the Polybench suite on a platform ("measuring" with the simulators)
and through the analytical predictor, with memoization so that the
table/figure modules and the pytest benchmarks can share results.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import ProgramAttributeDatabase
from ..calibrate import ModelCalibration, fit_model_calibration
from ..machines import PLATFORM_P8_K80, PLATFORM_P9_V100, Platform, platform_by_name
from ..models import SelectionPrediction, predict_both
from ..parallel import SweepEngine, current_cache
from ..polybench import KernelCase, all_kernel_cases
from ..sim import simulate_cpu, simulate_gpu_kernel, simulate_transfers

__all__ = ["KernelMeasurement", "measure_suite", "predict_suite", "clear_caches"]


def _resolve_platform(platform: "Platform | str") -> Platform:
    """Accept a Platform, a registry key ('p9-v100') or a display name."""
    if isinstance(platform, Platform):
        return platform
    for known in (PLATFORM_P8_K80, PLATFORM_P9_V100):
        if platform == known.name:
            return known
    return platform_by_name(platform)


@dataclass(frozen=True)
class KernelMeasurement:
    """Measured (simulated) CPU and GPU times for one kernel case."""

    case: KernelCase
    cpu_seconds: float
    gpu_kernel_seconds: float
    gpu_transfer_seconds: float

    @property
    def gpu_seconds(self) -> float:
        return self.gpu_kernel_seconds + self.gpu_transfer_seconds

    @property
    def true_speedup(self) -> float:
        """Actual GPU-offloading speedup (host time / device time)."""
        return self.cpu_seconds / self.gpu_seconds

    @property
    def oracle_seconds(self) -> float:
        return min(self.cpu_seconds, self.gpu_seconds)


_MEASURE_CACHE: dict[tuple, list[KernelMeasurement]] = {}
_PREDICT_CACHE: dict[tuple, list[SelectionPrediction]] = {}
_DB_CACHE: dict[str, ProgramAttributeDatabase] = {}
_CAL_CACHE: dict[tuple, ModelCalibration] = {}


def clear_caches(*, persistent: bool = True) -> None:
    """Drop all experiment memoization (for tests).

    With ``persistent=True`` (the default) the active persistent
    :class:`~repro.parallel.AnalysisCache` — when one is enabled — is
    cleared too, so a post-clear sweep genuinely recomputes everything
    instead of replaying disk entries.
    """
    _MEASURE_CACHE.clear()
    _PREDICT_CACHE.clear()
    _DB_CACHE.clear()
    _CAL_CACHE.clear()
    if persistent:
        cache = current_cache()
        if cache.enabled:
            cache.clear()


def _database(mode: str) -> tuple[ProgramAttributeDatabase, list[KernelCase]]:
    cases = all_kernel_cases(mode)
    if mode not in _DB_CACHE:
        db = ProgramAttributeDatabase()
        for case in cases:
            db.compile_region(case.region)
        _DB_CACHE[mode] = db
    # regions must come from the compiled database so attribute lookups hit
    db = _DB_CACHE[mode]
    cases = [
        KernelCase(
            benchmark=c.benchmark,
            mode=c.mode,
            region=db.lookup(c.name).region,
            env=c.env,
            scalars=c.scalars,
        )
        for c in cases
    ]
    return db, cases


def _calibration(plat: Platform, num_threads: int | None) -> ModelCalibration:
    cal_key = (plat.name, num_threads)
    if cal_key not in _CAL_CACHE:
        _CAL_CACHE[cal_key] = fit_model_calibration(
            plat, num_threads=num_threads
        )
    return _CAL_CACHE[cal_key]


def _measure_case(
    case: KernelCase, plat: Platform, num_threads: int | None
) -> KernelMeasurement:
    cpu = simulate_cpu(
        case.region, plat.host, case.env, num_threads=num_threads
    )
    gpu = simulate_gpu_kernel(case.region, plat.gpu, case.env)
    xfer = simulate_transfers(case.region, plat.bus, case.env)
    return KernelMeasurement(
        case=case,
        cpu_seconds=cpu.seconds,
        gpu_kernel_seconds=gpu.seconds,
        gpu_transfer_seconds=xfer.total_seconds,
    )


def _measure_task(task: tuple) -> tuple[float, float, float]:
    """Worker task: simulate one suite case, returning only the numbers.

    Regions compare by identity, so the parent reattaches its own
    :class:`KernelCase` objects; the worker rebuilds the (process-local)
    database and ships back three floats.
    """
    plat_name, mode, index, num_threads = task
    plat = _resolve_platform(plat_name)
    _, cases = _database(mode)
    m = _measure_case(cases[index], plat, num_threads)
    return (m.cpu_seconds, m.gpu_kernel_seconds, m.gpu_transfer_seconds)


def _predict_task(task: tuple) -> SelectionPrediction:
    """Worker task: run the analytical predictor over one suite case."""
    plat_name, mode, index, num_threads, calibrated, use_rt = task
    plat = _resolve_platform(plat_name)
    db, cases = _database(mode)
    case = cases[index]
    calibration = _calibration(plat, num_threads) if calibrated else None
    bound = db.lookup(case.name).bind(case.env)
    return predict_both(
        bound,
        plat,
        num_threads=num_threads,
        calibration=calibration,
        use_runtime_tripcounts=use_rt,
    )


def measure_suite(
    platform: Platform | str,
    mode: str,
    *,
    num_threads: int | None = None,
    jobs: int | None = None,
) -> list[KernelMeasurement]:
    """Simulate every suite kernel on both devices of a platform.

    ``jobs`` (default: ``$REPRO_JOBS``, else 1) fans cases over a
    process pool; results always come back in case-declaration order and
    are bit-identical to the sequential sweep.  ``jobs`` is excluded
    from the memo key for exactly that reason.
    """
    plat = _resolve_platform(platform)
    key = (plat.name, mode, num_threads)
    if key in _MEASURE_CACHE:
        return _MEASURE_CACHE[key]
    _, cases = _database(mode)
    engine = SweepEngine(jobs)
    if engine.parallel:
        numbers = engine.map(
            _measure_task,
            [(plat.name, mode, i, num_threads) for i in range(len(cases))],
        )
        out = [
            KernelMeasurement(
                case=case,
                cpu_seconds=n[0],
                gpu_kernel_seconds=n[1],
                gpu_transfer_seconds=n[2],
            )
            for case, n in zip(cases, numbers)
        ]
    else:
        out = [_measure_case(case, plat, num_threads) for case in cases]
    _MEASURE_CACHE[key] = out
    return out


def predict_suite(
    platform: Platform | str,
    mode: str,
    *,
    num_threads: int | None = None,
    calibrated: bool = True,
    use_runtime_tripcounts: bool = True,
    jobs: int | None = None,
) -> list[SelectionPrediction]:
    """Run the analytical predictor over every suite kernel.

    ``jobs`` parallelizes exactly like :func:`measure_suite`: declaration
    order, bit-identical results, excluded from the memo key.
    """
    plat = _resolve_platform(platform)
    key = (plat.name, mode, num_threads, calibrated, use_runtime_tripcounts)
    if key in _PREDICT_CACHE:
        return _PREDICT_CACHE[key]
    db, cases = _database(mode)
    engine = SweepEngine(jobs)
    if engine.parallel:
        # Populate the calibration memo before the pool forks so workers
        # inherit it instead of refitting per process.
        if calibrated:
            _calibration(plat, num_threads)
        out = engine.map(
            _predict_task,
            [
                (plat.name, mode, i, num_threads, calibrated,
                 use_runtime_tripcounts)
                for i in range(len(cases))
            ],
        )
    else:
        calibration = _calibration(plat, num_threads) if calibrated else None
        out = [
            predict_both(
                db.lookup(case.name).bind(case.env),
                plat,
                num_threads=num_threads,
                calibration=calibration,
                use_runtime_tripcounts=use_runtime_tripcounts,
            )
            for case in cases
        ]
    _PREDICT_CACHE[key] = out
    return out
