"""Shared measurement infrastructure for the experiment harness.

Runs the Polybench suite on a platform ("measuring" with the simulators)
and through the analytical predictor, with memoization so that the
table/figure modules and the pytest benchmarks can share results.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass

from ..analysis import ProgramAttributeDatabase
from ..calibrate import ModelCalibration, fit_model_calibration
from ..machines import PLATFORM_P8_K80, PLATFORM_P9_V100, Platform, platform_by_name
from ..models import SelectionPrediction, predict_both
from ..parallel import (
    SweepEngine,
    current_cache,
    register_prefork_warmup,
    shutdown_pools,
)
from ..polybench import KernelCase, all_kernel_cases
from ..sim import simulate_cpu, simulate_gpu_kernel, simulate_transfers

__all__ = ["KernelMeasurement", "measure_suite", "predict_suite", "clear_caches"]


def _resolve_platform(platform: "Platform | str") -> Platform:
    """Accept a Platform, a registry key ('p9-v100') or a display name."""
    if isinstance(platform, Platform):
        return platform
    for known in (PLATFORM_P8_K80, PLATFORM_P9_V100):
        if platform == known.name:
            return known
    return platform_by_name(platform)


@dataclass(frozen=True)
class KernelMeasurement:
    """Measured (simulated) CPU and GPU times for one kernel case."""

    case: KernelCase
    cpu_seconds: float
    gpu_kernel_seconds: float
    gpu_transfer_seconds: float

    @property
    def gpu_seconds(self) -> float:
        return self.gpu_kernel_seconds + self.gpu_transfer_seconds

    @property
    def true_speedup(self) -> float:
        """Actual GPU-offloading speedup (host time / device time)."""
        return self.cpu_seconds / self.gpu_seconds

    @property
    def oracle_seconds(self) -> float:
        return min(self.cpu_seconds, self.gpu_seconds)


_MEASURE_CACHE: dict[tuple, list[KernelMeasurement]] = {}
_PREDICT_CACHE: dict[tuple, list[SelectionPrediction]] = {}
_DB_CACHE: dict[str, tuple[ProgramAttributeDatabase, list[KernelCase]]] = {}
_CAL_CACHE: dict[tuple, ModelCalibration] = {}


def clear_caches(*, persistent: bool = True) -> None:
    """Drop all experiment memoization (for tests).

    With ``persistent=True`` (the default) the active persistent
    :class:`~repro.parallel.AnalysisCache` — when one is enabled — is
    cleared too, and every persistent worker pool is shut down (workers
    hold their own warm in-memory caches), so a post-clear sweep
    genuinely recomputes everything instead of replaying stored entries.
    ``persistent=False`` drops only the in-process memos and leaves both
    the disk entries and the warm worker pools in place — the warm-run
    configuration the benchmarks time.
    """
    _MEASURE_CACHE.clear()
    _PREDICT_CACHE.clear()
    _DB_CACHE.clear()
    _CAL_CACHE.clear()
    if persistent:
        shutdown_pools()
        cache = current_cache()
        if cache.enabled:
            cache.clear()


def _database(mode: str) -> tuple[ProgramAttributeDatabase, list[KernelCase]]:
    if mode not in _DB_CACHE:
        raw = all_kernel_cases(mode)
        db = ProgramAttributeDatabase()
        for case in raw:
            db.compile_region(case.region)
        # regions must come from the compiled database so attribute
        # lookups hit; memoize the rebound cases alongside the database —
        # per-task callers (_case_by_name) hit this on every case, so the
        # suite IR must not be rebuilt per call
        cases = [
            KernelCase(
                benchmark=c.benchmark,
                mode=c.mode,
                region=db.lookup(c.name).region,
                env=c.env,
                scalars=c.scalars,
            )
            for c in raw
        ]
        _DB_CACHE[mode] = (db, cases)
    db, cases = _DB_CACHE[mode]
    return db, list(cases)


def _prefork_warmup() -> None:
    """Build both mode databases in the parent before workers fork.

    Workers inherit the compiled attribute databases copy-on-write, so
    no worker process ever recompiles the suite — on a small machine the
    per-worker rebuilds would otherwise serialize into the largest
    fixed cost of a parallel sweep.
    """
    for mode in ("test", "benchmark"):
        _database(mode)


register_prefork_warmup(_prefork_warmup)


def _calibration(plat: Platform, num_threads: int | None) -> ModelCalibration:
    cal_key = (plat.name, num_threads)
    if cal_key not in _CAL_CACHE:
        _CAL_CACHE[cal_key] = fit_model_calibration(
            plat, num_threads=num_threads
        )
    return _CAL_CACHE[cal_key]


# -- result-level caching ---------------------------------------------------
#
# The three analysis kinds (loadout/IPDA/MCA) cover the *static* pieces
# of a sweep, but a fully warm sweep still pays simulation and model
# evaluation per case.  Both are deterministic pure functions of
# (canonical region IR, env, platform, knobs), so the sweep results
# themselves are cacheable under the same content-addressing rules:
# ``sim.measure`` stores the three measured seconds, ``model.predict``
# stores an encoded :class:`SelectionPrediction` tree.  These entries
# ship between warm workers like any others, which is what lets a warm
# pool replay entire sweeps instead of recomputing them.


def _codec_types() -> dict:
    from ..codegen import CPUPlan, GPULaunchPlan, OMPSchedule
    from ..models import CPUPrediction, GPUPrediction, TransferEstimate

    return {
        cls.__name__: cls
        for cls in (
            SelectionPrediction,
            CPUPrediction,
            GPUPrediction,
            CPUPlan,
            GPULaunchPlan,
            TransferEstimate,
            OMPSchedule,
        )
    }


def _encode_tree(obj):
    """A JSON-able encoding of a prediction tree (dataclasses + enums)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            "@dc",
            type(obj).__name__,
            [_encode_tree(getattr(obj, f.name)) for f in dataclasses.fields(obj)],
        ]
    if isinstance(obj, enum.Enum):
        return ["@enum", type(obj).__name__, obj.name]
    if isinstance(obj, (list, tuple)):
        return [
            "@seq",
            "tuple" if isinstance(obj, tuple) else "list",
            [_encode_tree(v) for v in obj],
        ]
    return obj


def _decode_tree(obj, types: dict):
    if isinstance(obj, list) and obj and obj[0] == "@dc":
        cls = types[obj[1]]
        fields = dataclasses.fields(cls)
        return cls(
            **{
                f.name: _decode_tree(v, types)
                for f, v in zip(fields, obj[2])
            }
        )
    if isinstance(obj, list) and obj and obj[0] == "@enum":
        return types[obj[1]][obj[2]]
    if isinstance(obj, list) and obj and obj[0] == "@seq":
        seq = [_decode_tree(v, types) for v in obj[2]]
        return tuple(seq) if obj[1] == "tuple" else seq
    return obj


def _simulate_case(
    case: KernelCase, plat: Platform, num_threads: int | None
) -> list[float]:
    cpu = simulate_cpu(
        case.region, plat.host, case.env, num_threads=num_threads
    )
    gpu = simulate_gpu_kernel(case.region, plat.gpu, case.env)
    xfer = simulate_transfers(case.region, plat.bus, case.env)
    return [cpu.seconds, gpu.seconds, xfer.total_seconds]


def _measure_case(
    case: KernelCase, plat: Platform, num_threads: int | None
) -> KernelMeasurement:
    cache = current_cache()
    if not cache.enabled:
        numbers = _simulate_case(case, plat, num_threads)
    else:
        from ..ir import region_to_text

        numbers = cache.get_or_compute(
            "sim.measure",
            {
                "region": region_to_text(case.region),
                "env": dict(case.env),
                "threads": num_threads,
            },
            plat,
            lambda: _simulate_case(case, plat, num_threads),
            validate=lambda v: isinstance(v, list) and len(v) == 3,
        )
    return KernelMeasurement(
        case=case,
        cpu_seconds=numbers[0],
        gpu_kernel_seconds=numbers[1],
        gpu_transfer_seconds=numbers[2],
    )


def _predict_case(
    db: ProgramAttributeDatabase,
    name: str,
    env,
    plat: Platform,
    num_threads: int | None,
    calibration: ModelCalibration | None,
    use_runtime_tripcounts: bool,
) -> SelectionPrediction:
    cache = current_cache()
    if not cache.enabled:
        return predict_both(
            db.lookup(name).bind(env),
            plat,
            num_threads=num_threads,
            calibration=calibration,
            use_runtime_tripcounts=use_runtime_tripcounts,
        )
    from ..ir import region_to_text

    loadout = db.lookup(name)
    value = cache.get_or_compute(
        "model.predict",
        {
            "region": region_to_text(loadout.region),
            "env": dict(env),
            "threads": num_threads,
            "calibration": calibration,
            "use_runtime_tripcounts": use_runtime_tripcounts,
        },
        plat,
        lambda: _encode_tree(
            predict_both(
                loadout.bind(env),
                plat,
                num_threads=num_threads,
                calibration=calibration,
                use_runtime_tripcounts=use_runtime_tripcounts,
            )
        ),
        validate=lambda v: isinstance(v, list) and v and v[0] == "@dc",
    )
    return _decode_tree(value, _codec_types())


def _case_by_name(mode: str, name: str) -> KernelCase:
    """The (process-local) database's case for a shipped case name."""
    _, cases = _database(mode)
    for case in cases:
        if case.name == name:
            return case
    raise KeyError(f"unknown suite case {name!r} in mode {mode!r}")


def _measure_task(task: tuple) -> tuple[float, float, float]:
    """Worker task: simulate one suite case, returning only the numbers.

    Chunks ship only case *names* and env bindings; the worker holds the
    compiled attribute database (built once per process, then warm for
    every later chunk of any sweep) and regions compare by identity, so
    the parent reattaches its own :class:`KernelCase` objects while the
    worker ships back three floats.
    """
    plat_name, mode, name, env, num_threads = task
    plat = _resolve_platform(plat_name)
    case = _case_by_name(mode, name)
    case = KernelCase(
        benchmark=case.benchmark,
        mode=case.mode,
        region=case.region,
        env=env,
        scalars=case.scalars,
    )
    m = _measure_case(case, plat, num_threads)
    return (m.cpu_seconds, m.gpu_kernel_seconds, m.gpu_transfer_seconds)


def _predict_task(task: tuple) -> SelectionPrediction:
    """Worker task: run the analytical predictor over one suite case.

    The fitted :class:`ModelCalibration` travels with the chunk (it is a
    tiny frozen dataclass): the parent fits once and every worker reuses
    it, instead of each worker process refitting per platform.
    """
    plat_name, mode, name, env, num_threads, calibration, use_rt = task
    plat = _resolve_platform(plat_name)
    db, _ = _database(mode)
    return _predict_case(db, name, env, plat, num_threads, calibration, use_rt)


def measure_suite(
    platform: Platform | str,
    mode: str,
    *,
    num_threads: int | None = None,
    jobs: int | None = None,
    chunk: int | None = None,
) -> list[KernelMeasurement]:
    """Simulate every suite kernel on both devices of a platform.

    ``jobs`` (default: ``$REPRO_JOBS``, else 1) fans case chunks over
    the persistent warm-worker pool (``chunk`` / ``$REPRO_CHUNK``
    overrides the auto ``ceil(n/jobs)`` batch size); results always come
    back in case-declaration order and are bit-identical to the
    sequential sweep.  ``jobs`` and ``chunk`` are excluded from the memo
    key for exactly that reason.
    """
    plat = _resolve_platform(platform)
    key = (plat.name, mode, num_threads)
    if key in _MEASURE_CACHE:
        return _MEASURE_CACHE[key]
    _, cases = _database(mode)
    engine = SweepEngine(jobs, chunk=chunk)
    if engine.parallel:
        numbers = engine.map(
            _measure_task,
            [
                (plat.name, mode, case.name, dict(case.env), num_threads)
                for case in cases
            ],
            labels=[case.name for case in cases],
        )
        out = [
            KernelMeasurement(
                case=case,
                cpu_seconds=n[0],
                gpu_kernel_seconds=n[1],
                gpu_transfer_seconds=n[2],
            )
            for case, n in zip(cases, numbers)
        ]
    else:
        out = [_measure_case(case, plat, num_threads) for case in cases]
    _MEASURE_CACHE[key] = out
    return out


def predict_suite(
    platform: Platform | str,
    mode: str,
    *,
    num_threads: int | None = None,
    calibrated: bool = True,
    use_runtime_tripcounts: bool = True,
    jobs: int | None = None,
    chunk: int | None = None,
) -> list[SelectionPrediction]:
    """Run the analytical predictor over every suite kernel.

    ``jobs``/``chunk`` parallelize exactly like :func:`measure_suite`:
    declaration order, bit-identical results, excluded from the memo key.
    """
    plat = _resolve_platform(platform)
    key = (plat.name, mode, num_threads, calibrated, use_runtime_tripcounts)
    if key in _PREDICT_CACHE:
        return _PREDICT_CACHE[key]
    db, cases = _database(mode)
    engine = SweepEngine(jobs, chunk=chunk)
    if engine.parallel:
        # Fit once in the parent; the tiny frozen calibration dataclass
        # ships with each chunk so no worker ever refits.
        calibration = _calibration(plat, num_threads) if calibrated else None
        out = engine.map(
            _predict_task,
            [
                (plat.name, mode, case.name, dict(case.env), num_threads,
                 calibration, use_runtime_tripcounts)
                for case in cases
            ],
            labels=[case.name for case in cases],
        )
    else:
        calibration = _calibration(plat, num_threads) if calibrated else None
        out = [
            _predict_case(
                db,
                case.name,
                case.env,
                plat,
                num_threads,
                calibration,
                use_runtime_tripcounts,
            )
            for case in cases
        ]
    _PREDICT_CACHE[key] = out
    return out
