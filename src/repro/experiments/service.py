"""Multi-tenant offload-service experiment: service vs legacy FIFO twins.

Not a paper artefact — the companion to :mod:`.replay` for the offload
service (docs/ROBUSTNESS.md).  One calibrated multi-tenant trace is
replayed twice per scenario — once through the legacy single-server
FIFO, once through the :class:`~repro.replay.OffloadService` — so every
comparison is causal: same requests, same chaos, same policy/memo; the
only delta is the scheduler.

The grid crosses tenant mix with load shape:

* **uniform-*** — three tenants with equal traffic shares;
* **skewed-***  — one heavy tenant (70/20/10): the fairness gate checks
  the light tenants' p99 is not starved by the heavy one;
* ***-steady**  — calibrated utilization, no chaos: the accuracy twin
  check (the service must not change *what* is selected, only *when*
  launches run);
* ***-storm**   — a mid-trace fault-storm window: the overlap gate
  checks transfer/compute pipelining actually cuts the chaos-window p99
  completion latency vs the serial FIFO;
* ***-burst**   — the trace compressed past single-server saturation:
  the service's per-device server pools must keep the completion p99
  below the legacy twin's.

Gates (``ServiceRow.ok`` / ``ServiceResult.passed``): per row,
steady-state selection accuracy stays within
:data:`MAX_SERVICE_ACCURACY_DELTA` of the legacy twin and per-tenant
p99 fairness stays under :data:`MAX_FAIRNESS_P99`; across the grid, at
least :data:`MIN_OVERLAP_WINS` scenarios must show the service beating
the legacy FIFO on the tail the scenario stresses (chaos-window p99 for
storms, trace-wide p99 for bursts).  ``benchmarks/bench_service.py``
enforces the same numbers from ``benchmarks/traffic_thresholds.json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..machines import PLATFORM_P9_V100, Platform
from ..parallel import SweepEngine
from ..replay import (
    ChaosSchedule,
    ChaosWindow,
    MemoizedPolicy,
    ReplayConfig,
    ReplayEngine,
    ReplayScore,
    WorkloadConfig,
    generate_requests,
    score_run,
)
from ..runtime import ExecutionMemo
from ..util import render_table
from .common import _resolve_platform
from .replay import _probe_mean_service

__all__ = [
    "MAX_SERVICE_ACCURACY_DELTA",
    "MAX_FAIRNESS_P99",
    "MIN_OVERLAP_WINS",
    "SERVICE_SCENARIOS",
    "ServiceRow",
    "ServiceResult",
    "run_service",
]

#: Self-check thresholds (mirrored by benchmarks/traffic_thresholds.json).
MAX_SERVICE_ACCURACY_DELTA = 0.01  # |steady accuracy - legacy twin|
MAX_FAIRNESS_P99 = 3.0  # max/min per-tenant p99 ratio
MIN_OVERLAP_WINS = 1  # scenarios where the service beats the FIFO tail

SERVICE_SCENARIOS = (
    "uniform-steady",
    "uniform-storm",
    "uniform-burst",
    "skewed-steady",
    "skewed-storm",
    "skewed-burst",
)

#: the heavy-tenant mix of the skewed scenarios
SKEWED_WEIGHTS = (0.7, 0.2, 0.1)
#: offered load of the burst scenarios, as a multiple of the single
#: server's capacity — past 1.0 the legacy FIFO must queue unboundedly
BURST_UTILIZATION = 1.6


@dataclass(frozen=True)
class ServiceRow:
    """One scenario: the service score and its legacy-FIFO twin."""

    scenario: str
    shape: str  # "steady" | "storm" | "burst"
    tenant_weights: tuple[float, ...] | None  # None = uniform
    score: ReplayScore  # the offload-service run
    legacy: ReplayScore  # same trace through the legacy FIFO
    outcome_counts: dict

    @property
    def accuracy_delta(self) -> float:
        """Steady-state selection accuracy, service minus legacy twin."""
        return self.score.steady_accuracy - self.legacy.steady_accuracy

    @property
    def overlap_win(self) -> bool:
        """Did pipelining beat the serial FIFO on this scenario's tail?"""
        if self.shape == "storm":
            return (
                self.score.chaos_completion_p99_s
                < self.legacy.chaos_completion_p99_s
            )
        return self.score.completion_p99_s < self.legacy.completion_p99_s

    @property
    def ok(self) -> bool:
        s = self.score
        if not math.isfinite(s.completion_p99_s):
            return False
        if s.overhead_nonfinite:
            return False
        # both twins served the whole trace (conservation across lanes)
        if s.requests != self.legacy.requests or s.launches != self.legacy.launches:
            return False
        if abs(self.accuracy_delta) > MAX_SERVICE_ACCURACY_DELTA:
            return False
        if not (
            math.isfinite(s.fairness_p99) and s.fairness_p99 <= MAX_FAIRNESS_P99
        ):
            return False
        return True


@dataclass(frozen=True)
class ServiceResult:
    """The full tenant-mix × load-shape grid of one service run."""

    rows: tuple[ServiceRow, ...]
    launches: int
    seed: int
    platform_name: str
    tenants: int
    mean_service_s: float
    utilization: float
    burst_utilization: float

    def get(self, scenario: str) -> ServiceRow:
        for row in self.rows:
            if row.scenario == scenario:
                return row
        raise KeyError(scenario)

    @property
    def overlap_wins(self) -> int:
        return sum(1 for row in self.rows if row.overlap_win)

    @property
    def passed(self) -> bool:
        return (
            all(row.ok for row in self.rows)
            and self.overlap_wins >= MIN_OVERLAP_WINS
        )

    def render(self) -> str:
        def pct(x: float) -> str:
            return "-" if not math.isfinite(x) else f"{x * 100:.2f}%"

        def ms(x: float) -> str:
            return "-" if not math.isfinite(x) else f"{x * 1e3:.2f}"

        body = [
            [
                row.scenario,
                row.score.launches,
                pct(row.score.steady_accuracy),
                f"{row.accuracy_delta * 100:+.2f}pt",
                ms(row.legacy.completion_p99_s),
                ms(row.score.completion_p99_s),
                ms(row.legacy.chaos_completion_p99_s),
                ms(row.score.chaos_completion_p99_s),
                f"{row.score.fairness_p99:.3f}",
                "win" if row.overlap_win else "-",
                "ok" if row.ok else "FAIL",
            ]
            for row in self.rows
        ]
        return render_table(
            [
                "scenario",
                "launches",
                "steady acc",
                "vs fifo",
                "fifo p99 (ms)",
                "svc p99 (ms)",
                "fifo chaos p99",
                "svc chaos p99",
                "fairness",
                "overlap",
                "",
            ],
            body,
            title=(
                f"Offload service on {self.platform_name}: {self.launches} "
                f"requests/scenario, {self.tenants} tenants, util "
                f"{self.utilization:g} steady / {self.burst_utilization:g} "
                f"burst (seed {self.seed})"
            ),
        )

    def to_payload(self) -> dict:
        """Deterministic JSON-safe dump (byte-identical across reruns)."""
        return {
            "launches": self.launches,
            "seed": self.seed,
            "platform": self.platform_name,
            "tenants": self.tenants,
            "mean_service_s": self.mean_service_s,
            "utilization": self.utilization,
            "burst_utilization": self.burst_utilization,
            "overlap_wins": self.overlap_wins,
            "passed": self.passed,
            "rows": [
                {
                    "scenario": row.scenario,
                    "shape": row.shape,
                    "tenant_weights": (
                        list(row.tenant_weights) if row.tenant_weights else None
                    ),
                    "ok": row.ok,
                    "overlap_win": row.overlap_win,
                    "accuracy_delta": row.accuracy_delta,
                    "outcome_counts": row.outcome_counts,
                    "legacy_completion_p99_s": row.legacy.completion_p99_s,
                    "legacy_chaos_completion_p99_s": (
                        row.legacy.chaos_completion_p99_s
                    ),
                    "legacy_steady_accuracy": row.legacy.steady_accuracy,
                    **row.score.to_payload(),
                }
                for row in self.rows
            ],
        }


def _service_outcome(
    name: str,
    *,
    platform: Platform,
    seed: int,
    launches: int,
    tenants: int,
    mean_service: float,
    utilization: float,
    burst_utilization: float,
    policy: MemoizedPolicy,
    memo: ExecutionMemo,
) -> tuple[str, "tuple[float, ...] | None", ReplayScore, ReplayScore, dict]:
    """One scenario's (shape, weights, service score, legacy score, counts).

    Shared by the sequential loop and the parallel worker task, so the
    two paths cannot drift.
    """
    mix, shape = name.split("-", 1)
    weights = SKEWED_WEIGHTS if mix == "skewed" else None
    util = burst_utilization if shape == "burst" else utilization
    workload = WorkloadConfig(
        launches=launches,
        seed=seed,
        mean_interarrival_s=mean_service / util,
        tenants=tenants,
        tenant_weights=weights,
    )
    requests = generate_requests(workload)
    chaos = ChaosSchedule()
    margin = 0.0
    if shape == "storm":
        w_start = requests[int(0.45 * launches)].arrival_s
        w_stop = requests[int(0.55 * launches)].arrival_s
        margin = w_stop - w_start
        chaos = ChaosSchedule(
            windows=(
                ChaosWindow(
                    name="storm",
                    kind="fault-storm",
                    start_s=w_start,
                    stop_s=w_stop,
                    probability=0.75,
                ),
            ),
            seed=seed,
        )
    base = dict(platform=platform, workload=workload, chaos=chaos)
    legacy_run = ReplayEngine(
        ReplayConfig(**base), policy=policy, memo=memo
    ).run(requests=requests)
    service_run = ReplayEngine(
        ReplayConfig(**base, service=True), policy=policy, memo=memo
    ).run(requests=requests)
    legacy = score_run(legacy_run, recovery_margin_s=margin)
    score = score_run(service_run, recovery_margin_s=margin)
    return shape, weights, score, legacy, service_run.outcome_counts()


def _service_scenario_task(
    task: tuple,
) -> tuple[str, "tuple[float, ...] | None", ReplayScore, ReplayScore, dict]:
    """Worker task: one service scenario, rebuilt from shipped scalars."""
    (
        plat_name,
        name,
        launches,
        seed,
        tenants,
        utilization,
        burst_utilization,
        mean_service,
    ) = task
    return _service_outcome(
        name,
        platform=_resolve_platform(plat_name),
        seed=seed,
        launches=launches,
        tenants=tenants,
        mean_service=mean_service,
        utilization=utilization,
        burst_utilization=burst_utilization,
        policy=MemoizedPolicy(),
        memo=ExecutionMemo(),
    )


def run_service(
    *,
    launches: int = 20_000,
    seed: int = 0,
    platform: Platform = PLATFORM_P9_V100,
    tenants: int = 3,
    utilization: float = 0.6,
    burst_utilization: float = BURST_UTILIZATION,
    scenarios: tuple[str, ...] = SERVICE_SCENARIOS,
    jobs: int | None = None,
    chunk: int | None = None,
) -> ServiceResult:
    """Run the tenant-mix × load-shape grid, twinned against the FIFO.

    ``jobs``/``chunk`` fan whole scenarios over the persistent
    warm-worker pool; rows come back in scenario-declaration order with
    payloads identical to the sequential loop.
    """
    unknown = set(scenarios) - set(SERVICE_SCENARIOS)
    if unknown:
        raise ValueError(f"unknown scenarios {sorted(unknown)}")
    if tenants < 2:
        raise ValueError("the service experiment needs >= 2 tenants")

    memo = ExecutionMemo()
    policy = MemoizedPolicy()
    probe_launches = max(min(launches, 2_000), 200)
    mean_service = _probe_mean_service(
        platform, seed, probe_launches, policy, memo
    )

    engine = SweepEngine(jobs, chunk=chunk)
    if engine.parallel:
        outcomes = engine.map(
            _service_scenario_task,
            [
                (
                    platform.name,
                    name,
                    launches,
                    seed,
                    tenants,
                    utilization,
                    burst_utilization,
                    mean_service,
                )
                for name in scenarios
            ],
            labels=list(scenarios),
        )
    else:
        outcomes = [
            _service_outcome(
                name,
                platform=platform,
                seed=seed,
                launches=launches,
                tenants=tenants,
                mean_service=mean_service,
                utilization=utilization,
                burst_utilization=burst_utilization,
                policy=policy,
                memo=memo,
            )
            for name in scenarios
        ]

    rows = tuple(
        ServiceRow(
            scenario=name,
            shape=shape,
            tenant_weights=weights,
            score=score,
            legacy=legacy,
            outcome_counts=counts,
        )
        for name, (shape, weights, score, legacy, counts) in zip(
            scenarios, outcomes
        )
    )
    return ServiceResult(
        rows=rows,
        launches=launches,
        seed=seed,
        platform_name=platform.name,
        tenants=tenants,
        mean_service_s=mean_service,
        utilization=utilization,
        burst_utilization=burst_utilization,
    )
