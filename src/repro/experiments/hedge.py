"""Hedged-dispatch experiment grid: deadline budgets x chaos flavour.

Not a paper artefact — the companion experiment to the ``hedged-chaos``
replay scenario (docs/ROBUSTNESS.md).  One seeded trace is calibrated
exactly as in :mod:`.replay`, then every (chaos flavour, budget) cell is
replayed **twice** — once with speculative host backups armed, once
without — over the identical request stream, policy memo, and chaos
schedule.  The only delta inside a cell is the
:class:`~repro.runtime.HedgePolicy`, so the chaos-tail comparison is
causal:

* **flavours** — ``fault-storm`` (75% retryable accelerator faults) and
  ``brownout`` (every accelerator attempt fails; the breaker opens):
  the two fault shapes where a backup can actually beat a primary that
  is burning retry backoff;
* **budgets**  — ``none`` (no deadline), ``tight`` and ``loose``
  end-to-end :class:`~repro.runtime.Budget` s, expressed in mean
  service times (:data:`BUDGET_FACTORS`).  Budgets charge queue wait,
  retry backoff, and watchdog burn; a request whose projected wait
  alone would drain its budget is shed at the door (``expired``).

Per cell the grid reports the hedge-rate, win-rate, duplicated-work
fraction, the chaos-affected p99 completion latency of both arms, and
both arms' expiry counts.  Gates (:attr:`HedgeCell.ok`): every cell
arms at least one backup and stays under
:data:`~.replay.MAX_HEDGE_EXTRA_FRACTION` duplicated work; the
unbudgeted cells must win at least once and strictly cut the
chaos-affected p99 vs their unhedged twin.  Budgeted cells gate only on
the overhead bound — expiry reshapes the tail on both arms, so the p99
delta is reported, not enforced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..machines import PLATFORM_P9_V100, Platform
from ..replay import (
    ChaosSchedule,
    ChaosWindow,
    MemoizedPolicy,
    ReplayConfig,
    ReplayEngine,
    ReplayScore,
    WorkloadConfig,
    generate_requests,
    score_run,
)
from ..runtime import ExecutionMemo
from ..util import render_table
from .replay import MAX_HEDGE_EXTRA_FRACTION, _probe_mean_service

__all__ = [
    "BUDGET_FACTORS",
    "HEDGE_FLAVOURS",
    "HedgeCell",
    "HedgeResult",
    "run_hedge",
]

#: chaos flavours swept by the grid (window kinds of :mod:`repro.replay`)
HEDGE_FLAVOURS = ("fault-storm", "brownout")

#: budget sweep: per-request deadline in mean service times (None = no
#: deadline).  "tight" sits inside the burst-peak queueing delay so the
#: admission door visibly sheds; "loose" clears it so expiry is rare.
BUDGET_FACTORS: dict[str, float | None] = {
    "none": None,
    "tight": 50.0,
    "loose": 250.0,
}


@dataclass(frozen=True)
class HedgeCell:
    """One (flavour, budget) cell: hedged arm vs its unhedged twin."""

    flavour: str
    budget_label: str
    budget_s: float | None
    hedged: ReplayScore
    unhedged: ReplayScore

    @property
    def p99_improvement_s(self) -> float:
        """Chaos-affected p99 completion saved by hedging (+ = faster)."""
        return (
            self.unhedged.chaos_completion_p99_s
            - self.hedged.chaos_completion_p99_s
        )

    @property
    def ok(self) -> bool:
        h = self.hedged
        if h.overhead_nonfinite or not math.isfinite(h.overhead_p99_s):
            return False
        # a hedge that never arms measures nothing; one that duplicates
        # more than the ceiling is a cost bug in any cell
        if h.hedged == 0 or h.hedge_extra_fraction > MAX_HEDGE_EXTRA_FRACTION:
            return False
        if self.budget_s is None:
            # unbudgeted: the causal comparison must show a strict win
            return h.hedge_wins > 0 and self.p99_improvement_s > 0.0
        return True


@dataclass(frozen=True)
class HedgeResult:
    """The full budget x flavour grid of one hedged replay run."""

    cells: tuple[HedgeCell, ...]
    launches: int
    seed: int
    platform_name: str
    mean_service_s: float
    utilization: float

    def get(self, flavour: str, budget_label: str) -> HedgeCell:
        for cell in self.cells:
            if cell.flavour == flavour and cell.budget_label == budget_label:
                return cell
        raise KeyError((flavour, budget_label))

    @property
    def passed(self) -> bool:
        return all(cell.ok for cell in self.cells)

    def render(self) -> str:
        def ms(x: float) -> str:
            return f"{x * 1e3:.3f}"

        body = [
            [
                c.flavour,
                c.budget_label,
                "-" if c.budget_s is None else ms(c.budget_s),
                c.hedged.hedged,
                c.hedged.hedge_wins,
                f"{c.hedged.hedge_extra_fraction * 100:.2f}%",
                ms(c.hedged.chaos_completion_p99_s),
                ms(c.unhedged.chaos_completion_p99_s),
                ms(c.p99_improvement_s),
                f"{c.hedged.expired}/{c.unhedged.expired}",
                "ok" if c.ok else "FAIL",
            ]
            for c in self.cells
        ]
        return render_table(
            [
                "chaos",
                "budget",
                "budget (ms)",
                "hedged",
                "wins",
                "extra",
                "p99 hedged",
                "p99 plain",
                "saved (ms)",
                "expired h/u",
                "",
            ],
            body,
            title=(
                f"Hedged dispatch on {self.platform_name}: {self.launches} "
                f"requests/arm, util {self.utilization:g}, chaos-window p99 "
                f"completion in ms (seed {self.seed})"
            ),
        )

    def to_payload(self) -> dict:
        """Deterministic JSON-safe dump (byte-identical across reruns)."""
        return {
            "launches": self.launches,
            "seed": self.seed,
            "platform": self.platform_name,
            "mean_service_s": self.mean_service_s,
            "utilization": self.utilization,
            "max_hedge_extra_fraction": MAX_HEDGE_EXTRA_FRACTION,
            "passed": self.passed,
            "cells": [
                {
                    "flavour": c.flavour,
                    "budget": c.budget_label,
                    "budget_s": c.budget_s,
                    "ok": c.ok,
                    "p99_improvement_s": c.p99_improvement_s,
                    "hedged": c.hedged.to_payload(),
                    "unhedged": c.unhedged.to_payload(),
                }
                for c in self.cells
            ],
        }


def run_hedge(
    *,
    launches: int = 20_000,
    seed: int = 0,
    platform: Platform = PLATFORM_P9_V100,
    utilization: float = 0.6,
    flavours: tuple[str, ...] = HEDGE_FLAVOURS,
    budget_factors: dict[str, float | None] | None = None,
) -> HedgeResult:
    """Run the hedged-vs-unhedged grid over one calibrated trace."""
    factors = BUDGET_FACTORS if budget_factors is None else budget_factors
    memo = ExecutionMemo()
    policy = MemoizedPolicy()
    probe_launches = max(min(launches, 2_000), 200)
    mean_service = _probe_mean_service(
        platform, seed, probe_launches, policy, memo
    )

    workload = WorkloadConfig(
        launches=launches,
        seed=seed,
        mean_interarrival_s=mean_service / utilization,
    )
    requests = generate_requests(workload)
    # the same mid-trace window carve as the replay scenario grid
    w_start = requests[int(0.45 * launches)].arrival_s
    w_stop = requests[int(0.55 * launches)].arrival_s
    margin = w_stop - w_start

    def chaos_for(kind: str) -> ChaosSchedule:
        window = ChaosWindow(
            name=kind,
            kind=kind,
            start_s=w_start,
            stop_s=w_stop,
            probability=0.75 if kind == "fault-storm" else 0.35,
        )
        return ChaosSchedule(windows=(window,), seed=seed)

    cells: list[HedgeCell] = []
    for flavour in flavours:
        for label, factor in factors.items():
            budget_s = None if factor is None else factor * mean_service
            scores: list[ReplayScore] = []
            for hedge in (True, False):
                cfg = ReplayConfig(
                    platform=platform,
                    workload=workload,
                    chaos=chaos_for(flavour),
                    budget_s=budget_s,
                    hedge=hedge,
                )
                run = ReplayEngine(cfg, policy=policy, memo=memo).run(
                    requests=requests
                )
                scores.append(score_run(run, recovery_margin_s=margin))
            cells.append(
                HedgeCell(
                    flavour=flavour,
                    budget_label=label,
                    budget_s=budget_s,
                    hedged=scores[0],
                    unhedged=scores[1],
                )
            )

    return HedgeResult(
        cells=tuple(cells),
        launches=launches,
        seed=seed,
        platform_name=platform.name,
        mean_service_s=mean_service,
        utilization=utilization,
    )
