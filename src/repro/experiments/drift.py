"""Drift detection latency and self-healing selection accuracy.

Not a paper artefact — the robustness experiment for the drift sentinel
(docs/ROBUSTNESS.md).  Each scenario injects a calibration *skew* into the
model-guided policy's predictions mid-run (the analytical model silently
becomes optimistic or pessimistic about one device, exactly the failure
mode a retuned machine descriptor or a thermally throttled card causes)
and replays the same launch sequence through three arms:

* **baseline** — the unskewed model, no sentinel: the accuracy ceiling;
* **skewed** — the skewed model, no sentinel: what silent miscalibration
  costs;
* **healed** — the skewed model with the :class:`DriftSentinel` +
  :class:`Watchdog` attached: what the closed loop recovers.

Reported per scenario: the launch at which the sentinel first reached
DRIFTED (detection latency), the launch at which a transient skew was
re-promoted to CALIBRATED, and the post-detection selection accuracy of
every arm against the true-time oracle.  The zero-skew scenario doubles
as the bit-identity self-check: with nothing to detect, the healed arm's
records must equal the baseline's exactly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..machines import PLATFORM_P9_V100, Platform
from ..polybench import benchmark_by_name
from ..runtime import (
    DriftSentinel,
    LaunchRecord,
    ModelGuided,
    OffloadingRuntime,
    Watchdog,
)
from ..util import render_table

__all__ = [
    "SkewScenario",
    "DriftScore",
    "DriftResult",
    "run_drift",
    "default_scenarios",
    "MAX_DETECTION_LATENCY",
    "MAX_RECOVERY_GAP",
]

#: Self-check thresholds (also asserted by benchmarks/bench_drift.py).
MAX_DETECTION_LATENCY = 12  # launches from skew onset to first DRIFTED
MAX_RECOVERY_GAP = 0.05  # baseline tail accuracy - healed tail accuracy

#: (benchmark, region, mode) cycle: six kernels whose true CPU/GPU ratios
#: sit close enough to break-even that a 6x calibration skew flips the
#: model-guided decision (probed across the suite; far-from-break-even
#: kernels would mask mispredictions entirely).
_WORKLOAD = (
    ("mvt", "mvt_k1", "benchmark"),
    ("atax", "atax_k2", "test"),
    ("gesummv", "gesummv", "benchmark"),
    ("2dconv", "2dconv", "test"),
    ("covar", "covar_reduce", "benchmark"),
    ("syrk", "syrk", "test"),
)


@dataclass(frozen=True)
class SkewScenario:
    """One calibration-skew injection: scale predictions from ``start``.

    ``cpu_scale``/``gpu_scale`` multiply the *predicted* seconds of that
    device while the skew is active — a scale below 1 makes the model
    optimistic about the device (it looks faster than it is), above 1
    pessimistic.  ``stop`` bounds a transient skew (exclusive); ``None``
    means the miscalibration is permanent.
    """

    name: str
    cpu_scale: float = 1.0
    gpu_scale: float = 1.0
    start: int = 24
    stop: int | None = None

    def __post_init__(self):
        if self.cpu_scale <= 0 or self.gpu_scale <= 0:
            raise ValueError("skew scales must be positive")
        if self.start < 0 or (self.stop is not None and self.stop <= self.start):
            raise ValueError("need 0 <= start < stop")

    def active(self, launch_index: int) -> bool:
        if launch_index < self.start:
            return False
        return self.stop is None or launch_index < self.stop

    @property
    def skews(self) -> bool:
        return self.cpu_scale != 1.0 or self.gpu_scale != 1.0


def default_scenarios(launches: int) -> tuple[SkewScenario, ...]:
    """The standard grid: control + 3 permanent skews + 1 transient."""
    return (
        SkewScenario("zero-skew"),
        SkewScenario("gpu-optimist", gpu_scale=1 / 6),
        SkewScenario("cpu-optimist", cpu_scale=1 / 6),
        SkewScenario("gpu-pessimist", gpu_scale=6.0),
        SkewScenario("transient", gpu_scale=1 / 6, stop=launches // 2),
    )


class _SkewedModel:
    """Model-guided policy whose predictions drift per a skew schedule.

    The *simulated* device times stay truthful — only the prediction fed
    to the selector (and hence the sentinel) is distorted, which is what
    "the analytical model is miscalibrated" means.
    """

    name = "model-guided+skew"

    def __init__(self, inner: ModelGuided, scenario: SkewScenario):
        self._inner = inner
        self._scenario = scenario
        self._launch_index = 0

    def choose(self, bound, platform, **kwargs):
        target, prediction = self._inner.choose(bound, platform, **kwargs)
        index = self._launch_index
        self._launch_index += 1
        if prediction is None or not self._scenario.active(index):
            return target, prediction
        prediction = prediction.scaled(
            self._scenario.cpu_scale, self._scenario.gpu_scale
        )
        return prediction.winner, prediction


@dataclass(frozen=True)
class DriftScore:
    """One scenario's detection + recovery metrics across the three arms."""

    scenario: str
    launches: int
    detection_launch: int | None  # first launch with a DRIFTED stream
    detection_latency: int | None  # detection_launch - skew start
    repromote_launch: int | None  # transient only: first all-clear launch
    #: Accuracies are scored over the *post-recovery* tail: from one full
    #: workload pass after detection (each stream needs one observation
    #: of the skew before its correction engages) — or from re-promotion
    #: for a transient skew — to the end of the run, same window for all
    #: three arms.
    baseline_accuracy: float  # oracle-match rate over the scoring tail
    skewed_accuracy: float
    healed_accuracy: float
    recovery_gap: float  # baseline_accuracy - healed_accuracy (tail)
    bit_identical: bool | None  # zero-skew only: healed records == baseline
    watchdog_overruns: int

    @property
    def ok(self) -> bool:
        """Did this scenario meet the drift subsystem's promises?"""
        if self.bit_identical is not None:  # control scenario
            return self.bit_identical and self.detection_launch is None
        if self.detection_latency is None:
            return False
        return (
            self.detection_latency <= MAX_DETECTION_LATENCY
            and self.recovery_gap <= MAX_RECOVERY_GAP
        )


@dataclass(frozen=True)
class DriftResult:
    """The full skew-scenario grid."""

    rows: tuple[DriftScore, ...]
    launches: int
    start: int

    def get(self, scenario: str) -> DriftScore:
        for row in self.rows:
            if row.scenario == scenario:
                return row
        raise KeyError(scenario)

    @property
    def passed(self) -> bool:
        return all(row.ok for row in self.rows)

    def render(self) -> str:
        def fmt(launch: int | None) -> str:
            return "-" if launch is None else str(launch)

        body = [
            [
                row.scenario,
                fmt(row.detection_launch),
                fmt(row.detection_latency),
                fmt(row.repromote_launch),
                f"{row.baseline_accuracy:.3f}",
                f"{row.skewed_accuracy:.3f}",
                f"{row.healed_accuracy:.3f}",
                f"{row.recovery_gap:+.3f}",
                "-" if row.bit_identical is None else str(row.bit_identical),
                "ok" if row.ok else "FAIL",
            ]
            for row in self.rows
        ]
        return render_table(
            [
                "scenario",
                "detected@",
                "latency",
                "repromote@",
                "base acc",
                "skew acc",
                "healed acc",
                "gap",
                "bit-identical",
                "verdict",
            ],
            body,
            title=(
                "Drift sentinel: detection latency & self-healing accuracy "
                f"({self.launches} launches, skew from launch {self.start})"
            ),
        )

    def to_payload(self) -> dict:
        """JSON-ready summary (the shape BENCH_drift.json stores)."""
        return {
            "launches": self.launches,
            "skew_start": self.start,
            "max_detection_latency": MAX_DETECTION_LATENCY,
            "max_recovery_gap": MAX_RECOVERY_GAP,
            "passed": self.passed,
            "scenarios": [dataclasses.asdict(row) for row in self.rows],
        }


def _build_workload(launches: int) -> list[tuple[str, dict]]:
    """(region_name, env) sequence cycling the near-break-even kernels."""
    specs = {name: benchmark_by_name(name) for name, _, _ in _WORKLOAD}
    return [
        (region, specs[name].env(mode))
        for name, region, mode in (
            _WORKLOAD[i % len(_WORKLOAD)] for i in range(launches)
        )
    ]


def _run_arm(
    platform: Platform,
    policy,
    workload: list[tuple[str, dict]],
    regions,
    *,
    sentinel: DriftSentinel | None = None,
    watchdog: Watchdog | None = None,
) -> tuple[list[LaunchRecord], list[bool]]:
    """Replay the workload; also track per-launch 'any stream DRIFTED'."""
    runtime = OffloadingRuntime(
        platform, policy=policy, sentinel=sentinel, watchdog=watchdog
    )
    for region in regions:
        runtime.compile_region(region)
    records: list[LaunchRecord] = []
    drifted: list[bool] = []
    for region_name, env in workload:
        records.append(runtime.launch(region_name, env))
        drifted.append(sentinel.any_drifted() if sentinel else False)
    return records, drifted


def _accuracy(records: list[LaunchRecord], window: slice) -> float:
    scored = records[window]
    if not scored:
        return float("nan")
    return sum(r.decision_correct for r in scored) / len(scored)


def run_drift(
    *,
    platform: Platform = PLATFORM_P9_V100,
    launches: int = 96,
    start: int = 24,
    scenarios: tuple[SkewScenario, ...] | None = None,
) -> DriftResult:
    """Score sentinel detection + healing across the skew grid."""
    if launches <= start:
        raise ValueError(f"need launches > start, got {launches} <= {start}")
    # every stream must finish its warmup (3 observations each, one per
    # workload pass) before the skew begins, or the polluted baselines
    # absorb part of the shift and the residuals under-report it
    min_start = 3 * len(_WORKLOAD)
    if start < min_start:
        raise ValueError(
            f"skew start {start} is inside the sentinel warmup; "
            f"need start >= {min_start}"
        )
    if scenarios is None:
        scenarios = tuple(
            dataclasses.replace(s, start=start) if s.skews else s
            for s in default_scenarios(launches)
        )
    workload = _build_workload(launches)
    all_regions = [
        region
        for name in dict.fromkeys(name for name, _, _ in _WORKLOAD)
        for region in benchmark_by_name(name).build()
    ]
    # shared so the analytical calibration is fitted once per platform
    inner = ModelGuided()
    baseline_records, _ = _run_arm(platform, inner, workload, all_regions)

    rows: list[DriftScore] = []
    for scenario in scenarios:
        if scenario.skews:
            skewed_policy = _SkewedModel(inner, scenario)
            healed_policy = _SkewedModel(inner, scenario)
        else:
            # control: no wrapper, so the healed arm is record-for-record
            # comparable (policy_name included) with the baseline
            skewed_policy = healed_policy = inner
        skewed_records, _ = _run_arm(
            platform, skewed_policy, workload, all_regions
        )
        healed_records, drifted = _run_arm(
            platform,
            healed_policy,
            workload,
            all_regions,
            sentinel=DriftSentinel(),
            watchdog=Watchdog(),
        )

        detection = next((i for i, d in enumerate(drifted) if d), None)
        repromote = None
        if scenario.stop is not None and detection is not None:
            repromote = next(
                (
                    i
                    for i, d in enumerate(drifted)
                    if i >= scenario.stop and not d
                ),
                None,
            )
        # score every arm over the same window: the post-recovery tail
        # (see DriftScore) for skewed scenarios, the whole run for the
        # control
        if detection is None:
            window = slice(None)
        else:
            engaged = detection + len(_WORKLOAD)
            if repromote is not None:
                engaged = max(engaged, repromote)
            window = slice(engaged, None)
        baseline_acc = _accuracy(baseline_records, window)
        healed_acc = _accuracy(healed_records, window)
        rows.append(
            DriftScore(
                scenario=scenario.name,
                launches=launches,
                detection_launch=detection,
                detection_latency=(
                    detection - scenario.start if detection is not None else None
                ),
                repromote_launch=repromote,
                baseline_accuracy=baseline_acc,
                skewed_accuracy=_accuracy(skewed_records, window),
                healed_accuracy=healed_acc,
                recovery_gap=baseline_acc - healed_acc,
                bit_identical=(
                    None if scenario.skews else healed_records == baseline_records
                ),
                watchdog_overruns=sum(
                    1
                    for record in healed_records
                    if record.fallback == "deadline-exceeded"
                ),
            )
        )
    return DriftResult(rows=tuple(rows), launches=launches, start=start)


if __name__ == "__main__":  # pragma: no cover
    print(run_drift().render())
