"""Ablation studies of the hybrid framework's ingredients.

Each ablation removes one contribution the paper argues for and measures
the damage to decision quality:

* ``no-ipda`` — replace the IPDA coalescing analysis by the naive
  assumption that every access coalesces (what a model without
  inter-thread stride analysis would do), or by the conservative
  assumption that nothing does;
* ``static-tripcounts`` — drop the runtime trip-count feed (Figure 2) and
  use the pure 128-iteration compile-time abstraction;
* ``no-omp-rep`` — drop the paper's ``#OMP_Rep`` extension to the Hong
  model (threads assumed to execute one iteration each);
* ``no-calibration`` — skip the microbenchmark parameter-fitting step.

Scored by decision accuracy against the oracle and by the geometric-mean
suite speedup the resulting policy achieves.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..analysis import ProgramAttributeDatabase
from ..calibrate import fit_model_calibration
from ..codegen import plan_gpu_launch
from ..ipda import BoundAccess, BoundIPDA, CoalescingClass
from ..machines import PLATFORM_P9_V100, Platform
from ..models import predict_both, predict_cpu_time, predict_gpu_time
from ..polybench import all_kernel_cases
from ..util import geomean, render_table
from .common import measure_suite

__all__ = ["AblationScore", "AblationResult", "run_ablations"]

_VARIANTS = (
    "full",
    "no-ipda (all coalesced)",
    "no-ipda (all uncoalesced)",
    "static-tripcounts",
    "no-omp-rep",
    "no-calibration",
)


@dataclass(frozen=True)
class AblationScore:
    variant: str
    decision_accuracy: float
    geomean_speedup: float


@dataclass(frozen=True)
class AblationResult:
    mode: str
    platform_name: str
    num_threads: int | None
    scores: tuple[AblationScore, ...]

    def score(self, variant: str) -> AblationScore:
        for s in self.scores:
            if s.variant == variant:
                return s
        raise KeyError(variant)

    def render(self) -> str:
        rows = [
            [s.variant, f"{s.decision_accuracy:.0%}", f"{s.geomean_speedup:.2f}x"]
            for s in self.scores
        ]
        return render_table(
            ["variant", "decision accuracy", "suite speedup (geomean)"],
            rows,
            title=(
                f"Ablations of the hybrid framework "
                f"({self.platform_name}, {self.mode} mode, "
                f"{self.num_threads or 'full'}-thread host)"
            ),
        )


def _force_coalescing(bound_ipda: BoundIPDA, coalesced: bool) -> BoundIPDA:
    """Replace every access's IPDA verdict with a fixed assumption."""
    cls = CoalescingClass.COALESCED if coalesced else CoalescingClass.UNCOALESCED
    txn = 4 if coalesced else 32
    accesses = tuple(
        BoundAccess(
            stride=a.stride,
            thread_stride_elems=a.thread_stride_elems,
            coalescing=cls,
            transactions_per_access=txn,
            false_sharing_risk=a.false_sharing_risk,
        )
        for a in bound_ipda.accesses
    )
    return BoundIPDA(bound_ipda.region_name, accesses)


def run_ablations(
    mode: str = "benchmark",
    platform: Platform = PLATFORM_P9_V100,
    *,
    num_threads: int | None = None,
) -> AblationResult:
    """Score every ablation variant over the suite."""
    measured = measure_suite(platform, mode, num_threads=num_threads)
    calibration = fit_model_calibration(platform, num_threads=num_threads)
    db = ProgramAttributeDatabase()
    bounds = []
    for case in all_kernel_cases(mode):
        attrs = db.compile_region(case.region)
        bounds.append(attrs.bind(case.env))

    scores = []
    for variant in _VARIANTS:
        correct = 0
        achieved = []
        for m, bound in zip(measured, bounds):
            offload = _variant_offload(
                variant, bound, platform, num_threads, calibration
            )
            oracle_gpu = m.gpu_seconds < m.cpu_seconds
            correct += offload == oracle_gpu
            executed = m.gpu_seconds if offload else m.cpu_seconds
            achieved.append(m.cpu_seconds / executed)
        scores.append(
            AblationScore(
                variant=variant,
                decision_accuracy=correct / len(measured),
                geomean_speedup=geomean(achieved),
            )
        )
    return AblationResult(
        mode=mode,
        platform_name=platform.name,
        num_threads=num_threads,
        scores=tuple(scores),
    )


def _variant_offload(variant, bound, platform, num_threads, calibration) -> bool:
    if variant == "full":
        return predict_both(
            bound, platform, num_threads=num_threads, calibration=calibration
        ).offload
    if variant == "static-tripcounts":
        return predict_both(
            bound,
            platform,
            num_threads=num_threads,
            calibration=calibration,
            use_runtime_tripcounts=False,
        ).offload
    if variant == "no-calibration":
        return predict_both(bound, platform, num_threads=num_threads).offload
    if variant.startswith("no-ipda"):
        forced = _force_coalescing(bound.ipda, "all coalesced" in variant)
        cpu_pred = predict_cpu_time(
            bound.region,
            bound.loadout,
            bound.parallel_iterations,
            platform.host,
            num_threads=num_threads,
            env=dict(bound.env),
        )
        plan = plan_gpu_launch(bound.parallel_iterations, platform.gpu)
        gpu_pred = predict_gpu_time(
            bound.region.name,
            bound.loadout,
            forced,
            plan,
            platform.gpu,
            platform.bus,
            bound.bytes_to_device,
            bound.bytes_to_host,
        )
        cpu_s = cpu_pred.seconds * calibration.cpu_time_scale
        gpu_s = (
            gpu_pred.kernel_seconds * calibration.gpu_time_scale
            + gpu_pred.launch_seconds
            + gpu_pred.transfer.total_seconds
        )
        return gpu_s < cpu_s
    if variant == "no-omp-rep":
        cpu_pred = predict_cpu_time(
            bound.region,
            bound.loadout,
            bound.parallel_iterations,
            platform.host,
            num_threads=num_threads,
            env=dict(bound.env),
        )
        plan = plan_gpu_launch(bound.parallel_iterations, platform.gpu)
        plan = dataclasses.replace(plan, omp_rep=1)
        gpu_pred = predict_gpu_time(
            bound.region.name,
            bound.loadout,
            bound.ipda,
            plan,
            platform.gpu,
            platform.bus,
            bound.bytes_to_device,
            bound.bytes_to_host,
        )
        cpu_s = cpu_pred.seconds * calibration.cpu_time_scale
        gpu_s = (
            gpu_pred.kernel_seconds * calibration.gpu_time_scale
            + gpu_pred.launch_seconds
            + gpu_pred.transfer.total_seconds
        )
        return gpu_s < cpu_s
    raise KeyError(f"unknown ablation variant {variant!r}")


if __name__ == "__main__":  # pragma: no cover
    for mode in ("test", "benchmark"):
        print(run_ablations(mode).render())
        print()
