"""Conservative sign analysis of symbolic expressions.

The lint passes (:mod:`repro.lint`) need to answer questions like "is this
index expression provably negative?" or "is this stride provably nonzero?"
while array extents are still symbolic.  Region parameters are extents and
trip counts, so the analysis assumes every free symbol is a *positive*
integer — the same convention the paper's runtime binding step enforces
before a kernel launch.

The lattice is deliberately small: a query either resolves to a definite
sign class or to :attr:`Sign.UNKNOWN`, and every rule errs toward UNKNOWN.
"""

from __future__ import annotations

from enum import Enum

from .expr import Add, Const, Expr, FloorDiv, Max, Min, Mod, Mul, Sym

__all__ = ["Sign", "sign_of", "definitely_negative", "definitely_nonnegative"]


class Sign(Enum):
    """Provable sign class of an expression under positive-symbol semantics."""

    NEGATIVE = "negative"  # < 0 for every positive binding
    NONPOSITIVE = "nonpositive"  # <= 0
    ZERO = "zero"  # == 0
    NONNEGATIVE = "nonnegative"  # >= 0
    POSITIVE = "positive"  # > 0
    UNKNOWN = "unknown"

    @property
    def is_nonnegative(self) -> bool:
        return self in (Sign.ZERO, Sign.NONNEGATIVE, Sign.POSITIVE)

    @property
    def is_nonpositive(self) -> bool:
        return self in (Sign.ZERO, Sign.NONPOSITIVE, Sign.NEGATIVE)

    @property
    def is_nonzero(self) -> bool:
        return self in (Sign.NEGATIVE, Sign.POSITIVE)


def _sign_of_const(value: float) -> Sign:
    if value > 0:
        return Sign.POSITIVE
    if value < 0:
        return Sign.NEGATIVE
    return Sign.ZERO


def _add_signs(a: Sign, b: Sign) -> Sign:
    if Sign.UNKNOWN in (a, b):
        return Sign.UNKNOWN
    if a is Sign.ZERO:
        return b
    if b is Sign.ZERO:
        return a
    if a.is_nonnegative and b.is_nonnegative:
        if Sign.POSITIVE in (a, b):
            return Sign.POSITIVE
        return Sign.NONNEGATIVE
    if a.is_nonpositive and b.is_nonpositive:
        if Sign.NEGATIVE in (a, b):
            return Sign.NEGATIVE
        return Sign.NONPOSITIVE
    return Sign.UNKNOWN  # mixed signs: magnitude decides, we cannot


def _mul_signs(a: Sign, b: Sign) -> Sign:
    if Sign.ZERO in (a, b):
        return Sign.ZERO
    if Sign.UNKNOWN in (a, b):
        return Sign.UNKNOWN
    flipped = (a in (Sign.NEGATIVE, Sign.NONPOSITIVE)) != (
        b in (Sign.NEGATIVE, Sign.NONPOSITIVE)
    )
    strict = a.is_nonzero and b.is_nonzero
    if strict:
        return Sign.NEGATIVE if flipped else Sign.POSITIVE
    return Sign.NONPOSITIVE if flipped else Sign.NONNEGATIVE


def sign_of(expr: Expr) -> Sign:
    """The provable sign of ``expr``, with all free symbols assumed positive.

    Returns :attr:`Sign.UNKNOWN` whenever the answer depends on symbol
    magnitudes (e.g. ``n - 1`` can be zero or positive).
    """
    if isinstance(expr, Const):
        return _sign_of_const(expr.value)
    if isinstance(expr, Sym):
        return Sign.POSITIVE
    if isinstance(expr, Add):
        out = Sign.ZERO
        for term in expr.terms:
            out = _add_signs(out, sign_of(term))
            if out is Sign.UNKNOWN:
                return Sign.UNKNOWN
        return out
    if isinstance(expr, Mul):
        out = Sign.POSITIVE
        for factor in expr.factors:
            out = _mul_signs(out, sign_of(factor))
            if out is Sign.UNKNOWN:
                return Sign.UNKNOWN
        return out
    if isinstance(expr, FloorDiv):
        num, den = sign_of(expr.lhs), sign_of(expr.rhs)
        if num.is_nonnegative and den is Sign.POSITIVE:
            return Sign.NONNEGATIVE
        return Sign.UNKNOWN
    if isinstance(expr, Mod):
        if sign_of(expr.rhs) is Sign.POSITIVE:
            return Sign.NONNEGATIVE  # Python % with a positive modulus
        return Sign.UNKNOWN
    if isinstance(expr, Min):
        a, b = sign_of(expr.lhs), sign_of(expr.rhs)
        if a.is_nonnegative and b.is_nonnegative:
            return Sign.POSITIVE if a is b is Sign.POSITIVE else Sign.NONNEGATIVE
        if a is Sign.NEGATIVE or b is Sign.NEGATIVE:
            return Sign.NEGATIVE if Sign.UNKNOWN not in (a, b) else Sign.UNKNOWN
        return Sign.UNKNOWN
    if isinstance(expr, Max):
        a, b = sign_of(expr.lhs), sign_of(expr.rhs)
        if a is Sign.POSITIVE or b is Sign.POSITIVE:
            return Sign.POSITIVE
        if a.is_nonnegative or b.is_nonnegative:
            return Sign.NONNEGATIVE
        if a.is_nonpositive and b.is_nonpositive:
            return Sign.NEGATIVE if a is b is Sign.NEGATIVE else Sign.NONPOSITIVE
        return Sign.UNKNOWN
    return Sign.UNKNOWN


def definitely_negative(expr: Expr) -> bool:
    """True only when ``expr`` < 0 for every positive symbol binding."""
    return sign_of(expr) is Sign.NEGATIVE


def definitely_nonnegative(expr: Expr) -> bool:
    """True only when ``expr`` >= 0 for every positive symbol binding."""
    return sign_of(expr).is_nonnegative
