"""Symbolic expression engine used by IPDA and the attribute database.

Public API::

    from repro.symbolic import Sym, Const, as_expr, decompose_affine

    n = Sym("n")
    stride = n * 1 - n * 0        # simplifies to [n]
    stride.evaluate({"n": 1100})  # -> 1100
"""

from .expr import (
    Add,
    Const,
    EvalError,
    Expr,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Sym,
    as_expr,
)
from .affine import AffineForm, NonAffineError, decompose_affine
from .signs import Sign, definitely_negative, definitely_nonnegative, sign_of

__all__ = [
    "Add",
    "Const",
    "EvalError",
    "Expr",
    "FloorDiv",
    "Max",
    "Min",
    "Mod",
    "Mul",
    "Sym",
    "as_expr",
    "AffineForm",
    "NonAffineError",
    "decompose_affine",
    "Sign",
    "definitely_negative",
    "definitely_nonnegative",
    "sign_of",
]
