"""Affine decomposition of symbolic expressions.

IPDA (:mod:`repro.ipda`) needs to view an addressing expression such as
``max * a + j`` as a linear form over a designated set of *iteration
variables* (the loop induction variables of the nest) with symbolic
coefficients: ``{a: [max], j: 1}, const = 0``.  The *inter-thread difference*
of an access is then simply the coefficient of the parallelized induction
variable — evaluated symbolically, so unknowns like ``[max]`` survive to be
bound at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .expr import Add, Const, EvalError, Expr, FloorDiv, Max, Min, Mod, Mul, Sym, as_expr

__all__ = ["AffineForm", "NonAffineError", "decompose_affine"]


class NonAffineError(Exception):
    """Raised when an expression is not affine in the requested variables."""


@dataclass(frozen=True)
class AffineForm:
    """A linear form ``sum(coeffs[v] * v) + const`` over iteration variables.

    ``coeffs`` maps variable names to symbolic coefficient expressions; the
    coefficients and the constant may contain free symbols (runtime unknowns)
    but never the iteration variables themselves.
    """

    coeffs: Mapping[str, Expr] = field(default_factory=dict)
    const: Expr = field(default_factory=lambda: Const(0))

    def coefficient(self, var: str) -> Expr:
        """The (symbolic) coefficient of iteration variable ``var``."""
        return self.coeffs.get(var, Const(0))

    def free_symbols(self) -> frozenset[str]:
        syms: set[str] = set(self.const.free_symbols())
        for c in self.coeffs.values():
            syms |= c.free_symbols()
        return frozenset(syms)

    def to_expr(self) -> Expr:
        """Reassemble the affine form into a plain expression."""
        e: Expr = self.const
        for var, coeff in self.coeffs.items():
            e = e + coeff * Sym(var)
        return e

    def evaluate(self, env: Mapping[str, float]) -> float:
        """Evaluate with *all* variables and symbols bound in ``env``."""
        try:
            total = self.const.evaluate(env)
            for var, coeff in self.coeffs.items():
                total += coeff.evaluate(env) * env[var]
            return total
        except KeyError as exc:  # missing iteration variable
            raise EvalError(f"unbound iteration variable {exc}") from exc


def decompose_affine(expr: Expr | int, ivars: frozenset[str] | set[str]) -> AffineForm:
    """Decompose ``expr`` as an affine form over the variables in ``ivars``.

    Variables in ``ivars`` are recognised as :class:`Sym` nodes whose name is
    in the set.  Any product of two iteration variables, or an iteration
    variable inside ``//``/``%``/``min``/``max``, makes the expression
    non-affine and raises :class:`NonAffineError`.
    """
    expr = as_expr(expr)
    ivars = frozenset(ivars)
    coeffs, const = _decompose(expr, ivars)
    coeffs = {v: c for v, c in coeffs.items() if c.constant_value() != 0}
    return AffineForm(coeffs=coeffs, const=const)


def _decompose(expr: Expr, ivars: frozenset[str]) -> tuple[dict[str, Expr], Expr]:
    if isinstance(expr, Const):
        return {}, expr
    if isinstance(expr, Sym):
        if expr.name in ivars:
            return {expr.name: Const(1)}, Const(0)
        return {}, expr
    if isinstance(expr, Add):
        coeffs: dict[str, Expr] = {}
        const: Expr = Const(0)
        for term in expr.terms:
            tcoeffs, tconst = _decompose(term, ivars)
            const = const + tconst
            for v, c in tcoeffs.items():
                coeffs[v] = coeffs.get(v, Const(0)) + c
        return coeffs, const
    if isinstance(expr, Mul):
        # Exactly one factor may involve iteration variables (else nonlinear).
        coeffs: dict[str, Expr] = {}
        linear_part: tuple[dict[str, Expr], Expr] | None = None
        outside: Expr = Const(1)
        for factor in expr.factors:
            if factor.free_symbols() & ivars:
                if linear_part is not None:
                    raise NonAffineError(
                        f"product of iteration variables in {expr!r}"
                    )
                linear_part = _decompose(factor, ivars)
            else:
                outside = Mul.make((outside, factor))
        if linear_part is None:
            return {}, expr
        fcoeffs, fconst = linear_part
        for v, c in fcoeffs.items():
            coeffs[v] = Mul.make((outside, c))
        return coeffs, Mul.make((outside, fconst))
    if isinstance(expr, (FloorDiv, Mod, Min, Max)):
        if expr.free_symbols() & ivars:
            raise NonAffineError(
                f"iteration variable under non-affine operator in {expr!r}"
            )
        return {}, expr
    raise NonAffineError(f"unsupported expression node {type(expr).__name__}")
