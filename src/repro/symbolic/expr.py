"""Symbolic integer/real expression engine.

This module is the substrate for the Iteration Point Difference Analysis
(IPDA, :mod:`repro.ipda`) and for symbolic loop trip counts.  It implements a
small, immutable expression language sufficient to express the affine (and
mildly non-affine) addressing expressions found in OpenMP parallel loop
nests:

* ``Const`` — a numeric literal,
* ``Sym`` — a named unknown, e.g. the ``[max]`` of the paper's Section IV.C,
  whose value becomes available only at runtime,
* ``Add`` / ``Mul`` — n-ary sums and products kept in a light canonical form,
* ``FloorDiv`` / ``Mod`` — integer division and remainder (used by collapsed
  loop de-linearization),
* ``Min`` / ``Max`` — clamping expressions (used by grid-geometry capping).

Design notes
------------
Expressions are *hash-consed by structure*: equality and hashing are
structural, so expressions can serve as dictionary keys in the Program
Attribute Database.  Construction performs inexpensive local simplification
(constant folding, flattening, identity elimination) so that the difference
expressions built by IPDA collapse to readable forms such as ``[max]`` rather
than ``[max]*1 - [max]*0``.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Union

Number = Union[int, float]

__all__ = [
    "Expr",
    "Const",
    "Sym",
    "Add",
    "Mul",
    "FloorDiv",
    "Mod",
    "Min",
    "Max",
    "as_expr",
    "EvalError",
]


class EvalError(Exception):
    """Raised when an expression cannot be evaluated with the given bindings."""


def as_expr(value: "Expr | Number") -> "Expr":
    """Coerce a Python number (or an existing :class:`Expr`) to an ``Expr``."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):  # guard: bool is an int subclass
        return Const(int(value))
    if isinstance(value, (int, float)):
        return Const(value)
    # duck-typed lift for IR handles (IterVar/Param expose a `.sym` Expr)
    sym = getattr(value, "sym", None)
    if isinstance(sym, Expr):
        return sym
    raise TypeError(f"cannot convert {value!r} to a symbolic expression")


class Expr:
    """Base class of all symbolic expressions.

    Subclasses are immutable; all operators return new expressions.  The
    public algebra is deliberately small — exactly what addressing
    expressions of parallel loop nests require.
    """

    __slots__ = ()

    # -- algebra ---------------------------------------------------------
    def __add__(self, other: "Expr | Number") -> "Expr":
        return Add.make((self, as_expr(other)))

    def __radd__(self, other: "Expr | Number") -> "Expr":
        return Add.make((as_expr(other), self))

    def __sub__(self, other: "Expr | Number") -> "Expr":
        return Add.make((self, Mul.make((Const(-1), as_expr(other)))))

    def __rsub__(self, other: "Expr | Number") -> "Expr":
        return Add.make((as_expr(other), Mul.make((Const(-1), self))))

    def __mul__(self, other: "Expr | Number") -> "Expr":
        return Mul.make((self, as_expr(other)))

    def __rmul__(self, other: "Expr | Number") -> "Expr":
        return Mul.make((as_expr(other), self))

    def __neg__(self) -> "Expr":
        return Mul.make((Const(-1), self))

    def __floordiv__(self, other: "Expr | Number") -> "Expr":
        return FloorDiv.make(self, as_expr(other))

    def __mod__(self, other: "Expr | Number") -> "Expr":
        return Mod.make(self, as_expr(other))

    # -- pickling --------------------------------------------------------
    # Subclasses block __setattr__ to stay immutable, which would also
    # break pickle's slot restoration; restore through object.__setattr__
    # so expressions (and the regions that embed them) survive the
    # process-pool transport used by the parallel sweep engine.
    def __setstate__(self, state) -> None:
        _, slots = state
        for name, value in (slots or {}).items():
            object.__setattr__(self, name, value)

    # -- interface -------------------------------------------------------
    def children(self) -> tuple["Expr", ...]:
        return ()

    def free_symbols(self) -> frozenset[str]:
        """The set of unknown symbol names appearing in this expression."""
        out: set[str] = set()
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Sym):
                out.add(node.name)
            else:
                stack.extend(node.children())
        return frozenset(out)

    def is_constant(self) -> bool:
        return not self.free_symbols()

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        """Numerically evaluate under ``env`` (symbol name → value).

        Raises :class:`EvalError` if a needed symbol is unbound.
        """
        raise NotImplementedError

    def subs(self, env: Mapping[str, "Expr | Number"]) -> "Expr":
        """Substitute symbols by expressions/values; re-simplifies."""
        raise NotImplementedError

    def constant_value(self) -> Number | None:
        """The numeric value if the expression is constant, else ``None``."""
        try:
            return self.evaluate({})
        except EvalError:
            return None

    # subclasses must implement __eq__/__hash__/__repr__


class Const(Expr):
    """A numeric literal."""

    __slots__ = ("value",)

    def __init__(self, value: Number):
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)):
            raise TypeError(f"Const requires a number, got {value!r}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, *a):  # immutability
        raise AttributeError("Const is immutable")

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return self.value

    def subs(self, env: Mapping[str, "Expr | Number"]) -> "Expr":
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))

    def __repr__(self) -> str:
        return repr(self.value)


ZERO = Const(0)
ONE = Const(1)


class Sym(Expr):
    """A named unknown, printed in the paper's ``[name]`` bracket notation."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise TypeError("Sym requires a non-empty string name")
        object.__setattr__(self, "name", name)

    def __setattr__(self, *a):
        raise AttributeError("Sym is immutable")

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        if env is not None and self.name in env:
            return env[self.name]
        raise EvalError(f"unbound symbol [{self.name}]")

    def subs(self, env: Mapping[str, "Expr | Number"]) -> "Expr":
        if self.name in env:
            return as_expr(env[self.name])
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Sym) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Sym", self.name))

    def __repr__(self) -> str:
        return f"[{self.name}]"


def _sort_key(e: Expr) -> tuple:
    # Stable ordering for canonical n-ary node layouts: constants first.
    if isinstance(e, Const):
        return (0, repr(e.value))
    return (1, repr(e))


class Add(Expr):
    """Canonical n-ary sum.  Use :meth:`make` to construct."""

    __slots__ = ("terms",)

    def __init__(self, terms: tuple[Expr, ...]):
        object.__setattr__(self, "terms", terms)

    def __setattr__(self, *a):
        raise AttributeError("Add is immutable")

    @staticmethod
    def make(terms: Iterable[Expr]) -> Expr:
        flat: list[Expr] = []
        const_acc: Number = 0
        for t in terms:
            t = as_expr(t)
            if isinstance(t, Add):
                inner = list(t.terms)
            else:
                inner = [t]
            for u in inner:
                if isinstance(u, Const):
                    const_acc = const_acc + u.value
                else:
                    flat.append(u)
        # Collect like terms: map non-constant "core" -> coefficient.
        coeffs: dict[Expr, Number] = {}
        order: list[Expr] = []
        for u in flat:
            core, coeff = _split_coeff(u)
            if core not in coeffs:
                coeffs[core] = 0
                order.append(core)
            coeffs[core] = coeffs[core] + coeff
        out: list[Expr] = []
        for core in order:
            c = coeffs[core]
            if c == 0:
                continue
            out.append(core if c == 1 else Mul.make((Const(c), core)))
        if const_acc != 0 or not out:
            out.insert(0, Const(const_acc))
        if len(out) == 1:
            return out[0]
        return Add(tuple(sorted(out, key=_sort_key)))

    def children(self) -> tuple[Expr, ...]:
        return self.terms

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return sum(t.evaluate(env) for t in self.terms)

    def subs(self, env: Mapping[str, "Expr | Number"]) -> Expr:
        return Add.make(t.subs(env) for t in self.terms)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Add) and self.terms == other.terms

    def __hash__(self) -> int:
        return hash(("Add", self.terms))

    def __repr__(self) -> str:
        parts = []
        for i, t in enumerate(self.terms):
            s = repr(t)
            if i and not s.startswith("-"):
                parts.append("+")
            parts.append(s)
        return "(" + " ".join(parts) + ")"


def _split_coeff(e: Expr) -> tuple[Expr, Number]:
    """Split ``e`` into (core, numeric coefficient) for like-term collection."""
    if isinstance(e, Mul):
        consts = [f.value for f in e.factors if isinstance(f, Const)]
        rest = tuple(f for f in e.factors if not isinstance(f, Const))
        coeff = math.prod(consts) if consts else 1
        if not rest:
            return ONE, coeff
        core = rest[0] if len(rest) == 1 else Mul(rest)
        return core, coeff
    return e, 1


class Mul(Expr):
    """Canonical n-ary product.  Use :meth:`make` to construct."""

    __slots__ = ("factors",)

    def __init__(self, factors: tuple[Expr, ...]):
        object.__setattr__(self, "factors", factors)

    def __setattr__(self, *a):
        raise AttributeError("Mul is immutable")

    @staticmethod
    def make(factors: Iterable[Expr]) -> Expr:
        flat: list[Expr] = []
        const_acc: Number = 1
        for f in factors:
            f = as_expr(f)
            if isinstance(f, Mul):
                inner = list(f.factors)
            else:
                inner = [f]
            for u in inner:
                if isinstance(u, Const):
                    const_acc = const_acc * u.value
                else:
                    flat.append(u)
        if const_acc == 0:
            return ZERO
        # Distribute a product over a single Add factor so that affine
        # decomposition (`N*(i+1)` → `N*i + N`) works without a heavyweight
        # polynomial expansion pass.
        for idx, u in enumerate(flat):
            if isinstance(u, Add):
                others = flat[:idx] + flat[idx + 1 :]
                rest: Expr = Const(const_acc)
                for o in others:
                    rest = Mul._raw(rest, o)
                return Add.make(Mul.make((rest, term)) for term in u.terms)
        out: list[Expr] = sorted(flat, key=_sort_key)
        if const_acc != 1 or not out:
            out.insert(0, Const(const_acc))
        if len(out) == 1:
            return out[0]
        return Mul(tuple(out))

    @staticmethod
    def _raw(a: Expr, b: Expr) -> Expr:
        """Multiply without Add-distribution (internal helper)."""
        if isinstance(a, Const) and isinstance(b, Const):
            return Const(a.value * b.value)
        if isinstance(a, Const) and a.value == 1:
            return b
        if isinstance(b, Const) and b.value == 1:
            return a
        fa = a.factors if isinstance(a, Mul) else (a,)
        fb = b.factors if isinstance(b, Mul) else (b,)
        return Mul(tuple(fa) + tuple(fb))

    def children(self) -> tuple[Expr, ...]:
        return self.factors

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return math.prod(f.evaluate(env) for f in self.factors)

    def subs(self, env: Mapping[str, "Expr | Number"]) -> Expr:
        return Mul.make(f.subs(env) for f in self.factors)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Mul) and self.factors == other.factors

    def __hash__(self) -> int:
        return hash(("Mul", self.factors))

    def __repr__(self) -> str:
        return "*".join(
            repr(f) if not isinstance(f, Add) else f"({f!r})" for f in self.factors
        )


class _BinOp(Expr):
    __slots__ = ("lhs", "rhs")
    _symbol = "?"

    def __init__(self, lhs: Expr, rhs: Expr):
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "rhs", rhs)

    def __setattr__(self, *a):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def children(self) -> tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and self.lhs == other.lhs
            and self.rhs == other.rhs
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.lhs, self.rhs))

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self._symbol} {self.rhs!r})"


class FloorDiv(_BinOp):
    """Integer (floor) division."""

    __slots__ = ()
    _symbol = "//"

    @staticmethod
    def make(lhs: Expr, rhs: Expr) -> Expr:
        lhs, rhs = as_expr(lhs), as_expr(rhs)
        if isinstance(rhs, Const):
            if rhs.value == 0:
                raise ZeroDivisionError("symbolic floor division by zero")
            if rhs.value == 1:
                return lhs
            if isinstance(lhs, Const):
                return Const(lhs.value // rhs.value)
        return FloorDiv(lhs, rhs)

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        denom = self.rhs.evaluate(env)
        if denom == 0:
            raise EvalError("floor division by zero")
        return self.lhs.evaluate(env) // denom

    def subs(self, env: Mapping[str, "Expr | Number"]) -> Expr:
        return FloorDiv.make(self.lhs.subs(env), self.rhs.subs(env))


class Mod(_BinOp):
    """Integer modulo."""

    __slots__ = ()
    _symbol = "%"

    @staticmethod
    def make(lhs: Expr, rhs: Expr) -> Expr:
        lhs, rhs = as_expr(lhs), as_expr(rhs)
        if isinstance(rhs, Const):
            if rhs.value == 0:
                raise ZeroDivisionError("symbolic modulo by zero")
            if rhs.value == 1:
                return ZERO
            if isinstance(lhs, Const):
                return Const(lhs.value % rhs.value)
        return Mod(lhs, rhs)

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        denom = self.rhs.evaluate(env)
        if denom == 0:
            raise EvalError("modulo by zero")
        return self.lhs.evaluate(env) % denom

    def subs(self, env: Mapping[str, "Expr | Number"]) -> Expr:
        return Mod.make(self.lhs.subs(env), self.rhs.subs(env))


class Min(_BinOp):
    """Binary minimum."""

    __slots__ = ()
    _symbol = "min"

    @staticmethod
    def make(lhs: Expr, rhs: Expr) -> Expr:
        lhs, rhs = as_expr(lhs), as_expr(rhs)
        if isinstance(lhs, Const) and isinstance(rhs, Const):
            return Const(min(lhs.value, rhs.value))
        if lhs == rhs:
            return lhs
        return Min(lhs, rhs)

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return min(self.lhs.evaluate(env), self.rhs.evaluate(env))

    def subs(self, env: Mapping[str, "Expr | Number"]) -> Expr:
        return Min.make(self.lhs.subs(env), self.rhs.subs(env))

    def __repr__(self) -> str:
        return f"min({self.lhs!r}, {self.rhs!r})"


class Max(_BinOp):
    """Binary maximum."""

    __slots__ = ()
    _symbol = "max"

    @staticmethod
    def make(lhs: Expr, rhs: Expr) -> Expr:
        lhs, rhs = as_expr(lhs), as_expr(rhs)
        if isinstance(lhs, Const) and isinstance(rhs, Const):
            return Const(max(lhs.value, rhs.value))
        if lhs == rhs:
            return lhs
        return Max(lhs, rhs)

    def evaluate(self, env: Mapping[str, Number] | None = None) -> Number:
        return max(self.lhs.evaluate(env), self.rhs.evaluate(env))

    def subs(self, env: Mapping[str, "Expr | Number"]) -> Expr:
        return Max.make(self.lhs.subs(env), self.rhs.subs(env))

    def __repr__(self) -> str:
        return f"max({self.lhs!r}, {self.rhs!r})"
