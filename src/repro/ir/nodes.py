"""IR node definitions.

The IR models exactly the program shape the paper studies: an OpenMP
``target`` region containing a loop nest whose outer loop(s) carry
``teams distribute parallel for`` semantics.  Two expression domains exist:

* **index expressions** — symbolic integers (:mod:`repro.symbolic`) over loop
  induction variables and region parameters; these drive IPDA;
* **value expressions** (:class:`VExpr`) — the floating-point dataflow of the
  loop body; these drive instruction-loadout analysis and MCA lowering.

All nodes are plain immutable dataclasses; structural passes walk them with
``isinstance`` dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from ..symbolic import Expr, Sym, as_expr
from .types import DType, f32

__all__ = [
    "Array",
    "Param",
    "IterVar",
    "VExpr",
    "ConstV",
    "ScalarArg",
    "LocalRef",
    "Load",
    "Bin",
    "Un",
    "Cmp",
    "Select",
    "Stmt",
    "Store",
    "ReduceStore",
    "LocalDef",
    "LocalAssign",
    "Loop",
    "If",
    "BIN_OPS",
    "UN_OPS",
    "CMP_OPS",
]

#: Binary value operators and the machine-op class each lowers to.
BIN_OPS = frozenset({"add", "sub", "mul", "div", "min", "max"})
#: Unary value operators.
UN_OPS = frozenset({"neg", "sqrt", "abs", "exp"})
#: Comparison predicates (produce booleans consumed by If/Select).
CMP_OPS = frozenset({"lt", "le", "gt", "ge", "eq", "ne"})


@dataclass(frozen=True)
class Array:
    """A region-level array with a (possibly symbolic) shape.

    ``is_input``/``is_output`` determine host↔device transfer direction and
    volume; both True models an in/out array (e.g. ``C`` in GEMM).
    """

    name: str
    shape: tuple[Expr, ...]
    dtype: DType = f32
    is_input: bool = True
    is_output: bool = False

    def __getitem__(self, idxs) -> "Load":
        if not isinstance(idxs, tuple):
            idxs = (idxs,)
        if len(idxs) != len(self.shape):
            raise ValueError(
                f"array {self.name} has rank {len(self.shape)}, got "
                f"{len(idxs)} indices"
            )
        return Load(self, tuple(_as_index(i) for i in idxs))

    def flat_index(self, idxs: tuple[Expr, ...]) -> Expr:
        """Row-major flattened element index for a tuple of index exprs."""
        flat: Expr = as_expr(0)
        for d, idx in enumerate(idxs):
            stride: Expr = as_expr(1)
            for s in self.shape[d + 1 :]:
                stride = stride * s
            flat = flat + idx * stride
        return flat

    def element_count(self) -> Expr:
        count: Expr = as_expr(1)
        for s in self.shape:
            count = count * s
        return count

    def __repr__(self) -> str:
        dims = "][".join(repr(s) for s in self.shape)
        return f"{self.dtype} {self.name}[{dims}]"


@dataclass(frozen=True)
class Param:
    """A symbolic integer region parameter (array extent, trip count...)."""

    name: str

    @property
    def sym(self) -> Sym:
        return Sym(self.name)

    # index-expression algebra (delegates to the symbolic engine)
    def __add__(self, other):
        return self.sym + _lift(other)

    def __radd__(self, other):
        return _lift(other) + self.sym

    def __sub__(self, other):
        return self.sym - _lift(other)

    def __rsub__(self, other):
        return _lift(other) - self.sym

    def __mul__(self, other):
        return self.sym * _lift(other)

    def __rmul__(self, other):
        return _lift(other) * self.sym

    def __floordiv__(self, other):
        return self.sym // _lift(other)

    def __repr__(self) -> str:
        return f"param {self.name}"


class IterVar:
    """A loop induction variable, usable inside index expressions."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    @property
    def sym(self) -> Sym:
        return Sym(self.name)

    # index-expression algebra: delegate to the symbolic engine
    def __add__(self, other):
        return self.sym + _lift(other)

    def __radd__(self, other):
        return _lift(other) + self.sym

    def __sub__(self, other):
        return self.sym - _lift(other)

    def __rsub__(self, other):
        return _lift(other) - self.sym

    def __mul__(self, other):
        return self.sym * _lift(other)

    def __rmul__(self, other):
        return _lift(other) * self.sym

    def __repr__(self) -> str:
        return self.name


def _lift(x) -> Expr:
    """Lift IterVar/Param/number into the symbolic index domain."""
    if isinstance(x, IterVar):
        return x.sym
    if isinstance(x, Param):
        return x.sym
    return as_expr(x)


def _as_index(x) -> Expr:
    return _lift(x)


# ---------------------------------------------------------------------------
# Value expressions
# ---------------------------------------------------------------------------


class VExpr:
    """Base class of value (dataflow) expressions, with operator sugar."""

    __slots__ = ()
    dtype: DType = f32

    def __add__(self, other):
        return Bin("add", self, _as_value(other))

    def __radd__(self, other):
        return Bin("add", _as_value(other), self)

    def __sub__(self, other):
        return Bin("sub", self, _as_value(other))

    def __rsub__(self, other):
        return Bin("sub", _as_value(other), self)

    def __mul__(self, other):
        return Bin("mul", self, _as_value(other))

    def __rmul__(self, other):
        return Bin("mul", _as_value(other), self)

    def __truediv__(self, other):
        return Bin("div", self, _as_value(other))

    def __rtruediv__(self, other):
        return Bin("div", _as_value(other), self)

    def __neg__(self):
        return Un("neg", self)

    def children(self) -> tuple["VExpr", ...]:
        return ()

    def walk(self) -> Iterator["VExpr"]:
        """Pre-order traversal of the value expression tree."""
        yield self
        for c in self.children():
            yield from c.walk()


def _as_value(x) -> VExpr:
    if isinstance(x, VExpr):
        return x
    if isinstance(x, (int, float)):
        return ConstV(float(x))
    raise TypeError(f"cannot use {x!r} as a value expression")


@dataclass(frozen=True, repr=False)
class ConstV(VExpr):
    """A floating-point literal in the dataflow."""

    value: float
    dtype: DType = f32

    def __repr__(self) -> str:
        return f"{self.value:g}"


@dataclass(frozen=True, repr=False)
class ScalarArg(VExpr):
    """A scalar kernel argument (e.g. ``alpha``, ``beta``)."""

    name: str
    dtype: DType = f32

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, repr=False)
class LocalRef(VExpr):
    """A read of a thread-local scalar (register) defined by LocalDef."""

    name: str
    dtype: DType = f32

    def __repr__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True, repr=False)
class Load(VExpr):
    """A read of ``array[idxs]``; the memory instruction IPDA analyses."""

    array: Array
    idxs: tuple[Expr, ...]

    @property
    def dtype(self) -> DType:  # type: ignore[override]
        return self.array.dtype

    def flat_index(self) -> Expr:
        return self.array.flat_index(self.idxs)

    def __repr__(self) -> str:
        dims = "][".join(repr(i) for i in self.idxs)
        return f"{self.array.name}[{dims}]"


@dataclass(frozen=True, repr=False)
class Bin(VExpr):
    """Binary arithmetic node (``op`` in :data:`BIN_OPS`)."""

    op: str
    lhs: VExpr
    rhs: VExpr

    def __post_init__(self):
        if self.op not in BIN_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")

    @property
    def dtype(self) -> DType:  # type: ignore[override]
        return self.lhs.dtype

    def children(self) -> tuple[VExpr, ...]:
        return (self.lhs, self.rhs)

    def __repr__(self) -> str:
        sym = {"add": "+", "sub": "-", "mul": "*", "div": "/"}.get(self.op)
        if sym:
            return f"({self.lhs!r} {sym} {self.rhs!r})"
        return f"{self.op}({self.lhs!r}, {self.rhs!r})"


@dataclass(frozen=True, repr=False)
class Un(VExpr):
    """Unary arithmetic node (``op`` in :data:`UN_OPS`)."""

    op: str
    operand: VExpr

    def __post_init__(self):
        if self.op not in UN_OPS:
            raise ValueError(f"unknown unary op {self.op!r}")

    @property
    def dtype(self) -> DType:  # type: ignore[override]
        return self.operand.dtype

    def children(self) -> tuple[VExpr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"{self.op}({self.operand!r})"


@dataclass(frozen=True, repr=False)
class Cmp(VExpr):
    """Comparison producing a boolean (consumed by :class:`If`/:class:`Select`)."""

    op: str
    lhs: VExpr
    rhs: VExpr

    def __post_init__(self):
        if self.op not in CMP_OPS:
            raise ValueError(f"unknown comparison {self.op!r}")

    def children(self) -> tuple[VExpr, ...]:
        return (self.lhs, self.rhs)

    def __repr__(self) -> str:
        sym = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==", "ne": "!="}
        return f"({self.lhs!r} {sym[self.op]} {self.rhs!r})"


@dataclass(frozen=True, repr=False)
class Select(VExpr):
    """Ternary ``cond ? if_true : if_false`` value."""

    cond: Cmp
    if_true: VExpr
    if_false: VExpr

    @property
    def dtype(self) -> DType:  # type: ignore[override]
        return self.if_true.dtype

    def children(self) -> tuple[VExpr, ...]:
        return (self.cond, self.if_true, self.if_false)

    def __repr__(self) -> str:
        return f"({self.cond!r} ? {self.if_true!r} : {self.if_false!r})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class of statements."""

    __slots__ = ()


@dataclass(frozen=True, repr=False)
class Store(Stmt):
    """``array[idxs] = value`` — the memory write IPDA analyses."""

    array: Array
    idxs: tuple[Expr, ...]
    value: VExpr

    def flat_index(self) -> Expr:
        return self.array.flat_index(self.idxs)

    def __repr__(self) -> str:
        dims = "][".join(repr(i) for i in self.idxs)
        return f"{self.array.name}[{dims}] = {self.value!r}"


@dataclass(frozen=True, repr=False)
class ReduceStore(Store):
    """``array[idxs] ⊕= value`` combined across the whole parallel band.

    The IR image of OpenMP's ``reduction(⊕: x)`` clause: every work item
    contributes ``value``; the runtime privatizes per-thread partials and
    combines them after the band (priced by Liao's ``Reduction_c`` on the
    host and a block-tree + atomics on the device).  ``idxs`` must not
    depend on band variables.
    """

    op: str = "add"

    def __post_init__(self):
        if self.op not in _REDUCE_OPS:
            raise ValueError(f"unsupported reduction operator {self.op!r}")

    def __repr__(self) -> str:
        dims = "][".join(repr(i) for i in self.idxs)
        return f"reduce({self.op}) {self.array.name}[{dims}] = {self.value!r}"


#: Associative/commutative operators OpenMP reductions support here.
_REDUCE_OPS = frozenset({"add", "mul", "min", "max"})


@dataclass(frozen=True, repr=False)
class LocalDef(Stmt):
    """Definition of a thread-local scalar with an initial value."""

    name: str
    init: VExpr
    dtype: DType = f32

    def __repr__(self) -> str:
        return f"{self.dtype} %{self.name} = {self.init!r}"


@dataclass(frozen=True, repr=False)
class LocalAssign(Stmt):
    """Re-assignment of a thread-local scalar (e.g. a reduction update)."""

    name: str
    value: VExpr

    def __repr__(self) -> str:
        return f"%{self.name} = {self.value!r}"


@dataclass(repr=False)
class Loop(Stmt):
    """A counted loop ``for var in start .. start+count-1``.

    ``parallel=True`` marks an OpenMP work-shared dimension (part of the
    ``teams distribute parallel for`` band).  ``count`` may be symbolic.
    """

    var: IterVar
    count: Expr
    body: list[Stmt] = field(default_factory=list)
    start: Expr = field(default_factory=lambda: as_expr(0))
    parallel: bool = False

    def __repr__(self) -> str:
        kind = "parallel for" if self.parallel else "for"
        return f"{kind} {self.var.name} in [{self.start!r}, {self.start!r}+{self.count!r})"


@dataclass(repr=False)
class If(Stmt):
    """A conditional statement; the paper's models assume 50% taken."""

    cond: Cmp
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"if {self.cond!r}"


#: Anything accepted where a statement list is walked.
StmtLike = Union[Store, LocalDef, LocalAssign, Loop, If]
