"""Traversal helpers shared by analyses over the IR.

These walkers encode the loop-nest structure once so that analyses
(instruction loadout, IPDA, MCA lowering, executors) do not each reimplement
recursion over statements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from .nodes import If, Load, LocalAssign, LocalDef, Loop, Stmt, Store, VExpr
from .region import Region

__all__ = [
    "walk_statements",
    "iter_loops",
    "memory_accesses",
    "MemoryAccess",
    "loop_context_of",
]


def walk_statements(stmts: list[Stmt]) -> Iterator[Stmt]:
    """Pre-order traversal of all statements, descending into loops and ifs."""
    for s in stmts:
        yield s
        if isinstance(s, Loop):
            yield from walk_statements(s.body)
        elif isinstance(s, If):
            yield from walk_statements(s.then_body)
            yield from walk_statements(s.else_body)


def iter_loops(region: Region) -> Iterator[Loop]:
    """All loops of a region, outermost first."""
    for s in walk_statements(region.body):
        if isinstance(s, Loop):
            yield s


def count_reductions(region: Region) -> int:
    """Number of band-wide reduction statements (OpenMP reduction clauses)."""
    from .nodes import ReduceStore

    return sum(
        1 for s in walk_statements(region.body) if isinstance(s, ReduceStore)
    )


@dataclass(frozen=True)
class MemoryAccess:
    """A single static memory instruction: a load or a store.

    Attributes
    ----------
    array / idxs:
        The accessed array and its index expressions.
    is_store:
        Store vs load.
    loop_path:
        The enclosing loops from outermost to innermost; gives the iteration
        context (which induction variables are in scope, trip multipliers).
    cond_depth:
        Number of enclosing ``If`` statements (models the paper's 50%-taken
        execution-probability abstraction).
    """

    array: "object"
    idxs: tuple
    is_store: bool
    loop_path: tuple[Loop, ...]
    cond_depth: int
    #: The defining IR node (a Load VExpr or a Store statement).  Identity
    #: of this object links the access to its machine ops after lowering.
    node: object = None

    def flat_index(self):
        return self.array.flat_index(self.idxs)

    @property
    def dtype(self):
        return self.array.dtype

    def __repr__(self) -> str:
        kind = "store" if self.is_store else "load"
        dims = "][".join(repr(i) for i in self.idxs)
        return f"<{kind} {self.array.name}[{dims}]>"


def memory_accesses(region: Region) -> list[MemoryAccess]:
    """Enumerate every static load/store with its loop and branch context."""
    out: list[MemoryAccess] = []

    def visit_value(v: VExpr, path: tuple[Loop, ...], depth: int) -> None:
        for node in v.walk():
            if isinstance(node, Load):
                out.append(
                    MemoryAccess(node.array, node.idxs, False, path, depth, node)
                )

    def visit(stmts: list[Stmt], path: tuple[Loop, ...], depth: int) -> None:
        for s in stmts:
            if isinstance(s, Loop):
                visit(s.body, path + (s,), depth)
            elif isinstance(s, If):
                visit_value(s.cond, path, depth)
                visit(s.then_body, path, depth + 1)
                visit(s.else_body, path, depth + 1)
            elif isinstance(s, Store):
                visit_value(s.value, path, depth)
                out.append(MemoryAccess(s.array, s.idxs, True, path, depth, s))
            elif isinstance(s, LocalDef):
                visit_value(s.init, path, depth)
            elif isinstance(s, LocalAssign):
                visit_value(s.value, path, depth)
    visit(region.body, (), 0)
    return out


def loop_context_of(region: Region, predicate: Callable[[Stmt], bool]) -> tuple[Loop, ...]:
    """Loop path of the first statement matching ``predicate`` (for tests)."""
    found: list[tuple[Loop, ...]] = []

    def visit(stmts: list[Stmt], path: tuple[Loop, ...]) -> None:
        for s in stmts:
            if predicate(s) and not found:
                found.append(path)
            if isinstance(s, Loop):
                visit(s.body, path + (s,))
            elif isinstance(s, If):
                visit(s.then_body, path)
                visit(s.else_body, path)

    visit(region.body, ())
    if not found:
        raise LookupError("no statement matched predicate")
    return found[0]
