"""Scalar data types of the kernel IR.

Polybench/ACC GPU codes use ``DATA_TYPE float`` by default, so ``f32`` is the
workhorse type; ``f64``/integers exist for completeness and for index
computations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DType", "f32", "f64", "i32", "i64"]


@dataclass(frozen=True)
class DType:
    """A scalar element type.

    Attributes
    ----------
    name:
        Short LLVM-like name (``f32``, ``i64``...).
    size:
        Width in bytes — drives memory-traffic and coalescing computations.
    is_float:
        Whether arithmetic on this type goes to the FP pipes.
    """

    name: str
    size: int
    is_float: bool

    @property
    def np(self) -> np.dtype:
        """The matching numpy dtype (for the functional executor)."""
        return np.dtype(
            {
                "f32": np.float32,
                "f64": np.float64,
                "i32": np.int32,
                "i64": np.int64,
            }[self.name]
        )

    def __repr__(self) -> str:
        return self.name


f32 = DType("f32", 4, True)
f64 = DType("f64", 8, True)
i32 = DType("i32", 4, False)
i64 = DType("i64", 8, False)
