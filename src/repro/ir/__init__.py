"""Kernel IR: the representation of OpenMP target regions.

The IR captures parallel loop nests with affine array accesses — the program
class the paper's decision framework targets — and is the single source from
which the CPU-parallel plan, the GPU SIMT plan, static features, IPDA stride
expressions and MCA lowerings are all derived.
"""

from .types import DType, f32, f64, i32, i64
from .nodes import (
    Array,
    Bin,
    Cmp,
    ConstV,
    If,
    IterVar,
    Load,
    LocalAssign,
    LocalDef,
    LocalRef,
    Loop,
    Param,
    ReduceStore,
    ScalarArg,
    Select,
    Stmt,
    Store,
    Un,
    VExpr,
)
from .region import (
    Region,
    absv,
    cmp,
    evaluate_transfer_bytes,
    expv,
    maxv,
    minv,
    select,
    sqrt,
)
from .dataflow import (
    ArrayDataflow,
    Direction,
    RegionDataflow,
    analyze_transfers,
)
from .printer import region_to_text
from .parser import ParseError, parse_index, parse_region
from .validate import ValidationError, validate_region
from .visit import (
    MemoryAccess,
    count_reductions,
    iter_loops,
    memory_accesses,
    walk_statements,
)

__all__ = [
    "DType",
    "f32",
    "f64",
    "i32",
    "i64",
    "Array",
    "Bin",
    "Cmp",
    "ConstV",
    "If",
    "IterVar",
    "Load",
    "LocalAssign",
    "LocalDef",
    "LocalRef",
    "Loop",
    "Param",
    "ReduceStore",
    "ScalarArg",
    "Select",
    "Stmt",
    "Store",
    "Un",
    "VExpr",
    "Region",
    "ArrayDataflow",
    "Direction",
    "RegionDataflow",
    "analyze_transfers",
    "evaluate_transfer_bytes",
    "absv",
    "cmp",
    "expv",
    "maxv",
    "minv",
    "select",
    "sqrt",
    "region_to_text",
    "ParseError",
    "parse_index",
    "parse_region",
    "ValidationError",
    "validate_region",
    "MemoryAccess",
    "count_reductions",
    "iter_loops",
    "memory_accesses",
    "walk_statements",
]
