"""Array liveness / transfer-direction dataflow analysis.

``Region.transfer_bytes`` prices host↔device movement purely from the
*declared* ``is_input``/``is_output`` flags of each mapped array.  This
module checks those declarations against what the kernel body actually
does: for every array it walks the loop nest (via :func:`memory_accesses`)
and classifies the array as

``in``
    read before any write — the host value is live into the region;
``out``
    written and the value escapes (declared device→host, or produced
    without ever being consumed on the device);
``inout``
    at least one *exposed* read (a read that may observe the pre-region
    value) plus at least one write;
``temp``
    written then read, with every read provably covered by an earlier
    device-side write, and not declared live-out — device scratch that
    needs no transfer in either direction;
``dead``
    mapped but never touched by the body;
``unknown``
    an access defeated the affine machinery — the analysis falls back to
    the declared map.

The classification is deliberately conservative: a read counts as
*covered* only when an earlier unconditional write provably produced the
value it observes, either element-wise in the same iteration context or
via a preceding loop nest that overwrites the whole array (the
mixed-radix contiguity argument in :func:`_covers_fully`).  Anything the
analysis cannot prove degrades toward "the host value is needed", never
toward dropping a required transfer.

The products are symbolic per-direction byte bounds (``copy_in`` /
``copy_out`` expressions) consumed by the opt-in ``inferred_transfers``
mode of the attribute database and by the MAP lint passes
(:mod:`repro.lint.dataflow`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from ..symbolic import Expr, as_expr
from ..symbolic.affine import NonAffineError, decompose_affine
from .nodes import Array, Loop, ReduceStore
from .region import Region, evaluate_transfer_bytes
from .visit import MemoryAccess, memory_accesses

__all__ = [
    "Direction",
    "ArrayDataflow",
    "RegionDataflow",
    "analyze_transfers",
]


class Direction(enum.Enum):
    """Inferred transfer direction of one mapped array."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"
    TEMP = "temp"
    DEAD = "dead"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class ArrayDataflow:
    """Dataflow facts for one declared array of a region.

    ``copy_in``/``copy_out`` are symbolic byte counts: what a runtime that
    trusts the analysis must move host→device / device→host.  ``copy_out``
    respects the declared liveness (a written array is copied back only
    when the program mapped it out — the analysis cannot see past the
    region's end), while ``copy_in`` may be *tightened* to zero when every
    read is covered by an earlier device-side write.
    """

    array: Array
    direction: Direction
    reads: int  # static read accesses (reduce-stores count as reads too)
    writes: int  # static store accesses
    exposed_reads: int  # reads that may observe the pre-region value
    covered_reads: int  # reads provably fed by an earlier device write
    fully_overwritten: bool  # some single nest overwrites the whole array
    copy_in: Expr  # symbolic bytes host→device the body requires
    copy_out: Expr  # symbolic bytes device→host given declared liveness
    unanalysable: tuple[str, ...] = ()  # accesses that defeated the analysis

    @property
    def declared_in(self) -> bool:
        return self.array.is_input

    @property
    def declared_out(self) -> bool:
        return self.array.is_output

    @property
    def temp_pattern(self) -> bool:
        """Written-then-consumed on the device with no exposed reads."""
        return self.writes > 0 and self.reads > 0 and self.exposed_reads == 0


@dataclass(frozen=True)
class RegionDataflow:
    """Per-array dataflow results for one region, in declaration order."""

    region_name: str
    arrays: Mapping[str, ArrayDataflow] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.arrays.values())

    def __getitem__(self, name: str) -> ArrayDataflow:
        return self.arrays[name]

    def direction_of(self, name: str) -> Direction:
        return self.arrays[name].direction

    def transfer_bytes(self, env: Mapping[str, int]) -> tuple[int, int]:
        """(host→device, device→host) bytes under the inferred directions.

        Mirrors :meth:`Region.transfer_bytes` (same ``KeyError`` /
        ``ValueError`` hardening) but sums the inferred per-direction
        bounds instead of the declared map.
        """
        to_dev = 0
        to_host = 0
        for name, info in self.arrays.items():
            to_dev += evaluate_transfer_bytes(
                self.region_name, name, info.copy_in, env
            )
            to_host += evaluate_transfer_bytes(
                self.region_name, name, info.copy_out, env
            )
        return to_dev, to_host

    def free_symbols(self) -> frozenset[str]:
        syms: set[str] = set()
        for info in self.arrays.values():
            syms |= info.copy_in.free_symbols()
            syms |= info.copy_out.free_symbols()
        return frozenset(syms)


def analyze_transfers(region: Region) -> RegionDataflow:
    """Classify every declared array of ``region`` (see module docstring).

    Accesses to undeclared arrays are ignored here — the structural
    verifier owns that defect (STRUCT codes) and short-circuits the lint
    pipeline before the MAP passes run.
    """
    per_array: dict[str, list[tuple[int, MemoryAccess]]] = {}
    for pos, acc in enumerate(memory_accesses(region)):
        per_array.setdefault(acc.array.name, []).append((pos, acc))
    results: dict[str, ArrayDataflow] = {}
    for name, arr in region.arrays.items():
        results[name] = _analyze_array(arr, per_array.get(name, []))
    return RegionDataflow(region_name=region.name, arrays=results)


def _analyze_array(
    arr: Array, entries: list[tuple[int, MemoryAccess]]
) -> ArrayDataflow:
    unanalysable = tuple(
        repr(acc) for _, acc in entries if not _affine_ok(acc)
    )
    stores = [(p, a) for p, a in entries if a.is_store]
    loads = [(p, a) for p, a in entries if not a.is_store]
    # A reduce-store combines with the cell's incoming value, so the host
    # value is live into the region: one write plus one exposed read.
    reduce_reads = sum(1 for _, a in stores if isinstance(a.node, ReduceStore))

    # Unconditional plain stores are the only coverage producers.
    covering = [
        (p, a)
        for p, a in stores
        if a.cond_depth == 0 and not isinstance(a.node, ReduceStore)
    ]
    covered = 0
    exposed = reduce_reads
    if not unanalysable:
        for rpos, racc in loads:
            if _read_covered(rpos, racc, covering):
                covered += 1
            else:
                exposed += 1
    else:
        exposed += len(loads)

    writes = len(stores)
    reads = len(loads) + reduce_reads
    fully_overwritten = any(_covers_fully(a) for _, a in covering)

    if unanalysable:
        direction = Direction.UNKNOWN
    elif not entries:
        direction = Direction.DEAD
    elif not stores:
        direction = Direction.IN
    elif not reads:
        direction = Direction.OUT
    elif exposed == 0:
        # Covered reads: no host value flows in.  Whether the final value
        # escapes is the declaration's call — mapped out means it does.
        direction = Direction.OUT if arr.is_output else Direction.TEMP
    else:
        direction = Direction.INOUT

    nbytes = arr.element_count() * as_expr(arr.dtype.size)
    zero = as_expr(0)
    if direction is Direction.UNKNOWN:
        copy_in = nbytes if arr.is_input else zero
        copy_out = nbytes if arr.is_output else zero
    else:
        needs_in = direction in (Direction.IN, Direction.INOUT)
        needs_out = writes > 0 and arr.is_output
        copy_in = nbytes if needs_in else zero
        copy_out = nbytes if needs_out else zero

    return ArrayDataflow(
        array=arr,
        direction=direction,
        reads=reads,
        writes=writes,
        exposed_reads=exposed,
        covered_reads=covered,
        fully_overwritten=fully_overwritten,
        copy_in=copy_in,
        copy_out=copy_out,
        unanalysable=unanalysable,
    )


def _affine_ok(acc: MemoryAccess) -> bool:
    try:
        decompose_affine(
            acc.flat_index(), {lp.var.name for lp in acc.loop_path}
        )
    except NonAffineError:
        return False
    return True


def _expr_zero(e: Expr) -> bool:
    """Symbolic zero test: structural cancellation must leave constant 0."""
    return e.constant_value() == 0


def _common_prefix_len(a: tuple[Loop, ...], b: tuple[Loop, ...]) -> int:
    k = 0
    for la, lb in zip(a, b):
        if la is not lb:
            break
        k += 1
    return k


def _read_covered(
    rpos: int,
    read: MemoryAccess,
    covering: list[tuple[int, MemoryAccess]],
) -> bool:
    """Is every value this read observes produced by an earlier store?

    Pre-order access positions give a sound "executes no later than"
    order for statements of one iteration context: a store earlier in the
    list either sits earlier in the same body, or belongs to a sibling
    subtree that completes before the read's subtree starts.  Coverage
    across iterations of a shared loop (a store in iteration ``i`` feeding
    a read in iteration ``i+1``) is deliberately not claimed.
    """
    for spos, store in covering:
        if spos >= rpos:
            continue
        k = _common_prefix_len(store.loop_path, read.loop_path)
        # Per-dimension argument: in the shared iteration context, each
        # dimension is either addressed identically or fully swept by the
        # store's sub-nest (covers row/tile scratch).
        if _dims_cover(store, read, k):
            return True
        # Flattened-index argument: a sub-nest below the shared loops
        # that overwrites the whole array completes before the read.
        if _covers_fully(store, skip=k):
            return True
    return False


def _dims_cover(store: MemoryAccess, read: MemoryAccess, k: int) -> bool:
    """Dimension-wise coverage in the shared iteration context.

    For every array dimension, the store must either use the *same* index
    expression as the read (over shared-prefix variables only — same
    element this iteration) or sweep the dimension's full extent with a
    dedicated sub-nest variable (stride 1 from 0).  Reads are assumed
    in-bounds — out-of-bounds indices are the bounds pass's finding, and
    an OOB read is undefined regardless of what was copied in.
    """
    if len(store.idxs) != len(read.idxs):
        return False
    sub_vars = {lp.var.name: lp for lp in store.loop_path[k:]}
    inner_names = set(sub_vars) | {
        lp.var.name for lp in read.loop_path[k:]
    }
    used: set[str] = set()
    for si, ri, extent in zip(store.idxs, read.idxs, store.array.shape):
        same = (
            _expr_zero(si - ri)
            # Guard against loop names reused in disjoint scopes: a
            # structural match is only meaningful over shared variables.
            and not (si.free_symbols() & inner_names)
        )
        if same:
            continue
        try:
            form = decompose_affine(si, set(sub_vars))
        except NonAffineError:
            return False
        if len(form.coeffs) != 1:
            return False
        ((var, coeff),) = form.coeffs.items()
        if var in used:
            return False
        loop = sub_vars[var]
        if not _expr_zero(coeff - as_expr(1)):
            return False
        if not _expr_zero(form.const + loop.start):
            return False
        if not _expr_zero(loop.count - extent):
            return False
        used.add(var)
    return True


def _covers_fully(access: MemoryAccess, skip: int = 0) -> bool:
    """Does this store's nest (below ``skip`` outer loops) write every element?

    The flattened index must be affine in the sub-nest's induction
    variables, start at element 0, and tile the array contiguously: some
    ordering of the variables must have mixed-radix coefficients
    ``1, count(v1), count(v1)*count(v2), ...`` whose product equals the
    element count.  All comparisons are symbolic, so ``A[i*n + j]`` under
    ``i in [0,m) x j in [0,n)`` covers an ``m*n`` array for *any* binding.
    """
    sub = access.loop_path[skip:]
    sub_vars = {lp.var.name: lp for lp in sub}
    try:
        form = decompose_affine(access.flat_index(), set(sub_vars))
    except NonAffineError:
        return False
    # Index of the first element written: loop starts substituted in.
    base: Expr = form.const
    for var, coeff in form.coeffs.items():
        base = base + coeff * sub_vars[var].start
    if not _expr_zero(base):
        return False
    remaining = dict(form.coeffs)
    radix: Expr = as_expr(1)
    while remaining:
        for var, coeff in list(remaining.items()):
            if _expr_zero(coeff - radix):
                radix = radix * sub_vars[var].count
                del remaining[var]
                break
        else:
            return False
    return _expr_zero(radix - access.array.element_count())
