"""Target regions and the builder DSL.

A :class:`Region` is the IR image of an OpenMP ``target`` construct: the unit
that is outlined by the compiler, duplicated into a CPU-parallel and a GPU
version, analysed statically, and dispatched by the runtime.

The builder API writes kernels close to their C form.  GEMM::

    r = Region("gemm")
    ni, nj, nk = r.param_tuple("ni", "nj", "nk")
    A = r.array("A", (ni, nk))
    B = r.array("B", (nk, nj))
    C = r.array("C", (ni, nj), inout=True)
    alpha, beta = r.scalars("alpha", "beta")
    with r.parallel_loop("i", ni) as i:
        with r.loop("j", nj) as j:
            acc = r.local("acc", C[i, j] * beta)
            with r.loop("k", nk) as k:
                r.assign(acc, acc + alpha * A[i, k] * B[k, j])
            r.store(C[i, j], acc)
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..symbolic import Expr, as_expr
from .nodes import (
    Array,
    Cmp,
    If,
    IterVar,
    Load,
    LocalAssign,
    LocalDef,
    LocalRef,
    Loop,
    Param,
    ScalarArg,
    Select,
    Stmt,
    Store,
    Un,
    VExpr,
    _as_value,
    _lift,
)
from .types import DType, f32

__all__ = [
    "Region",
    "evaluate_transfer_bytes",
    "sqrt",
    "expv",
    "absv",
    "select",
    "cmp",
    "minv",
    "maxv",
]


def sqrt(x: VExpr) -> VExpr:
    """Square root of a value expression (CORR's standard deviation)."""
    return Un("sqrt", _as_value(x))


def expv(x: VExpr) -> VExpr:
    """Exponential of a value expression."""
    return Un("exp", _as_value(x))


def absv(x: VExpr) -> VExpr:
    """Absolute value of a value expression."""
    return Un("abs", _as_value(x))


def minv(a: VExpr, b: VExpr) -> VExpr:
    """Elementwise minimum value expression."""
    from .nodes import Bin

    return Bin("min", _as_value(a), _as_value(b))


def maxv(a: VExpr, b: VExpr) -> VExpr:
    """Elementwise maximum value expression."""
    from .nodes import Bin

    return Bin("max", _as_value(a), _as_value(b))


def cmp(op: str, lhs: VExpr, rhs: VExpr) -> Cmp:
    """Build a comparison predicate for :func:`select` or ``Region.if_``."""
    return Cmp(op, _as_value(lhs), _as_value(rhs))


def select(cond: Cmp, if_true: VExpr, if_false: VExpr) -> Select:
    """Ternary value: ``cond ? if_true : if_false``."""
    return Select(cond, _as_value(if_true), _as_value(if_false))


@dataclass
class Region:
    """An outlined OpenMP target region (a parallel loop nest kernel)."""

    name: str
    arrays: dict[str, Array] = field(default_factory=dict)
    params:_ParamTable = None  # type: ignore[assignment]
    scalar_args: dict[str, ScalarArg] = field(default_factory=dict)
    body: list[Stmt] = field(default_factory=list)

    def __post_init__(self):
        self.params = _ParamTable()
        self._stack: list[list[Stmt]] = [self.body]
        self._local_counter = 0
        self._ivars: dict[str, IterVar] = {}

    # -- declarations ------------------------------------------------------
    def param(self, name: str) -> Param:
        """Declare a symbolic integer parameter (extent/trip count)."""
        p = Param(name)
        self.params.add(p)
        return p

    def param_tuple(self, *names: str) -> tuple[Param, ...]:
        """Declare several parameters at once."""
        return tuple(self.param(n) for n in names)

    def array(
        self,
        name: str,
        shape: tuple,
        dtype: DType = f32,
        *,
        inout: bool = False,
        output: bool = False,
    ) -> Array:
        """Declare an array operand.

        ``output=True`` → written only (transferred device→host);
        ``inout=True`` → read and written (transferred both ways).
        """
        if name in self.arrays:
            raise ValueError(f"array {name!r} already declared")
        shape_exprs = tuple(_lift(s) for s in shape)
        arr = Array(
            name,
            shape_exprs,
            dtype,
            is_input=not output,
            is_output=output or inout,
        )
        self.arrays[name] = arr
        return arr

    def scalar(self, name: str, dtype: DType = f32) -> ScalarArg:
        """Declare a scalar kernel argument (e.g. ``alpha``)."""
        if name in self.scalar_args:
            raise ValueError(f"scalar {name!r} already declared")
        s = ScalarArg(name, dtype)
        self.scalar_args[name] = s
        return s

    def scalars(self, *names: str, dtype: DType = f32) -> tuple[ScalarArg, ...]:
        """Declare several scalar arguments at once."""
        return tuple(self.scalar(n, dtype) for n in names)

    # -- structured construction -------------------------------------------
    @contextlib.contextmanager
    def loop(self, var: str, count, *, start=0, parallel: bool = False) -> Iterator[IterVar]:
        """Open a (sequential by default) counted loop as a context manager."""
        if var in self._ivars:
            raise ValueError(f"induction variable {var!r} already in scope")
        iv = IterVar(var)
        self._ivars[var] = iv
        node = Loop(iv, _lift(count), [], start=_lift(start), parallel=parallel)
        self._emit(node)
        self._stack.append(node.body)
        try:
            yield iv
        finally:
            self._stack.pop()
            del self._ivars[var]

    def parallel_loop(self, var: str, count, *, start=0):
        """Open a work-shared (``parallel for``) loop."""
        return self.loop(var, count, start=start, parallel=True)

    @contextlib.contextmanager
    def if_(self, cond: Cmp) -> Iterator[None]:
        """Open a conditional; statements emitted inside go to the then-branch."""
        node = If(cond, [], [])
        self._emit(node)
        self._stack.append(node.then_body)
        try:
            yield
        finally:
            self._stack.pop()

    # -- statement emission --------------------------------------------------
    def local(self, name: str, init, dtype: DType = f32) -> LocalRef:
        """Define a thread-local scalar with an initial value; returns a ref."""
        self._local_counter += 1
        unique = f"{name}.{self._local_counter}"
        self._emit(LocalDef(unique, _as_value(init), dtype))
        return LocalRef(unique, dtype)

    def assign(self, ref: LocalRef, value) -> None:
        """Assign a new value to a local scalar (reduction updates)."""
        if not isinstance(ref, LocalRef):
            raise TypeError("assign() target must be a LocalRef")
        self._emit(LocalAssign(ref.name, _as_value(value)))

    def store(self, load: Load, value) -> None:
        """Emit ``array[idxs] = value``; the target is written as ``A[i, j]``."""
        if not isinstance(load, Load):
            raise TypeError("store() target must be an array element A[i, j]")
        self._emit(Store(load.array, load.idxs, _as_value(value)))

    def reduce_store(self, load: Load, value, op: str = "add") -> None:
        """Emit a band-wide reduction ``array[idxs] ⊕= value``.

        The target index must not depend on any parallel band variable —
        all work items combine into the same cell (OpenMP's
        ``reduction(⊕: x)``).
        """
        from .nodes import ReduceStore

        if not isinstance(load, Load):
            raise TypeError("reduce_store() target must be an array element")
        band_vars = {
            lp.var.name
            for body in [self.body]
            for lp in _band_of(body)
        }
        for idx in load.idxs:
            if idx.free_symbols() & band_vars:
                raise ValueError(
                    "reduction target index must not depend on band variables"
                )
        self._emit(ReduceStore(load.array, load.idxs, _as_value(value), op))

    def _emit(self, stmt: Stmt) -> None:
        self._stack[-1].append(stmt)

    # -- queries --------------------------------------------------------------
    def parallel_band(self) -> list[Loop]:
        """The outermost contiguous run of parallel loops (the thread space)."""
        band: list[Loop] = []
        body = self.body
        while len(body) == 1 and isinstance(body[0], Loop) and body[0].parallel:
            band.append(body[0])
            body = body[0].body
        if not band:
            raise ValueError(f"region {self.name!r} has no outer parallel loop")
        return band

    def parallel_iterations(self) -> Expr:
        """Symbolic total number of parallel work items (collapsed extent)."""
        total: Expr = as_expr(1)
        for lp in self.parallel_band():
            total = total * lp.count
        return total

    def transfer_bytes(self, env: Mapping[str, int]) -> tuple[int, int]:
        """(host→device, device→host) bytes for the region's arrays.

        Raises :class:`KeyError` naming the region and the unbound extent
        symbols when ``env`` is incomplete, and :class:`ValueError` when a
        binding makes an array's byte count negative.
        """
        to_dev = 0
        to_host = 0
        for arr in self.arrays.values():
            nbytes = evaluate_transfer_bytes(
                self.name,
                arr.name,
                arr.element_count() * as_expr(arr.dtype.size),
                env,
            )
            if arr.is_input:
                to_dev += nbytes
            if arr.is_output:
                to_host += nbytes
        return to_dev, to_host

    def free_symbols(self) -> frozenset[str]:
        """All symbol names the region depends on (parameters)."""
        syms: set[str] = set()

        def walk_stmts(stmts: list[Stmt], bound: set[str]) -> None:
            for s in stmts:
                if isinstance(s, Loop):
                    syms.update(s.count.free_symbols() - bound)
                    syms.update(s.start.free_symbols() - bound)
                    walk_stmts(s.body, bound | {s.var.name})
                elif isinstance(s, If):
                    walk_stmts(s.then_body, bound)
                    walk_stmts(s.else_body, bound)
                elif isinstance(s, Store):
                    for idx in s.idxs:
                        syms.update(idx.free_symbols() - bound)
                    _value_syms(s.value, bound, syms)
                elif isinstance(s, (LocalDef, LocalAssign)):
                    v = s.init if isinstance(s, LocalDef) else s.value
                    _value_syms(v, bound, syms)

        walk_stmts(self.body, set())
        for arr in self.arrays.values():
            for dim in arr.shape:
                syms.update(dim.free_symbols())
        return frozenset(syms)

    def __repr__(self) -> str:
        return f"Region({self.name!r}, arrays={list(self.arrays)}, params={self.params.names()})"


def evaluate_transfer_bytes(
    region_name: str,
    array_name: str,
    nbytes: Expr,
    env: Mapping[str, int],
) -> int:
    """Evaluate a symbolic transfer byte count with actionable failures.

    Shared by the declared pricing (:meth:`Region.transfer_bytes`) and the
    inferred pricing (:meth:`repro.ir.dataflow.RegionDataflow.transfer_bytes`)
    so both fail identically on incomplete or nonsensical bindings.
    """
    missing = nbytes.free_symbols() - set(env)
    if missing:
        raise KeyError(
            f"region {region_name!r}: transfer sizing of array "
            f"{array_name!r} needs unbound symbols {sorted(missing)}"
        )
    total = int(nbytes.evaluate(env))
    if total < 0:
        raise ValueError(
            f"region {region_name!r}: array {array_name!r} transfer size "
            f"is negative ({total} bytes) — check the extent bindings"
        )
    return total


def _value_syms(v: VExpr, bound: set[str], out: set[str]) -> None:
    for node in v.walk():
        if isinstance(node, Load):
            for idx in node.idxs:
                out.update(idx.free_symbols() - bound)


def _band_of(body) -> list:
    """The outermost contiguous parallel band of a statement list."""
    from .nodes import Loop

    band = []
    while len(body) == 1 and isinstance(body[0], Loop) and body[0].parallel:
        band.append(body[0])
        body = body[0].body
    return band


class _ParamTable:
    """Ordered registry of region parameters."""

    def __init__(self):
        self._params: dict[str, Param] = {}

    def add(self, p: Param) -> None:
        if p.name in self._params:
            raise ValueError(f"parameter {p.name!r} already declared")
        self._params[p.name] = p

    def names(self) -> list[str]:
        return list(self._params)

    def __iter__(self):
        return iter(self._params.values())

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def __len__(self) -> int:
        return len(self._params)
