"""Human-readable textual dump of a region (for debugging and docs)."""

from __future__ import annotations

from .nodes import If, LocalAssign, LocalDef, Loop, Stmt, Store
from .region import Region

__all__ = ["region_to_text"]


def region_to_text(region: Region) -> str:
    """Render a region as indented pseudo-C (stable across runs)."""
    lines: list[str] = [f"target region {region.name} {{"]
    for arr in region.arrays.values():
        io = (
            "inout"
            if (arr.is_input and arr.is_output)
            else ("out" if arr.is_output else "in")
        )
        lines.append(f"  {io} {arr!r}")
    for s in region.scalar_args.values():
        lines.append(f"  scalar {s.dtype} {s.name}")
    _emit(region.body, lines, 1)
    lines.append("}")
    return "\n".join(lines)


def _emit(stmts: list[Stmt], lines: list[str], depth: int) -> None:
    pad = "  " * depth
    for s in stmts:
        if isinstance(s, Loop):
            kw = "parallel for" if s.parallel else "for"
            start = repr(s.start)
            lines.append(
                f"{pad}{kw} ({s.var.name} = {start}; "
                f"{s.var.name} < {start} + {s.count!r}; {s.var.name}++) {{"
            )
            _emit(s.body, lines, depth + 1)
            lines.append(f"{pad}}}")
        elif isinstance(s, If):
            lines.append(f"{pad}if {s.cond!r} {{")
            _emit(s.then_body, lines, depth + 1)
            if s.else_body:
                lines.append(f"{pad}}} else {{")
                _emit(s.else_body, lines, depth + 1)
            lines.append(f"{pad}}}")
        elif isinstance(s, (Store, LocalDef, LocalAssign)):
            lines.append(f"{pad}{s!r};")
        else:  # pragma: no cover - defensive
            lines.append(f"{pad}<unknown {type(s).__name__}>;")
