"""Parser for the textual region format produced by :mod:`repro.ir.printer`.

``parse_region(region_to_text(r))`` reconstructs an equivalent region, so
kernels can be stored, diffed and shipped as text — and the printer/parser
pair gives the IR a serialization format for free.

The grammar is exactly the printer's output language::

    target region NAME {
      in f32 A[[ni]][[nk]]
      inout f32 C[[ni]][[nj]]
      scalar f32 alpha
      parallel for (i = 0; i < 0 + [ni]; i++) {
        f32 %acc.1 = (C[[i]][[j]] * beta);
        %acc.1 = (%acc.1 + ...);
        C[[i]][[j]] = %acc.1;
        if (...) { ... } else { ... }
      }
    }

Region parameters are not listed explicitly in the text; they are inferred
as the free symbols of array shapes and loop bounds.
"""

from __future__ import annotations

import re

from ..symbolic import Expr, FloorDiv, Max, Min, Mod, Sym, as_expr
from .nodes import (
    Array,
    Bin,
    Cmp,
    ConstV,
    If,
    IterVar,
    Load,
    LocalAssign,
    LocalDef,
    LocalRef,
    Loop,
    ScalarArg,
    Select,
    Store,
    Un,
    VExpr,
)
from .region import Region
from .types import DType, f32, f64, i32, i64

__all__ = ["parse_index", "parse_region", "ParseError"]


class ParseError(Exception):
    """A syntax or semantic problem in a textual region."""


_DTYPES = {"f32": f32, "f64": f64, "i32": i32, "i64": i64}

_TOKEN_RE = re.compile(
    r"""
    (?P<num>(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)(?![A-Za-z_]))
  | (?P<sym>\[[A-Za-z_][\w.]*\])
  | (?P<local>%[A-Za-z_][\w.]*)
  | (?P<name>\d*[A-Za-z_][\w.]*)
  | (?P<op><=|>=|==|!=|\+\+|//|[-+*/%<>=(){};?:,\[\]])
  | (?P<ws>\s+)
""",
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    out: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = m.end()
        kind = m.lastgroup
        if kind != "ws":
            out.append((kind, m.group()))
    out.append(("eof", ""))
    return out


class _Parser:
    def __init__(self, text: str):
        self.toks = _tokenize(text)
        self.i = 0
        self.region: Region | None = None
        self._ivars: dict[str, IterVar] = {}
        self._locals: dict[str, DType] = {}

    # -- token plumbing -----------------------------------------------------
    def peek(self) -> tuple[str, str]:
        return self.toks[self.i]

    def next(self) -> tuple[str, str]:
        tok = self.toks[self.i]
        self.i += 1
        return tok

    def expect(self, value: str) -> str:
        kind, got = self.next()
        if got != value:
            raise ParseError(f"expected {value!r}, got {got!r}")
        return got

    def expect_kind(self, kind: str) -> str:
        got_kind, got = self.next()
        if got_kind != kind:
            raise ParseError(f"expected {kind}, got {got!r}")
        return got

    def at(self, value: str) -> bool:
        return self.peek()[1] == value

    # -- top level ----------------------------------------------------------
    def parse(self) -> Region:
        self.expect("target")
        self.expect("region")
        name = self.expect_kind("name")
        self.region = Region(name)
        self.expect("{")
        while True:
            kind, val = self.peek()
            if val in ("in", "out", "inout"):
                self._parse_array_decl()
            elif val == "scalar":
                self._parse_scalar_decl()
            else:
                break
        body = self._parse_statements()
        self.region.body.extend(body)
        self.expect("}")
        self._declare_params()
        return self.region

    def _parse_array_decl(self) -> None:
        io = self.next()[1]
        dtype = self._parse_dtype()
        name = self.expect_kind("name")
        shape: list[Expr] = []
        while self.at("("):
            break  # pragma: no cover - defensive
        while self.peek()[1] == "[":
            # shapes print as A[[ni]][[nk]]: '[' then an index expr then ']'
            self.expect("[")
            shape.append(self._parse_index())
            self.expect("]")
        if not shape:
            raise ParseError(f"array {name!r} declared without a shape")
        arr = Array(
            name,
            tuple(shape),
            dtype,
            is_input=(io in ("in", "inout")),
            is_output=(io in ("out", "inout")),
        )
        self.region.arrays[name] = arr

    def _parse_scalar_decl(self) -> None:
        self.expect("scalar")
        dtype = self._parse_dtype()
        name = self.expect_kind("name")
        self.region.scalar_args[name] = ScalarArg(name, dtype)

    def _parse_dtype(self) -> DType:
        name = self.expect_kind("name")
        if name not in _DTYPES:
            raise ParseError(f"unknown dtype {name!r}")
        return _DTYPES[name]

    def _declare_params(self) -> None:
        bound = set(self._ivars)
        syms = self.region.free_symbols() - bound
        for name in sorted(syms):
            if name not in self.region.params:
                self.region.param(name)

    # -- statements -----------------------------------------------------------
    def _parse_statements(self) -> list:
        out = []
        while not self.at("}") and self.peek()[0] != "eof":
            out.append(self._parse_statement())
        return out

    def _parse_statement(self):
        kind, val = self.peek()
        if val in ("parallel", "for"):
            return self._parse_loop()
        if val == "if":
            return self._parse_if()
        if val in _DTYPES:  # local definition: "f32 %acc.1 = expr;"
            dtype = self._parse_dtype()
            local = self.expect_kind("local")[1:]
            self.expect("=")
            init = self._parse_value()
            self.expect(";")
            self._locals[local] = dtype
            return LocalDef(local, init, dtype)
        if kind == "local":  # assignment: "%acc.1 = expr;"
            local = self.next()[1][1:]
            if local not in self._locals:
                raise ParseError(f"assignment to undefined local %{local}")
            self.expect("=")
            value = self._parse_value()
            self.expect(";")
            return LocalAssign(local, value)
        if val == "reduce":  # "reduce(add) A[[0]] = expr;"
            from .nodes import ReduceStore

            self.next()
            self.expect("(")
            op = self.expect_kind("name")
            self.expect(")")
            name = self.expect_kind("name")
            arr = self.region.arrays.get(name)
            if arr is None:
                raise ParseError(f"reduction into undeclared array {name!r}")
            idxs = self._parse_index_list()
            self.expect("=")
            value = self._parse_value()
            self.expect(";")
            return ReduceStore(arr, idxs, value, op)
        if kind == "name":  # store: "A[[i]][[j]] = expr;"
            name = self.next()[1]
            arr = self.region.arrays.get(name)
            if arr is None:
                raise ParseError(f"store to undeclared array {name!r}")
            idxs = self._parse_index_list()
            self.expect("=")
            value = self._parse_value()
            self.expect(";")
            return Store(arr, idxs, value)
        raise ParseError(f"unexpected token {val!r} in statement position")

    def _parse_loop(self) -> Loop:
        parallel = False
        if self.at("parallel"):
            self.next()
            parallel = True
        self.expect("for")
        self.expect("(")
        var = self.expect_kind("name")
        self.expect("=")
        start = self._parse_index()
        self.expect(";")
        var2 = self.expect_kind("name")
        if var2 != var:
            raise ParseError(f"loop condition on {var2!r}, expected {var!r}")
        self.expect("<")
        bound = self._parse_index()
        self.expect(";")
        var3 = self.expect_kind("name")
        self.expect("++")
        if var3 != var:
            raise ParseError(f"loop increment on {var3!r}, expected {var!r}")
        self.expect(")")
        self.expect("{")
        iv = IterVar(var)
        if var in self._ivars:
            raise ParseError(f"shadowed induction variable {var!r}")
        self._ivars[var] = iv
        body = self._parse_statements()
        self.expect("}")
        del self._ivars[var]
        return Loop(iv, bound - start, body, start=start, parallel=parallel)

    def _parse_if(self) -> If:
        self.expect("if")
        cond = self._parse_value()
        if not isinstance(cond, Cmp):
            raise ParseError("if condition must be a comparison")
        self.expect("{")
        then_body = self._parse_statements()
        self.expect("}")
        else_body = []
        if self.at("else"):
            self.next()
            self.expect("{")
            else_body = self._parse_statements()
            self.expect("}")
        return If(cond, then_body, else_body)

    # -- index (symbolic integer) expressions -----------------------------------
    def _parse_index_list(self) -> tuple[Expr, ...]:
        idxs: list[Expr] = []
        while self.at("["):
            self.expect("[")
            idxs.append(self._parse_index())
            self.expect("]")
        if not idxs:
            raise ParseError("expected at least one [[index]]")
        return tuple(idxs)

    def _parse_index(self) -> Expr:
        return self._index_add()

    def _index_add(self) -> Expr:
        e = self._index_mul()
        while self.peek()[1] in ("+", "-"):
            op = self.next()[1]
            rhs = self._index_mul()
            e = e + rhs if op == "+" else e - rhs
        return e

    def _index_mul(self) -> Expr:
        e = self._index_atom()
        while self.peek()[1] in ("*", "//", "%"):
            op = self.next()[1]
            rhs = self._index_atom()
            if op == "*":
                e = e * rhs
            elif op == "//":
                e = FloorDiv.make(e, rhs)
            else:
                e = Mod.make(e, rhs)
        return e

    def _index_atom(self) -> Expr:
        kind, val = self.peek()
        if val == "(":
            self.next()
            e = self._parse_index()
            self.expect(")")
            return e
        if val == "-":
            self.next()
            return -self._index_atom()
        if kind == "num":
            self.next()
            return as_expr(int(val) if "." not in val and "e" not in val.lower() else float(val))
        if kind == "sym":
            self.next()
            return Sym(val[1:-1])
        if val in ("min", "max"):
            self.next()
            self.expect("(")
            a = self._parse_index()
            self.expect(",")
            b = self._parse_index()
            self.expect(")")
            return (Min if val == "min" else Max).make(a, b)
        raise ParseError(f"unexpected token {val!r} in index expression")

    # -- value (dataflow) expressions ----------------------------------------------
    _CMP_OPS = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge", "==": "eq", "!=": "ne"}

    def _parse_value(self) -> VExpr:
        return self._value_cmp()

    def _value_cmp(self) -> VExpr:
        e = self._value_add()
        if self.peek()[1] in self._CMP_OPS:
            op = self.next()[1]
            rhs = self._value_add()
            return Cmp(self._CMP_OPS[op], e, rhs)
        return e

    def _value_add(self) -> VExpr:
        e = self._value_mul()
        while self.peek()[1] in ("+", "-"):
            op = self.next()[1]
            rhs = self._value_mul()
            e = Bin("add" if op == "+" else "sub", e, rhs)
        return e

    def _value_mul(self) -> VExpr:
        e = self._value_atom()
        while self.peek()[1] in ("*", "/"):
            op = self.next()[1]
            rhs = self._value_atom()
            e = Bin("mul" if op == "*" else "div", e, rhs)
        return e

    def _value_atom(self) -> VExpr:
        kind, val = self.peek()
        if val == "(":
            self.next()
            e = self._parse_value()
            if self.at("?"):  # select: (cond ? a : b)
                self.next()
                if not isinstance(e, Cmp):
                    raise ParseError("select condition must be a comparison")
                a = self._parse_value()
                self.expect(":")
                b = self._parse_value()
                self.expect(")")
                return Select(e, a, b)
            self.expect(")")
            return e
        if val == "-":
            self.next()
            if self.peek()[0] == "num":  # negative literal, not a neg() op
                return ConstV(-float(self.next()[1]))
            return Un("neg", self._value_atom())
        if kind == "num":
            self.next()
            return ConstV(float(val))
        if kind == "local":
            self.next()
            name = val[1:]
            if name not in self._locals:
                raise ParseError(f"read of undefined local %{name}")
            return LocalRef(name, self._locals[name])
        if val in ("sqrt", "abs", "exp", "neg"):
            self.next()
            self.expect("(")
            operand = self._parse_value()
            self.expect(")")
            return Un(val if val != "neg" else "neg", operand)
        if val in ("min", "max"):
            self.next()
            self.expect("(")
            a = self._parse_value()
            self.expect(",")
            b = self._parse_value()
            self.expect(")")
            return Bin(val, a, b)
        if kind == "name":
            self.next()
            if self.at("["):  # a load
                arr = self.region.arrays.get(val)
                if arr is None:
                    raise ParseError(f"load from undeclared array {val!r}")
                return Load(arr, self._parse_index_list())
            if val in self.region.scalar_args:
                return self.region.scalar_args[val]
            raise ParseError(f"unknown name {val!r} in value expression")
        raise ParseError(f"unexpected token {val!r} in value expression")


def parse_region(text: str) -> Region:
    """Parse a textual region dump back into a :class:`Region`."""
    return _Parser(text).parse()


def parse_index(text: str) -> Expr:
    """Parse a standalone symbolic index expression (an ``Expr`` repr).

    Inverse of ``repr`` on the symbolic engine's canonical forms — the
    property suite proves ``parse_index(repr(e)) == e`` — which gives the
    analysis cache a JSON-safe serialization for symbolic strides.
    """
    p = _Parser(text)
    expr = p._parse_index()
    if p.peek()[0] != "eof":
        raise ParseError(f"trailing input after index expression: {p.peek()[1]!r}")
    return expr
