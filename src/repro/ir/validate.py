"""Structural verifier for regions.

Catches malformed kernels early — the same role ``llvm::verifyModule`` plays
— so that analyses downstream can assume well-formedness instead of
defending against it.

The checks are expressed as diagnostics (:mod:`repro.lint.diagnostics`):
:func:`structural_diagnostics` returns every structural problem as a
``STRUCTxxx`` finding with the IR node path attached, and is what the lint
subsystem's structural pass runs.  :func:`validate_region` keeps the
historical raise-on-first-error contract on top of the same findings.
"""

from __future__ import annotations

from ..lint.diagnostics import Diagnostic, Severity
from .nodes import If, Load, LocalAssign, LocalDef, LocalRef, Loop, Stmt, Store, VExpr
from .region import Region

__all__ = ["validate_region", "structural_diagnostics", "ValidationError"]

#: Structural diagnostic codes (all error severity).
STRUCT_NO_BAND = "STRUCT001"  # no outer parallel loop
STRUCT_INNER_PARALLEL = "STRUCT002"  # parallel loop outside the outermost band
STRUCT_SHADOWED_IVAR = "STRUCT003"  # induction variable shadowing
STRUCT_UNDECLARED_ARRAY = "STRUCT004"  # access to an array of another region
STRUCT_UNBOUND_SYMBOL = "STRUCT005"  # index/extent references unknown names
STRUCT_UNDEFINED_LOCAL = "STRUCT006"  # read/write of an undefined local
STRUCT_UNKNOWN_STMT = "STRUCT007"  # unrecognised statement node


class ValidationError(ValueError):
    """A structural problem in a region's IR."""


def validate_region(region: Region) -> None:
    """Raise :class:`ValidationError` on the first structural problem.

    Checks performed:

    * the region has at least one outer parallel loop (an OpenMP work-shared
      nest — the object of study);
    * every induction variable used in an index expression is in scope;
    * every local read is dominated by its definition (single-block scoping);
    * every array referenced is declared on the region;
    * loop counts/array extents only reference declared parameters;
    * parallel loops form one outermost contiguous band (the compiler's
      collapse restriction).
    """
    for diag in structural_diagnostics(region):
        if diag.severity is Severity.ERROR:
            raise ValidationError(f"{diag.message} (at {diag.where})")


def structural_diagnostics(region: Region) -> list[Diagnostic]:
    """All structural problems of a region as ``STRUCTxxx`` diagnostics."""
    out: list[Diagnostic] = []

    def emit(code: str, message: str, path: tuple[str, ...], hint: str | None = None):
        out.append(
            Diagnostic(
                code=code,
                severity=Severity.ERROR,
                message=message,
                region=region.name,
                path=path,
                hint=hint,
                source="structural",
            )
        )

    try:
        band = {id(lp) for lp in region.parallel_band()}
    except ValueError:
        band = set()
        emit(
            STRUCT_NO_BAND,
            "region has no outermost parallel loop",
            (),
            hint="open the nest with Region.parallel_loop(...)",
        )

    declared_params = set(region.params.names())
    for arr in region.arrays.values():
        _check_symbols(
            emit,
            _shape_syms(arr),
            declared_params,
            f"shape of array {arr.name}",
            (f"array {arr.name}",),
        )

    def check_value(
        value: VExpr, ivars: set[str], locals_: set[str], path: tuple[str, ...]
    ) -> None:
        for node in value.walk():
            if isinstance(node, Load):
                leaf = path + (f"load {node!r}",)
                if node.array.name not in region.arrays:
                    emit(
                        STRUCT_UNDECLARED_ARRAY,
                        f"load from undeclared array {node.array.name!r}",
                        leaf,
                        hint="declare the array on this region with Region.array(...)",
                    )
                for idx in node.idxs:
                    _check_symbols(
                        emit,
                        idx.free_symbols(),
                        declared_params | ivars,
                        "load index",
                        leaf,
                    )
            elif isinstance(node, LocalRef):
                if node.name not in locals_:
                    emit(
                        STRUCT_UNDEFINED_LOCAL,
                        f"read of undefined local %{node.name}",
                        path + (f"%{node.name}",),
                    )

    def visit(
        stmts: list[Stmt], ivars: set[str], locals_: set[str], path: tuple[str, ...]
    ) -> None:
        for s in stmts:
            if isinstance(s, Loop):
                kind = "parallel for" if s.parallel else "for"
                here = path + (f"{kind} {s.var.name}",)
                _check_symbols(
                    emit, s.count.free_symbols(), declared_params | ivars, "loop count", here
                )
                _check_symbols(
                    emit, s.start.free_symbols(), declared_params | ivars, "loop start", here
                )
                if s.parallel and id(s) not in band:
                    emit(
                        STRUCT_INNER_PARALLEL,
                        f"parallel loop {s.var.name!r} is not part of the outermost band",
                        here,
                        hint="collapse it into the outer band or make it sequential",
                    )
                if s.var.name in ivars:
                    emit(
                        STRUCT_SHADOWED_IVAR,
                        f"shadowed induction variable {s.var.name!r}",
                        here,
                    )
                    visit(s.body, ivars, locals_, here)
                else:
                    visit(s.body, ivars | {s.var.name}, locals_, here)
            elif isinstance(s, If):
                here = path + (f"if {s.cond!r}",)
                check_value(s.cond, ivars, locals_, here)
                visit(s.then_body, ivars, set(locals_), here + ("then",))
                visit(s.else_body, ivars, set(locals_), here + ("else",))
            elif isinstance(s, Store):
                here = path + (f"store {s.array.name}[{']['.join(repr(i) for i in s.idxs)}]",)
                if s.array.name not in region.arrays:
                    emit(
                        STRUCT_UNDECLARED_ARRAY,
                        f"store to undeclared array {s.array.name!r}",
                        here,
                        hint="declare the array on this region with Region.array(...)",
                    )
                for idx in s.idxs:
                    _check_symbols(
                        emit, idx.free_symbols(), declared_params | ivars, "store index", here
                    )
                check_value(s.value, ivars, locals_, here)
            elif isinstance(s, LocalDef):
                here = path + (f"%{s.name}",)
                check_value(s.init, ivars, locals_, here)
                locals_.add(s.name)
            elif isinstance(s, LocalAssign):
                here = path + (f"%{s.name}",)
                if s.name not in locals_:
                    emit(
                        STRUCT_UNDEFINED_LOCAL,
                        f"assignment to undefined local %{s.name}",
                        here,
                    )
                check_value(s.value, ivars, locals_, here)
            else:
                emit(
                    STRUCT_UNKNOWN_STMT,
                    f"unknown statement {type(s).__name__}",
                    path + (type(s).__name__,),
                )

    visit(region.body, set(), set(), ())
    return out


def _shape_syms(arr) -> frozenset[str]:
    syms: set[str] = set()
    for dim in arr.shape:
        syms |= dim.free_symbols()
    return frozenset(syms)


def _check_symbols(emit, symbols, allowed: set[str], what: str, path) -> None:
    unknown = symbols - allowed
    if unknown:
        emit(
            STRUCT_UNBOUND_SYMBOL,
            f"{what} references unbound names {sorted(unknown)}",
            tuple(path),
            hint="declare parameters with Region.param(...)",
        )
