"""Structural verifier for regions.

Catches malformed kernels early — the same role ``llvm::verifyModule`` plays
— so that analyses downstream can assume well-formedness instead of
defending against it.
"""

from __future__ import annotations

from .nodes import If, Load, LocalAssign, LocalDef, LocalRef, Loop, Stmt, Store, VExpr
from .region import Region
from .visit import walk_statements

__all__ = ["validate_region", "ValidationError"]


class ValidationError(Exception):
    """A structural problem in a region's IR."""


def validate_region(region: Region) -> None:
    """Raise :class:`ValidationError` on the first structural problem.

    Checks performed:

    * the region has at least one outer parallel loop (an OpenMP work-shared
      nest — the object of study);
    * every induction variable used in an index expression is in scope;
    * every local read is dominated by its definition (single-block scoping);
    * every array referenced is declared on the region;
    * loop counts/array extents only reference declared parameters;
    * parallel loops form one outermost contiguous band (the compiler's
      collapse restriction).
    """
    region.parallel_band()  # raises ValueError when absent
    _check_parallel_band_is_outermost(region)
    declared_params = set(region.params.names())
    for arr in region.arrays.values():
        for dim in arr.shape:
            _check_symbols(dim.free_symbols(), declared_params, f"shape of {arr.name}")

    def visit(stmts: list[Stmt], ivars: set[str], locals_: set[str]) -> None:
        for s in stmts:
            if isinstance(s, Loop):
                _check_symbols(
                    s.count.free_symbols(), declared_params | ivars, "loop count"
                )
                _check_symbols(
                    s.start.free_symbols(), declared_params | ivars, "loop start"
                )
                if s.var.name in ivars:
                    raise ValidationError(
                        f"shadowed induction variable {s.var.name!r}"
                    )
                visit(s.body, ivars | {s.var.name}, locals_)
            elif isinstance(s, If):
                _check_value(s.cond, region, ivars, locals_, declared_params)
                visit(s.then_body, ivars, set(locals_))
                visit(s.else_body, ivars, set(locals_))
            elif isinstance(s, Store):
                if s.array.name not in region.arrays:
                    raise ValidationError(f"store to undeclared array {s.array.name!r}")
                for idx in s.idxs:
                    _check_symbols(
                        idx.free_symbols(), declared_params | ivars, "store index"
                    )
                _check_value(s.value, region, ivars, locals_, declared_params)
            elif isinstance(s, LocalDef):
                _check_value(s.init, region, ivars, locals_, declared_params)
                locals_.add(s.name)
            elif isinstance(s, LocalAssign):
                if s.name not in locals_:
                    raise ValidationError(f"assignment to undefined local %{s.name}")
                _check_value(s.value, region, ivars, locals_, declared_params)
            else:  # pragma: no cover - defensive
                raise ValidationError(f"unknown statement {type(s).__name__}")

    visit(region.body, set(), set())


def _check_parallel_band_is_outermost(region: Region) -> None:
    band = set(id(lp) for lp in region.parallel_band())
    for s in walk_statements(region.body):
        if isinstance(s, Loop) and s.parallel and id(s) not in band:
            raise ValidationError(
                f"parallel loop {s.var.name!r} is not part of the outermost band"
            )


def _check_symbols(symbols: frozenset[str], allowed: set[str], what: str) -> None:
    unknown = symbols - allowed
    if unknown:
        raise ValidationError(f"{what} references unbound names {sorted(unknown)}")


def _check_value(
    value: VExpr,
    region: Region,
    ivars: set[str],
    locals_: set[str],
    declared_params: set[str],
) -> None:
    for node in value.walk():
        if isinstance(node, Load):
            if node.array.name not in region.arrays:
                raise ValidationError(
                    f"load from undeclared array {node.array.name!r}"
                )
            for idx in node.idxs:
                _check_symbols(
                    idx.free_symbols(), declared_params | ivars, "load index"
                )
        elif isinstance(node, LocalRef):
            if node.name not in locals_:
                raise ValidationError(f"read of undefined local %{node.name}")
