"""repro — hybrid analytical CPU/GPU target selection for parallel loops.

A from-scratch reproduction of *"Toward an Analytical Performance Model to
Select between GPU and CPU Execution"* (Chikin, Amaral, Ali, Tiotto —
IPDPSW 2019): a kernel IR for OpenMP-style target regions, the IPDA
inter-thread stride analysis, an LLVM-MCA-style scheduler substrate, the
Liao/Chapman CPU and Hong/Kim GPU analytical models, detailed timing
simulators standing in for the POWER8/POWER9 + K80/V100 hardware, an
offloading runtime with selection policies, the Polybench evaluation
suite, and an experiment harness regenerating every paper table and
figure.

Quick tour::

    from repro.ir import Region
    from repro.machines import PLATFORM_P9_V100
    from repro.runtime import ModelGuided, OffloadingRuntime

    region = Region("axpy")
    n = region.param("n")
    x, y = region.array("x", (n,)), region.array("y", (n,), inout=True)
    a = region.scalar("a")
    with region.parallel_loop("i", n) as i:
        region.store(y[i], y[i] + a * x[i])

    runtime = OffloadingRuntime(PLATFORM_P9_V100, policy=ModelGuided())
    runtime.compile_region(region)
    record = runtime.launch("axpy", {"n": 1 << 24})
    print(record.target, record.predicted_speedup)
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "calibrate",
    "codegen",
    "experiments",
    "ipda",
    "ir",
    "lint",
    "machines",
    "mca",
    "models",
    "polybench",
    "runtime",
    "sim",
    "symbolic",
    "util",
]
