"""GPU launch planning: grid geometry and the ``#OMP_Rep`` factor.

Mirrors what the XL OpenMP runtime does when it encounters a target region:
pick a thread-block size, cap the grid at what the device can co-schedule,
and — when the capped grid leaves fewer threads than parallel loop
iterations — assign each thread ``#OMP_Rep`` distinct iterations (the
paper's OpenMP-specific extension to the Hong model, Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines import GPUDescriptor

__all__ = ["GPULaunchPlan", "plan_gpu_launch", "DEFAULT_THREADS_PER_BLOCK"]

#: The runtime's default thread-block size (the paper's example uses 128).
DEFAULT_THREADS_PER_BLOCK = 128


@dataclass(frozen=True)
class GPULaunchPlan:
    """Resolved kernel launch geometry for a given iteration count."""

    parallel_iterations: int
    threads_per_block: int
    num_blocks: int
    omp_rep: int  # distinct loop iterations executed by each thread
    resident_blocks_per_sm: int
    active_sms: int
    active_warps_per_sm: int  # the Hong model's N
    rep: int  # Hong's #Rep: waves of resident blocks

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.threads_per_block

    @property
    def warps_per_block(self) -> int:
        return -(-self.threads_per_block // 32)

    @property
    def total_warps(self) -> int:
        return self.num_blocks * self.warps_per_block

    def describe(self) -> str:
        return (
            f"<<<{self.num_blocks}, {self.threads_per_block}>>> "
            f"OMP_Rep={self.omp_rep} Rep={self.rep} N={self.active_warps_per_sm} "
            f"activeSMs={self.active_sms}"
        )


def plan_gpu_launch(
    parallel_iterations: int,
    gpu: GPUDescriptor,
    *,
    threads_per_block: int = DEFAULT_THREADS_PER_BLOCK,
) -> GPULaunchPlan:
    """Select grid geometry the way the OpenMP runtime would.

    The grid is capped at the device's co-residency limit
    (``num_sms × max_blocks_per_sm``, further limited by threads/SM); a
    larger iteration space is covered by giving every thread ``omp_rep``
    iterations (static schedule: thread ``t`` takes ``t``, ``t+T``, ...).
    """
    if parallel_iterations <= 0:
        raise ValueError("parallel_iterations must be positive")
    if not 1 <= threads_per_block <= gpu.max_threads_per_block:
        raise ValueError(
            f"threads_per_block must be in [1, {gpu.max_threads_per_block}]"
        )

    blocks_needed = -(-parallel_iterations // threads_per_block)
    blocks_per_sm_limit = min(
        gpu.max_blocks_per_sm,
        max(1, gpu.max_threads_per_sm // threads_per_block),
    )
    grid_cap = gpu.num_sms * blocks_per_sm_limit
    num_blocks = min(blocks_needed, grid_cap)

    total_threads = num_blocks * threads_per_block
    omp_rep = -(-parallel_iterations // total_threads)

    active_sms = min(num_blocks, gpu.num_sms)
    resident = min(blocks_per_sm_limit, -(-num_blocks // active_sms))
    warps_per_block = -(-threads_per_block // gpu.warp_size)
    n_warps = min(resident * warps_per_block, gpu.max_warps_per_sm)
    rep = -(-num_blocks // (resident * active_sms))

    return GPULaunchPlan(
        parallel_iterations=parallel_iterations,
        threads_per_block=threads_per_block,
        num_blocks=num_blocks,
        omp_rep=omp_rep,
        resident_blocks_per_sm=resident,
        active_sms=active_sms,
        active_warps_per_sm=max(1, n_warps),
        rep=max(1, rep),
    )
