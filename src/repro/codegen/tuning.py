"""Analytical grid-geometry selection.

Section V.B recounts Lloyd et al.'s ML predictor for choosing the GPU grid
geometry of OpenMP loops — which beat the compiler default but whose
inference overhead "overshadowed all benefits".  The analytical models
make the same choice for the cost of a few equation evaluations: sweep the
candidate block sizes through the Hong model and keep the fastest.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines import GPUDescriptor, InterconnectDescriptor
from .gpu_plan import GPULaunchPlan, plan_gpu_launch

__all__ = ["GeometryChoice", "tune_threads_per_block", "CANDIDATE_BLOCK_SIZES"]

#: Block sizes the runtime considers (all warp multiples up to the limit).
CANDIDATE_BLOCK_SIZES = (64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class GeometryChoice:
    """Outcome of the analytical grid-geometry sweep."""

    threads_per_block: int
    plan: GPULaunchPlan
    predicted_kernel_seconds: float
    candidates: tuple[tuple[int, float], ...]  # (tpb, predicted seconds)

    @property
    def default_seconds(self) -> float:
        """Predicted time of the 128-thread compiler default."""
        for tpb, secs in self.candidates:
            if tpb == 128:
                return secs
        raise KeyError(128)  # pragma: no cover - 128 is always a candidate

    @property
    def improvement_over_default(self) -> float:
        return self.default_seconds / self.predicted_kernel_seconds


def tune_threads_per_block(
    bound,
    gpu: GPUDescriptor,
    bus: InterconnectDescriptor,
    *,
    candidates: tuple[int, ...] = CANDIDATE_BLOCK_SIZES,
) -> GeometryChoice:
    """Pick the block size the Hong model predicts fastest.

    ``bound`` is a :class:`repro.analysis.BoundAttributes`; transfer time is
    geometry-independent, so only kernel cycles are compared.
    """
    from ..models import predict_gpu_time  # local import: layering

    if 128 not in candidates:
        raise ValueError("the 128-thread compiler default must be a candidate")
    results: list[tuple[int, float]] = []
    plans: dict[int, GPULaunchPlan] = {}
    for tpb in candidates:
        if tpb > gpu.max_threads_per_block:
            continue
        plan = plan_gpu_launch(
            bound.parallel_iterations, gpu, threads_per_block=tpb
        )
        pred = predict_gpu_time(
            bound.region.name,
            bound.loadout,
            bound.ipda,
            plan,
            gpu,
            bus,
            bound.bytes_to_device,
            bound.bytes_to_host,
        )
        results.append((tpb, pred.kernel_seconds))
        plans[tpb] = plan
    # prefer the compiler default on (near-)ties: a deviation must earn >1%
    default_secs = dict(results)[128]
    best = (128, default_secs, plans[128])
    for tpb, secs in results:
        if secs < best[1] * 0.99:
            best = (tpb, secs, plans[tpb])
    return GeometryChoice(
        threads_per_block=best[0],
        plan=best[2],
        predicted_kernel_seconds=best[1],
        candidates=tuple(results),
    )
