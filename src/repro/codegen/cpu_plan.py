"""CPU-parallel execution planning (the host fallback version).

Captures what the outlined CPU-parallel clone of a target region looks
like: thread count, OpenMP schedule and chunk geometry — the quantities the
Liao/Chapman cost model prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..machines import CPUDescriptor

__all__ = ["OMPSchedule", "CPUPlan", "plan_cpu_execution"]


class OMPSchedule(Enum):
    """OpenMP loop schedules the cost model distinguishes."""

    STATIC = "static"
    DYNAMIC = "dynamic"


@dataclass(frozen=True)
class CPUPlan:
    """Resolved host-parallel execution shape for a given iteration count."""

    parallel_iterations: int
    num_threads: int
    schedule: OMPSchedule
    chunk_size: int  # iterations per schedule chunk
    schedule_times: int  # chunks each thread processes (Liao's Schedule_times)
    threads_per_core: int

    @property
    def iterations_per_thread(self) -> int:
        """Iterations on the critical-path (most loaded) thread."""
        return -(-self.parallel_iterations // self.num_threads)

    def describe(self) -> str:
        return (
            f"omp parallel for num_threads({self.num_threads}) "
            f"schedule({self.schedule.value},{self.chunk_size}) "
            f"[{self.schedule_times} chunk(s)/thread]"
        )


def plan_cpu_execution(
    parallel_iterations: int,
    cpu: CPUDescriptor,
    *,
    num_threads: int | None = None,
    schedule: OMPSchedule = OMPSchedule.STATIC,
    chunk_size: int | None = None,
) -> CPUPlan:
    """Plan the host-parallel version of a region.

    Default is the OpenMP default: as many threads as hardware threads, and
    a static schedule whose chunk is the iteration space divided evenly.
    Threads beyond the iteration count sit idle (they still pay fork/join).
    """
    if parallel_iterations <= 0:
        raise ValueError("parallel_iterations must be positive")
    threads = cpu.hw_threads if num_threads is None else num_threads
    if threads <= 0:
        raise ValueError("num_threads must be positive")
    threads = min(threads, cpu.hw_threads)
    busy = min(threads, parallel_iterations)

    if schedule is OMPSchedule.STATIC:
        chunk = chunk_size or -(-parallel_iterations // threads)
        schedule_times = max(
            1, -(-parallel_iterations // (chunk * threads))
        )
    else:
        chunk = chunk_size or 1
        schedule_times = max(1, -(-parallel_iterations // (chunk * busy)))

    threads_per_core = -(-threads // cpu.cores) if threads > cpu.cores else 1
    return CPUPlan(
        parallel_iterations=parallel_iterations,
        num_threads=threads,
        schedule=schedule,
        chunk_size=chunk,
        schedule_times=schedule_times,
        threads_per_core=min(threads_per_core, cpu.smt),
    )
