"""Dual code generation plans for outlined target regions.

The compiler duplicates each target region into a GPU kernel and a
CPU-parallel fallback (Figure 2); these modules compute the execution shape
of each version — grid geometry + ``#OMP_Rep`` on the device, thread/chunk
structure on the host.
"""

from .gpu_plan import DEFAULT_THREADS_PER_BLOCK, GPULaunchPlan, plan_gpu_launch
from .cpu_plan import CPUPlan, OMPSchedule, plan_cpu_execution
from .tuning import (
    CANDIDATE_BLOCK_SIZES,
    GeometryChoice,
    tune_threads_per_block,
)

__all__ = [
    "DEFAULT_THREADS_PER_BLOCK",
    "GPULaunchPlan",
    "plan_gpu_launch",
    "CPUPlan",
    "OMPSchedule",
    "plan_cpu_execution",
    "CANDIDATE_BLOCK_SIZES",
    "GeometryChoice",
    "tune_threads_per_block",
]
