"""Machine-op representation used by the MCA scheduler.

A :class:`MachineOp` is one micro-operation with explicit register
dataflow — the unit the scoreboard schedules.  Opcodes are *op classes*
(keys into ``CPUDescriptor.latencies``), not a real ISA: like LLVM-MCA, the
analysis only needs latency, port binding and dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MachineOp", "OPCODE_PORT", "UNPIPELINED", "vector_opcode"]

#: Port class each op class issues to.
OPCODE_PORT: dict[str, str] = {
    "iadd": "FX",
    "imul": "FX",
    "cmp": "FX",
    "br": "BR",
    "load": "LS",
    "store": "LS",
    "vload": "LS",
    "vstore": "LS",
    "fadd": "FP",
    "fmul": "FP",
    "fma": "FP",
    "fdiv": "FP",
    "fsqrt": "FP",
    "fexp": "FP",
    "fmin": "FP",
    "fabs": "FP",
    "fneg": "FP",
    "fsel": "FP",
    "vfadd": "VSX",
    "vfmul": "VSX",
    "vfma": "VSX",
    "vfdiv": "VSX",
    "vfsqrt": "VSX",
    "vfsel": "VSX",
}

#: Op classes that occupy their unit for their full latency (no pipelining).
UNPIPELINED = frozenset({"fdiv", "fsqrt", "fexp", "vfdiv", "vfsqrt"})

_VECTOR_MAP = {
    "fadd": "vfadd",
    "fmul": "vfmul",
    "fma": "vfma",
    "fdiv": "vfdiv",
    "fsqrt": "vfsqrt",
    "fsel": "vfsel",
    "fmin": "vfadd",  # vector min issues like a vector add
    "fabs": "vfadd",
    "fneg": "vfadd",
    "load": "vload",
    "store": "vstore",
}


def vector_opcode(opcode: str) -> str:
    """The vector counterpart of a scalar op class (identity when none)."""
    return _VECTOR_MAP.get(opcode, opcode)


@dataclass(frozen=True)
class MachineOp:
    """One scheduled micro-op.

    ``dest`` is the virtual register this op defines (-1 when none, e.g.
    stores and branches); ``srcs`` are the vregs it must wait for.
    """

    opcode: str
    dest: int = -1
    srcs: tuple[int, ...] = field(default_factory=tuple)
    tag: str = ""  # provenance, e.g. "load A[i][k]" — used by reports

    def __post_init__(self):
        if self.opcode not in OPCODE_PORT:
            raise ValueError(f"unknown op class {self.opcode!r}")

    @property
    def port(self) -> str:
        return OPCODE_PORT[self.opcode]

    @property
    def is_memory(self) -> bool:
        return self.opcode in ("load", "store", "vload", "vstore")

    def __repr__(self) -> str:
        srcs = ",".join(f"v{s}" for s in self.srcs)
        dest = f"v{self.dest} = " if self.dest >= 0 else ""
        note = f"  ; {self.tag}" if self.tag else ""
        return f"{dest}{self.opcode} {srcs}{note}"
