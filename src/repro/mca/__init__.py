"""MCA substrate: an LLVM-MCA-style static machine-code analyzer.

Provides the Liao model's ``Machine_cycles_per_iter`` (Section IV.A.1) by
lowering a parallel loop body to machine ops and measuring steady-state
cycles per iteration on a port/latency scoreboard, replacing the OpenUH
inner-scheduler dependency the paper calls out.
"""

from .ops import MachineOp, OPCODE_PORT, UNPIPELINED, vector_opcode
from .scheduler import ScheduleResult, schedule_ops, steady_state_cycles, unroll
from .lowering import (
    LoopInfo,
    LoweredLevel,
    find_band_level,
    level_cycles_per_iteration,
    lower_region,
    machine_cycles_per_iter,
)
from .report import MCAReport, analyze_region
from .timeline import render_timeline

__all__ = [
    "MachineOp",
    "OPCODE_PORT",
    "UNPIPELINED",
    "vector_opcode",
    "ScheduleResult",
    "schedule_ops",
    "steady_state_cycles",
    "unroll",
    "LoopInfo",
    "LoweredLevel",
    "find_band_level",
    "level_cycles_per_iteration",
    "lower_region",
    "machine_cycles_per_iter",
    "MCAReport",
    "analyze_region",
    "render_timeline",
]
