"""Lowering of IR loop bodies to machine ops.

This is the "compiler backend" half of the MCA substrate: it turns the body
of a parallel loop into :class:`MachineOp` sequences with explicit register
dataflow, performing the transformations that dominate CPU loop performance
and that the XL/LLVM backends would perform:

* **FMA fusion** — ``a*b + c`` becomes one fused op when the target has FMA.
* **Inner-loop vectorization** — an innermost sequential loop whose accesses
  all have compile-time stride 0/1 along its induction variable, and whose
  only loop-carried scalar dependencies are reduction updates, is lowered to
  vector ops over ``lanes`` elements with ``unroll`` independent accumulator
  chains (unroll-and-jam breaking reduction latency).
* **Band (outer-loop) vectorization** — when the innermost loop cannot
  vectorize (e.g. a column reduction walking stride-N) but every access in
  the nest has stride 0/1 along the innermost *parallel band* variable, the
  compiler vectorizes across band iterations: each thread processes
  ``lanes`` adjacent work items per vector lane.  This is what makes the
  paper's CORR/COVAR sequential loops "well-suited for SIMD vectorization"
  and what the POWER9 VSX-3 uplift acts on.

The result is a :class:`LoweredLevel` tree mirroring the loop nest;
:func:`level_cycles_per_iteration` composes scoreboard steady-state measures
over it into the Liao model's ``Machine_cycles_per_iter``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..ir import (
    Bin,
    Cmp,
    ConstV,
    If,
    Load,
    LocalAssign,
    LocalDef,
    LocalRef,
    Loop,
    ReduceStore,
    Region,
    ScalarArg,
    Select,
    Stmt,
    Store,
    Un,
    VExpr,
)
from ..machines import CPUDescriptor
from ..symbolic import Const, NonAffineError, decompose_affine
from .ops import MachineOp, vector_opcode
from .scheduler import steady_state_cycles

__all__ = [
    "LoweredLevel",
    "LoopInfo",
    "lower_region",
    "level_cycles_per_iteration",
    "machine_cycles_per_iter",
    "find_band_level",
]

_BIN_OPCODE = {
    "add": "fadd",
    "sub": "fadd",
    "mul": "fmul",
    "div": "fdiv",
    "min": "fmin",
    "max": "fmin",
}
_UN_OPCODE = {"neg": "fneg", "sqrt": "fsqrt", "abs": "fabs", "exp": "fexp"}

#: Reduction update operators eligible for parallel accumulator chains.
_REDUCTION_OPS = frozenset({"add", "mul", "min", "max"})

#: Independent accumulator chains assumed for unroll-and-jam of reductions.
REDUCTION_UNROLL = 4


@dataclass(frozen=True)
class LoopInfo:
    """How a loop level was lowered.

    ``elements_per_unit`` is the number of source-level iterations of this
    loop covered by one scheduled unit of its ``leaf_ops`` (``lanes ×
    unroll`` for a vectorized+unrolled level, 1 otherwise).
    """

    vectorized: bool
    lanes: int
    unroll: int

    @property
    def elements_per_unit(self) -> int:
        return self.lanes * self.unroll


@dataclass
class LoweredLevel:
    """Machine ops of one loop-nest level."""

    loop: Loop | None  # None for the region top level and branch bodies
    info: LoopInfo
    leaf_ops: list[MachineOp] = field(default_factory=list)
    carried: frozenset[int] = frozenset()
    sub_loops: list["LoweredLevel"] = field(default_factory=list)
    sub_branches: list[tuple["LoweredLevel", "LoweredLevel"]] = field(
        default_factory=list
    )

    def op_count(self) -> int:
        """Total static ops in this level and below (diagnostic)."""
        n = len(self.leaf_ops)
        for s in self.sub_loops:
            n += s.op_count()
        for t, e in self.sub_branches:
            n += t.op_count() + e.op_count()
        return n

    def is_band_vectorized(self) -> bool:
        return self.info.vectorized and self.loop is not None and self.loop.parallel


class _Lowerer:
    def __init__(self, region: Region, cpu: CPUDescriptor, vectorize: bool):
        self.region = region
        self.cpu = cpu
        self.vectorize = vectorize
        self._next_vreg = 0
        self._mem_serial = 0
        self._reduce_accs: dict[tuple[str, str], int] = {}
        band = region.parallel_band()
        self._innermost_band_var = band[-1].var.name
        # IR node identity -> static access index (the order IPDA, feature
        # extraction and the locality model all share); lets simulators
        # inject per-access latencies through MachineOp tags.
        from ..ir.visit import memory_accesses

        self._acc_index = {
            id(acc.node): i for i, acc in enumerate(memory_accesses(region))
        }

    def fresh(self) -> int:
        v = self._next_vreg
        self._next_vreg += 1
        return v

    # -- value lowering ----------------------------------------------------
    def lower_value(
        self,
        v: VExpr,
        ops: list[MachineOp],
        env: dict[str, int],
        vector: bool,
    ) -> int:
        """Emit ops computing ``v``; returns the defining vreg."""
        if isinstance(v, (ConstV, ScalarArg)):
            return self.fresh()  # available at cycle 0: no op needed
        if isinstance(v, LocalRef):
            if v.name not in env:
                raise KeyError(f"local %{v.name} lowered before definition")
            return env[v.name]
        if isinstance(v, Load):
            return self._emit_load(v, ops, vector)
        if isinstance(v, Bin):
            return self._emit_bin(v, ops, env, vector)
        if isinstance(v, Un):
            src = self.lower_value(v.operand, ops, env, vector)
            dest = self.fresh()
            ops.append(MachineOp(self._vec(_UN_OPCODE[v.op], vector), dest, (src,)))
            return dest
        if isinstance(v, Cmp):
            l = self.lower_value(v.lhs, ops, env, vector)
            r = self.lower_value(v.rhs, ops, env, vector)
            dest = self.fresh()
            ops.append(MachineOp("cmp", dest, (l, r)))
            return dest
        if isinstance(v, Select):
            c = self.lower_value(v.cond, ops, env, vector)
            t = self.lower_value(v.if_true, ops, env, vector)
            f = self.lower_value(v.if_false, ops, env, vector)
            dest = self.fresh()
            ops.append(MachineOp(self._vec("fsel", vector), dest, (c, t, f)))
            return dest
        raise TypeError(f"cannot lower value {type(v).__name__}")

    @staticmethod
    def _vec(opcode: str, vector: bool) -> str:
        return vector_opcode(opcode) if vector else opcode

    def _emit_load(self, v: Load, ops: list[MachineOp], vector: bool) -> int:
        self._mem_serial += 1
        addr = self.fresh()
        ops.append(MachineOp("iadd", addr, (), tag=f"addr#{self._mem_serial}"))
        dest = self.fresh()
        idx = self._acc_index.get(id(v), -1)
        ops.append(
            MachineOp(
                self._vec("load", vector),
                dest,
                (addr,),
                tag=f"load {v.array.name} acc:{idx}",
            )
        )
        return dest

    def _emit_bin(
        self, v: Bin, ops: list[MachineOp], env: dict[str, int], vector: bool
    ) -> int:
        # FMA fusion: add(x, mul(a,b)) / add(mul(a,b), x) -> fma
        if self.cpu.has_fma and v.op == "add":
            mul_side, other = None, None
            if isinstance(v.rhs, Bin) and v.rhs.op == "mul":
                mul_side, other = v.rhs, v.lhs
            elif isinstance(v.lhs, Bin) and v.lhs.op == "mul":
                mul_side, other = v.lhs, v.rhs
            if mul_side is not None:
                a = self.lower_value(mul_side.lhs, ops, env, vector)
                b = self.lower_value(mul_side.rhs, ops, env, vector)
                c = self.lower_value(other, ops, env, vector)
                dest = self.fresh()
                ops.append(MachineOp(self._vec("fma", vector), dest, (a, b, c)))
                return dest
        l = self.lower_value(v.lhs, ops, env, vector)
        r = self.lower_value(v.rhs, ops, env, vector)
        dest = self.fresh()
        ops.append(MachineOp(self._vec(_BIN_OPCODE[v.op], vector), dest, (l, r)))
        return dest

    def _emit_store(
        self, s: Store, ops: list[MachineOp], env: dict[str, int], vector: bool
    ) -> None:
        val = self.lower_value(s.value, ops, env, vector)
        self._mem_serial += 1
        addr = self.fresh()
        ops.append(MachineOp("iadd", addr, (), tag=f"addr#{self._mem_serial}"))
        idx = self._acc_index.get(id(s), -1)
        ops.append(
            MachineOp(
                self._vec("store", vector),
                -1,
                (val, addr),
                tag=f"store {s.array.name} acc:{idx}",
            )
        )

    # -- statement / level lowering -----------------------------------------
    def lower_level(
        self,
        loop: Loop | None,
        stmts: list[Stmt],
        env: dict[str, int],
        *,
        vector: bool = False,
    ) -> LoweredLevel:
        """Lower one nest level; recursion builds the level tree.

        ``vector=True`` means an enclosing band vectorization is active and
        all value ops must be lowered as vector ops.
        """
        if loop is not None and not vector and self.vectorize:
            if self._inner_vectorizable(loop, stmts):
                return self._lower_unrolled(
                    loop,
                    stmts,
                    env,
                    lanes=self.cpu.vector_lanes(_body_elem_bytes(stmts)),
                    unroll=REDUCTION_UNROLL,
                )
            # Outer-loop vectorization (band or middle loop): requires the
            # broader vector support the paper attributes to POWER9 VSX-3.
            eligible = (
                loop.var.name == self._innermost_band_var
                if loop.parallel
                else True
            )
            if (
                eligible
                and self.cpu.outer_loop_vectorization
                and self._level_vectorizable(loop.var.name, stmts)
            ):
                lanes = self.cpu.vector_lanes(_body_elem_bytes(stmts))
                lv = self.lower_level(None, stmts, env, vector=True)
                lv.loop = loop
                lv.info = LoopInfo(True, lanes, 1)
                self._append_loop_control(lv)
                return lv

        # An inner reduction loop inside an active band vectorization still
        # profits from unroll-and-jam to break the accumulator chain.
        if (
            loop is not None
            and vector
            and not loop.parallel
            and _is_flat_reduction_body(stmts)
        ):
            return self._lower_unrolled(
                loop, stmts, env, lanes=1, unroll=REDUCTION_UNROLL, vector=True
            )

        level = LoweredLevel(loop, LoopInfo(False, 1, 1))
        carried: set[int] = set()
        local_env = dict(env)
        for s in stmts:
            if isinstance(s, Loop):
                level.sub_loops.append(
                    self.lower_level(s, s.body, local_env, vector=vector)
                )
            elif isinstance(s, If):
                cond_ops: list[MachineOp] = []
                self.lower_value(s.cond, cond_ops, local_env, vector)
                cond_ops.append(MachineOp("br", -1, ()))
                level.leaf_ops.extend(cond_ops)
                then_lv = self.lower_level(None, s.then_body, local_env, vector=vector)
                else_lv = self.lower_level(None, s.else_body, local_env, vector=vector)
                level.sub_branches.append((then_lv, else_lv))
            elif isinstance(s, LocalDef):
                reg = self.lower_value(s.init, level.leaf_ops, local_env, vector)
                local_env[s.name] = reg
            elif isinstance(s, LocalAssign):
                self._lower_assign(s, level.leaf_ops, local_env, carried, vector)
            elif isinstance(s, ReduceStore):
                self._lower_reduce(s, level.leaf_ops, local_env, carried, vector)
            elif isinstance(s, Store):
                self._emit_store(s, level.leaf_ops, local_env, vector)
            else:  # pragma: no cover - validator precludes this
                raise TypeError(f"cannot lower statement {type(s).__name__}")
        if loop is not None:
            self._append_loop_control(level)
            carried |= {level.leaf_ops[-3].dest}  # the induction iadd
        env.update(local_env)
        level.carried = frozenset(carried)
        return level

    def _lower_assign(
        self,
        s: LocalAssign,
        ops: list[MachineOp],
        env: dict[str, int],
        carried: set[int],
        vector: bool,
    ) -> None:
        reg = self.lower_value(s.value, ops, env, vector)
        old = env.get(s.name)
        if old is not None and _value_reads_local(s.value, s.name):
            # loop-carried scalar chain: keep the accumulator in one register
            # so unrolled copies serialize on it
            self._retarget(ops, reg, old)
            carried.add(old)
            reg = old
        env[s.name] = reg

    def _lower_reduce(
        self,
        s: ReduceStore,
        ops: list[MachineOp],
        env: dict[str, int],
        carried: set[int],
        vector: bool,
    ) -> None:
        """Per-iteration half of a band reduction: a private accumulation.

        The cross-thread combine is priced separately (Liao's
        ``Reduction_c`` / the device's block tree + atomics) — per work
        item the compiler keeps a privatized register chain.
        """
        val = self.lower_value(s.value, ops, env, vector)
        key = (s.array.name, s.op)
        acc = self._reduce_accs.get(key)
        if acc is None:
            acc = self.fresh()
            self._reduce_accs[key] = acc
        opcode = {"add": "fadd", "mul": "fmul", "min": "fmin", "max": "fmin"}[s.op]
        ops.append(
            MachineOp(self._vec(opcode, vector), acc, (acc, val), tag="reduce")
        )
        carried.add(acc)

    @staticmethod
    def _retarget(ops: list[MachineOp], from_reg: int, to_reg: int) -> None:
        """Rewrite the op defining ``from_reg`` to define ``to_reg``."""
        for i in range(len(ops) - 1, -1, -1):
            if ops[i].dest == from_reg:
                ops[i] = MachineOp(ops[i].opcode, to_reg, ops[i].srcs, ops[i].tag)
                return
        raise AssertionError("definition of retargeted register not found")

    def _append_loop_control(self, level: LoweredLevel) -> None:
        ind = self.fresh()
        level.leaf_ops.append(MachineOp("iadd", ind, (ind,), tag="induction"))
        cmp_reg = self.fresh()
        level.leaf_ops.append(MachineOp("cmp", cmp_reg, (ind,)))
        level.leaf_ops.append(MachineOp("br", -1, (cmp_reg,)))
        level.carried = level.carried | {ind}

    def _lower_unrolled(
        self,
        loop: Loop,
        stmts: list[Stmt],
        env: dict[str, int],
        *,
        lanes: int,
        unroll: int,
        vector: bool = True,
    ) -> LoweredLevel:
        """Vectorize/unroll a flat loop body with independent accumulators."""
        level = LoweredLevel(loop, LoopInfo(True, lanes, unroll))
        carried: set[int] = set()
        assigned = [s.name for s in stmts if isinstance(s, LocalAssign)]
        for copy in range(unroll):
            local_env = dict(env)
            if copy:
                # each unrolled copy gets its own accumulator registers so
                # the reduction splits into independent dependency chains
                for name in assigned:
                    if name in local_env:
                        local_env[name] = self.fresh()
            for s in stmts:
                if isinstance(s, Store):
                    self._emit_store(s, level.leaf_ops, local_env, vector)
                elif isinstance(s, LocalAssign):
                    self._lower_assign(
                        s, level.leaf_ops, local_env, carried, vector
                    )
                else:  # pragma: no cover - _inner_vectorizable precludes
                    raise TypeError(
                        f"unexpected {type(s).__name__} in vector body"
                    )
        self._append_loop_control(level)
        level.carried = level.carried | frozenset(carried)
        return level

    # -- vectorization legality ------------------------------------------------
    def _inner_vectorizable(self, loop: Loop, stmts: list[Stmt]) -> bool:
        """Innermost, affine, stride-0/1 accesses, reduction-only recurrences."""
        if loop.parallel:
            return False  # the band is the thread space, not a SIMD loop
        if not _is_flat_reduction_body(stmts):
            return False
        return self._strides_ok(stmts, loop.var.name)

    def _level_vectorizable(self, var: str, stmts: list[Stmt]) -> bool:
        """All accesses in the subtree have stride 0/1 along ``var``.

        Used for outer-loop vectorization of the parallel band or of a
        middle sequential loop (e.g. CORR's ``j2``).  Inner-loop trip
        counts must not depend on ``var`` and conditionals must be absent
        (selects are fine: they if-convert).
        """

        def check(body: list[Stmt]) -> bool:
            for s in body:
                if isinstance(s, (If, ReduceStore)):
                    return False
                if isinstance(s, Loop):
                    if var in s.count.free_symbols() or var in s.start.free_symbols():
                        return False
                    if not check(s.body):
                        return False
                    continue
                values: list[VExpr] = []
                if isinstance(s, Store):
                    if not self._stride_ok(s.array, s.idxs, var, store=True):
                        return False
                    values.append(s.value)
                elif isinstance(s, LocalDef):
                    values.append(s.init)
                elif isinstance(s, LocalAssign):
                    values.append(s.value)
                for v in values:
                    for node in v.walk():
                        if isinstance(node, Load) and not self._stride_ok(
                            node.array, node.idxs, var, store=False
                        ):
                            return False
            return True

        return check(stmts)

    def _strides_ok(self, stmts: list[Stmt], var: str) -> bool:
        for s in stmts:
            values: list[VExpr] = []
            if isinstance(s, Store):
                if not self._stride_ok(s.array, s.idxs, var, store=True):
                    return False
                values.append(s.value)
            elif isinstance(s, LocalAssign):
                values.append(s.value)
            for v in values:
                for node in v.walk():
                    if isinstance(node, Load) and not self._stride_ok(
                        node.array, node.idxs, var, store=False
                    ):
                        return False
        return True

    def _stride_ok(self, array, idxs, var: str, *, store: bool) -> bool:
        try:
            form = decompose_affine(array.flat_index(idxs), frozenset({var}))
        except NonAffineError:
            return False
        coeff = form.coefficient(var)
        if coeff == Const(1):
            return True
        if coeff == Const(0):
            return not store  # conflicting lane stores cannot vectorize
        return False


def _value_reads_local(v: VExpr, name: str) -> bool:
    return any(isinstance(n, LocalRef) and n.name == name for n in v.walk())


def _is_reduction_update(s: LocalAssign) -> bool:
    """``x = x ⊕ expr`` with ⊕ associative and x read exactly once."""
    v = s.value
    if not (isinstance(v, Bin) and v.op in _REDUCTION_OPS):
        return False
    reads = sum(1 for n in v.walk() if isinstance(n, LocalRef) and n.name == s.name)
    if reads != 1:
        return False
    return (isinstance(v.lhs, LocalRef) and v.lhs.name == s.name) or (
        isinstance(v.rhs, LocalRef) and v.rhs.name == s.name
    )


def _is_flat_reduction_body(stmts: list[Stmt]) -> bool:
    """Flat body of stores and at-most-once reduction updates per local."""
    seen: set[str] = set()
    for s in stmts:
        if isinstance(s, (Loop, If, LocalDef, ReduceStore)):
            return False
        if isinstance(s, LocalAssign):
            if not _is_reduction_update(s) or s.name in seen:
                return False
            seen.add(s.name)
    return True


def _body_elem_bytes(stmts: list[Stmt]) -> int:
    """Widest element accessed in a SIMD-candidate subtree (for lane count)."""
    widest = 4

    def scan(body: list[Stmt]) -> None:
        nonlocal widest
        for s in body:
            if isinstance(s, Loop):
                scan(s.body)
                continue
            if isinstance(s, If):
                scan(s.then_body)
                scan(s.else_body)
                continue
            vals: list[VExpr] = []
            if isinstance(s, Store):
                widest = max(widest, s.array.dtype.size)
                vals.append(s.value)
            elif isinstance(s, LocalAssign):
                vals.append(s.value)
            elif isinstance(s, LocalDef):
                vals.append(s.init)
            for v in vals:
                for node in v.walk():
                    if isinstance(node, Load):
                        widest = max(widest, node.array.dtype.size)

    scan(stmts)
    return widest


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def lower_region(
    region: Region, cpu: CPUDescriptor, *, vectorize: bool = True
) -> LoweredLevel:
    """Lower a region's whole loop nest to a level tree."""
    lw = _Lowerer(region, cpu, vectorize)
    return lw.lower_level(None, region.body, {})


def find_band_level(root: LoweredLevel) -> LoweredLevel:
    """The level of the *innermost parallel band* loop.

    One source-level iteration of that loop is what Liao's
    ``Machine_cycles_per_iter`` prices.
    """
    level = root
    chosen = None
    while True:
        next_level = None
        for sub in level.sub_loops:
            if sub.loop is not None and sub.loop.parallel:
                next_level = sub
                break
        if next_level is None:
            break
        chosen = next_level
        level = next_level
    if chosen is None:
        raise ValueError("region has no parallel loop level")
    return chosen


def level_cycles_per_iteration(
    level: LoweredLevel,
    cpu: CPUDescriptor,
    trip_of: Callable[[Loop], float],
    *,
    latency_of: Callable[[MachineOp], float] | None = None,
) -> float:
    """Cycles for one source iteration of ``level``'s loop.

    One scheduled *unit* of the level covers ``elements_per_unit`` source
    iterations (vector lanes × unroll); leaf ops are priced at scoreboard
    steady state, inner loops at their per-iteration cost times trips, and
    branch bodies at the paper's 50%-taken weighting.
    """
    unit = steady_state_cycles(
        level.leaf_ops, cpu, carried_regs=level.carried, latency_of=latency_of
    )
    for then_lv, else_lv in level.sub_branches:
        t = level_cycles_per_iteration(then_lv, cpu, trip_of, latency_of=latency_of)
        e = level_cycles_per_iteration(else_lv, cpu, trip_of, latency_of=latency_of)
        unit += 0.5 * t + 0.5 * e
    for sub in level.sub_loops:
        per_iter = level_cycles_per_iteration(sub, cpu, trip_of, latency_of=latency_of)
        trips = trip_of(sub.loop) if sub.loop is not None else 1.0
        unit += trips * per_iter
    return unit / level.info.elements_per_unit


def machine_cycles_per_iter(
    region: Region,
    cpu: CPUDescriptor,
    trip_of: Callable[[Loop], float],
    *,
    vectorize: bool = True,
    latency_of: Callable[[MachineOp], float] | None = None,
) -> float:
    """Liao's ``Machine_cycles_per_iter``: cycles per parallel-loop iteration.

    This is the MCA integration of Section IV.A.1 — the parallel loop body
    is extracted, lowered and run through the scoreboard.  ``trip_of``
    supplies inner-loop trip counts: the analytical model passes the
    128-iteration abstraction, the simulator passes actual counts.
    """
    root = lower_region(region, cpu, vectorize=vectorize)
    band = find_band_level(root)
    return level_cycles_per_iteration(band, cpu, trip_of, latency_of=latency_of)
