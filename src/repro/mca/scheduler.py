"""The MCA scoreboard scheduler.

Emulates the dispatch/issue behaviour LLVM-MCA derives from a target's
scheduling model: in-order dispatch of ``dispatch_width`` ops per cycle,
dataflow-ordered issue constrained by per-port unit availability, fixed
op-class latencies, and unpipelined division/sqrt units.

The central entry point, :func:`steady_state_cycles`, measures the
asymptotic cycles-per-iteration of a loop body by scheduling several renamed
copies (virtually unrolled iterations) and differencing completion times —
this captures loop-carried dependency chains (e.g. a scalar reduction
accumulator serialising on FMA latency) that a naive latency sum misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..machines import CPUDescriptor
from ..obs.tracer import current_tracer
from ..parallel.cache import current_cache
from .ops import UNPIPELINED, MachineOp

__all__ = ["ScheduleResult", "schedule_ops", "steady_state_cycles"]


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling a straight-line op sequence."""

    total_cycles: float
    ipc: float
    port_cycles: Mapping[str, float]  # busy-cycles consumed per port class
    issue_cycle: tuple[float, ...]  # per-op issue times (for diagnostics)

    def pressure(self, cpu: CPUDescriptor) -> dict[str, float]:
        """Per-port utilization fraction over the schedule length."""
        if self.total_cycles <= 0:
            return {p: 0.0 for p in self.port_cycles}
        out = {}
        for port, busy in self.port_cycles.items():
            units = cpu.ports.get(port, 1)
            out[port] = busy / (self.total_cycles * units)
        return out

    def bottleneck(self, cpu: CPUDescriptor) -> str:
        """The most contended port class (diagnostic, MCA-report style)."""
        pres = self.pressure(cpu)
        if not pres:
            return "none"
        return max(pres, key=pres.get)


def schedule_ops(
    ops: Sequence[MachineOp],
    cpu: CPUDescriptor,
    *,
    latency_of: Callable[[MachineOp], float] | None = None,
) -> ScheduleResult:
    """Schedule a straight-line sequence of machine ops.

    ``latency_of`` overrides per-op latency — the CPU timing simulator uses
    it to inject cache-aware load latencies while the analytical path keeps
    the descriptor's L1-hit numbers (the paper's no-cache-model abstraction).

    The model: ops dispatch in program order, at most ``dispatch_width`` per
    cycle; an op issues at the earliest cycle ≥ its dispatch cycle when all
    source vregs are ready and a unit of its port has a free slot;
    pipelined units accept one op per cycle per unit, unpipelined ones are
    busy for the op's full latency.
    """
    if latency_of is None:
        latency_of = lambda op: float(cpu.latency(op.opcode))  # noqa: E731

    ready: dict[int, float] = {}  # vreg -> cycle its value is available
    # port -> list of next-free cycles, one entry per unit
    unit_free: dict[str, list[float]] = {
        port: [0.0] * max(1, count) for port, count in cpu.ports.items()
    }
    port_busy: dict[str, float] = {}
    issue_times: list[float] = []
    finish = 0.0

    for idx, op in enumerate(ops):
        dispatch = idx // max(1, cpu.dispatch_width)
        operands = max(
            (ready.get(s, 0.0) for s in op.srcs), default=0.0
        )
        earliest = max(dispatch, operands)
        units = unit_free.setdefault(op.port, [0.0])
        # pick the unit that frees first
        unit_idx = min(range(len(units)), key=units.__getitem__)
        issue = max(earliest, units[unit_idx])
        lat = latency_of(op)
        occupancy = lat if op.opcode in UNPIPELINED else 1.0
        units[unit_idx] = issue + occupancy
        port_busy[op.port] = port_busy.get(op.port, 0.0) + occupancy
        if op.dest >= 0:
            ready[op.dest] = issue + lat
        issue_times.append(issue)
        finish = max(finish, issue + lat)

    total = max(finish, 1.0) if ops else 0.0
    ipc = len(ops) / total if total > 0 else 0.0
    return ScheduleResult(
        total_cycles=total,
        ipc=ipc,
        port_cycles=dict(port_busy),
        issue_cycle=tuple(issue_times),
    )


@dataclass
class _Renamer:
    """Renames vregs per unrolled copy while threading loop-carried regs."""

    next_vreg: int
    carried: dict[int, int] = field(default_factory=dict)

    def fresh(self) -> int:
        v = self.next_vreg
        self.next_vreg += 1
        return v


def unroll(
    body: Sequence[MachineOp],
    copies: int,
    carried_regs: frozenset[int] = frozenset(),
) -> list[MachineOp]:
    """Concatenate ``copies`` renamed instances of ``body``.

    Registers in ``carried_regs`` are loop-carried: a copy's reads of such a
    register see the previous copy's (renamed) write, creating the serial
    dependency chain of, e.g., a scalar reduction.
    """
    if copies < 1:
        raise ValueError("copies must be >= 1")
    max_reg = max((op.dest for op in body), default=-1)
    max_src = max((max(op.srcs, default=-1) for op in body), default=-1)
    base = max(max_reg, max_src) + 1

    out: list[MachineOp] = []
    # carried register id -> vreg currently holding its live value
    live: dict[int, int] = {r: r for r in carried_regs}
    for c in range(copies):
        offset = base * (c + 1)
        local_map: dict[int, int] = {}

        def rename_src(s: int) -> int:
            if s in local_map:
                return local_map[s]
            if s in carried_regs:
                return live[s]
            return s if c == 0 else s + offset - base  # region-invariant reg
        for op in body:
            srcs = tuple(rename_src(s) for s in op.srcs)
            dest = op.dest
            if dest >= 0:
                new_dest = dest if c == 0 else dest + offset
                local_map[dest] = new_dest
                if dest in carried_regs:
                    live[dest] = new_dest
                dest = new_dest
            out.append(MachineOp(op.opcode, dest, srcs, op.tag))
    return out


def steady_state_cycles(
    body: Sequence[MachineOp],
    cpu: CPUDescriptor,
    *,
    carried_regs: frozenset[int] = frozenset(),
    warmup: int = 4,
    measure: int = 16,
    latency_of: Callable[[MachineOp], float] | None = None,
) -> float:
    """Asymptotic cycles per iteration of ``body`` under the scoreboard.

    Schedules ``warmup + measure`` renamed copies and differences the two
    schedule lengths, eliminating pipeline fill effects.
    """
    if not body:
        return 0.0
    tracer = current_tracer()
    if not tracer.enabled:
        return _cached_steady_state(
            body, cpu, carried_regs, warmup, measure, latency_of
        )
    with tracer.span("mca.steady_state", ops=len(body), cpu=cpu.name) as sp:
        cycles = _cached_steady_state(
            body, cpu, carried_regs, warmup, measure, latency_of
        )
        sp.set("cycles_per_iter", cycles)
        return cycles


def _cached_steady_state(
    body: Sequence[MachineOp],
    cpu: CPUDescriptor,
    carried_regs: frozenset[int],
    warmup: int,
    measure: int,
    latency_of: Callable[[MachineOp], float] | None,
) -> float:
    """Consult the analysis cache before running the scoreboard.

    The key covers the full op listing (opcode, registers, tag), the
    unroll parameters and the CPU descriptor.  A ``latency_of`` override
    is folded in by *evaluating it over the body ops*: both in-tree
    overrides are pure functions of ``(opcode, tag)``, which the renamed
    unrolled copies preserve, so the evaluated latencies determine the
    schedule exactly.
    """
    cache = current_cache()
    if not cache.enabled:
        return _steady_state(body, cpu, carried_regs, warmup, measure, latency_of)
    payload = {
        "ops": [[op.opcode, op.dest, list(op.srcs), op.tag] for op in body],
        "carried": sorted(carried_regs),
        "warmup": warmup,
        "measure": measure,
        "latencies": (
            None
            if latency_of is None
            else [float(latency_of(op)) for op in body]
        ),
    }
    return cache.get_or_compute(
        "mca.steady_state",
        payload,
        cpu,
        lambda: _steady_state(body, cpu, carried_regs, warmup, measure, latency_of),
        validate=lambda v: isinstance(v, (int, float)),
    )


def _steady_state(
    body: Sequence[MachineOp],
    cpu: CPUDescriptor,
    carried_regs: frozenset[int],
    warmup: int,
    measure: int,
    latency_of: Callable[[MachineOp], float] | None,
) -> float:
    short = schedule_ops(
        unroll(body, warmup, carried_regs), cpu, latency_of=latency_of
    ).total_cycles
    long = schedule_ops(
        unroll(body, warmup + measure, carried_regs), cpu, latency_of=latency_of
    ).total_cycles
    return max((long - short) / measure, 0.05)
