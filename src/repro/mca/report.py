"""MCA-style analysis reports.

Mirrors the reporting role of ``llvm-mca`` (cycles, IPC, resource pressure,
bottleneck) for a region's parallel loop body, so users can inspect *why*
the CPU model prices a kernel the way it does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from ..ir import Loop, Region
from ..machines import CPUDescriptor
from .lowering import (
    LoweredLevel,
    find_band_level,
    level_cycles_per_iteration,
    lower_region,
)
from .scheduler import schedule_ops, steady_state_cycles, unroll

__all__ = ["MCAReport", "analyze_region"]


@dataclass(frozen=True)
class MCAReport:
    """Static performance summary of one parallel-loop body."""

    region_name: str
    cpu_name: str
    cycles_per_iteration: float
    ipc: float
    total_ops: int
    port_pressure: Mapping[str, float]
    bottleneck: str
    vectorized: bool
    vector_lanes: int

    def render(self) -> str:
        """Human-readable report in the style of llvm-mca output."""
        lines = [
            f"MCA report: {self.region_name} on {self.cpu_name}",
            f"  cycles / parallel iteration : {self.cycles_per_iteration:10.2f}",
            f"  steady-state IPC            : {self.ipc:10.2f}",
            f"  static micro-ops            : {self.total_ops:10d}",
            f"  vectorized                  : "
            f"{'yes (' + str(self.vector_lanes) + ' lanes)' if self.vectorized else 'no'}",
            "  resource pressure (fraction of unit-cycles busy):",
        ]
        for port in sorted(self.port_pressure):
            bar = "#" * int(round(self.port_pressure[port] * 40))
            lines.append(f"    {port:<4} {self.port_pressure[port]:6.2f} |{bar}")
        lines.append(f"  bottleneck: {self.bottleneck}")
        return "\n".join(lines)


def analyze_region(
    region: Region,
    cpu: CPUDescriptor,
    trip_of: Callable[[Loop], float],
    *,
    vectorize: bool = True,
) -> MCAReport:
    """Full MCA analysis of a region's parallel-loop body."""
    root = lower_region(region, cpu, vectorize=vectorize)
    band = find_band_level(root)
    cycles = level_cycles_per_iteration(band, cpu, trip_of)

    hot = _hottest_level(band, trip_of)
    sched = schedule_ops(unroll(hot.leaf_ops, 8, hot.carried), cpu)
    steady = steady_state_cycles(hot.leaf_ops, cpu, carried_regs=hot.carried)
    ipc = len(hot.leaf_ops) / steady if steady > 0 else 0.0

    vec_level = _first_vectorized(band)
    return MCAReport(
        region_name=region.name,
        cpu_name=cpu.name,
        cycles_per_iteration=cycles,
        ipc=ipc,
        total_ops=band.op_count(),
        port_pressure=sched.pressure(cpu),
        bottleneck=sched.bottleneck(cpu),
        vectorized=vec_level is not None,
        vector_lanes=vec_level.info.lanes if vec_level is not None else 1,
    )


def _hottest_level(level: LoweredLevel, trip_of: Callable[[Loop], float]) -> LoweredLevel:
    """The level whose leaf ops dominate dynamic cost (deepest big loop)."""
    best, best_weight = level, float(len(level.leaf_ops))
    stack: list[tuple[LoweredLevel, float]] = [(level, 1.0)]
    while stack:
        lv, mult = stack.pop()
        weight = mult * len(lv.leaf_ops) / lv.info.elements_per_unit
        if weight > best_weight:
            best, best_weight = lv, weight
        for sub in lv.sub_loops:
            trips = trip_of(sub.loop) if sub.loop is not None else 1.0
            stack.append((sub, mult * trips))
        for t, e in lv.sub_branches:
            stack.append((t, mult * 0.5))
            stack.append((e, mult * 0.5))
    return best


def _first_vectorized(level: LoweredLevel) -> LoweredLevel | None:
    if level.info.vectorized:
        return level
    for sub in level.sub_loops:
        found = _first_vectorized(sub)
        if found is not None:
            return found
    for t, e in level.sub_branches:
        for lv in (t, e):
            found = _first_vectorized(lv)
            if found is not None:
                return found
    return None
