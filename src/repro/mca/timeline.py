"""llvm-mca-style timeline view of a scheduled op sequence.

Renders each micro-op's lifetime across cycles — dispatch (``D``), wait
(``=``), execution (``e``), completion (``E``) — the same visual language
``llvm-mca -timeline`` uses, driven by the scoreboard's issue times.

::

    [ 0] DeeeeeE   .    .     v1 = load v0   ; load A acc:0
    [ 1] D=====eeeeeE   .     v2 = fma v1,v3,v2
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..machines import CPUDescriptor
from .ops import MachineOp
from .scheduler import schedule_ops

__all__ = ["render_timeline"]


def render_timeline(
    ops: Sequence[MachineOp],
    cpu: CPUDescriptor,
    *,
    latency_of: Callable[[MachineOp], float] | None = None,
    max_cycles: int = 100,
    max_ops: int = 48,
) -> str:
    """Render the dispatch/issue/complete timeline of an op sequence.

    Long schedules are truncated to ``max_cycles`` columns and ``max_ops``
    rows (annotated when truncation happens).
    """
    if not ops:
        return "(empty op sequence)"
    if latency_of is None:
        latency_of = lambda op: float(cpu.latency(op.opcode))  # noqa: E731
    result = schedule_ops(ops, cpu, latency_of=latency_of)

    total = int(result.total_cycles) + 1
    shown_cycles = min(total, max_cycles)
    shown_ops = min(len(ops), max_ops)

    header_tens = "".join(str((c // 10) % 10) for c in range(shown_cycles))
    header_ones = "".join(str(c % 10) for c in range(shown_cycles))
    lines = [
        f"Timeline view ({total} cycles, IPC {result.ipc:.2f}):",
        "       " + header_tens,
        "Index  " + header_ones,
    ]

    for idx in range(shown_ops):
        op = ops[idx]
        dispatch = idx // max(1, cpu.dispatch_width)
        issue = int(result.issue_cycle[idx])
        lat = max(1, int(latency_of(op)))
        complete = issue + lat - 1
        row = []
        for c in range(shown_cycles):
            if c == dispatch and c < issue:
                row.append("D")
            elif c < dispatch:
                row.append(" ")
            elif c < issue:
                row.append("=")
            elif c == complete:
                row.append("E")
            elif c == issue == dispatch:
                row.append("D" if lat > 1 else "E")
            elif issue <= c < complete:
                row.append("e")
            else:
                row.append("." if c % 5 == 0 else " ")
        lines.append(f"[{idx:3d}]  " + "".join(row) + f"   {op!r}")
    if shown_ops < len(ops):
        lines.append(f"  ... {len(ops) - shown_ops} more ops not shown")
    if shown_cycles < total:
        lines.append(f"  ... schedule continues to cycle {total}")
    return "\n".join(lines)
