"""Global model-constant calibration against microbenchmarks.

The paper stresses that "values of [the model's] parameters can be obtained
from micro-benchmarks".  This module performs that step for the two scale
constants the analytical models cannot derive statically:

* ``cpu_time_scale`` — how much slower the measured host is than the
  cacheless Liao/MCA estimate (cache refills, bandwidth saturation of wide
  teams);
* ``gpu_time_scale`` — how much the measured device deviates from the
  Hong estimate on a well-behaved coalesced kernel (memory-level
  parallelism beyond one request per warp).

Both are fit on *synthetic* microkernels (triad + row-dot), never on the
evaluation workload, so per-kernel model error structure — uncoalesced
over-accounting, cache blindness — is preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..analysis import ProgramAttributeDatabase
from ..machines import Platform
from ..models import predict_both
from ..sim import simulate_cpu, simulate_gpu_kernel
from .kernels import build_dot_rows, build_triad

__all__ = ["ModelCalibration", "fit_model_calibration"]

#: Problem size of the calibration kernels (4 Mi elements ≈ 16 MiB/array).
_CAL_N = 1 << 22
_CAL_DOT = {"n": 4096, "m": 4096}


@dataclass(frozen=True)
class ModelCalibration:
    """Fitted global scale constants for one platform/team configuration."""

    platform_name: str
    num_threads: int | None
    cpu_time_scale: float
    gpu_time_scale: float

    def __post_init__(self):
        if self.cpu_time_scale <= 0 or self.gpu_time_scale <= 0:
            raise ValueError("calibration scales must be positive")


_IDENTITY_ENVS = ({"n": _CAL_N, "a": 2.0}, dict(_CAL_DOT))


def fit_model_calibration(
    platform: Platform, *, num_threads: int | None = None
) -> ModelCalibration:
    """Fit the scale constants by running the probes on the platform.

    Each probe is "measured" (simulated) and predicted; the geometric mean
    of measured/predicted across probes is the scale.
    """
    probes = [
        (build_triad(), {"n": _CAL_N}, {"a": 2.0}),
        (build_dot_rows(), dict(_CAL_DOT), {}),
    ]
    cpu_ratios: list[float] = []
    gpu_ratios: list[float] = []
    db = ProgramAttributeDatabase()
    for region, env, _scalars in probes:
        attrs = db.compile_region(region)
        bound = attrs.bind(env)
        pred = predict_both(bound, platform, num_threads=num_threads)
        sim_cpu = simulate_cpu(
            region, platform.host, env, num_threads=num_threads
        ).seconds
        sim_gpu = simulate_gpu_kernel(region, platform.gpu, env)
        cpu_ratios.append(sim_cpu / pred.cpu.seconds)
        # compare kernel-only portions: launch+transfer are separately exact
        pred_kernel = max(pred.gpu.kernel_seconds, 1e-12)
        sim_kernel = max(sim_gpu.seconds - sim_gpu.launch_seconds, 1e-12)
        gpu_ratios.append(sim_kernel / pred_kernel)

    gm = lambda xs: math.exp(sum(math.log(x) for x in xs) / len(xs))  # noqa: E731
    return ModelCalibration(
        platform_name=platform.name,
        num_threads=num_threads,
        cpu_time_scale=gm(cpu_ratios),
        gpu_time_scale=gm(gpu_ratios),
    )
