"""Synthetic microbenchmark kernels used for calibration.

These are *not* Polybench members: they are the small, behaviour-isolating
loops one writes to measure machine parameters — a streaming triad (pure
bandwidth), a dot-product row sweep (reduction + latency), and a strided
walker (TLB / coalescing probe).
"""

from __future__ import annotations

from ..ir import Region

__all__ = ["build_triad", "build_dot_rows", "build_strided_walk", "build_empty_body"]


def build_triad(name: str = "cal_triad") -> Region:
    """STREAM triad: z[i] = x[i] + a*y[i] — a pure bandwidth probe."""
    r = Region(name)
    n = r.param("n")
    x = r.array("x", (n,))
    y = r.array("y", (n,))
    z = r.array("z", (n,), output=True)
    a = r.scalar("a")
    with r.parallel_loop("i", n) as i:
        r.store(z[i], x[i] + a * y[i])
    return r


def build_dot_rows(name: str = "cal_dot") -> Region:
    """Per-row dot products: y[i] = Σ_j A[i,j]·x[j] — latency + reduction."""
    r = Region(name)
    n, m = r.param_tuple("n", "m")
    A = r.array("A", (n, m))
    x = r.array("x", (m,))
    y = r.array("y", (n,), output=True)
    with r.parallel_loop("i", n) as i:
        acc = r.local("acc", 0.0)
        with r.loop("j", m) as j:
            r.assign(acc, acc + A[i, j] * x[j])
        r.store(y[i], acc)
    return r


def build_strided_walk(stride_param: str = "s", name: str = "cal_stride") -> Region:
    """Strided store: A[s*i] = 1.0 — the coalescing/TLB probe."""
    r = Region(name)
    n = r.param("n")
    s = r.param(stride_param)
    A = r.array("A", (n * s.sym,), output=True)
    with r.parallel_loop("i", n) as i:
        r.store(A[s.sym * i.sym], 1.0)
    return r


def build_empty_body(name: str = "cal_empty") -> Region:
    """Near-empty parallel loop — isolates fork/schedule/join overheads."""
    r = Region(name)
    n = r.param("n")
    A = r.array("A", (n,), output=True)
    with r.parallel_loop("i", n) as i:
        r.store(A[i], 0.0)
    return r
