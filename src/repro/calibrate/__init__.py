"""Microbenchmark calibration of model parameters.

The paper obtains its model constants from microbenchmarks: EPCC for the
OpenMP overheads (Table II), libhugetlbfs for the TLB penalty, Zhe Jia's
probes for the V100 latencies (Table III).  This package reproduces that
methodology against our simulated "hardware": probe kernels are run on the
simulators and model constants are fit from the measurements.
"""

from .kernels import (
    build_dot_rows,
    build_empty_body,
    build_strided_walk,
    build_triad,
)
from .model_fit import ModelCalibration, fit_model_calibration
from .epcc import ParallelOverhead, measure_parallel_overhead, overhead_curve
from .tlb import TLBProbeResult, probe_tlb, simulate_page_walk
from .gpu_microbench import GPULatencyProbe, chase_latency, probe_gpu_latencies

__all__ = [
    "build_dot_rows",
    "build_empty_body",
    "build_strided_walk",
    "build_triad",
    "ModelCalibration",
    "fit_model_calibration",
    "ParallelOverhead",
    "measure_parallel_overhead",
    "overhead_curve",
    "TLBProbeResult",
    "probe_tlb",
    "simulate_page_walk",
    "GPULatencyProbe",
    "chase_latency",
    "probe_gpu_latencies",
]
