"""EPCC-style OpenMP overhead microbenchmarks (Table II methodology).

EPCC measures construct overheads by timing a parallel construct whose
body does negligible work.  We do the same against the CPU simulator: an
(almost) empty parallel loop with one iteration per thread isolates
fork + schedule + barrier cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines import CPUDescriptor
from ..sim import simulate_cpu
from .kernels import build_empty_body

__all__ = ["ParallelOverhead", "measure_parallel_overhead", "overhead_curve"]


@dataclass(frozen=True)
class ParallelOverhead:
    """Measured overhead of one parallel-for at a given team size."""

    cpu_name: str
    num_threads: int
    overhead_cycles: float
    overhead_us: float


def measure_parallel_overhead(
    cpu: CPUDescriptor, num_threads: int
) -> ParallelOverhead:
    """Time an empty ``parallel for`` (one iteration per thread).

    The kernel body is a single store, so virtually all measured time is
    fork + schedule + join — the quantities Table II carries.
    """
    region = build_empty_body()
    res = simulate_cpu(region, cpu, {"n": num_threads}, num_threads=num_threads)
    cycles = res.seconds * cpu.frequency_ghz * 1e9
    return ParallelOverhead(
        cpu_name=cpu.name,
        num_threads=num_threads,
        overhead_cycles=cycles,
        overhead_us=res.seconds * 1e6,
    )


def overhead_curve(
    cpu: CPUDescriptor, team_sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 160)
) -> list[ParallelOverhead]:
    """EPCC overhead as a function of team size (fork/barrier scaling)."""
    sizes = tuple(t for t in team_sizes if t <= cpu.hw_threads)
    return [measure_parallel_overhead(cpu, t) for t in sizes]
