"""TLB probing (the libhugetlbfs methodology of Table II).

A tiny standalone TLB simulator — a fully-associative, LRU translation
cache — is walked with one access per page over working sets straddling
the TLB's coverage.  The cost step between the fitting and the thrashing
regime recovers both the entry count and the miss penalty, exactly how the
``tlbmiss_cost`` utility the paper cites measures real hardware.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..machines import CPUDescriptor

__all__ = ["TLBProbeResult", "simulate_page_walk", "probe_tlb"]


@dataclass(frozen=True)
class TLBProbeResult:
    """Recovered TLB parameters."""

    cpu_name: str
    measured_entries: int
    measured_miss_penalty_cycles: float


class _TLB:
    """Fully-associative LRU translation cache."""

    def __init__(self, entries: int):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self._map: OrderedDict[int, None] = OrderedDict()

    def access(self, page: int) -> bool:
        """Touch a page; returns True on hit."""
        if page in self._map:
            self._map.move_to_end(page)
            return True
        if len(self._map) >= self.entries:
            self._map.popitem(last=False)
        self._map[page] = None
        return False


def simulate_page_walk(
    cpu: CPUDescriptor, num_pages: int, *, sweeps: int = 4
) -> float:
    """Average extra cycles per access when touching ``num_pages`` pages.

    One access per page per sweep, in page order (the probe pattern);
    first-sweep compulsory misses are excluded like the real tool does.
    """
    if num_pages <= 0:
        raise ValueError("num_pages must be positive")
    tlb = _TLB(cpu.tlb_entries)
    for page in range(num_pages):  # warm-up sweep (compulsory misses)
        tlb.access(page)
    misses = 0
    accesses = 0
    for _ in range(sweeps):
        for page in range(num_pages):
            if not tlb.access(page):
                misses += 1
            accesses += 1
    return misses / accesses * cpu.tlb_miss_penalty


def probe_tlb(cpu: CPUDescriptor) -> TLBProbeResult:
    """Recover TLB entries and miss penalty from page-walk timings."""
    # find the coverage knee by doubling then bisecting
    lo, hi = 1, 2
    while simulate_page_walk(cpu, hi) == 0.0:
        lo = hi
        hi *= 2
        if hi > 1 << 22:  # pragma: no cover - defensive
            raise RuntimeError("TLB appears unbounded")
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if simulate_page_walk(cpu, mid) == 0.0:
            lo = mid
        else:
            hi = mid
    entries = lo
    # deep in the thrashing regime every access misses: cost == penalty
    penalty = simulate_page_walk(cpu, entries * 4)
    return TLBProbeResult(
        cpu_name=cpu.name,
        measured_entries=entries,
        measured_miss_penalty_cycles=penalty,
    )
