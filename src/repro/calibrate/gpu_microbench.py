"""Jia-style GPU latency microbenchmarks (Table III methodology).

Zhe Jia's technical report recovers the V100's memory latencies with
pointer-chase kernels whose working set is sized to sit in each cache
level.  We run the same probe against the simulator's memory model: a
single warp chases dependent sector-strided loads through a footprint, and
the average access latency plateaus at the level holding that footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines import GPUDescriptor
from ..sim.locality import AccessSpec, LoopExtent, analyze_access
from ..sim.gpu_sim import _gpu_hierarchy

__all__ = ["GPULatencyProbe", "chase_latency", "probe_gpu_latencies"]


@dataclass(frozen=True)
class GPULatencyProbe:
    """Measured latency plateaus of the device's memory hierarchy."""

    gpu_name: str
    l1_latency: float
    l2_latency: float
    dram_latency: float


def chase_latency(gpu: GPUDescriptor, footprint_bytes: int) -> float:
    """Average access latency of a pointer chase over ``footprint_bytes``.

    One warp, one lane doing the chase (uniform across the warp), stride of
    two sectors to defeat spatial prefetch, repeated sweeps so steady-state
    hits land in the level that holds the footprint.
    """
    if footprint_bytes <= 0:
        raise ValueError("footprint must be positive")
    stride_elems = (2 * gpu.sector_bytes) // 4  # two sectors, f32 elements
    trips = max(2.0, footprint_bytes / (2 * gpu.sector_bytes))
    spec = AccessSpec(
        elem_bytes=4,
        loops=(
            LoopExtent(float(stride_elems), trips),  # the chase sweep
            LoopExtent(0.0, 1024.0),  # outer repeats: steady state
        ),
        dynamic_count=trips * 1024.0,
        array_bytes=float(footprint_bytes),
    )
    # single resident warp: the probe owns the whole cache
    mem = _gpu_hierarchy(gpu, 1.0, 1.0)
    return analyze_access(spec, mem).avg_latency_cycles


def probe_gpu_latencies(gpu: GPUDescriptor) -> GPULatencyProbe:
    """Recover the L1 / L2 / DRAM latency plateaus."""
    l1_fp = gpu.l1_kib_per_sm * 1024 // 2
    l2_fp = gpu.l2_kib * 1024 // 2
    dram_fp = gpu.l2_kib * 1024 * 16
    return GPULatencyProbe(
        gpu_name=gpu.name,
        l1_latency=chase_latency(gpu, l1_fp),
        l2_latency=chase_latency(gpu, l2_fp),
        dram_latency=chase_latency(gpu, dram_fp),
    )
