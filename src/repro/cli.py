"""Command-line interface: regenerate paper artefacts and query the models.

Installed as ``repro-paper`` (see pyproject.toml), or run as
``python -m repro.cli``::

    repro-paper table1                 # any of table1..3, figure3..8, ablations
    repro-paper all                    # every artefact in paper order
    repro-paper select gemm --mode benchmark --platform p9-v100
    repro-paper lint                   # lint every bundled kernel
    repro-paper lint syrk --format json
    repro-paper lint --fail-on warning # treat MAP/PERF warnings as fatal
    repro-paper transfers              # declared vs inferred transfer sizing
    repro-paper drift --launches 96    # drift sentinel scenario grid
    repro-paper replay --tiny          # traffic-replay chaos scenario grid
    repro-paper hedge --tiny           # hedged-dispatch budget x chaos grid
    repro-paper trace --format json -o trace.json   # Chrome trace of a sweep
    repro-paper trace --jobs 4                 # parallel sweep, same output
    repro-paper table1 --jobs 4 --chunk 6      # chunked warm-worker sweep
    repro-paper table1 --cache-dir .cache      # reuse analysis across runs
    repro-paper cache stats                    # inspect the analysis cache
    repro-paper probe tlb|gpu|epcc
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys

from .machines import POWER9, TESLA_V100, platform_by_name
from .parallel import CHUNK_ENV, JOBS_ENV, AnalysisCache, default_cache_dir
from .util import add_format_argument, emit_rows

__all__ = ["main", "build_parser"]

_ARTEFACTS = (
    "table1",
    "table2",
    "table3",
    "figure3",
    "figure45",
    "figure6",
    "figure7",
    "figure8",
    "ablations",
    "summary",
    "crossgen",
    "faults",
)


def _render_artefact(name: str) -> tuple[str, bool]:
    """Render one artefact; the flag is its self-check verdict (if any)."""
    from . import experiments as ex

    if name == "table1":
        return ex.run_table1().render(), True
    if name == "table2":
        return ex.run_table2().render(), True
    if name == "table3":
        return ex.run_table3().render(), True
    if name == "figure3":
        return ex.run_figure3().render(), True
    if name == "figure45":
        return ex.run_figure45().render(), True
    if name == "figure6":
        return ex.run_figure6().render(), True
    if name == "figure7":
        return ex.run_figure7().render(), True
    if name == "figure8":
        return "\n\n".join(
            ex.run_figure8(mode).render() for mode in ("test", "benchmark")
        ), True
    if name == "ablations":
        return "\n\n".join(
            ex.run_ablations(mode).render() for mode in ("test", "benchmark")
        ), True
    if name == "summary":
        return ex.run_summary().render(), True
    if name == "crossgen":
        return "\n\n".join(
            ex.run_crossgen(mode).render() for mode in ("test", "benchmark")
        ), True
    if name == "faults":
        result = ex.run_faults()
        return result.render(), result.passed
    raise KeyError(name)  # pragma: no cover - argparse restricts choices


def _cmd_artefact(args) -> int:
    names = _ARTEFACTS if args.artefact == "all" else (args.artefact,)
    failed = []
    for i, name in enumerate(names):
        if i:
            print()
        text, ok = _render_artefact(name)
        print(text)
        if not ok:
            failed.append(name)
    if failed:
        print(f"self-check FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_select(args) -> int:
    from .polybench import benchmark_by_name
    from .runtime import ModelGuided, OffloadingRuntime

    platform = platform_by_name(args.platform)
    spec = benchmark_by_name(args.benchmark)
    runtime = OffloadingRuntime(
        platform, policy=ModelGuided(), num_threads=args.threads
    )
    rows = []
    for region in spec.build():
        runtime.compile_region(region)
        rec = runtime.launch(region.name, spec.env(args.mode))
        rows.append(
            [
                region.name,
                f"{rec.prediction.cpu.seconds * 1e3:.3f}",
                f"{rec.prediction.gpu.seconds * 1e3:.3f}",
                rec.target,
                f"{rec.true_speedup:.2f}x",
                "ok" if rec.decision_correct else "MISS",
            ]
        )
    print(
        emit_rows(
            ["kernel", "pred cpu (ms)", "pred gpu (ms)", "chosen", "true", ""],
            rows,
            title=(
                f"{spec.name} on {platform.name} ({args.mode} datasets, "
                f"{args.threads or platform.host.hw_threads} threads)"
            ),
            fmt=args.format,
        )
    )
    return 0


def _cmd_lint(args) -> int:
    from .lint import lint_region, render_reports_text, reports_to_json
    from .polybench import SUITE, benchmark_by_name

    specs = (
        [benchmark_by_name(b) for b in args.benchmarks]
        if args.benchmarks
        else list(SUITE)
    )
    platform = platform_by_name(args.platform)
    reports = []
    for spec in specs:
        env = spec.env(args.mode)
        for region in spec.build():
            reports.append(lint_region(region, env=env, platform=platform))
    if args.format == "json":
        print(reports_to_json(reports))
    else:
        print(render_reports_text(reports))
    if args.fail_on == "warning":
        return 1 if any(len(r) for r in reports) else 0
    return 1 if any(r.has_errors for r in reports) else 0


def _cmd_transfers(args) -> int:
    from .experiments import run_transfers
    from .util import emit_json

    result = run_transfers(
        platform=platform_by_name(args.platform),
        mode=args.mode,
        num_threads=args.threads,
    )
    if args.format == "json":
        print(emit_json(result.to_payload()))
    else:
        print(result.render())
    return 0 if result.passed else 1


def _cmd_drift(args) -> int:
    from .experiments import run_drift
    from .util import emit_json

    result = run_drift(
        platform=platform_by_name(args.platform),
        launches=args.launches,
        start=args.start,
    )
    if args.format == "json":
        print(emit_json(result.to_payload()))
    else:
        print(result.render())
    return 0 if result.passed else 1


def _cmd_trace(args) -> int:
    from .experiments import run_trace

    result = run_trace(
        platform=args.platform,
        mode=args.mode,
        benchmarks=args.benchmarks or None,
        num_threads=args.threads,
        jobs=args.jobs,
        chunk=args.chunk,
    )
    out = result.chrome_json() if args.format == "json" else result.render()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(out + "\n")
        print(
            f"wrote {args.format} trace ({len(result.tracer.spans)} spans, "
            f"{len(result.records)} launches) to {args.output}"
        )
    else:
        print(out)
    return 0 if result.passed else 1


def _cmd_replay(args) -> int:
    from .experiments import run_replay
    from .util import emit_json

    launches = 2_000 if args.tiny else args.launches
    extra = {}
    if args.scenarios:
        extra["scenarios"] = tuple(
            s.strip() for s in args.scenarios.split(",") if s.strip()
        )
    result = run_replay(
        launches=launches,
        seed=args.seed,
        platform=platform_by_name(args.platform),
        utilization=args.utilization,
        overload_utilization=args.overload_utilization,
        capacity=args.capacity,
        jobs=args.jobs,
        chunk=args.chunk,
        **extra,
    )
    out = (
        emit_json(result.to_payload())
        if args.format == "json"
        else result.render()
    )
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(out + "\n")
        print(
            f"wrote replay {args.format} report "
            f"({launches} requests/scenario) to {args.output}"
        )
    else:
        print(out)
    return 0 if result.passed else 1


def _cmd_service(args) -> int:
    from .experiments import run_service
    from .util import emit_json

    launches = 2_000 if args.tiny else args.launches
    extra = {}
    if args.scenarios:
        extra["scenarios"] = tuple(
            s.strip() for s in args.scenarios.split(",") if s.strip()
        )
    result = run_service(
        launches=launches,
        seed=args.seed,
        platform=platform_by_name(args.platform),
        tenants=args.tenants,
        utilization=args.utilization,
        burst_utilization=args.burst_utilization,
        jobs=args.jobs,
        chunk=args.chunk,
        **extra,
    )
    out = (
        emit_json(result.to_payload())
        if args.format == "json"
        else result.render()
    )
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(out + "\n")
        print(
            f"wrote service {args.format} report "
            f"({launches} requests/scenario) to {args.output}"
        )
    else:
        print(out)
    return 0 if result.passed else 1


def _cmd_hedge(args) -> int:
    from .experiments import run_hedge
    from .util import emit_json

    launches = 2_000 if args.tiny else args.launches
    result = run_hedge(
        launches=launches,
        seed=args.seed,
        platform=platform_by_name(args.platform),
        utilization=args.utilization,
    )
    out = (
        emit_json(result.to_payload())
        if args.format == "json"
        else result.render()
    )
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(out + "\n")
        print(
            f"wrote hedge {args.format} report "
            f"({launches} requests/arm) to {args.output}"
        )
    else:
        print(out)
    return 0 if result.passed else 1


def _cmd_cache(args) -> int:
    from .util import emit_json

    cache = AnalysisCache(args.cache_dir or default_cache_dir())
    if args.action == "clear":
        before = cache.entry_count()
        cache.clear()
        print(f"cleared {before} entries from {cache.cache_dir}")
        return 0
    stats = cache.stats()
    if args.format == "json":
        print(emit_json(stats))
    else:
        width = max(len(k) for k in stats)
        for k in ("cache_dir", "entries", "version"):
            print(f"{k:<{width}}  {stats[k]}")
    return 0


def _cmd_probe(args) -> int:
    from . import calibrate as cal

    if args.what == "tlb":
        res = cal.probe_tlb(POWER9)
        print(
            f"{res.cpu_name}: {res.measured_entries} TLB entries, "
            f"{res.measured_miss_penalty_cycles:g}-cycle miss penalty"
        )
    elif args.what == "gpu":
        res = cal.probe_gpu_latencies(TESLA_V100)
        print(
            f"{res.gpu_name}: L1 {res.l1_latency:g} / L2 {res.l2_latency:g} "
            f"/ DRAM {res.dram_latency:g} cycles"
        )
    else:  # epcc
        for m in cal.overhead_curve(POWER9):
            print(
                f"{m.cpu_name} x{m.num_threads:<4d}: "
                f"{m.overhead_cycles:12,.0f} cycles ({m.overhead_us:8.1f} us)"
            )
    return 0


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    """``--jobs``/``--chunk``/``--cache-dir`` knobs for sweep commands."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for suite sweeps "
            f"(default: ${JOBS_ENV}, else 1 = sequential)"
        ),
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=None,
        help=(
            "cases per worker batch "
            f"(default: ${CHUNK_ENV}, else ceil(n_cases/jobs))"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "activate the persistent analysis cache rooted at this "
            "directory (see also $REPRO_CACHE_DIR and 'repro-paper cache')"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-paper",
        description="Reproduce Chikin et al. (IPDPSW 2019) artefacts",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    art = sub.add_parser("artefact", help="regenerate a paper table/figure")
    art.add_argument("artefact", choices=_ARTEFACTS + ("all",))
    _add_parallel_arguments(art)
    art.set_defaults(func=_cmd_artefact)
    # artefact names also work as top-level commands
    for name in _ARTEFACTS + ("all",):
        p = sub.add_parser(name, help=f"regenerate {name}")
        _add_parallel_arguments(p)
        p.set_defaults(func=_cmd_artefact, artefact=name)

    sel = sub.add_parser("select", help="run the selector on one benchmark")
    sel.add_argument("benchmark", help="polybench benchmark name (e.g. gemm)")
    sel.add_argument("--platform", default="p9-v100")
    sel.add_argument("--mode", default="benchmark", choices=("test", "benchmark"))
    sel.add_argument("--threads", type=int, default=None)
    add_format_argument(sel)
    sel.set_defaults(func=_cmd_select)

    lint = sub.add_parser(
        "lint",
        help="run the region lint passes (exit 1 on error-severity findings)",
    )
    lint.add_argument(
        "benchmarks",
        nargs="*",
        help="benchmark names to lint (default: the whole suite)",
    )
    lint.add_argument("--platform", default="p9-v100")
    lint.add_argument("--mode", default="test", choices=("test", "benchmark"))
    lint.add_argument(
        "--fail-on",
        choices=("error", "warning"),
        default="error",
        help=(
            "minimum finding severity that fails the command "
            "(default: error; 'warning' makes any finding fatal)"
        ),
    )
    add_format_argument(lint)
    lint.set_defaults(func=_cmd_lint)

    xfers = sub.add_parser(
        "transfers",
        help=(
            "compare declared vs dataflow-inferred transfer sizing "
            "(exit 1 when the self-check fails)"
        ),
    )
    xfers.add_argument("--platform", default="p9-v100")
    xfers.add_argument("--mode", default="test", choices=("test", "benchmark"))
    xfers.add_argument("--threads", type=int, default=None)
    add_format_argument(xfers)
    xfers.set_defaults(func=_cmd_transfers)

    drift = sub.add_parser(
        "drift",
        help=(
            "run the drift-sentinel scenario grid "
            "(exit 1 when a self-check fails)"
        ),
    )
    drift.add_argument("--platform", default="p9-v100")
    drift.add_argument(
        "--launches",
        type=int,
        default=96,
        help="launches per arm (default: 96)",
    )
    drift.add_argument(
        "--start",
        type=int,
        default=24,
        help="launch index at which the calibration skew begins (default: 24)",
    )
    add_format_argument(drift)
    drift.set_defaults(func=_cmd_drift)

    replay = sub.add_parser(
        "replay",
        help=(
            "replay a seeded traffic trace under the chaos scenario grid "
            "(exit 1 when a self-check fails)"
        ),
    )
    replay.add_argument("--platform", default="p9-v100")
    replay.add_argument(
        "--launches",
        type=int,
        default=20_000,
        help="requests per scenario (default: 20000)",
    )
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument(
        "--utilization",
        type=float,
        default=0.6,
        help="steady-state offered load (default: 0.6)",
    )
    replay.add_argument(
        "--overload-utilization",
        type=float,
        default=3.0,
        help="offered load of the overload scenarios (default: 3.0)",
    )
    replay.add_argument(
        "--capacity",
        type=int,
        default=32,
        help="admission-queue bound for the overload scenarios (default: 32)",
    )
    replay.add_argument(
        "--tiny",
        action="store_true",
        help="2000-request smoke grid (the CI target)",
    )
    replay.add_argument(
        "--scenarios",
        default=None,
        help=(
            "comma-separated subset of the scenario grid "
            "(the steady baseline is always required)"
        ),
    )
    replay.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the report to a file instead of stdout",
    )
    _add_parallel_arguments(replay)
    add_format_argument(replay)
    replay.set_defaults(func=_cmd_replay)

    service = sub.add_parser(
        "service",
        help=(
            "replay a multi-tenant trace through the offload service, "
            "twinned against the legacy FIFO (exit 1 when a self-check "
            "fails)"
        ),
    )
    service.add_argument("--platform", default="p9-v100")
    service.add_argument(
        "--launches",
        type=int,
        default=20_000,
        help="requests per scenario (default: 20000)",
    )
    service.add_argument("--seed", type=int, default=0)
    service.add_argument(
        "--tenants",
        type=int,
        default=3,
        help="concurrent tenants issuing the trace (default: 3)",
    )
    service.add_argument(
        "--utilization",
        type=float,
        default=0.6,
        help="steady-state offered load (default: 0.6)",
    )
    service.add_argument(
        "--burst-utilization",
        type=float,
        default=1.6,
        help="offered load of the burst scenarios (default: 1.6)",
    )
    service.add_argument(
        "--tiny",
        action="store_true",
        help="2000-request smoke grid (the CI target)",
    )
    service.add_argument(
        "--scenarios",
        default=None,
        help="comma-separated subset of the tenant-mix × load-shape grid",
    )
    service.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the report to a file instead of stdout",
    )
    _add_parallel_arguments(service)
    add_format_argument(service)
    service.set_defaults(func=_cmd_service)

    hedge = sub.add_parser(
        "hedge",
        help=(
            "replay chaos with and without speculative host backups over "
            "a deadline-budget sweep (exit 1 when a self-check fails)"
        ),
    )
    hedge.add_argument("--platform", default="p9-v100")
    hedge.add_argument(
        "--launches",
        type=int,
        default=20_000,
        help="requests per arm (default: 20000)",
    )
    hedge.add_argument("--seed", type=int, default=0)
    hedge.add_argument(
        "--utilization",
        type=float,
        default=0.6,
        help="steady-state offered load (default: 0.6)",
    )
    hedge.add_argument(
        "--tiny",
        action="store_true",
        help="2000-request smoke grid (the CI target)",
    )
    hedge.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the report to a file instead of stdout",
    )
    add_format_argument(hedge)
    hedge.set_defaults(func=_cmd_hedge)

    trace = sub.add_parser(
        "trace",
        help=(
            "run an instrumented suite sweep and export the trace "
            "(json = Chrome trace-event format, open in Perfetto)"
        ),
    )
    trace.add_argument(
        "benchmarks",
        nargs="*",
        help="benchmark names to trace (default: the whole suite)",
    )
    trace.add_argument("--platform", default="p9-v100")
    trace.add_argument("--mode", default="test", choices=("test", "benchmark"))
    trace.add_argument("--threads", type=int, default=None)
    trace.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the rendered trace to a file instead of stdout",
    )
    _add_parallel_arguments(trace)
    add_format_argument(trace)
    trace.set_defaults(func=_cmd_trace)

    cache = sub.add_parser(
        "cache",
        help="inspect or clear the persistent analysis cache",
    )
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR, else user cache)",
    )
    add_format_argument(cache)
    cache.set_defaults(func=_cmd_cache)

    probe = sub.add_parser("probe", help="run a calibration microbenchmark")
    probe.add_argument("what", choices=("tlb", "gpu", "epcc"))
    probe.set_defaults(func=_cmd_probe)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    ``--jobs``/``--chunk`` are exported as ``$REPRO_JOBS``/``$REPRO_CHUNK``
    so every sweep the command runs (and every worker it forks) picks
    them up; ``--cache-dir`` activates a persistent
    :class:`AnalysisCache` for the command's duration.  All are restored
    afterwards so embedding callers (tests) see no leaked state.
    """
    args = build_parser().parse_args(argv)
    with contextlib.ExitStack() as stack:

        def export(env: str, value) -> None:
            prev = os.environ.get(env)
            os.environ[env] = str(value)
            stack.callback(
                lambda: (
                    os.environ.pop(env, None)
                    if prev is None
                    else os.environ.__setitem__(env, prev)
                )
            )

        if getattr(args, "jobs", None) is not None:
            export(JOBS_ENV, args.jobs)
        if getattr(args, "chunk", None) is not None:
            export(CHUNK_ENV, args.chunk)
        cache_dir = getattr(args, "cache_dir", None)
        if cache_dir and args.func is not _cmd_cache:
            stack.enter_context(AnalysisCache(cache_dir).activate())
        return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
