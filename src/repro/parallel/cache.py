"""Persistent, content-addressed cache for static-analysis artefacts.

The paper's central economy (Figure 2) is that *static* analysis is done
once and amortized over every later launch; within one process the
experiment harness already memoizes, but every new process — each worker
of the parallel sweep engine, each CLI invocation, each CI job — used to
recompute compile/IPDA/MCA analysis from scratch.  The
:class:`AnalysisCache` closes that gap: JSON records under a cache
directory, addressed by SHA-256 over the *canonical content* of the
computation — canonical region IR text (or machine-op listings), a
machine-model fingerprint, and the package version — so any perturbation
of the kernel, the schedule or the machine model changes the key, while
reformatting or printer/parser round-trips do not.

Design rules (docs/PERFORMANCE.md):

* **stdlib only** — ``json``, ``hashlib``, ``os``; one file per entry,
  written atomically (temp file + ``os.replace``) so concurrent worker
  processes never observe torn entries;
* **corruption is a miss, never a wrong answer** — unreadable, truncated
  or schema-mismatched entries are counted as invalidations, recomputed
  and overwritten;
* **off by default** — library code reaches the cache through
  :func:`current_cache`, which hands back the disabled
  :data:`NULL_CACHE` unless an :class:`AnalysisCache` was activated, so
  the zero-cache path stays bit-identical to an uncached build;
* hit/miss/invalidation counters mirror into a
  :class:`~repro.obs.MetricsRegistry` when one is attached.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Any, Callable, Mapping

from .. import __version__

__all__ = [
    "AnalysisCache",
    "NULL_CACHE",
    "NullCache",
    "current_cache",
    "default_cache_dir",
    "machine_fingerprint",
    "region_cache_key",
]

#: Environment variable naming the cache directory for CLI/benchmark runs.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bumped when an entry's value encoding changes shape incompatibly.
_SCHEMA = 1

_MISS = object()


def default_cache_dir() -> str:
    """Resolve the cache directory: ``$REPRO_CACHE_DIR`` or a user cache."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(xdg, "repro-paper")


def _canonical(obj: Any) -> Any:
    """Recursively reduce a value to a deterministic JSON-able structure.

    Dataclasses become ``[class-name, [field, value]...]`` in declared
    field order; mappings sort by key; sets sort by repr; tuples become
    lists.  Anything else must already be JSON-representable (or have a
    deterministic repr, used as a last resort).
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            type(obj).__name__,
            [
                [f.name, _canonical(getattr(obj, f.name))]
                for f in dataclasses.fields(obj)
            ],
        ]
    if isinstance(obj, Mapping):
        return {str(k): _canonical(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(repr(v) for v in obj)
    return repr(obj)


def machine_fingerprint(machine: Any) -> str:
    """Deterministic fingerprint of a machine descriptor (or any config).

    Any field change — a latency, a port count, a bandwidth — produces a
    different fingerprint, so cached analysis can never be replayed
    against a perturbed machine model.
    """
    if machine is None:
        return ""
    return json.dumps(_canonical(machine), sort_keys=True, separators=(",", ":"))


def compute_key(kind: str, payload: Any, machine: Any = None) -> str:
    """SHA-256 content address over (kind, payload, machine, version)."""
    doc = json.dumps(
        {
            "kind": kind,
            "payload": _canonical(payload),
            "machine": machine_fingerprint(machine),
            "version": __version__,
            "schema": _SCHEMA,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


def region_cache_key(region, machine: Any = None, *, kind: str = "region") -> str:
    """Cache key of a region's canonical IR text (plus optional machine).

    The canonical form is :func:`repro.ir.region_to_text`, so any region
    that prints identically — in particular a printer→parser round-trip
    of itself — shares the key, while any node/schedule mutation that
    changes the text changes it.
    """
    from ..ir import region_to_text

    return compute_key(kind, region_to_text(region), machine)


class AnalysisCache:
    """Content-addressed JSON store shared across processes and runs.

    With ``persist=False`` the store never touches disk: entries live in
    the in-memory layer only.  That is the warm-worker configuration —
    each pool worker of the sweep engine holds a memory-only cache for
    its process lifetime and ships new entries back to the parent (see
    :meth:`export_entries` / :meth:`merge_entries`), so analysis done in
    one worker warms every other without any cache directory being
    configured.
    """

    enabled = True

    def __init__(
        self,
        cache_dir: str | None = None,
        *,
        metrics=None,
        persist: bool = True,
    ):
        self.cache_dir = cache_dir or default_cache_dir()
        self.persist = persist
        self._mem: dict[str, Any] = {}
        self._journal: list[tuple[str, str, Any]] = []
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.writes = 0
        self._metrics = metrics

    # -- wiring ----------------------------------------------------------
    def attach_metrics(self, registry) -> None:
        """Mirror hit/miss/invalidation counters into a MetricsRegistry."""
        self._metrics = registry

    _COUNTER_FIELD = {
        "hit": "hits",
        "miss": "misses",
        "invalidation": "invalidations",
    }

    def _count(self, outcome: str, kind: str) -> None:
        field = self._COUNTER_FIELD[outcome]
        setattr(self, field, getattr(self, field) + 1)
        if self._metrics is not None:
            self._metrics.counter(
                "analysis_cache_total", outcome=outcome, kind=kind
            ).inc()

    # -- storage ---------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key[:2], f"{key}.json")

    def _read(self, key: str, kind: str) -> Any:
        """The stored value, ``_MISS`` when absent, invalid or corrupt."""
        if key in self._mem:
            return self._mem[key]
        if not self.persist:
            return _MISS
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return _MISS
        except (OSError, ValueError, UnicodeDecodeError):
            self._count("invalidation", kind)
            return _MISS
        if (
            not isinstance(entry, dict)
            or entry.get("key") != key
            or entry.get("version") != __version__
            or entry.get("schema") != _SCHEMA
            or "value" not in entry
        ):
            self._count("invalidation", kind)
            return _MISS
        value = entry["value"]
        self._mem[key] = value
        return value

    def _write(self, key: str, kind: str, value: Any) -> None:
        self._mem[key] = value
        self._journal.append((key, kind, value))
        if not self.persist:
            self.writes += 1
            return
        path = self._path(key)
        entry = {
            "key": key,
            "kind": kind,
            "version": __version__,
            "schema": _SCHEMA,
            "value": value,
        }
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
            self.writes += 1
        except OSError:  # a read-only cache dir degrades to memory-only
            pass

    # -- public API ------------------------------------------------------
    def get_or_compute(
        self,
        kind: str,
        payload: Any,
        machine: Any,
        compute: Callable[[], Any],
        *,
        validate: Callable[[Any], bool] | None = None,
    ) -> Any:
        """The cached value for (kind, payload, machine), computing on miss.

        ``validate`` guards rehydration: a stored value it rejects is an
        invalidation (recomputed, overwritten), never a wrong answer.
        """
        key = compute_key(kind, payload, machine)
        value = self._read(key, kind)
        if value is not _MISS and (validate is None or validate(value)):
            self._count("hit", kind)
            return value
        if value is not _MISS:  # present but rejected by the validator
            self._count("invalidation", kind)
            self._mem.pop(key, None)
        self._count("miss", kind)
        value = compute()
        self._write(key, kind, value)
        return value

    # -- entry shipping (warm-worker transport) --------------------------
    @property
    def journal_size(self) -> int:
        """Entries computed *by this process* since construction/clear."""
        return len(self._journal)

    def export_entries(self, since: int = 0) -> list[list]:
        """Locally-computed entries past a previous :attr:`journal_size`.

        The returned ``[key, kind, value]`` triples are the pool-worker →
        parent shipping payload.  Only *computed* entries appear — values
        delivered through :meth:`merge_entries` are never re-exported, so
        parent↔worker shipping can never loop or amplify.
        """
        return [[key, kind, value] for key, kind, value in self._journal[since:]]

    def merge_entries(self, entries) -> int:
        """Absorb shipped ``[key, kind, value]`` triples into memory.

        Idempotent under re-delivery: a key already present (computed
        locally or merged earlier) is left untouched, so delivering the
        same batch twice — or two batches that overlap — adds nothing
        the second time.  Merged entries go to the in-memory layer only;
        the process that *computed* an entry is the one that persists it.
        Returns the number of keys that were actually new.
        """
        added = 0
        for key, kind, value in entries:
            if key not in self._mem:
                self._mem[key] = value
                added += 1
        return added

    def entry_count(self) -> int:
        """Number of entry files currently on disk."""
        if not self.persist:
            return len(self._mem)
        count = 0
        try:
            shards = os.listdir(self.cache_dir)
        except OSError:
            return 0
        for shard in shards:
            sub = os.path.join(self.cache_dir, shard)
            if os.path.isdir(sub):
                count += sum(1 for f in os.listdir(sub) if f.endswith(".json"))
        return count

    def clear(self) -> None:
        """Delete every entry and reset the in-memory layer and counters."""
        self._mem.clear()
        self._journal.clear()
        self.hits = self.misses = self.invalidations = self.writes = 0
        if not self.persist:
            return
        try:
            shards = os.listdir(self.cache_dir)
        except OSError:
            return
        for shard in shards:
            sub = os.path.join(self.cache_dir, shard)
            if not os.path.isdir(sub):
                continue
            for name in os.listdir(sub):
                if name.endswith((".json", ".tmp")):
                    try:
                        os.unlink(os.path.join(sub, name))
                    except OSError:
                        pass
            try:
                os.rmdir(sub)
            except OSError:
                pass

    def stats(self) -> dict:
        """Deterministic counters + layout snapshot (the CLI's payload)."""
        return {
            "cache_dir": self.cache_dir,
            "entries": self.entry_count(),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "writes": self.writes,
            "version": __version__,
        }

    def activate(self) -> "_Activation":
        """Make this the :func:`current_cache` for a ``with`` block."""
        return _Activation(self)


class NullCache:
    """Disabled cache: every lookup computes; nothing is stored."""

    enabled = False
    cache_dir = None
    persist = False
    hits = misses = invalidations = writes = 0
    journal_size = 0

    def get_or_compute(self, kind, payload, machine, compute, *, validate=None):
        return compute()

    def attach_metrics(self, registry) -> None:
        pass

    def export_entries(self, since: int = 0) -> list[list]:
        return []

    def merge_entries(self, entries) -> int:
        return 0

    def entry_count(self) -> int:
        return 0

    def clear(self) -> None:
        pass

    def stats(self) -> dict:
        return {
            "cache_dir": None,
            "entries": 0,
            "hits": 0,
            "misses": 0,
            "invalidations": 0,
            "writes": 0,
            "version": __version__,
        }

    def activate(self) -> "_Activation":
        return _Activation(self)


NULL_CACHE = NullCache()

_ACTIVE: "AnalysisCache | NullCache" = NULL_CACHE


def current_cache() -> "AnalysisCache | NullCache":
    """The cache instrumented analysis code should consult."""
    return _ACTIVE


class _Activation:
    """``with cache.activate():`` — push/pop the module-level cache."""

    __slots__ = ("_cache", "_prev")

    def __init__(self, cache):
        self._cache = cache
        self._prev = None

    def __enter__(self):
        global _ACTIVE
        self._prev = _ACTIVE
        _ACTIVE = self._cache
        return self._cache

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        _ACTIVE = self._prev
        return False
