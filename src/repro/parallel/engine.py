"""Deterministic parallel sweep engine with warm persistent workers.

A :class:`SweepEngine` fans independent kernel-case tasks out over a
pool of **persistent warm workers** and merges results back into
**case-declaration order**, regardless of completion order — so a
``--jobs 8`` sweep produces a byte-identical result stream to the
sequential one (the differential harness in ``tests/test_parallel.py``
asserts exactly that).  ``jobs <= 1`` degrades to an in-process
sequential executor running the task functions unchanged, which keeps
the default path free of multiprocessing machinery.

Three properties distinguish this engine from a naive
one-future-per-case ``ProcessPoolExecutor`` (which `BENCH_parallel.json`
showed *losing* to sequential at suite granularity):

* **persistent pools** — worker pools are keyed by ``(jobs, cache_dir)``
  and survive across :meth:`SweepEngine.map` calls, so one sweep's
  worth of process spawning, module imports and attribute-database
  compilation warms every later sweep of the same run (the full
  benchmark grid used to pay pool startup sixteen times);
* **chunked case batches** — the case grid is partitioned into
  contiguous, declaration-ordered index chunks
  (:func:`repro.parallel.chunks.partition_chunks`; auto-sized to
  ``ceil(n/jobs)``, overridable via ``chunk=`` / ``--chunk`` /
  ``$REPRO_CHUNK``), so a sweep pays ~``jobs`` IPC round-trips instead
  of ``n_cases``;
* **cache-entry shipping** — every worker holds a process-local
  :class:`AnalysisCache` for its whole lifetime (memory-only when no
  cache directory is configured), journals the entries it *computes*,
  and returns them with each chunk; the parent absorbs them into a
  per-pool store and re-broadcasts the accumulated delta with the next
  round of chunks, so static analysis done anywhere propagates
  everywhere instead of being recomputed per worker.

Failure handling is loud, never lossy: a task exception aborts the
sweep with a :class:`ChunkFailure` naming the offending case; a worker
*process* death (poisoned chunk, OOM-kill) restarts the pool once —
re-broadcasting the full warm store to the fresh workers — and
resubmits every unfinished chunk, and a second death raises a
:class:`ChunkFailure` naming every case that never completed.  Rows are
never silently dropped.

Observability-carrying sweeps go through :meth:`SweepEngine.map_obs`:
each task returns its value plus a metrics snapshot and a tracer
payload, and the engine merges worker metrics order-independently
(counters and histograms add; see ``MetricsRegistry.merge_snapshot``)
and splices worker trace spans into one tracer with rebased, strictly
increasing timestamps — again in declaration order, so two runs of the
same parallel sweep render byte-identical traces.
"""

from __future__ import annotations

import atexit
import contextlib
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..obs import MetricsRegistry, Tracer
from ..obs.tracer import InstantRecord, SpanRecord
from .cache import AnalysisCache, current_cache
from .chunks import partition_chunks, resolve_chunk

__all__ = [
    "ChunkFailure",
    "JOBS_ENV",
    "ObsTaskResult",
    "SweepEngine",
    "SweepObsResult",
    "merge_tracer_payloads",
    "register_prefork_warmup",
    "resolve_jobs",
    "shutdown_pools",
    "tracer_payload",
]

#: Environment variable supplying the default worker count (``--jobs``).
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count: explicit value, else ``$REPRO_JOBS``, else 1."""
    if jobs is None:
        try:
            jobs = int(os.environ.get(JOBS_ENV, "1"))
        except ValueError:
            jobs = 1
    return max(1, int(jobs))


class ChunkFailure(RuntimeError):
    """A worker chunk failed; ``cases`` names every affected case.

    Raised instead of silently dropping rows: either a task function
    raised (deterministic — resubmission cannot help, the original
    exception is chained as ``__cause__``) or the worker process died
    twice (once on the original pool, once on the restarted one).
    """

    def __init__(self, message: str, cases: Sequence[str]):
        super().__init__(message)
        self.cases = tuple(cases)


# ---------------------------------------------------------------------------
# Tracer payloads: JSON/pickle-safe span transport between processes
# ---------------------------------------------------------------------------


def tracer_payload(tracer: Tracer) -> dict:
    """Serialize a tracer's spans/instants for transport to the parent."""
    return {
        "spans": [
            {
                "name": s.name,
                "category": s.category,
                "start": s.start_ts,
                "end": s.end_ts,
                "depth": s.depth,
                "attrs": dict(s.attrs),
                "index": s.index,
            }
            for s in tracer.spans
        ],
        "instants": [
            {
                "name": i.name,
                "ts": i.ts,
                "depth": i.depth,
                "attrs": dict(i.attrs),
                "index": i.index,
            }
            for i in tracer.instants
        ],
    }


def merge_tracer_payloads(groups: Sequence[dict]) -> Tracer:
    """Splice per-worker tracer payloads into one tracer, in group order.

    Each group's timestamps are rebased past the previous group's maximum
    so the merged trace stays totally ordered and strictly increasing —
    the same invariant a single-process tracer guarantees.  The merge is
    a pure function of the group sequence, so the declaration-ordered
    groups of a parallel sweep always produce the same tracer no matter
    which worker finished first.
    """
    merged = Tracer()
    offset = 0
    for group in groups:
        group_max = 0
        for s in group.get("spans", ()):
            merged.spans.append(
                _span_record(
                    s["name"],
                    s["category"],
                    s["start"] + offset,
                    None if s["end"] is None else s["end"] + offset,
                    s["depth"],
                    dict(s["attrs"]),
                    s["index"] + offset,
                )
            )
            group_max = max(group_max, s["start"], s["end"] or 0, s["index"])
        for i in group.get("instants", ()):
            merged.instants.append(
                InstantRecord(
                    i["name"],
                    i["ts"] + offset,
                    i["depth"],
                    dict(i["attrs"]),
                    i["index"] + offset,
                )
            )
            group_max = max(group_max, i["ts"], i["index"])
        offset += group_max
    merged._seq = offset
    return merged


def _span_record(name, category, start, end, depth, attrs, index) -> SpanRecord:
    rec = SpanRecord(name, category, start, depth, attrs, index)
    rec.end_ts = end
    return rec


# ---------------------------------------------------------------------------
# Worker side: process-local warm state
# ---------------------------------------------------------------------------

_WORKER_CACHE: AnalysisCache | None = None
_WORKER_MARK = 0  # journal watermark of entries already shipped to the parent


def _worker_init(cache_dir: str | None) -> None:
    """Pool initializer: hold a process-local analysis cache for life.

    With a configured ``cache_dir`` the worker persists what it computes
    (atomic writes make concurrent workers safe); without one it holds a
    **memory-only** cache — the warm-worker state that makes repeated
    sweeps cheap even when no persistent cache was requested.  Either
    way the cache stays active for the whole process lifetime.
    """
    global _WORKER_CACHE, _WORKER_MARK
    if cache_dir:
        _WORKER_CACHE = AnalysisCache(cache_dir)
    else:
        _WORKER_CACHE = AnalysisCache(persist=False)
    _WORKER_CACHE.activate().__enter__()  # for the process lifetime
    _WORKER_MARK = 0


class _ChunkItemError(Exception):
    """Worker-side wrapper naming which chunk position raised."""

    def __init__(self, position: int, cause: str):
        super().__init__(position, cause)
        self.position = position
        self.cause = cause


def _run_chunk(fn: Callable[[Any], Any], items: list, inbox: list) -> tuple:
    """Worker chunk runner: absorb shipped entries, run items, ship back.

    Returns ``(values, shipped)`` where ``shipped`` is every cache entry
    this worker *computed* since its last ship — merged (not computed)
    entries are excluded, so shipping is idempotent and loop-free.
    """
    global _WORKER_MARK
    if _WORKER_CACHE is not None and inbox:
        _WORKER_CACHE.merge_entries(inbox)
    values = []
    for position, item in enumerate(items):
        try:
            values.append(fn(item))
        except Exception as exc:
            raise _ChunkItemError(position, repr(exc)) from exc
    if _WORKER_CACHE is None:
        return values, []
    shipped = _WORKER_CACHE.export_entries(_WORKER_MARK)
    _WORKER_MARK = _WORKER_CACHE.journal_size
    return values, shipped


# ---------------------------------------------------------------------------
# Parent side: persistent pools over a shared entry store
# ---------------------------------------------------------------------------

_PREFORK_WARMUPS: list[Callable[[], None]] = []


def register_prefork_warmup(fn: Callable[[], None]) -> None:
    """Register a parent-side warm-up run just before a pool is created.

    Worker processes are forked, so any state the callback builds in the
    parent — compiled attribute databases, fitted calibrations — is
    inherited copy-on-write by every worker for free, instead of being
    rebuilt once per worker process (which serializes on small machines).
    Callbacks run on every pool (re)creation; registration is idempotent.
    """
    if fn not in _PREFORK_WARMUPS:
        _PREFORK_WARMUPS.append(fn)


class _EntryStore:
    """Parent-side store of every cache entry workers have shipped back.

    Keyed by cache directory (one store per logical cache, shared by
    every pool size), holding ``[key, kind, value]`` records in
    first-arrival order with first-write-wins dedup — so analysis done
    by a ``--jobs 2`` sweep warms a later ``--jobs 4`` pool's workers
    through their first broadcast.
    """

    def __init__(self):
        self.entries: list[list] = []
        self._keys: set[str] = set()

    def absorb(self, shipped: Iterable[list]) -> None:
        for entry in shipped:
            if entry[0] not in self._keys:
                self._keys.add(entry[0])
                self.entries.append(entry)


_STORES: dict[str | None, _EntryStore] = {}


class _WorkerPool:
    """Persistent worker slots with deterministic chunk affinity.

    Each of the ``jobs`` slots is its own single-worker executor, and
    chunk ``ci`` always runs on slot ``ci % jobs`` — so the *same* case
    range lands on the *same* warm worker in every sweep (a measure
    sweep's analysis is sitting in-cache when the predict sweep for the
    same cases arrives), and the store delta each slot still needs is
    exactly known (``broadcast_for`` tracks a per-slot watermark; every
    entry is shipped to every slot at most once).  An anonymous shared
    pool can't do either: chunk pickup is a race, so a worker that sat
    out a round would silently miss that round's broadcast forever.

    ``restart()`` (after a worker death) resets every watermark so the
    full store is re-broadcast to the fresh workers — warm state is
    rebuilt, not lost, when the pool restarts.
    """

    def __init__(self, jobs: int, cache_dir: str | None):
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.store = _STORES.setdefault(cache_dir, _EntryStore())
        self._slots: list[ProcessPoolExecutor | None] = [None] * jobs
        self._sent = [0] * jobs  # per-slot watermark into ``store.entries``
        self.restarts = 0

    def slot_for(self, chunk_index: int) -> int:
        return chunk_index % self.jobs

    def executor(self, slot: int) -> ProcessPoolExecutor:
        if self._slots[slot] is None:
            for warmup in _PREFORK_WARMUPS:
                warmup()
            self._slots[slot] = ProcessPoolExecutor(
                max_workers=1,
                initializer=_worker_init,
                initargs=(self.cache_dir,),
            )
        return self._slots[slot]

    def absorb(self, shipped: Iterable[list]) -> None:
        """Merge worker-shipped entries into the store (first write wins)."""
        self.store.absorb(shipped)

    def broadcast_for(self, slot: int) -> list[list]:
        """Entries this slot has not been sent yet; advances its watermark."""
        delta = self.store.entries[self._sent[slot] :]
        self._sent[slot] = len(self.store.entries)
        return delta

    def restart(self) -> None:
        """Replace dead workers; schedule a full warm-state rebroadcast."""
        self.shutdown()
        self._sent = [0] * self.jobs
        self.restarts += 1

    def shutdown(self) -> None:
        for slot, executor in enumerate(self._slots):
            if executor is not None:
                executor.shutdown(wait=True, cancel_futures=True)
                self._slots[slot] = None


_POOLS: dict[tuple[int, str | None], _WorkerPool] = {}


def _pool_for(jobs: int, cache_dir: str | None) -> _WorkerPool:
    key = (jobs, cache_dir)
    pool = _POOLS.get(key)
    if pool is None:
        pool = _POOLS[key] = _WorkerPool(jobs, cache_dir)
    return pool


def shutdown_pools() -> None:
    """Shut down every persistent worker pool and drop their warm stores.

    Called by ``clear_caches(persistent=True)`` (so a post-clear sweep
    genuinely recomputes, in workers too), by the test suite's session
    teardown, and at interpreter exit.
    """
    for pool in _POOLS.values():
        pool.shutdown()
    _POOLS.clear()
    _STORES.clear()


atexit.register(shutdown_pools)


@dataclass(frozen=True)
class ObsTaskResult:
    """What an observability-carrying task returns to the engine."""

    value: Any
    metrics: dict  # a MetricsRegistry.snapshot()
    trace: dict  # a tracer_payload()


@dataclass(frozen=True)
class SweepObsResult:
    """A merged observability sweep: values + one registry + one tracer."""

    values: list
    metrics: MetricsRegistry
    tracer: Tracer


class SweepEngine:
    """Fan kernel-case chunks over warm workers; merge in declaration order."""

    def __init__(
        self,
        jobs: int | None = None,
        *,
        cache_dir: str | None = None,
        chunk: int | None = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.cache_dir = cache_dir
        self.chunk = resolve_chunk(chunk)

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    def _sequential_cache(self):
        if self.cache_dir and not current_cache().enabled:
            return AnalysisCache(self.cache_dir).activate()
        return contextlib.nullcontext()

    def _effective_cache_dir(self) -> str | None:
        """The cache directory the worker pool should persist into.

        An engine constructed without an explicit ``cache_dir`` inherits
        the directory of the *activated* persistent cache, when there is
        one — so ``measure_suite(..., jobs=4)`` under an
        ``AnalysisCache(dir).activate()`` block gives every warm worker
        the same disk store the sequential path would use: workers
        persist what they compute, and a later run (sequential or
        parallel, any process) replays it.  Memory-only caches keep the
        pool memory-only too.
        """
        if self.cache_dir:
            return self.cache_dir
        active = current_cache()
        if getattr(active, "persist", False) and active.enabled:
            return active.cache_dir
        return None

    def _collect(
        self,
        fn: Callable[[Any], Any],
        items: list,
        labels: Sequence[str] | None = None,
    ) -> list:
        """Run ``fn`` over ``items``; results indexed by declaration order."""
        if not self.parallel or len(items) <= 1:
            with self._sequential_cache():
                return [fn(item) for item in items]
        return self._collect_parallel(fn, items, labels)

    def _collect_parallel(
        self,
        fn: Callable[[Any], Any],
        items: list,
        labels: Sequence[str] | None,
    ) -> list:
        if labels is None:
            labels = [repr(item)[:120] for item in items]
        pool = _pool_for(self.jobs, self._effective_cache_dir())
        chunks = partition_chunks(len(items), self.jobs, self.chunk)
        results: list = [None] * len(items)
        done = [False] * len(chunks)
        # Two submission rounds at most: the original pool, then — only
        # after a worker process died — a restarted pool re-running every
        # chunk that never completed.
        for attempt in (0, 1):
            pending = [ci for ci, ok in enumerate(done) if not ok]
            if not pending:
                break
            broken = False
            futures: dict = {}
            try:
                for ci in pending:
                    slot = pool.slot_for(ci)
                    futures[
                        pool.executor(slot).submit(
                            _run_chunk,
                            fn,
                            [items[i] for i in chunks[ci]],
                            pool.broadcast_for(slot),
                        )
                    ] = ci
            except BrokenProcessPool:  # pool died before/while submitting
                broken = True
            for future in as_completed(futures):
                ci = futures[future]
                try:
                    values, shipped = future.result()
                except _ChunkItemError as exc:
                    case = labels[chunks[ci][exc.position]]
                    raise ChunkFailure(
                        f"sweep task failed on case {case!r}: {exc.cause}",
                        [case],
                    ) from exc
                except BrokenProcessPool:
                    broken = True
                    continue
                except Exception as exc:  # transport/pickling failures
                    cases = [labels[i] for i in chunks[ci]]
                    raise ChunkFailure(
                        f"sweep chunk failed for cases {cases}: {exc!r}",
                        cases,
                    ) from exc
                pool.absorb(shipped)
                for i, value in zip(chunks[ci], values):
                    results[i] = value
                done[ci] = True
            if all(done):
                break
            if broken:
                if attempt == 0:
                    pool.restart()
                else:
                    cases = [
                        labels[i]
                        for ci, ok in enumerate(done)
                        if not ok
                        for i in chunks[ci]
                    ]
                    raise ChunkFailure(
                        "worker process died twice; cases never completed: "
                        f"{cases}",
                        cases,
                    )
        # Parent-side warmth: when a cache is active here too, absorbed
        # entries serve later sequential fallbacks without recomputation.
        parent_cache = current_cache()
        if parent_cache.enabled and pool.store.entries:
            parent_cache.merge_entries(pool.store.entries)
        return results

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable,
        *,
        labels: Sequence[str] | None = None,
    ) -> list:
        """Apply ``fn`` to every item; return values in declaration order.

        ``labels`` (parallel to ``items``) names cases in
        :class:`ChunkFailure` diagnostics; it defaults to item reprs.
        """
        return self._collect(fn, list(items), labels)

    def map_obs(
        self,
        fn: Callable[[Any], ObsTaskResult],
        items: Iterable,
        *,
        labels: Sequence[str] | None = None,
    ) -> SweepObsResult:
        """Like :meth:`map` for tasks that also carry metrics and spans.

        ``fn`` must return an :class:`ObsTaskResult`.  Worker metrics are
        merged order-independently (counters/histograms add across
        workers; gauges take the last declaration-ordered write) and
        worker trace spans are spliced into one tracer in declaration
        order with rebased timestamps.
        """
        outcomes = self._collect(fn, list(items), labels)
        metrics = MetricsRegistry()
        for outcome in outcomes:
            metrics.merge_snapshot(outcome.metrics)
        tracer = merge_tracer_payloads([o.trace for o in outcomes])
        return SweepObsResult(
            values=[o.value for o in outcomes],
            metrics=metrics,
            tracer=tracer,
        )
