"""Deterministic parallel sweep engine.

A :class:`SweepEngine` fans independent kernel-case tasks out over a
``concurrent.futures.ProcessPoolExecutor`` and merges results back into
**case-declaration order**, regardless of completion order — so a
``--jobs 8`` sweep produces a byte-identical result stream to the
sequential one (the differential harness in ``tests/test_parallel.py``
asserts exactly that).  ``jobs <= 1`` degrades to an in-process
sequential executor running the task functions unchanged, which keeps
the default path free of multiprocessing machinery.

Task functions must be module-level callables (picklable by qualified
name) taking one picklable item.  Observability-carrying sweeps go
through :meth:`SweepEngine.map_obs`: each task returns its value plus a
metrics snapshot and a tracer payload, and the engine merges worker
metrics order-independently (counters and histograms add; see
``MetricsRegistry.merge_snapshot``) and splices worker trace spans into
one tracer with rebased, strictly increasing timestamps — again in
declaration order, so two runs of the same parallel sweep render
byte-identical traces.

Every worker process activates a process-local :class:`AnalysisCache`
over the engine's ``cache_dir`` (when one is set), which is how static
analysis done in one worker is amortized across all of them.
"""

from __future__ import annotations

import contextlib
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..obs import MetricsRegistry, Tracer
from ..obs.tracer import InstantRecord, SpanRecord
from .cache import AnalysisCache

__all__ = [
    "JOBS_ENV",
    "ObsTaskResult",
    "SweepEngine",
    "SweepObsResult",
    "merge_tracer_payloads",
    "resolve_jobs",
    "tracer_payload",
]

#: Environment variable supplying the default worker count (``--jobs``).
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count: explicit value, else ``$REPRO_JOBS``, else 1."""
    if jobs is None:
        try:
            jobs = int(os.environ.get(JOBS_ENV, "1"))
        except ValueError:
            jobs = 1
    return max(1, int(jobs))


# ---------------------------------------------------------------------------
# Tracer payloads: JSON/pickle-safe span transport between processes
# ---------------------------------------------------------------------------


def tracer_payload(tracer: Tracer) -> dict:
    """Serialize a tracer's spans/instants for transport to the parent."""
    return {
        "spans": [
            {
                "name": s.name,
                "category": s.category,
                "start": s.start_ts,
                "end": s.end_ts,
                "depth": s.depth,
                "attrs": dict(s.attrs),
                "index": s.index,
            }
            for s in tracer.spans
        ],
        "instants": [
            {
                "name": i.name,
                "ts": i.ts,
                "depth": i.depth,
                "attrs": dict(i.attrs),
                "index": i.index,
            }
            for i in tracer.instants
        ],
    }


def merge_tracer_payloads(groups: Sequence[dict]) -> Tracer:
    """Splice per-worker tracer payloads into one tracer, in group order.

    Each group's timestamps are rebased past the previous group's maximum
    so the merged trace stays totally ordered and strictly increasing —
    the same invariant a single-process tracer guarantees.  The merge is
    a pure function of the group sequence, so the declaration-ordered
    groups of a parallel sweep always produce the same tracer no matter
    which worker finished first.
    """
    merged = Tracer()
    offset = 0
    for group in groups:
        group_max = 0
        for s in group.get("spans", ()):
            merged.spans.append(
                _span_record(
                    s["name"],
                    s["category"],
                    s["start"] + offset,
                    None if s["end"] is None else s["end"] + offset,
                    s["depth"],
                    dict(s["attrs"]),
                    s["index"] + offset,
                )
            )
            group_max = max(group_max, s["start"], s["end"] or 0, s["index"])
        for i in group.get("instants", ()):
            merged.instants.append(
                InstantRecord(
                    i["name"],
                    i["ts"] + offset,
                    i["depth"],
                    dict(i["attrs"]),
                    i["index"] + offset,
                )
            )
            group_max = max(group_max, i["ts"], i["index"])
        offset += group_max
    merged._seq = offset
    return merged


def _span_record(name, category, start, end, depth, attrs, index) -> SpanRecord:
    rec = SpanRecord(name, category, start, depth, attrs, index)
    rec.end_ts = end
    return rec


# ---------------------------------------------------------------------------
# Worker plumbing
# ---------------------------------------------------------------------------

_WORKER_CACHE: AnalysisCache | None = None


def _worker_init(cache_dir: str | None) -> None:
    """Process-pool initializer: activate a process-local analysis cache."""
    global _WORKER_CACHE
    if cache_dir:
        _WORKER_CACHE = AnalysisCache(cache_dir)
        _WORKER_CACHE.activate().__enter__()  # for the process lifetime


@dataclass(frozen=True)
class ObsTaskResult:
    """What an observability-carrying task returns to the engine."""

    value: Any
    metrics: dict  # a MetricsRegistry.snapshot()
    trace: dict  # a tracer_payload()


@dataclass(frozen=True)
class SweepObsResult:
    """A merged observability sweep: values + one registry + one tracer."""

    values: list
    metrics: MetricsRegistry
    tracer: Tracer


class SweepEngine:
    """Fan kernel-case tasks over processes; merge in declaration order."""

    def __init__(
        self, jobs: int | None = None, *, cache_dir: str | None = None
    ):
        self.jobs = resolve_jobs(jobs)
        self.cache_dir = cache_dir

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    def _sequential_cache(self):
        if self.cache_dir:
            return AnalysisCache(self.cache_dir).activate()
        return contextlib.nullcontext()

    def _collect(
        self, fn: Callable[[Any], Any], items: list
    ) -> list:
        """Run ``fn`` over ``items``; results indexed by declaration order."""
        if not self.parallel or len(items) <= 1:
            with self._sequential_cache():
                return [fn(item) for item in items]
        results: list = [None] * len(items)
        workers = min(self.jobs, len(items))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(self.cache_dir,),
        ) as pool:
            futures = {
                pool.submit(fn, item): index
                for index, item in enumerate(items)
            }
            for future in as_completed(futures):
                results[futures[future]] = future.result()
        return results

    def map(self, fn: Callable[[Any], Any], items: Iterable) -> list:
        """Apply ``fn`` to every item; return values in declaration order."""
        return self._collect(fn, list(items))

    def map_obs(
        self, fn: Callable[[Any], ObsTaskResult], items: Iterable
    ) -> SweepObsResult:
        """Like :meth:`map` for tasks that also carry metrics and spans.

        ``fn`` must return an :class:`ObsTaskResult`.  Worker metrics are
        merged order-independently (counters/histograms add across
        workers; gauges take the last declaration-ordered write) and
        worker trace spans are spliced into one tracer in declaration
        order with rebased timestamps.
        """
        outcomes = self._collect(fn, list(items))
        metrics = MetricsRegistry()
        for outcome in outcomes:
            metrics.merge_snapshot(outcome.metrics)
        tracer = merge_tracer_payloads([o.trace for o in outcomes])
        return SweepObsResult(
            values=[o.value for o in outcomes],
            metrics=metrics,
            tracer=tracer,
        )
