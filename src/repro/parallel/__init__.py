"""Parallel sweep engine + persistent analysis cache.

Two cooperating subsystems that make suite sweeps scale:

* :class:`SweepEngine` — fans chunked case batches over **persistent
  warm workers** (pools survive across sweep calls; workers hold a
  process-local analysis cache and ship the entries they compute back
  to the parent store) and deterministically merges results, per-worker
  metrics and trace spans back into case-declaration order
  (``--jobs N`` / ``$REPRO_JOBS``, chunking via ``--chunk`` /
  ``$REPRO_CHUNK``);
* :class:`AnalysisCache` — a persistent, content-addressed store (JSON
  records keyed by SHA-256 over canonical region IR + machine-model
  fingerprint + package version) that memoizes compile/IPDA/MCA
  analysis across processes and across runs (``$REPRO_CACHE_DIR``).

Both are off by default: without an activated cache and with
``jobs <= 1`` every code path is bit-identical to the pre-engine build.
See docs/PERFORMANCE.md.
"""

from .cache import (
    CACHE_DIR_ENV,
    NULL_CACHE,
    AnalysisCache,
    NullCache,
    compute_key,
    current_cache,
    default_cache_dir,
    machine_fingerprint,
    region_cache_key,
)
from .chunks import (
    CHUNK_ENV,
    auto_chunk_size,
    partition_chunks,
    resolve_chunk,
)
from .engine import (
    JOBS_ENV,
    ChunkFailure,
    ObsTaskResult,
    SweepEngine,
    SweepObsResult,
    merge_tracer_payloads,
    register_prefork_warmup,
    resolve_jobs,
    shutdown_pools,
    tracer_payload,
)

__all__ = [
    "AnalysisCache",
    "CACHE_DIR_ENV",
    "CHUNK_ENV",
    "ChunkFailure",
    "JOBS_ENV",
    "NULL_CACHE",
    "NullCache",
    "ObsTaskResult",
    "SweepEngine",
    "SweepObsResult",
    "auto_chunk_size",
    "compute_key",
    "current_cache",
    "default_cache_dir",
    "machine_fingerprint",
    "merge_tracer_payloads",
    "partition_chunks",
    "region_cache_key",
    "register_prefork_warmup",
    "resolve_chunk",
    "resolve_jobs",
    "shutdown_pools",
    "tracer_payload",
]
