"""Parallel sweep engine + persistent analysis cache.

Two cooperating subsystems that make suite sweeps scale:

* :class:`SweepEngine` — fans kernel cases over a process pool and
  deterministically merges results, per-worker metrics and trace spans
  back into case-declaration order (``--jobs N`` / ``$REPRO_JOBS``);
* :class:`AnalysisCache` — a persistent, content-addressed store (JSON
  records keyed by SHA-256 over canonical region IR + machine-model
  fingerprint + package version) that memoizes compile/IPDA/MCA
  analysis across processes and across runs (``$REPRO_CACHE_DIR``).

Both are off by default: without an activated cache and with
``jobs <= 1`` every code path is bit-identical to the pre-engine build.
See docs/PERFORMANCE.md.
"""

from .cache import (
    CACHE_DIR_ENV,
    NULL_CACHE,
    AnalysisCache,
    NullCache,
    compute_key,
    current_cache,
    default_cache_dir,
    machine_fingerprint,
    region_cache_key,
)
from .engine import (
    JOBS_ENV,
    ObsTaskResult,
    SweepEngine,
    SweepObsResult,
    merge_tracer_payloads,
    resolve_jobs,
    tracer_payload,
)

__all__ = [
    "AnalysisCache",
    "CACHE_DIR_ENV",
    "JOBS_ENV",
    "NULL_CACHE",
    "NullCache",
    "ObsTaskResult",
    "SweepEngine",
    "SweepObsResult",
    "compute_key",
    "current_cache",
    "default_cache_dir",
    "machine_fingerprint",
    "merge_tracer_payloads",
    "region_cache_key",
    "resolve_jobs",
    "tracer_payload",
]
