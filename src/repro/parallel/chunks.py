"""Chunk partitioning for the warm-worker sweep engine.

A sweep of *n* cases over *j* workers is shipped as **contiguous chunks
of case indices**, not one future per case: per-future IPC round-trips
dominated the old engine at suite granularity (`BENCH_parallel.json`
before the rebuild: jobs4 = 0.38×).  The partition is a pure function of
``(n_items, jobs, chunk_size)`` — the same grid always chunks the same
way, which both keeps the declaration-ordered merge trivial (chunks are
concatenated in order) and gives measure→predict phases of the same
grid a stable case→chunk mapping.

The chunk size is auto-sized to ``ceil(n_items / jobs)`` — one chunk per
worker, the minimum possible IPC — and can be overridden per call
(``chunk=``), per command (``--chunk``), or per environment
(``$REPRO_CHUNK``).  Smaller chunks trade IPC for load balancing on
heterogeneous cases.

Invariants (property-tested in ``tests/test_parallel_chunks.py``):

* every index in ``range(n_items)`` appears in exactly one chunk;
* concatenating the chunks in order yields ``range(n_items)`` exactly —
  declaration order survives any ``(n_items, jobs, chunk_size)``,
  including ``jobs > n_items`` and ``chunk_size > n_items``;
* no chunk is empty; ``n_items == 0`` partitions to no chunks at all.
"""

from __future__ import annotations

import math
import os

__all__ = [
    "CHUNK_ENV",
    "auto_chunk_size",
    "partition_chunks",
    "resolve_chunk",
]

#: Environment variable supplying the default chunk size (``--chunk``).
CHUNK_ENV = "REPRO_CHUNK"


def resolve_chunk(chunk: int | None = None) -> int | None:
    """Effective chunk size: explicit value, else ``$REPRO_CHUNK``, else None.

    ``None`` means *auto*: :func:`auto_chunk_size` picks
    ``ceil(n_items / jobs)`` at partition time.  Garbage in the
    environment degrades to auto; explicit values are floored at 1.
    """
    if chunk is None:
        env = os.environ.get(CHUNK_ENV, "")
        if env:
            try:
                chunk = int(env)
            except ValueError:
                return None
        else:
            return None
    return max(1, int(chunk))


def auto_chunk_size(n_items: int, jobs: int) -> int:
    """The default chunk size: one contiguous chunk per worker."""
    return max(1, math.ceil(n_items / max(1, jobs)))


def partition_chunks(
    n_items: int, jobs: int, chunk: int | None = None
) -> list[range]:
    """Partition ``range(n_items)`` into declaration-ordered index chunks.

    Returns a list of non-empty ``range`` objects whose concatenation is
    exactly ``range(n_items)``.  With ``chunk=None`` the size is
    :func:`auto_chunk_size`; an explicit size is used verbatim (floored
    at 1), even when it exceeds ``n_items`` (one whole-grid chunk).
    """
    if n_items <= 0:
        return []
    size = auto_chunk_size(n_items, jobs) if chunk is None else max(1, int(chunk))
    return [
        range(start, min(start + size, n_items))
        for start in range(0, n_items, size)
    ]
