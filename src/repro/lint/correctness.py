"""Correctness passes: races, undeclared reductions, index bounds.

These decide whether a region is *safe to offload at all*: a cross-thread
write conflict that a fork-join CPU schedule happens to mask will corrupt
results (or worse) under a 100k-thread GPU schedule, so the runtime gate
treats their findings as blocking.

Diagnostic codes
----------------

========  ========================================================
RACE001   cross-iteration write-write conflict inside the band
RACE002   cross-iteration read-write conflict inside the band
RACE003   dependence test was inconclusive (potential race)
RED001    reduction accumulated with a plain store
BND001    index can be negative
BND002    index can exceed the declared extent
BND003    declared array extent is not positive
BND004    loop trip count is not positive (dead loop)
========  ========================================================
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..ir.nodes import Load, Loop, ReduceStore, Store
from ..ir.visit import MemoryAccess
from ..symbolic import (
    Const,
    Expr,
    NonAffineError,
    decompose_affine,
    definitely_negative,
    sign_of,
)
from .dependence import Verdict, cross_thread_conflict
from .diagnostics import Diagnostic, Severity
from .passes import LintContext, LintPass

__all__ = [
    "BoundsPass",
    "RaceDetectionPass",
    "UndeclaredReductionPass",
    "is_reduction_like",
]

RACE_WW = "RACE001"
RACE_RW = "RACE002"
RACE_UNDECIDED = "RACE003"
RED_PLAIN_STORE = "RED001"
BND_NEGATIVE = "BND001"
BND_OVERRUN = "BND002"
BND_BAD_EXTENT = "BND003"
BND_DEAD_LOOP = "BND004"


def is_reduction_like(store: Store) -> bool:
    """Does ``store`` read back the cell it writes (``A[x] = A[x] op ...``)?

    ReduceStore excluded: that is the *declared* form of the same pattern.
    """
    if isinstance(store, ReduceStore) or not isinstance(store, Store):
        return False
    for node in store.value.walk():
        if (
            isinstance(node, Load)
            and node.array.name == store.array.name
            and tuple(node.idxs) == tuple(store.idxs)
        ):
            return True
    return False


def _in_band(access: MemoryAccess) -> bool:
    return any(lp.parallel for lp in access.loop_path)


class RaceDetectionPass(LintPass):
    """Cross-thread dependence testing over every same-array access pair.

    For each array, every store is paired against every store (itself
    included — one static store still races when two *iterations* hit one
    element) and against every load.  ReduceStores are excluded (the
    reduction clause serialises the combine).  A reduction-like store
    (``A[x] = A[x] op ...``) still participates — an in-place stencil races
    against its *neighbour* reads — but its self-pair and its read-back of
    the written cell belong to the undeclared-reduction pass, so each root
    cause yields exactly one diagnostic.
    """

    name = "race"
    codes = (RACE_WW, RACE_RW, RACE_UNDECIDED)

    def run(self, ctx: LintContext) -> Iterable[Diagnostic]:
        if not ctx.band_vars:
            return []
        out: list[Diagnostic] = []
        seen: set[tuple] = set()
        by_array: dict[str, list[MemoryAccess]] = {}
        for acc in ctx.accesses:
            if _in_band(acc):
                by_array.setdefault(acc.array.name, []).append(acc)

        for arr_name, group in by_array.items():
            stores = [
                a
                for a in group
                if a.is_store and not isinstance(a.node, ReduceStore)
            ]
            loads = [a for a in group if not a.is_store]
            pairs = [
                (stores[i], stores[j], True)
                for i in range(len(stores))
                for j in range(i, len(stores))
                if not (i == j and is_reduction_like(stores[i].node))
            ]
            pairs += [
                (s, l, False)
                for s in stores
                for l in loads
                if not (
                    is_reduction_like(s.node)
                    and tuple(l.idxs) == tuple(s.idxs)
                )
            ]
            for a, b, both_stores in pairs:
                pv = cross_thread_conflict(a, b, ctx.band_vars, ctx.extents)
                if pv.verdict == Verdict.INDEPENDENT:
                    continue
                key = (pv.verdict, both_stores, ctx.path_of(a), ctx.path_of(b))
                if key in seen:
                    continue
                seen.add(key)
                pair_desc = (
                    f"{a!r} vs {b!r}" if a is not b else f"{a!r} across iterations"
                )
                if pv.verdict == Verdict.CONFLICT:
                    code = RACE_WW if both_stores else RACE_RW
                    kind = "write-write" if both_stores else "read-write"
                    out.append(
                        self.make(
                            ctx,
                            code,
                            Severity.ERROR,
                            f"{kind} race on {arr_name!r}: {pair_desc}; {pv.detail}",
                            path=ctx.path_of(a),
                            hint=(
                                "make the written cells thread-distinct, or "
                                "serialise the conflicting loop"
                            ),
                        )
                    )
                else:
                    out.append(
                        self.make(
                            ctx,
                            RACE_UNDECIDED,
                            Severity.WARNING,
                            f"possible race on {arr_name!r}: {pair_desc}; "
                            f"{pv.detail}",
                            path=ctx.path_of(a),
                            hint="simplify the index expressions to affine form",
                        )
                    )
        return out


class UndeclaredReductionPass(LintPass):
    """``A[x] = A[x] op f(i)`` written with a plain store inside the band.

    When the dependence test cannot prove the written cells thread-distinct,
    the pattern is an accumulation racing across threads and must be
    declared via ``Region.reduce_store`` (OpenMP's ``reduction`` clause).
    """

    name = "reduction"
    codes = (RED_PLAIN_STORE,)

    def run(self, ctx: LintContext) -> Iterable[Diagnostic]:
        if not ctx.band_vars:
            return []
        out: list[Diagnostic] = []
        for acc in ctx.accesses:
            if not acc.is_store or not _in_band(acc):
                continue
            if not is_reduction_like(acc.node):
                continue
            pv = cross_thread_conflict(acc, acc, ctx.band_vars, ctx.extents)
            if pv.verdict == Verdict.INDEPENDENT:
                continue
            out.append(
                self.make(
                    ctx,
                    RED_PLAIN_STORE,
                    Severity.ERROR,
                    f"reduction into {acc.array.name!r} uses a plain store; "
                    f"threads race on the accumulator ({pv.detail})",
                    path=ctx.path_of(acc),
                    hint="declare it with Region.reduce_store(..., op=...)",
                )
            )
        return out


class BoundsPass(LintPass):
    """Static index-range checking against the declared array shapes.

    Each index dimension is reduced to its extreme values by substituting
    loop variables with their start / last-iteration bounds (innermost
    first, so triangular bounds referencing outer variables resolve).  A
    finding is emitted only when the violation is *provable* — either
    symbolically under the positive-parameter assumption, or numerically
    when an ``env`` binds the parameters.
    """

    name = "bounds"
    codes = (BND_NEGATIVE, BND_OVERRUN, BND_BAD_EXTENT, BND_DEAD_LOOP)

    def run(self, ctx: LintContext) -> Iterable[Diagnostic]:
        out: list[Diagnostic] = []
        for arr in ctx.region.arrays.values():
            for d, dim in enumerate(arr.shape):
                n = dim.constant_value()
                if n is not None and n <= 0:
                    out.append(
                        self.make(
                            ctx,
                            BND_BAD_EXTENT,
                            Severity.ERROR,
                            f"array {arr.name!r} dimension {d} has "
                            f"non-positive extent {n:g}",
                            path=(f"array {arr.name}",),
                        )
                    )
        for var, lp in ctx.loops.items():
            n = lp.count.constant_value()
            if n is not None and n <= 0:
                out.append(
                    self.make(
                        ctx,
                        BND_DEAD_LOOP,
                        Severity.WARNING,
                        f"loop {var!r} has non-positive trip count {n:g}; "
                        "its body never executes",
                        path=(f"for {var}",),
                    )
                )

        for acc in ctx.accesses:
            if acc.array.name not in ctx.region.arrays:
                continue  # structural pass owns undeclared arrays
            for d, (idx, extent) in enumerate(zip(acc.idxs, acc.array.shape)):
                lo = _extreme(idx, acc.loop_path, maximize=False)
                hi = _extreme(idx, acc.loop_path, maximize=True)
                if lo is not None and self._provably_negative(lo, ctx.env):
                    out.append(
                        self.make(
                            ctx,
                            BND_NEGATIVE,
                            Severity.ERROR,
                            f"index {d} of {acc.array.name!r} reaches "
                            f"{lo!r} < 0 (index expression {idx!r})",
                            path=ctx.path_of(acc),
                            hint="offset the loop start or the index expression",
                        )
                    )
                if hi is None:
                    continue
                slack = extent - Const(1) - hi
                if self._provably_negative(slack, ctx.env):
                    out.append(
                        self.make(
                            ctx,
                            BND_OVERRUN,
                            Severity.ERROR,
                            f"index {d} of {acc.array.name!r} reaches {hi!r} "
                            f"but the extent is {extent!r} "
                            f"(index expression {idx!r})",
                            path=ctx.path_of(acc),
                            hint="shrink the loop range or grow the array",
                        )
                    )
        return out

    @staticmethod
    def _provably_negative(expr: Expr, env: Mapping[str, int] | None) -> bool:
        if definitely_negative(expr):
            return True
        if env and expr.free_symbols() <= set(env):
            return expr.evaluate(env) < 0
        return False


def _extreme(expr: Expr, loop_path: tuple[Loop, ...], *, maximize: bool) -> Expr | None:
    """Extreme value of ``expr`` over the iteration space, or ``None``.

    Substitutes innermost variables first so bounds that reference outer
    variables (triangular nests) collapse before those variables resolve.
    Gives up (``None``) on non-affine indices or sign-unknown coefficients.
    """
    for lp in reversed(loop_path):
        v = lp.var.name
        try:
            form = decompose_affine(expr, frozenset({v}))
        except NonAffineError:
            return None
        coeff = form.coeffs.get(v)
        if coeff is None:
            continue
        sign = sign_of(coeff)
        first = lp.start
        last = lp.start + lp.count - Const(1)
        if sign.is_nonnegative:
            rep = last if maximize else first
        elif sign.is_nonpositive:
            rep = first if maximize else last
        else:
            return None
        expr = form.const + coeff * rep
    return expr
