"""Pre-dispatch lint gate for the offloading runtimes.

A data race that a fork-join host schedule happens to mask becomes a
deterministic corruption under a 100k-thread accelerator schedule, so the
runtimes consult the lint passes *before* dispatching a region to a GPU.
The gate's verdict is recorded in the launch provenance next to the
fault-tolerance fields.

Modes
-----

``raise``
    refuse the launch with :class:`LintGateError`;
``host``  (default)
    force the launch onto the host and mark ``fallback="lint"``;
``warn``
    dispatch as requested but record the findings;
``off``
    skip linting entirely.

Only error-severity findings whose code starts with a blocking prefix
(``RACE``, ``RED``, ``MAP`` by default) block: performance lints never
stop an offload, and structural errors already raise at
``compile_region`` time.  The only error-severity MAP finding is MAP001
(under-mapped array) — a silent-corruption bug on a real accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .diagnostics import LintReport, Severity
from .passes import PassManager, default_pass_manager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ir.region import Region

__all__ = [
    "FALLBACK_LINT",
    "GATE_MODES",
    "GateDecision",
    "LintGate",
    "LintGateError",
]

#: ``LaunchRecord.fallback`` value for a lint-forced host launch.
FALLBACK_LINT = "lint"

GATE_MODES = ("off", "warn", "host", "raise")

#: Diagnostic-code prefixes whose error-severity findings block an offload.
BLOCKING_PREFIXES = ("RACE", "RED", "MAP")


class LintGateError(RuntimeError):
    """Raised in ``raise`` mode when a region has blocking findings."""

    def __init__(self, region_name: str, codes: tuple[str, ...]):
        self.region_name = region_name
        self.codes = codes
        super().__init__(
            f"region {region_name!r} blocked by lint findings: "
            f"{', '.join(codes)}"
        )


@dataclass(frozen=True)
class GateDecision:
    """The gate's verdict for one region, recorded in launch provenance."""

    action: str  # "warn" | "force-host" | "raise"
    codes: tuple[str, ...]  # blocking diagnostic codes found
    errors: int
    warnings: int
    report: LintReport = field(compare=False, repr=False, default=None)  # type: ignore[assignment]

    @property
    def blocked(self) -> bool:
        return self.action in ("force-host", "raise")


@dataclass
class LintGate:
    """Configurable pre-dispatch gate over the default pass catalog.

    Reports are cached per region name: races and reductions are static
    properties of the IR, so re-linting on every launch of a hot region
    would only burn time.
    """

    mode: str = "host"
    manager: PassManager = field(default_factory=default_pass_manager)
    block_prefixes: tuple[str, ...] = BLOCKING_PREFIXES

    def __post_init__(self):
        if self.mode not in GATE_MODES:
            raise ValueError(
                f"unknown gate mode {self.mode!r}; pick one of {GATE_MODES}"
            )
        self._reports: dict[str, LintReport] = {}

    def inspect(self, region: "Region") -> LintReport:
        """Lint a region (cached by name)."""
        report = self._reports.get(region.name)
        if report is None:
            report = self.manager.run(region)
            self._reports[region.name] = report
        return report

    def blocking_codes(self, report: LintReport) -> tuple[str, ...]:
        return tuple(
            sorted(
                {
                    d.code
                    for d in report.diagnostics
                    if d.severity is Severity.ERROR
                    and d.code.startswith(self.block_prefixes)
                }
            )
        )

    def decide(self, region: "Region") -> GateDecision | None:
        """Verdict for one region; ``None`` means nothing to record.

        A decision is returned only when blocking findings exist (so
        lint-clean launches keep provenance — and records — identical to a
        gate-less runtime).
        """
        if self.mode == "off":
            return None
        report = self.inspect(region)
        codes = self.blocking_codes(report)
        if not codes:
            return None
        action = {"warn": "warn", "host": "force-host", "raise": "raise"}[self.mode]
        return GateDecision(
            action=action,
            codes=codes,
            errors=len(report.errors),
            warnings=len(report.warnings),
            report=report,
        )
