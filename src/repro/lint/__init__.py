"""Region lint & race detection (``repro.lint``).

Static analysis over the region IR that answers two questions before any
offload: *is this parallel band actually safe to run with an unordered
100k-thread schedule* (races, undeclared reductions, out-of-bounds
indices), and *will it run well* (coalescing, false sharing, divergence,
footprint).  See docs/LINT.md for the pass catalog and gate semantics.

Quick use::

    from repro.lint import lint_region

    report = lint_region(region)
    if report.has_errors:
        print(report.render_text())

Import discipline: only :mod:`repro.lint.diagnostics` (standard library
only) is imported eagerly, because :mod:`repro.ir.validate` pulls it in
while ``repro.ir`` is still initialising.  Everything else resolves lazily
via PEP 562 so this package can be imported from either side of the
ir <-> lint boundary without a cycle.
"""

from .diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    render_reports_text,
    reports_to_json,
)

#: Lazily resolved public names -> defining submodule.
_LAZY = {
    "Verdict": "dependence",
    "DimForm": "dependence",
    "PairVerdict": "dependence",
    "affine_dims": "dependence",
    "cross_thread_conflict": "dependence",
    "LintContext": "passes",
    "LintPass": "passes",
    "PassManager": "passes",
    "StructuralPass": "passes",
    "default_pass_manager": "passes",
    "lint_region": "passes",
    "MapDirectionPass": "dataflow",
    "RaceDetectionPass": "correctness",
    "UndeclaredReductionPass": "correctness",
    "BoundsPass": "correctness",
    "is_reduction_like": "correctness",
    "UncoalescedAccessPass": "performance",
    "FalseSharingPass": "performance",
    "BranchDivergencePass": "performance",
    "FootprintPass": "performance",
    "FALLBACK_LINT": "gate",
    "GATE_MODES": "gate",
    "GateDecision": "gate",
    "LintGate": "gate",
    "LintGateError": "gate",
}

__all__ = [
    "Severity",
    "Diagnostic",
    "LintReport",
    "render_reports_text",
    "reports_to_json",
    *_LAZY,
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(__all__)
