"""Cross-thread dependence testing over affine index pairs.

The race detector asks, for two static accesses to the same array inside a
parallel band: *can two distinct work items touch the same element?*  Both
accesses share the band loops, so a conflict is a solution of

    idx1_d(x, u) = idx2_d(x + delta, v)   for every dimension d

with band offset ``delta != 0`` and sequential iteration vectors ``u``/``v``
free within their loop bounds (sequential loops are per-thread, so the two
instances are independent).

The tests are the classic dependence-analysis pair, adapted to symbolic
coefficients via :mod:`repro.symbolic.signs`:

* a **GCD test** on each dimension's linear diophantine equation — when the
  gcd of the (numeric) coefficients does not divide the constant term the
  dimension can never be equal and the pair is independent;
* a **Banerjee-style bounds test** — when loop extents are known, the
  constant term must fall inside the interval the delta terms can span.

Everything else resolves by *coefficient elimination*: a dimension whose
equation pins a single band variable (``delta_b = 0``) removes it, and a
pair whose band variables are all pinned is independent.  Verdicts are
three-valued; ``UNDECIDED`` never claims independence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..ir.visit import MemoryAccess
from ..symbolic import (
    Const,
    Expr,
    NonAffineError,
    decompose_affine,
    sign_of,
)

__all__ = ["DimForm", "PairVerdict", "Verdict", "affine_dims", "cross_thread_conflict"]


class Verdict:
    """Three-valued dependence answer."""

    INDEPENDENT = "independent"
    CONFLICT = "conflict"
    UNDECIDED = "undecided"


@dataclass(frozen=True)
class DimForm:
    """Affine view of one index dimension of one access."""

    band: Mapping[str, Expr]  # band variable -> coefficient
    seq: Mapping[str, Expr]  # sequential variable -> coefficient
    const: Expr


@dataclass(frozen=True)
class PairVerdict:
    verdict: str  # one of the Verdict constants
    detail: str


def affine_dims(
    access: MemoryAccess, band_vars: Sequence[str]
) -> tuple[DimForm, ...] | None:
    """Decompose each index dimension; ``None`` when any dim is non-affine."""
    in_scope = frozenset(lp.var.name for lp in access.loop_path)
    band = frozenset(band_vars) & in_scope
    out: list[DimForm] = []
    for idx in access.idxs:
        try:
            form = decompose_affine(idx, in_scope)
        except NonAffineError:
            return None
        b = {v: c for v, c in form.coeffs.items() if v in band}
        s = {v: c for v, c in form.coeffs.items() if v not in band}
        out.append(DimForm(band=b, seq=s, const=form.const))
    return tuple(out)


def _numeric(expr: Expr) -> int | float | None:
    value = expr.constant_value()
    if value is None:
        return None
    return int(value) if float(value).is_integer() else value


def _provably_nonzero(expr: Expr) -> bool:
    return sign_of(expr).is_nonzero


def _aligned(a: tuple[DimForm, ...], b: tuple[DimForm, ...], band_vars) -> bool:
    """Do both accesses use the same band coefficients in every dimension?"""
    for da, db in zip(a, b):
        for v in band_vars:
            if da.band.get(v, Const(0)) != db.band.get(v, Const(0)):
                return False
    return True


def _delta_bound(var: str, extents: Mapping[str, Expr]) -> int | None:
    """Max |delta| for a band variable (extent - 1) when the extent is numeric."""
    extent = extents.get(var)
    if extent is None:
        return None
    n = _numeric(extent)
    if n is None:
        return None
    return max(int(n) - 1, 0)


def _solve_aligned(
    dims_a: tuple[DimForm, ...],
    dims_b: tuple[DimForm, ...],
    band_vars: tuple[str, ...],
    extents: Mapping[str, Expr],
) -> PairVerdict:
    """Aligned case: per-dimension equation  sum c_b * delta_b + K_d = 0.

    Sequential-variable terms make a dimension "loose" (they can absorb any
    offset), so loose dimensions neither pin deltas nor certify conflicts.
    """
    # Per-dim: (coeffs over band vars, K_d const expr, loose?)
    equations: list[tuple[dict[str, Expr], Expr, bool]] = []
    for da, db in zip(dims_a, dims_b):
        loose = bool(da.seq) or bool(db.seq)
        k = da.const - db.const
        equations.append((dict(da.band), k, loose))

    # Elimination fixpoint: a tight dimension with K_d == 0 and exactly one
    # unpinned, provably-nonzero coefficient forces that delta to zero.
    pinned: set[str] = set()
    changed = True
    while changed:
        changed = False
        for coeffs, k, loose in equations:
            if loose or _numeric(k) not in (0,):
                continue
            active = [
                v
                for v, c in coeffs.items()
                if v not in pinned and _provably_nonzero(c)
            ]
            unknown = [
                v
                for v, c in coeffs.items()
                if v not in pinned and not _provably_nonzero(c) and _numeric(c) != 0
            ]
            if len(active) == 1 and not unknown:
                pinned.add(active[0])
                changed = True

    free = [v for v in band_vars if v not in pinned]
    if not free:
        return PairVerdict(
            Verdict.INDEPENDENT,
            "distinct work items are forced to distinct elements "
            f"(all band deltas pinned to zero: {', '.join(band_vars)})",
        )

    # Refutation on tight dimensions with fully numeric data: GCD, then
    # Banerjee interval when the extents are known.
    numeric_eqs: list[tuple[dict[str, int], int]] = []
    all_numeric = True
    for coeffs, k, loose in equations:
        if loose:
            all_numeric = False
            continue
        kn = _numeric(k)
        cn = {v: _numeric(c) for v, c in coeffs.items()}
        if kn is None or any(c is None for c in cn.values()):
            all_numeric = False
            continue
        numeric_eqs.append(({v: int(c) for v, c in cn.items() if c}, int(kn)))

    for coeffs, k in numeric_eqs:
        nonzero = [abs(c) for c in coeffs.values()]
        if not nonzero:
            if k != 0:
                return PairVerdict(
                    Verdict.INDEPENDENT,
                    f"constant index offset {k} can never be zero",
                )
            continue
        g = math.gcd(*nonzero)
        if k % g != 0:
            return PairVerdict(
                Verdict.INDEPENDENT,
                f"GCD test: gcd({', '.join(map(str, nonzero))}) = {g} "
                f"does not divide offset {k}",
            )
        lo = hi = 0
        bounded = True
        for v, c in coeffs.items():
            bound = _delta_bound(v, extents)
            if bound is None:
                bounded = False
                break
            lo -= abs(c) * bound
            hi += abs(c) * bound
        if bounded and not (lo <= -k <= hi):
            return PairVerdict(
                Verdict.INDEPENDENT,
                f"bounds test: offset {-k} outside reachable span [{lo}, {hi}]",
            )

    # Certification: exhibit a nonzero integer delta satisfying every tight
    # dimension.  Only attempted when every dimension is tight and numeric —
    # loose dimensions would require reasoning about sequential iterations.
    if all_numeric:
        solution = _find_nonzero_solution(numeric_eqs, free, extents)
        if solution is not None:
            desc = ", ".join(f"delta({v})={d}" for v, d in solution.items() if d)
            return PairVerdict(
                Verdict.CONFLICT,
                f"distinct work items collide: {desc or 'any nonzero delta'}",
            )
    return PairVerdict(
        Verdict.UNDECIDED,
        "could not pin all band deltas nor exhibit a collision",
    )


def _find_nonzero_solution(
    equations: list[tuple[dict[str, int], int]],
    free: list[str],
    extents: Mapping[str, Expr],
) -> dict[str, int] | None:
    """Search for a small nonzero delta satisfying all numeric equations."""

    def admissible(delta: dict[str, int]) -> bool:
        if not any(delta.values()):
            return False
        for v, d in delta.items():
            bound = _delta_bound(v, extents)
            if bound is not None and abs(d) > bound:
                return False
        for coeffs, k in equations:
            if sum(coeffs.get(v, 0) * d for v, d in delta.items()) + k != 0:
                return False
        return True

    # Combined candidate: every equation over a single variable forces its
    # delta (the diagonal-stencil system  d_i + 1 = 0,  d_j + 1 = 0); when
    # the forcings are consistent they are themselves a solution.
    forced: dict[str, int] = {}
    consistent = True
    for coeffs, k in equations:
        nz = [(v, c) for v, c in coeffs.items() if c]
        if len(nz) != 1:
            continue
        v, c = nz[0]
        if k % c != 0:
            consistent = False
            break
        d = -k // c
        if forced.setdefault(v, d) != d:
            consistent = False
            break
    if consistent and forced and admissible(forced):
        return dict(forced)

    # Single-variable candidates: delta_v = -k / c from any equation that
    # mentions v, or +-1 when no equation constrains it.
    for v in free:
        candidates = {1, -1}
        for coeffs, k in equations:
            c = coeffs.get(v, 0)
            if c and k % c == 0:
                candidates.add(-k // c)
        for d in candidates:
            if admissible({v: d}):
                return {v: d}
    # Pair candidates for homogeneous ties such as delta_i = -delta_j.
    for i, v1 in enumerate(free):
        for v2 in free[i + 1 :]:
            for coeffs, _k in equations:
                c1, c2 = coeffs.get(v1, 0), coeffs.get(v2, 0)
                if c1 and c2:
                    g = math.gcd(abs(c1), abs(c2))
                    delta = {v1: c2 // g, v2: -c1 // g}
                    if admissible(delta):
                        return delta
    return None


def _flat_gcd_refutes(
    dims_a: tuple[DimForm, ...], dims_b: tuple[DimForm, ...]
) -> str | None:
    """Unaligned fallback: treat both index vectors as independent.

    Per dimension, ``idx1(x, u) - idx2(y, v) + K = 0`` over fully
    independent variables; a failing GCD test on any dimension proves the
    elements can never coincide.
    """
    for da, db in zip(dims_a, dims_b):
        coeffs: list[int] = []
        numeric = True
        for form in (da, db):
            for c in list(form.band.values()) + list(form.seq.values()):
                n = _numeric(c)
                if n is None or n != int(n):
                    numeric = False
                    break
                if int(n):
                    coeffs.append(abs(int(n)))
            if not numeric:
                break
        k = _numeric(da.const - db.const)
        if not numeric or k is None or k != int(k):
            continue
        if not coeffs:
            if int(k) != 0:
                return f"constant index offset {int(k)} can never be zero"
            continue
        g = math.gcd(*coeffs)
        if int(k) % g != 0:
            return (
                f"GCD test: gcd({', '.join(map(str, coeffs))}) = {g} does not "
                f"divide offset {int(k)}"
            )
    return None


def cross_thread_conflict(
    a: MemoryAccess,
    b: MemoryAccess,
    band_vars: Sequence[str],
    extents: Mapping[str, Expr],
) -> PairVerdict:
    """Can accesses ``a`` and ``b`` touch one element from distinct threads?

    ``extents`` maps loop variables to their (possibly symbolic) trip
    counts; numeric entries sharpen the Banerjee bounds test.
    """
    band_vars = tuple(band_vars)
    dims_a = affine_dims(a, band_vars)
    dims_b = affine_dims(b, band_vars)
    if dims_a is None or dims_b is None:
        return PairVerdict(
            Verdict.UNDECIDED, "non-affine index expression; cannot analyse"
        )
    if len(dims_a) != len(dims_b):  # pragma: no cover - same array, same rank
        return PairVerdict(Verdict.UNDECIDED, "rank mismatch")
    if _aligned(dims_a, dims_b, band_vars):
        return _solve_aligned(dims_a, dims_b, band_vars, extents)
    refutation = _flat_gcd_refutes(dims_a, dims_b)
    if refutation is not None:
        return PairVerdict(Verdict.INDEPENDENT, refutation)
    return PairVerdict(
        Verdict.UNDECIDED,
        "band coefficients differ between the two accesses",
    )
