"""Map-clause lint: declared transfer directions vs inferred dataflow.

The transfer term of the paper's GPU/CPU breakeven is priced from the
*declared* map of each array (``Region.transfer_bytes``), so a wrong
declaration either corrupts results (an output that never travels back)
or silently shifts the profitability frontier (traffic the kernel never
needed).  :class:`MapDirectionPass` compares the declaration against the
liveness analysis of :mod:`repro.ir.dataflow` and emits:

=======  ========  =====================================================
code     severity  finding
=======  ========  =====================================================
MAP001   error     under-mapped array: a kernel-written value never
                   escapes to the host, or an exposed read observes a
                   buffer that is never copied in
MAP002   warning   over-mapped direction: a declared transfer the body
                   provably never needs (copy-in of an array that is
                   overwritten before any read, or copy-out of an array
                   that is never written)
MAP003   warning   device scratch (written then fully consumed on the
                   device) mapped both ways
MAP004   warning   dead map: array mapped but never touched by the body
MAP005   warning   direction unanalysable (non-affine access); the
                   declared map cannot be verified
=======  ========  =====================================================

MAP001 is the only error — the lint gate blocks dispatch on it.  The
performance findings (MAP002–004) quantify the wasted traffic, and when
the context carries an ``env`` and a platform they price the waste in
predicted seconds on the region's bus.
"""

from __future__ import annotations

from typing import Iterable

from ..ir.dataflow import ArrayDataflow, Direction, RegionDataflow
from ..symbolic import Expr
from .diagnostics import Diagnostic, Severity
from .passes import LintContext, LintPass

__all__ = ["MapDirectionPass"]


class MapDirectionPass(LintPass):
    """Check every declared map clause against the inferred direction."""

    name = "map-direction"
    codes = ("MAP001", "MAP002", "MAP003", "MAP004", "MAP005")

    def run(self, ctx: LintContext) -> Iterable[Diagnostic]:
        dataflow: RegionDataflow = ctx.dataflow
        diags: list[Diagnostic] = []
        for name, info in dataflow.arrays.items():
            diags.extend(self._check_array(ctx, name, info))
        return diags

    # -- per-array rules ---------------------------------------------------
    def _check_array(
        self, ctx: LintContext, name: str, info: ArrayDataflow
    ) -> Iterable[Diagnostic]:
        where = (f"array {name}",)
        direction = info.direction

        if direction is Direction.UNKNOWN:
            yield self.make(
                ctx,
                "MAP005",
                Severity.WARNING,
                f"array {name!r}: transfer direction could not be verified "
                f"(unanalysable access {info.unanalysable[0]}); the declared "
                f"map is trusted as-is",
                path=where,
                hint="keep indices affine in the loop variables so the "
                "dataflow analysis can check (and tighten) the map",
            )
            return

        if direction is Direction.DEAD:
            if info.declared_in or info.declared_out:
                yield self.make(
                    ctx,
                    "MAP004",
                    Severity.WARNING,
                    f"array {name!r} is mapped but the kernel never touches "
                    f"it; every transferred byte is wasted"
                    + self._waste(ctx, info, both=True),
                    path=where,
                    hint="drop the array from the map clause",
                )
            return

        # -- under-mapped (correctness): MAP001 -------------------------
        under_mapped_out = (
            info.writes
            and not info.declared_out
            and direction is not Direction.TEMP
        )
        if under_mapped_out:
            yield self.make(
                ctx,
                "MAP001",
                Severity.ERROR,
                f"array {name!r} is written by the kernel but not mapped "
                f"back (no device→host transfer); the computed values are "
                f"lost when the region ends",
                path=where,
                hint="declare the array with output=True (map(from:)) or "
                "inout=True (map(tofrom:))",
            )
        if info.exposed_reads and not info.declared_in:
            yield self.make(
                ctx,
                "MAP001",
                Severity.ERROR,
                f"array {name!r} is read before any kernel write but not "
                f"mapped to the device (no host→device transfer); the "
                f"kernel observes uninitialised device memory",
                path=where,
                hint="declare the array with inout=True (map(tofrom:))",
            )

        # -- device scratch mapped both ways: MAP003 ---------------------
        if info.temp_pattern and info.declared_in and info.declared_out:
            yield self.make(
                ctx,
                "MAP003",
                Severity.WARNING,
                f"array {name!r} is device scratch (every read is fed by an "
                f"earlier kernel write) yet it is mapped both ways; the "
                f"copy-in is provably wasted"
                + self._waste(ctx, info, to_device=True)
                + " and the copy-back likely is too",
                path=where,
                hint="map the array with alloc semantics (device-only "
                "buffer) instead of tofrom",
            )
            return

        # -- over-mapped directions: MAP002 ------------------------------
        # An under-mapped output already demands a rewritten map clause,
        # so the redundant copy-in of the same array is folded into it.
        if (
            not under_mapped_out
            and info.declared_in
            and direction in (Direction.OUT, Direction.TEMP)
        ):
            detail = (
                "overwrites it before any read"
                if info.reads
                else "never reads it"
            )
            yield self.make(
                ctx,
                "MAP002",
                Severity.WARNING,
                f"array {name!r} is mapped host→device but the kernel "
                f"{detail}; the copy-in is pure waste"
                + self._waste(ctx, info, to_device=True),
                path=where,
                hint="declare the array with output=True (map(from:)) so "
                "only the result travels",
            )
        if info.declared_out and direction is Direction.IN:
            yield self.make(
                ctx,
                "MAP002",
                Severity.WARNING,
                f"array {name!r} is mapped device→host but the kernel "
                f"never writes it; the copy-back is pure waste"
                + self._waste(ctx, info, to_host=True),
                path=where,
                hint="drop output/inout from the declaration so the array "
                "only travels host→device",
            )

    # -- waste pricing -----------------------------------------------------
    def _waste(
        self,
        ctx: LintContext,
        info: ArrayDataflow,
        *,
        to_device: bool = False,
        to_host: bool = False,
        both: bool = False,
    ) -> str:
        """Render the wasted traffic, priced on the bus when bindable."""
        arr = info.array
        nbytes_expr: Expr = arr.element_count() * arr.dtype.size
        directions = 0
        if both:
            directions = int(info.declared_in) + int(info.declared_out)
        else:
            directions = int(to_device) + int(to_host)
        if directions == 0:
            return ""
        nbytes = None
        if ctx.env is not None:
            missing = nbytes_expr.free_symbols() - set(ctx.env)
            if not missing:
                nbytes = int(nbytes_expr.evaluate(ctx.env)) * directions
        if nbytes is None:
            per_dir = f"{directions} direction(s) × {nbytes_expr!r} bytes"
            return f" ({per_dir})"
        if ctx.platform is not None:
            bus = ctx.platform.bus
            seconds = directions * bus.transfer_seconds(nbytes // directions)
            return (
                f" ({nbytes} bytes ≈ {seconds * 1e6:.1f} µs on {bus.name} "
                f"per launch)"
            )
        return f" ({nbytes} bytes per launch)"
