"""Performance lints: offload-hostile patterns that are legal but slow.

None of these block the runtime gate — they are advisory (warning / info)
and mirror the cost terms of the paper's analytical models: the IPDA
inter-thread stride feeding the coalesced/uncoalesced instruction split,
cache-line contention on CPU stores, intra-warp branch divergence, and the
device-memory footprint ceiling.

Diagnostic codes
----------------

========  ========================================================
PERF101   uncoalesced (or unanalysable) inter-thread access stride
PERF102   store stride risks CPU false sharing within a cache line
PERF103   branch inside the parallel band (warp divergence)
PERF104   region footprint exceeds device memory
========  ========================================================
"""

from __future__ import annotations

from typing import Iterable

from ..ir.nodes import If, Load, LocalRef, Loop
from ..ipda.coalescing import CoalescingClass, classify_stride
from .diagnostics import Diagnostic, Severity
from .passes import LintContext, LintPass

__all__ = [
    "BranchDivergencePass",
    "FalseSharingPass",
    "FootprintPass",
    "UncoalescedAccessPass",
]

PERF_UNCOALESCED = "PERF101"
PERF_FALSE_SHARING = "PERF102"
PERF_DIVERGENCE = "PERF103"
PERF_FOOTPRINT = "PERF104"


def _stride_elems(stride, env) -> int | None:
    """Numeric inter-thread element stride, when derivable."""
    if stride is None:
        return None
    n = stride.constant_value()
    if n is not None:
        return int(n)
    if env and stride.free_symbols() <= set(env):
        return int(stride.evaluate(env))
    return None


class UncoalescedAccessPass(LintPass):
    """IPDA inter-thread stride vs the warp's memory-transaction granularity.

    An access whose adjacent-thread stride spans more than one sector turns
    each warp access into up to 32 transactions — the dominant reason the
    paper's model steers a region back to the CPU.  Symbolic strides that
    grow with an extent (column-major style ``A[k][j]`` over band ``k``)
    are flagged too: they are uncoalesced for every realistic binding.
    """

    name = "coalescing"
    codes = (PERF_UNCOALESCED,)

    def run(self, ctx: LintContext) -> Iterable[Diagnostic]:
        if ctx.ipda is None:
            return []
        out: list[Diagnostic] = []
        for a in ctx.ipda.accesses:
            kind = "store" if a.is_store else "load"
            where = ctx.path_of(a.access)
            if a.thread_stride is None:
                out.append(
                    self.make(
                        ctx,
                        PERF_UNCOALESCED,
                        Severity.WARNING,
                        f"{kind} of {a.access.array.name!r} has a non-affine "
                        "index; the model assumes one transaction per lane",
                        path=where,
                        hint="rewrite the index as an affine function of the band",
                    )
                )
                continue
            n = _stride_elems(a.thread_stride, ctx.env)
            if n is not None:
                cls = classify_stride(
                    n, a.elem_bytes, sector_bytes=ctx.sector_bytes
                )
                if cls is CoalescingClass.UNCOALESCED:
                    out.append(
                        self.make(
                            ctx,
                            PERF_UNCOALESCED,
                            Severity.WARNING,
                            f"{kind} of {a.access.array.name!r} has inter-thread "
                            f"stride {n} elements ({n * a.elem_bytes} B > "
                            f"{ctx.sector_bytes} B sector): one transaction "
                            "per lane",
                            path=where,
                            hint="interchange the band loops or transpose the array",
                        )
                    )
            elif a.thread_stride.free_symbols():
                out.append(
                    self.make(
                        ctx,
                        PERF_UNCOALESCED,
                        Severity.WARNING,
                        f"{kind} of {a.access.array.name!r} has inter-thread "
                        f"stride {a.thread_stride!r}, which scales with the "
                        "problem size: uncoalesced for realistic extents",
                        path=where,
                        hint="interchange the band loops or transpose the array",
                    )
                )
        return out


class FalseSharingPass(LintPass):
    """Adjacent threads storing within one cache line (CPU-side hazard).

    With the band work-shared across cores, stores whose inter-thread
    stride lands inside a cache line ping-pong the line between cores.
    Unit stride is reported at info level only — static scheduling gives
    each core a contiguous chunk, so the sharing is confined to chunk
    edges — while larger sub-line strides contend on every iteration.
    """

    name = "false-sharing"
    codes = (PERF_FALSE_SHARING,)

    def run(self, ctx: LintContext) -> Iterable[Diagnostic]:
        if ctx.ipda is None:
            return []
        out: list[Diagnostic] = []
        for a in ctx.ipda.accesses:
            if not a.is_store:
                continue
            n = _stride_elems(a.thread_stride, ctx.env)
            if n is None:
                continue
            span = abs(n) * a.elem_bytes
            if not 0 < span < ctx.cacheline_bytes:
                continue
            severity = Severity.INFO if abs(n) == 1 else Severity.WARNING
            out.append(
                self.make(
                    ctx,
                    PERF_FALSE_SHARING,
                    severity,
                    f"store to {a.access.array.name!r} puts adjacent threads "
                    f"{span} B apart, inside one {ctx.cacheline_bytes} B "
                    "cache line (CPU false sharing)",
                    path=ctx.path_of(a.access),
                    hint="pad the written dimension or widen the chunk size",
                )
            )
        return out


class BranchDivergencePass(LintPass):
    """Conditionals inside the parallel band.

    A data-dependent ``if`` (condition reads memory or a local) splits the
    warp into serialised sides; a condition built purely from scalar
    arguments is uniform across the warp and only costs the test itself.
    """

    name = "divergence"
    codes = (PERF_DIVERGENCE,)

    def run(self, ctx: LintContext) -> Iterable[Diagnostic]:
        out: list[Diagnostic] = []

        def visit(stmts, path: tuple[str, ...], in_band: bool) -> None:
            for s in stmts:
                if isinstance(s, Loop):
                    kind = "parallel for" if s.parallel else "for"
                    visit(
                        s.body,
                        path + (f"{kind} {s.var.name}",),
                        in_band or s.parallel,
                    )
                elif isinstance(s, If):
                    here = path + (f"if {s.cond!r}",)
                    if in_band:
                        data_dependent = any(
                            isinstance(n, (Load, LocalRef)) for n in s.cond.walk()
                        )
                        if data_dependent:
                            out.append(
                                self.make(
                                    ctx,
                                    PERF_DIVERGENCE,
                                    Severity.WARNING,
                                    f"data-dependent branch {s.cond!r} inside "
                                    "the parallel band serialises divergent "
                                    "warp lanes",
                                    path=here,
                                    hint="convert to a select/predicated form",
                                )
                            )
                        else:
                            out.append(
                                self.make(
                                    ctx,
                                    PERF_DIVERGENCE,
                                    Severity.INFO,
                                    f"branch {s.cond!r} inside the parallel "
                                    "band is warp-uniform (scalar operands)",
                                    path=here,
                                )
                            )
                    visit(s.then_body, here + ("then",), in_band)
                    visit(s.else_body, here + ("else",), in_band)

        visit(ctx.region.body, (), False)
        return out


class FootprintPass(LintPass):
    """Mapped-array footprint vs the accelerator's memory capacity.

    Only applies when both an ``env`` (to size the arrays) and a platform
    with an accelerator are supplied; a region that does not fit triggers
    host-side paging or an outright launch failure.
    """

    name = "footprint"
    codes = (PERF_FOOTPRINT,)

    def run(self, ctx: LintContext) -> Iterable[Diagnostic]:
        if ctx.env is None or ctx.platform is None:
            return []
        accelerators = getattr(ctx.platform, "accelerators", ())
        if not accelerators:
            return []
        from ..faults.injector import region_footprint_bytes

        try:
            footprint = region_footprint_bytes(ctx.region, ctx.env)
        except Exception:
            return []  # unbound symbols: cannot size the footprint
        out: list[Diagnostic] = []
        for slot in accelerators:
            mem_bytes = int(slot.gpu.mem_size_gib * 2**30)
            if footprint > mem_bytes:
                out.append(
                    self.make(
                        ctx,
                        PERF_FOOTPRINT,
                        Severity.WARNING,
                        f"mapped arrays need {footprint / 2**30:.2f} GiB but "
                        f"{slot.gpu.name} has {slot.gpu.mem_size_gib:g} GiB",
                        path=(),
                        hint="tile the region or stream the arrays",
                    )
                )
        return out
