"""Pass framework: lint context, pass protocol and the pass manager.

A lint pass is a small object with a ``name``, the diagnostic ``codes`` it
can emit, and a ``run(ctx)`` method yielding :class:`Diagnostic`s.  The
:class:`PassManager` runs registered passes over one region and folds the
findings into a :class:`LintReport`.

The structural verifier runs first and is special: when it finds errors the
region's IR cannot be trusted, so the remaining passes are skipped (their
analyses would crash or lie on malformed input).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Mapping

from ..ir.nodes import Loop
from ..ir.region import Region
from ..ir.validate import structural_diagnostics
from ..ir.visit import MemoryAccess, memory_accesses
from ..symbolic import Expr
from .diagnostics import Diagnostic, LintReport, Severity

__all__ = [
    "LintContext",
    "LintPass",
    "PassManager",
    "StructuralPass",
    "default_pass_manager",
    "lint_region",
]


@dataclass
class LintContext:
    """Everything a pass may consult, with lazily cached shared analyses.

    ``env`` (runtime parameter bindings) and ``platform`` are optional: the
    correctness passes are fully static, while some performance lints
    sharpen (or only apply) when bindings / device descriptors are known.
    """

    region: Region
    env: Mapping[str, int] | None = None
    platform: "object | None" = None  # repro.machines.Platform when present
    warp_size: int = 32
    sector_bytes: int = 32
    cacheline_bytes: int = 128

    @cached_property
    def band(self) -> tuple[Loop, ...]:
        """The outermost parallel band; empty for malformed regions."""
        try:
            return tuple(self.region.parallel_band())
        except ValueError:
            return ()

    @cached_property
    def band_vars(self) -> tuple[str, ...]:
        return tuple(lp.var.name for lp in self.band)

    @cached_property
    def accesses(self) -> tuple[MemoryAccess, ...]:
        return tuple(memory_accesses(self.region))

    @cached_property
    def extents(self) -> dict[str, Expr]:
        """Loop variable -> trip count for every loop of the region."""
        out: dict[str, Expr] = {}

        def visit(stmts):
            for s in stmts:
                if isinstance(s, Loop):
                    out[s.var.name] = s.count
                    visit(s.body)
                elif hasattr(s, "then_body"):
                    visit(s.then_body)
                    visit(s.else_body)

        visit(self.region.body)
        return out

    @cached_property
    def loops(self) -> dict[str, Loop]:
        """Loop variable -> loop node, for bounds queries."""
        out: dict[str, Loop] = {}

        def visit(stmts):
            for s in stmts:
                if isinstance(s, Loop):
                    out[s.var.name] = s
                    visit(s.body)
                elif hasattr(s, "then_body"):
                    visit(s.then_body)
                    visit(s.else_body)

        visit(self.region.body)
        return out

    @cached_property
    def dataflow(self):
        """Array liveness / transfer-direction analysis of the region."""
        from ..ir.dataflow import analyze_transfers

        return analyze_transfers(self.region)

    @cached_property
    def ipda(self):
        """Symbolic IPDA result, or ``None`` when the region has no band."""
        if not self.band:
            return None
        from ..ipda.analysis import analyze_region

        return analyze_region(self.region)

    def path_of(self, access: MemoryAccess) -> tuple[str, ...]:
        """Node path of a memory access, built from its loop context."""
        path = tuple(
            f"{'parallel for' if lp.parallel else 'for'} {lp.var.name}"
            for lp in access.loop_path
        )
        kind = "store" if access.is_store else "load"
        dims = "][".join(repr(i) for i in access.idxs)
        return path + (f"{kind} {access.array.name}[{dims}]",)

    def bound_symbols(self) -> set[str]:
        """Symbols the env binds (empty set when no env was provided)."""
        return set(self.env) if self.env else set()


class LintPass:
    """Base class of lint passes; subclasses override :meth:`run`."""

    name: str = "?"
    codes: tuple[str, ...] = ()

    def run(self, ctx: LintContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def make(
        self,
        ctx: LintContext,
        code: str,
        severity: Severity,
        message: str,
        path: tuple[str, ...] = (),
        hint: str | None = None,
    ) -> Diagnostic:
        """Build a diagnostic stamped with this pass and the region name."""
        return Diagnostic(
            code=code,
            severity=severity,
            message=message,
            region=ctx.region.name,
            path=path,
            hint=hint,
            source=self.name,
        )


class StructuralPass(LintPass):
    """The IR verifier's checks, surfaced as lint findings."""

    name = "structural"
    codes = tuple(f"STRUCT{i:03d}" for i in range(1, 8))

    def run(self, ctx: LintContext) -> Iterable[Diagnostic]:
        return structural_diagnostics(ctx.region)


@dataclass
class PassManager:
    """Runs registered passes over a region and aggregates the findings."""

    passes: list[LintPass] = field(default_factory=list)

    def register(self, lint_pass: LintPass) -> "PassManager":
        self.passes.append(lint_pass)
        return self

    def pass_names(self) -> list[str]:
        return [p.name for p in self.passes]

    def run(
        self,
        region: Region,
        *,
        env: Mapping[str, int] | None = None,
        platform: "object | None" = None,
    ) -> LintReport:
        ctx = LintContext(region=region, env=env, platform=platform)
        diags: list[Diagnostic] = []
        for p in self.passes:
            found = list(p.run(ctx))
            diags.extend(found)
            if isinstance(p, StructuralPass) and any(
                d.severity is Severity.ERROR for d in found
            ):
                # Malformed IR: downstream analyses would crash or lie.
                break
        return LintReport(region_name=region.name, diagnostics=tuple(diags))


def default_pass_manager() -> PassManager:
    """The full catalog: structural, correctness, then performance passes."""
    from .correctness import BoundsPass, RaceDetectionPass, UndeclaredReductionPass
    from .dataflow import MapDirectionPass
    from .performance import (
        BranchDivergencePass,
        FalseSharingPass,
        FootprintPass,
        UncoalescedAccessPass,
    )

    return PassManager(
        passes=[
            StructuralPass(),
            RaceDetectionPass(),
            UndeclaredReductionPass(),
            BoundsPass(),
            MapDirectionPass(),
            UncoalescedAccessPass(),
            FalseSharingPass(),
            BranchDivergencePass(),
            FootprintPass(),
        ]
    )


def lint_region(
    region: Region,
    *,
    env: Mapping[str, int] | None = None,
    platform: "object | None" = None,
) -> LintReport:
    """Run the default pass catalog over one region."""
    return default_pass_manager().run(region, env=env, platform=platform)
