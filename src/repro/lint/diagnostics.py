"""Diagnostics core: the finding type every lint pass and the verifier emit.

A :class:`Diagnostic` is one structured finding — a stable code
(``RACE001``, ``PERF102``, ...), a severity, the IR node path it anchors
to, a human message and an optional fix hint.  A :class:`LintReport`
collects the findings for one region and renders them as compiler-style
text or as JSON for tooling.

This module is intentionally standalone (standard library only) so the IR
verifier (:mod:`repro.ir.validate`) can share the diagnostic type without
creating an import cycle with the lint passes.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "Severity",
    "Diagnostic",
    "LintReport",
    "render_reports_text",
    "reports_to_json",
]


class Severity(enum.IntEnum):
    """Finding severity; ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One structured lint finding, anchored to an IR node path.

    ``path`` locates the offending node from the region root, e.g.
    ``("parallel for i", "for j", "store C[i][j]")`` — the IR has no source
    files, so the node path plays the role of a source span.
    """

    code: str  # stable id, e.g. "RACE001"
    severity: Severity
    message: str
    region: str = ""
    path: tuple[str, ...] = ()
    hint: str | None = None
    source: str | None = None  # name of the pass that produced it

    @property
    def where(self) -> str:
        """The node path as one printable location string."""
        return "/".join((self.region,) + self.path) if self.region else "/".join(self.path)

    def to_dict(self) -> dict:
        out = {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "region": self.region,
            "path": list(self.path),
        }
        if self.hint:
            out["hint"] = self.hint
        if self.source:
            out["source"] = self.source
        return out

    def render(self) -> str:
        line = f"{self.code} {self.severity.label:<7} @ {self.where}: {self.message}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line


@dataclass(frozen=True)
class LintReport:
    """All findings for one region, worst first."""

    region_name: str
    diagnostics: tuple[Diagnostic, ...] = field(default_factory=tuple)

    def __post_init__(self):
        ordered = tuple(
            sorted(
                self.diagnostics,
                key=lambda d: (-int(d.severity), d.code, d.path),
            )
        )
        object.__setattr__(self, "diagnostics", ordered)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def with_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.with_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.with_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    @property
    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def codes(self) -> tuple[str, ...]:
        return tuple(sorted({d.code for d in self.diagnostics}))

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def render_text(self) -> str:
        head = (
            f"{self.region_name}: {len(self.diagnostics)} finding(s) "
            f"({len(self.errors)} error(s), {len(self.warnings)} warning(s))"
        )
        if not self.diagnostics:
            return f"{self.region_name}: clean"
        body = "\n".join("  " + d.render().replace("\n", "\n  ") for d in self.diagnostics)
        return f"{head}\n{body}"

    def to_dict(self) -> dict:
        return {
            "region": self.region_name,
            "clean": not self.diagnostics,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def render_reports_text(reports: Iterable[LintReport]) -> str:
    """Concatenate per-region reports plus a one-line totals footer."""
    reports = list(reports)
    blocks = [r.render_text() for r in reports]
    errors = sum(len(r.errors) for r in reports)
    warnings = sum(len(r.warnings) for r in reports)
    blocks.append(
        f"-- {len(reports)} region(s): {errors} error(s), {warnings} warning(s)"
    )
    return "\n".join(blocks)


def reports_to_json(reports: Iterable[LintReport]) -> str:
    """Machine-readable rendering of a batch of reports."""
    return json.dumps([r.to_dict() for r in reports], indent=2, sort_keys=True)
