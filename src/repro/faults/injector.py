"""Deterministic, seeded fault injection for the simulated devices.

A :class:`FaultInjector` holds an ordered plan of triggers; the resilient
dispatch layer asks it before every accelerator attempt whether that
attempt faults.  Three trigger families cover the scenarios the
experiments score:

* **probability** — ``ProbabilisticFault``: each attempt faults with a
  fixed probability drawn from the injector's seeded RNG (flaky bus,
  occasional ECC hiccup);
* **footprint** — ``FootprintOOM``: the region's device footprint exceeds
  the device memory (or an explicit cap), a *deterministic* OOM;
* **schedule** — ``ScheduledFault`` / ``DeadDevice``: fault on launch #k
  (or every launch), the reproducible regression cases.

Everything is replayable: the same seed and the same sequence of
``check`` calls yield the same faults.  Randomness is **stream-isolated**
per ``(trigger stream label, device)``: each trigger draws from its own
:func:`~repro.util.derive_rng` substream, so adding a trigger to a plan
(or a chaos schedule to a replay) never reshuffles the draws an existing
trigger sees — golden fault sequences survive plan composition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence

from ..ir import Region
from ..util.rng import derive_rng
from .errors import (
    DeviceError,
    DeviceMemoryError,
    TransferError,
    TransientDeviceError,
)

__all__ = [
    "LaunchContext",
    "FaultEvent",
    "FaultTrigger",
    "ProbabilisticFault",
    "FootprintOOM",
    "ScheduledFault",
    "DeadDevice",
    "FaultInjector",
    "FAULT_SCENARIOS",
    "scenario_by_name",
    "region_footprint_bytes",
]


def region_footprint_bytes(region: Region, env: Mapping[str, int]) -> int:
    """Device-resident bytes for a region launch (each mapped array once)."""
    return sum(
        int(arr.element_count().evaluate(env)) * arr.dtype.size
        for arr in region.arrays.values()
    )


@dataclass(frozen=True)
class LaunchContext:
    """What the injector knows about one accelerator dispatch attempt."""

    device_name: str
    kind: str  # "cpu" | "gpu"
    launch_index: int  # per-device dispatch ordinal (0-based)
    attempt: int  # 1-based attempt number within this launch
    footprint_bytes: int
    memory_bytes: int | None  # device memory capacity (None = unknown)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in launch provenance."""

    device_name: str
    launch_index: int
    attempt: int
    error_type: str
    message: str


class FaultTrigger(Protocol):
    """One rule of a fault plan."""

    def check(self, ctx: LaunchContext, rng: random.Random) -> DeviceError | None:
        """Return the fault this attempt suffers, or None."""
        ...


def _matches(device: str | None, ctx: LaunchContext) -> bool:
    return device is None or device in ctx.device_name


def _make(error: type[DeviceError], message: str, ctx: LaunchContext) -> DeviceError:
    return error(
        message,
        device_name=ctx.device_name,
        launch_index=ctx.launch_index,
        attempt=ctx.attempt,
    )


@dataclass(frozen=True)
class ProbabilisticFault:
    """Each matching attempt faults with probability ``probability``."""

    error: type[DeviceError] = TransferError
    probability: float = 0.1
    device: str | None = None  # substring of the device name; None = any

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def check(self, ctx: LaunchContext, rng: random.Random) -> DeviceError | None:
        if not _matches(self.device, ctx):
            return None
        if rng.random() >= self.probability:
            return None
        return _make(
            self.error,
            f"injected {self.error.__name__} (p={self.probability:g})",
            ctx,
        )


@dataclass(frozen=True)
class FootprintOOM:
    """OOM when the region footprint exceeds the device memory.

    ``limit_bytes`` overrides the device capacity (useful to model a card
    shared with other tenants); ``headroom`` scales whichever limit
    applies (1.0 = the full capacity is usable).
    """

    limit_bytes: int | None = None
    headroom: float = 1.0
    device: str | None = None

    def check(self, ctx: LaunchContext, rng: random.Random) -> DeviceError | None:
        if not _matches(self.device, ctx):
            return None
        limit = self.limit_bytes if self.limit_bytes is not None else ctx.memory_bytes
        if limit is None:
            return None
        usable = limit * self.headroom
        if ctx.footprint_bytes <= usable:
            return None
        return _make(
            DeviceMemoryError,
            f"footprint {ctx.footprint_bytes} B exceeds usable "
            f"device memory {usable:.0f} B",
            ctx,
        )


@dataclass(frozen=True)
class ScheduledFault:
    """Fault on specific launch ordinals (and optionally specific attempts).

    ``attempts=None`` faults every retry of the scheduled launches (so the
    launch deterministically exhausts its budget and falls back);
    ``attempts=(1,)`` faults only the first try (so the retry succeeds).
    """

    error: type[DeviceError] = TransientDeviceError
    launches: tuple[int, ...] = ()
    attempts: tuple[int, ...] | None = None
    device: str | None = None

    def check(self, ctx: LaunchContext, rng: random.Random) -> DeviceError | None:
        if not _matches(self.device, ctx):
            return None
        if ctx.launch_index not in self.launches:
            return None
        if self.attempts is not None and ctx.attempt not in self.attempts:
            return None
        return _make(
            self.error,
            f"scheduled {self.error.__name__} on launch #{ctx.launch_index}",
            ctx,
        )


@dataclass(frozen=True)
class DeadDevice:
    """Every attempt on the matching device fails (card fell off the bus)."""

    error: type[DeviceError] = TransientDeviceError
    device: str | None = None

    def check(self, ctx: LaunchContext, rng: random.Random) -> DeviceError | None:
        if not _matches(self.device, ctx):
            return None
        return _make(self.error, "device is dead", ctx)


class FaultInjector:
    """An ordered fault plan plus the seeded RNG streams that drive it.

    The first trigger that fires wins.  ``events`` accumulates every
    injected fault (the runtime also records them per launch);
    ``reset()`` rewinds the RNG streams so the identical plan can be
    replayed.

    Each trigger draws from an independent substream keyed by its
    ``stream_label`` (default: the trigger's class name) and the device
    the attempt targets, so a trigger's draw sequence depends only on the
    injector seed and the attempts *it* examines — never on how many
    other triggers the plan carries or how often they draw.
    """

    def __init__(self, triggers: Sequence[FaultTrigger] = (), *, seed: int = 0):
        self.triggers = tuple(triggers)
        self.seed = seed
        self._streams: dict[tuple[str, str], random.Random] = {}
        self.events: list[FaultEvent] = []

    @property
    def enabled(self) -> bool:
        return bool(self.triggers)

    def reset(self) -> None:
        """Rewind to the initial state (same seed => same fault sequence)."""
        self._streams.clear()
        self.events.clear()

    def stream(self, trigger: FaultTrigger, device_name: str) -> random.Random:
        """The trigger's isolated RNG substream for one device."""
        label = getattr(trigger, "stream_label", None) or type(trigger).__name__
        key = (label, device_name)
        rng = self._streams.get(key)
        if rng is None:
            rng = self._streams[key] = derive_rng(self.seed, label, device_name)
        return rng

    def check(self, ctx: LaunchContext) -> DeviceError | None:
        """Return the fault this attempt suffers under the plan, if any."""
        for trigger in self.triggers:
            err = trigger.check(ctx, self.stream(trigger, ctx.device_name))
            if err is not None:
                self.events.append(
                    FaultEvent(
                        device_name=ctx.device_name,
                        launch_index=ctx.launch_index,
                        attempt=ctx.attempt,
                        error_type=type(err).__name__,
                        message=str(err),
                    )
                )
                return err
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(type(t).__name__ for t in self.triggers)
        return f"FaultInjector([{names}], seed={self.seed})"


#: The scenario grid `bench_faults` scores every policy against.
FAULT_SCENARIOS = ("fault-free", "flaky-transfer", "oom-prone", "dead-gpu")


def scenario_by_name(name: str, *, seed: int = 0) -> FaultInjector:
    """Build one of the named fault scenarios.

    * ``fault-free``      — empty plan (the control arm);
    * ``flaky-transfer``  — 25% of attempts lose a DMA (retryable);
    * ``oom-prone``       — only 256 MiB of device memory is usable, plus
      a 5% transient hiccup rate (mixed deterministic + stochastic);
    * ``dead-gpu``        — every accelerator attempt fails.
    """
    table: dict[str, tuple[FaultTrigger, ...]] = {
        "fault-free": (),
        "flaky-transfer": (ProbabilisticFault(TransferError, probability=0.25),),
        "oom-prone": (
            FootprintOOM(limit_bytes=256 << 20),
            ProbabilisticFault(TransientDeviceError, probability=0.05),
        ),
        "dead-gpu": (DeadDevice(),),
    }
    key = name.strip().lower()
    if key not in table:
        raise ValueError(
            f"unknown fault scenario {name!r}; known: {sorted(table)}"
        )
    return FaultInjector(table[key], seed=seed)
