"""Fault tolerance for the offloading runtime (see docs/ROBUSTNESS.md).

The paper's decision framework assumes every offload attempt succeeds; a
traffic-serving selector must survive GPU OOM, transfer faults and kernel
hangs while still making good decisions.  This package supplies the three
pieces the runtimes compose:

* a typed :class:`DeviceError` taxonomy raised under injectable,
  seeded fault plans (:class:`FaultInjector`);
* bounded retry with exponential backoff on a :class:`SimulatedClock`;
* per-device :class:`DeviceHealth` with a launch-cooldown
  :class:`CircuitBreaker`, whose penalty feeds back into the selector.
"""

from .errors import (
    BudgetExhausted,
    DeadlineExceeded,
    DeviceError,
    DeviceMemoryError,
    KernelTimeout,
    TransferError,
    TransientDeviceError,
)
from .health import BreakerState, CircuitBreaker, DeviceHealth
from .injector import (
    FAULT_SCENARIOS,
    DeadDevice,
    FaultEvent,
    FaultInjector,
    FaultTrigger,
    FootprintOOM,
    LaunchContext,
    ProbabilisticFault,
    ScheduledFault,
    region_footprint_bytes,
    scenario_by_name,
)
from .resilient import DispatchResult, dispatch_with_retries
from .retry import RetryPolicy, SimulatedClock

__all__ = [
    "BudgetExhausted",
    "DeadlineExceeded",
    "DeviceError",
    "DeviceMemoryError",
    "KernelTimeout",
    "TransferError",
    "TransientDeviceError",
    "BreakerState",
    "CircuitBreaker",
    "DeviceHealth",
    "FAULT_SCENARIOS",
    "DeadDevice",
    "FaultEvent",
    "FaultInjector",
    "FaultTrigger",
    "FootprintOOM",
    "LaunchContext",
    "ProbabilisticFault",
    "ScheduledFault",
    "region_footprint_bytes",
    "scenario_by_name",
    "DispatchResult",
    "dispatch_with_retries",
    "RetryPolicy",
    "SimulatedClock",
]
