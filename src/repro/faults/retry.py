"""Retry budgeting on a simulated clock.

No real sleeps anywhere: backoff delays are *accounted* (added to the
launch's overhead and to the runtime's :class:`SimulatedClock`) the same
way every other second in this repository is simulated rather than
elapsed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = ["SimulatedClock", "RetryPolicy"]


class SimulatedClock:
    """A monotonically advancing virtual time base (seconds)."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("time cannot flow backwards")
        self.now += seconds
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedClock(now={self.now:g})"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with clamped exponential backoff and optional jitter.

    ``max_attempts`` counts every dispatch try including the first; after
    failed attempt *k* the runtime waits ``delay(k)`` simulated seconds
    before attempt *k+1*.  The exponential growth is clamped to
    ``max_delay_s`` *before* jitter is applied, so the jittered delay is
    bounded by ``max_delay_s * (1 + jitter)``.  Jitter is deterministic:
    the fraction added to attempt *k* depends only on ``(seed, k)``, so a
    fixed seed replays the identical backoff sequence.  The defaults
    (no clamp, no jitter) reproduce the historical delays bit-for-bit.
    """

    max_attempts: int = 3
    backoff_base_s: float = 1e-3
    backoff_factor: float = 2.0
    max_delay_s: float = math.inf
    jitter: float = 0.0  # fraction of the clamped delay, in [0, 1]
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.backoff_base_s < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.max_delay_s <= 0 or math.isnan(self.max_delay_s):
            raise ValueError("max_delay_s must be positive")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def _clamped_delay(self, attempt: int) -> float:
        """Exponential delay clamped to ``max_delay_s`` (jitter-free).

        Overflow-safe: attempt counts large enough to overflow the float
        exponentiation saturate at the clamp (or ``inf`` when unclamped)
        instead of raising.
        """
        try:
            raw = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        except OverflowError:
            raw = math.inf
        return min(raw, self.max_delay_s)

    def _jitter_fraction(self, attempt: int) -> float:
        if self.jitter == 0.0:
            return 0.0
        # one independent, reproducible draw per (seed, attempt)
        return self.jitter * random.Random(
            self.seed * 1_000_003 + attempt
        ).random()

    def delay(self, attempt: int) -> float:
        """Backoff after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        return self._clamped_delay(attempt) * (1.0 + self._jitter_fraction(attempt))

    def total_backoff(self, failed_attempts: int) -> float:
        """Total simulated wait after ``failed_attempts`` consecutive failures.

        Overflow-safe for arbitrarily large counts: once the exponential
        reaches the clamp every remaining attempt contributes exactly
        ``max_delay_s``, so the tail is computed in closed form instead of
        being summed term by term (and an unclamped runaway saturates to
        ``inf`` rather than raising).
        """
        if failed_attempts <= 0:
            return 0.0
        if self.jitter == 0.0 and self.backoff_factor == 1.0:
            return failed_attempts * self._clamped_delay(1)
        total = 0.0
        for k in range(1, failed_attempts + 1):
            clamped = self._clamped_delay(k)
            if self.jitter == 0.0 and clamped >= self.max_delay_s:
                # every later attempt is also clamped: close the sum
                return total + (failed_attempts - k + 1) * clamped
            if clamped == math.inf:
                return math.inf
            total += clamped * (1.0 + self._jitter_fraction(k))
        return total
