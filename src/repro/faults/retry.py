"""Retry budgeting on a simulated clock.

No real sleeps anywhere: backoff delays are *accounted* (added to the
launch's overhead and to the runtime's :class:`SimulatedClock`) the same
way every other second in this repository is simulated rather than
elapsed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SimulatedClock", "RetryPolicy"]


class SimulatedClock:
    """A monotonically advancing virtual time base (seconds)."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("time cannot flow backwards")
        self.now += seconds
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedClock(now={self.now:g})"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff.

    ``max_attempts`` counts every dispatch try including the first;
    after failed attempt *k* the runtime waits ``delay(k)`` simulated
    seconds before attempt *k+1*.
    """

    max_attempts: int = 3
    backoff_base_s: float = 1e-3
    backoff_factor: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.backoff_base_s < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be non-negative and non-shrinking")

    def delay(self, attempt: int) -> float:
        """Backoff after failed attempt ``attempt`` (1-based)."""
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)

    def total_backoff(self, failed_attempts: int) -> float:
        """Total simulated wait after ``failed_attempts`` consecutive failures."""
        return sum(self.delay(k) for k in range(1, failed_attempts + 1))
