"""Typed device-fault taxonomy raised by the (simulated) offload path.

The host fallback is assumed always safe — only accelerator dispatches can
raise a :class:`DeviceError`.  Each subclass carries a ``retryable`` class
flag: transient faults (a flaky DMA, a hung kernel, an ECC hiccup) are
worth retrying with backoff, while a device-memory exhaustion is
deterministic for a given region footprint and re-attempting it would only
waste the retry budget.
"""

from __future__ import annotations

__all__ = [
    "DeviceError",
    "DeviceMemoryError",
    "TransferError",
    "KernelTimeout",
    "TransientDeviceError",
    "DeadlineExceeded",
    "BudgetExhausted",
]


class DeviceError(RuntimeError):
    """Base class of all accelerator-side launch failures."""

    #: Whether a bounded-backoff retry on the same device is sensible.
    retryable: bool = True

    def __init__(
        self,
        message: str,
        *,
        device_name: str = "?",
        launch_index: int = -1,
        attempt: int = 1,
    ):
        super().__init__(message)
        self.device_name = device_name
        self.launch_index = launch_index
        self.attempt = attempt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({str(self)!r}, device={self.device_name!r}, "
            f"launch={self.launch_index}, attempt={self.attempt})"
        )


class DeviceMemoryError(DeviceError):
    """Device memory exhausted (the region footprint does not fit)."""

    retryable = False


class TransferError(DeviceError):
    """A host<->device DMA failed mid-flight."""

    retryable = True


class KernelTimeout(DeviceError):
    """The kernel hung past the watchdog limit and was killed."""

    retryable = True


class TransientDeviceError(DeviceError):
    """A generic recoverable device hiccup (ECC retry, driver reset...)."""

    retryable = True


class DeadlineExceeded(DeviceError):
    """The dispatch overran its watchdog deadline and was killed.

    Unlike :class:`KernelTimeout` (an *injected* hang), this is raised by
    the runtime itself when the observed device time exceeds the deadline
    derived from the selector's own prediction (``predicted * factor +
    slack`` — see :class:`repro.drift.Watchdog`).  Not retryable: the
    simulated duration is deterministic for a given binding, so a retry
    would only burn another deadline before the same overrun.
    """

    retryable = False

    def __init__(
        self,
        message: str,
        *,
        device_name: str = "?",
        launch_index: int = -1,
        attempt: int = 1,
        deadline_seconds: float = float("inf"),
        observed_seconds: float = float("nan"),
    ):
        super().__init__(
            message,
            device_name=device_name,
            launch_index=launch_index,
            attempt=attempt,
        )
        self.deadline_seconds = deadline_seconds
        self.observed_seconds = observed_seconds


class BudgetExhausted(DeviceError):
    """The request's end-to-end deadline budget ran out mid-dispatch.

    Raised (as an event) by the budget-aware retry loop when the next
    backoff delay would overdraw the request's remaining
    :class:`~repro.runtime.Budget`, or by the watchdog path when the
    remaining budget is a tighter bound than the watchdog deadline and
    the observed device time overran it.  Not retryable: the budget only
    shrinks.  Like :class:`DeadlineExceeded` it feeds
    :class:`~repro.faults.DeviceHealth` — a device that keeps eating
    budgets looks flaky to the breaker even when its faults are slow
    successes.
    """

    retryable = False

    def __init__(
        self,
        message: str,
        *,
        device_name: str = "?",
        launch_index: int = -1,
        attempt: int = 1,
        budget_seconds: float = float("inf"),
        remaining_seconds: float = 0.0,
    ):
        super().__init__(
            message,
            device_name=device_name,
            launch_index=launch_index,
            attempt=attempt,
        )
        self.budget_seconds = budget_seconds
        self.remaining_seconds = remaining_seconds
