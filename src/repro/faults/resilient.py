"""The shared retry/fallback core both runtimes dispatch through.

``dispatch_with_retries`` runs the attempt loop for one accelerator
launch: ask the injector whether the attempt faults, update the device's
health and breaker, back off on the simulated clock, and report how the
launch ended.  The caller decides what "fall back" means (the host on the
two-device runtime, the next-best device on the multi-device one).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import BudgetExhausted, DeviceError
from .health import DeviceHealth
from .injector import FaultEvent, FaultInjector, LaunchContext
from .retry import RetryPolicy, SimulatedClock

__all__ = ["DispatchResult", "dispatch_with_retries"]

#: Fallback-provenance labels stamped into launch records.
FALLBACK_BREAKER = "breaker-open"
FALLBACK_HEALTH = "health-penalty"
FALLBACK_RETRIES = "retries-exhausted"
FALLBACK_FATAL = "non-retryable-fault"
FALLBACK_DEADLINE = "deadline-exceeded"
FALLBACK_BUDGET = "budget-exhausted"


@dataclass(frozen=True)
class DispatchResult:
    """How one accelerator launch ended after the retry loop."""

    ok: bool
    attempts: int
    fault_events: tuple[FaultEvent, ...]
    overhead_seconds: float  # simulated backoff spent on failed attempts
    reason: str | None  # fallback provenance when not ok


def _event(err: DeviceError) -> FaultEvent:
    return FaultEvent(
        device_name=err.device_name,
        launch_index=err.launch_index,
        attempt=err.attempt,
        error_type=type(err).__name__,
        message=str(err),
    )


def dispatch_with_retries(
    *,
    injector: FaultInjector | None,
    retry: RetryPolicy,
    clock: SimulatedClock,
    health: DeviceHealth,
    device_name: str,
    launch_index: int,
    footprint_bytes: int,
    memory_bytes: int | None,
    budget=None,
) -> DispatchResult:
    """Attempt one accelerator launch under the fault plan.

    Returns a successful single-attempt result immediately when no
    injector is configured (the fault-free fast path — zero overhead, so
    records stay bit-identical to a runtime without fault tolerance).

    ``budget`` is an optional :class:`~repro.runtime.Budget`: a backoff
    delay that would overdraw the remaining budget is never slept —
    the loop stops with a typed :class:`BudgetExhausted` event (fed to
    the device's health, so chronic budget-eaters trip the breaker) and
    the :data:`FALLBACK_BUDGET` reason.  ``budget=None`` (the default)
    reproduces the historical loop exactly.
    """
    if injector is None or not injector.enabled:
        health.record_success()
        return DispatchResult(True, 1, (), 0.0, None)

    events: list[FaultEvent] = []
    overhead = 0.0
    for attempt in range(1, retry.max_attempts + 1):
        err = injector.check(
            LaunchContext(
                device_name=device_name,
                kind="gpu",
                launch_index=launch_index,
                attempt=attempt,
                footprint_bytes=footprint_bytes,
                memory_bytes=memory_bytes,
            )
        )
        if err is None:
            health.record_success()
            return DispatchResult(True, attempt, tuple(events), overhead, None)
        events.append(_event(err))
        health.record_failure(err)
        if not err.retryable:
            return DispatchResult(
                False, attempt, tuple(events), overhead, FALLBACK_FATAL
            )
        if not health.breaker.allows():
            # The breaker tripped mid-launch (threshold reached, or a
            # half-open probe failed): stop burning the retry budget.
            return DispatchResult(
                False, attempt, tuple(events), overhead, FALLBACK_BREAKER
            )
        if attempt == retry.max_attempts:
            return DispatchResult(
                False, attempt, tuple(events), overhead, FALLBACK_RETRIES
            )
        delay = retry.delay(attempt)
        if budget is not None:
            remaining = budget.remaining()
            if delay > remaining:
                exhausted = BudgetExhausted(
                    f"retry backoff {delay:.3e}s exceeds remaining budget "
                    f"{remaining:.3e}s",
                    device_name=device_name,
                    launch_index=launch_index,
                    attempt=attempt,
                    budget_seconds=budget.total_s,
                    remaining_seconds=remaining,
                )
                events.append(_event(exhausted))
                health.record_failure(exhausted)
                return DispatchResult(
                    False, attempt, tuple(events), overhead, FALLBACK_BUDGET
                )
            budget.charge(delay)
        overhead += delay
        clock.advance(delay)
    raise AssertionError("unreachable")  # pragma: no cover
