"""Per-device health: failure statistics and a circuit breaker.

The breaker implements the classic three-state machine, with the cooldown
measured in *launches* (the runtime's natural time base) rather than wall
seconds::

          N consecutive failures
    CLOSED ----------------------> OPEN
      ^                              | cooldown launches elapse
      | probe succeeds               v
      +--------------------------- HALF_OPEN
                                     | probe fails
                                     +---------> OPEN (cooldown restarts)

:class:`DeviceHealth` wraps the breaker with an exponentially weighted
failure rate whose ``penalty()`` multiplier the runtimes apply to the
analytical GPU prediction — a device that keeps faulting looks slower and
slower to the selector until the models route around it even before the
breaker trips.

When wired to the runtime's :class:`~repro.faults.SimulatedClock` with a
``decay_halflife_s``, the failure rate also decays over *simulated* time:
a device that has been healthy for a long simulated interval sheds its
penalty instead of carrying it forever.  Without a clock (the default)
the historical launch-count-only behaviour is preserved exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .errors import DeviceError
from .retry import SimulatedClock

__all__ = ["BreakerState", "CircuitBreaker", "DeviceHealth"]


class BreakerState(str, enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass
class CircuitBreaker:
    """Open after N consecutive failures; half-open probe after a cooldown."""

    failure_threshold: int = 3
    cooldown_launches: int = 5
    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    _cooldown_left: int = 0
    #: state-transition log, (launch tick not tracked here): new state names
    transitions: list[str] = field(default_factory=list)

    def __post_init__(self):
        if self.failure_threshold < 1 or self.cooldown_launches < 1:
            raise ValueError("threshold and cooldown must be >= 1")

    def _move(self, state: BreakerState) -> None:
        if state is not self.state:
            self.state = state
            self.transitions.append(state.value)

    def on_launch(self) -> None:
        """Advance the cooldown clock; call once per runtime launch."""
        if self.state is BreakerState.OPEN:
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self._move(BreakerState.HALF_OPEN)

    def allows(self) -> bool:
        """May the runtime dispatch to this device right now?"""
        return self.state is not BreakerState.OPEN

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._move(BreakerState.CLOSED)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            self._cooldown_left = self.cooldown_launches
            self._move(BreakerState.OPEN)


@dataclass
class DeviceHealth:
    """Failure bookkeeping for one accelerator, feeding the selector."""

    device_name: str
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)
    ewma_alpha: float = 0.25  # weight of the newest outcome
    penalty_weight: float = 4.0  # prediction multiplier per unit failure rate
    clock: SimulatedClock | None = None  # simulated time base for decay
    decay_halflife_s: float | None = None  # None = no time-based decay
    successes: int = 0
    failures: int = 0
    failure_ewma: float = 0.0
    fault_counts: dict[str, int] = field(default_factory=dict)
    _last_decay_now: float | None = field(default=None, repr=False)

    def __post_init__(self):
        if self.decay_halflife_s is not None and self.decay_halflife_s <= 0:
            raise ValueError("decay_halflife_s must be positive")

    def _decay(self) -> None:
        """Shed failure weight for the simulated time elapsed since last look."""
        if self.clock is None or self.decay_halflife_s is None:
            return
        now = self.clock.now
        if self._last_decay_now is None:
            self._last_decay_now = now
            return
        elapsed = now - self._last_decay_now
        if elapsed < 0:
            raise ValueError(
                f"simulated clock moved backwards ({self._last_decay_now:g}s "
                f"-> {now:g}s); DeviceHealth decay needs a monotonic clock"
            )
        if elapsed > 0:
            self.failure_ewma *= 0.5 ** (elapsed / self.decay_halflife_s)
            self._last_decay_now = now

    def record_success(self) -> None:
        self._decay()
        self.successes += 1
        self.failure_ewma *= 1.0 - self.ewma_alpha
        self.breaker.record_success()

    def record_failure(self, error: DeviceError) -> None:
        self._decay()
        self.failures += 1
        self.failure_ewma += self.ewma_alpha * (1.0 - self.failure_ewma)
        name = type(error).__name__
        self.fault_counts[name] = self.fault_counts.get(name, 0) + 1
        self.breaker.record_failure()

    def penalty(self) -> float:
        """Multiplier applied to the device's predicted seconds (>= 1).

        Exactly 1.0 while the device has never failed, so a fault-free run
        makes bit-identical decisions to a runtime without health tracking.
        Time-based decay (when configured) is applied lazily here, so a
        long-healthy device reads a shrunken penalty.
        """
        self._decay()
        return 1.0 + self.penalty_weight * self.failure_ewma

    @property
    def healthy(self) -> bool:
        return self.breaker.state is BreakerState.CLOSED and self.failure_ewma < 0.5

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceHealth({self.device_name!r}, {self.breaker.state.value}, "
            f"{self.successes} ok / {self.failures} failed, "
            f"penalty={self.penalty():.2f})"
        )
