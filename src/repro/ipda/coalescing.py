"""Memory-transaction math for warp accesses.

Given the inter-thread stride (in bytes) that IPDA derives for an access,
these helpers compute how many memory transactions one warp-wide access
generates, which is what turns a stride into the Hong model's
``#Coal_Mem_insts`` / ``#Uncoal_Mem_insts`` split and the simulator's DRAM
traffic.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["CoalescingClass", "transactions_per_warp_access", "classify_stride"]


class CoalescingClass(Enum):
    """Coalescing quality of one static memory access."""

    UNIFORM = "uniform"  # stride 0: all threads hit one address
    COALESCED = "coalesced"  # adjacent threads, adjacent elements
    PARTIAL = "partial"  # small stride: few transactions per warp
    UNCOALESCED = "uncoalesced"  # one transaction per thread
    UNKNOWN = "unknown"  # non-affine: assume worst case

    @property
    def is_coalesced(self) -> bool:
        """Whether the Hong model should count this as a coalesced access."""
        return self in (CoalescingClass.UNIFORM, CoalescingClass.COALESCED)


def transactions_per_warp_access(
    stride_bytes: int,
    elem_bytes: int,
    *,
    warp_size: int = 32,
    sector_bytes: int = 32,
) -> int:
    """Number of ``sector_bytes`` transactions one warp access generates.

    Assumes a sector-aligned base address (the compiler aligns array
    allocations), and counts the distinct sectors touched by ``warp_size``
    lanes reading ``elem_bytes`` each at byte offsets ``lane * stride_bytes``.
    """
    if elem_bytes <= 0 or warp_size <= 0 or sector_bytes <= 0:
        raise ValueError("sizes must be positive")
    stride_bytes = abs(int(stride_bytes))
    sectors: set[int] = set()
    for lane in range(warp_size):
        first = (lane * stride_bytes) // sector_bytes
        last = (lane * stride_bytes + elem_bytes - 1) // sector_bytes
        sectors.update(range(first, last + 1))
    return len(sectors)


def classify_stride(
    stride_elems: int | None,
    elem_bytes: int,
    *,
    sector_bytes: int = 32,
) -> CoalescingClass:
    """Map an element stride to a coalescing class.

    ``None`` means IPDA could not build an affine difference (non-affine
    addressing) — the conservative answer is UNKNOWN/worst-case.
    """
    if stride_elems is None:
        return CoalescingClass.UNKNOWN
    stride_elems = int(stride_elems)
    if stride_elems == 0:
        return CoalescingClass.UNIFORM
    if abs(stride_elems) == 1:
        return CoalescingClass.COALESCED
    if abs(stride_elems) * elem_bytes <= sector_bytes:
        return CoalescingClass.PARTIAL
    return CoalescingClass.UNCOALESCED
