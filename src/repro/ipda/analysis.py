"""Iteration Point Difference Analysis (IPDA).

Reimplementation of the inter-thread stride analysis of Chikin et al. [12]
as applied in Section IV.C of the paper: for every memory access in an
OpenMP parallel loop, build the *symbolic difference* between the addresses
touched by two adjacent GPU threads.

For the paper's running example::

    #pragma omp teams distribute parallel for
    for (int a = 0; a < max; a++)
        A[max * a] = ...

the flattened index is ``max * a``; with thread ``t`` executing iteration
``a = t``, the inter-thread difference is

    IPD_th = [max]*(t+1) - [max]*t = [max]

a *symbolic* stride that the runtime resolves right before kernel launch.

Thread mapping
--------------
The outermost contiguous parallel band is collapsed row-major into a linear
thread space (this mirrors the compiler's ``collapse`` lowering).  Adjacent
threads therefore differ by +1 in the *innermost* band variable, so the
inter-thread difference of an affine index is exactly the coefficient of
that variable in the affine decomposition.  (Threads on a collapse boundary
wrap around; they are a 1/extent fraction of warps and are ignored, as in
the original IPDA formulation.)

Besides the GPU inter-thread stride, the analysis also records, per access,
the stride along each *sequential* loop — the CPU model uses the innermost
sequential stride for vectorization/cache behaviour, and the CPU false-
sharing indicator mentioned in Section II.C falls out of the same math.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..ir import Region
from ..ir.parser import parse_index
from ..ir.printer import region_to_text
from ..ir.visit import MemoryAccess, memory_accesses
from ..obs.tracer import current_tracer
from ..parallel.cache import current_cache
from ..symbolic import Expr, NonAffineError, decompose_affine
from .coalescing import CoalescingClass, classify_stride, transactions_per_warp_access

__all__ = [
    "AccessStride",
    "BoundAccess",
    "IPDAResult",
    "BoundIPDA",
    "analyze_region",
]


@dataclass(frozen=True)
class AccessStride:
    """Symbolic stride information for one static memory access.

    ``thread_stride`` is the inter-thread element stride (``None`` when the
    index is non-affine in the band variables); ``loop_strides`` maps every
    enclosing loop variable — parallel band variables included — to the
    element stride along it (the locality model consumes all of them).
    """

    access: MemoryAccess
    thread_stride: Expr | None
    loop_strides: Mapping[str, Expr]

    @property
    def is_store(self) -> bool:
        return self.access.is_store

    @property
    def elem_bytes(self) -> int:
        return self.access.dtype.size

    def innermost_sequential_stride(self) -> Expr | None:
        """Stride along the innermost enclosing sequential loop, if any."""
        for lp in reversed(self.access.loop_path):
            if not lp.parallel:
                return self.loop_strides.get(lp.var.name)
        return None


@dataclass(frozen=True)
class BoundAccess:
    """An access with its stride resolved to numbers (post runtime binding)."""

    stride: AccessStride
    thread_stride_elems: int | None
    coalescing: CoalescingClass
    transactions_per_access: int
    false_sharing_risk: bool

    @property
    def is_coalesced(self) -> bool:
        return self.coalescing.is_coalesced


@dataclass(frozen=True)
class IPDAResult:
    """Compile-time product of IPDA over one region.

    Stored in the Program Attribute Database; :meth:`bind` is what the
    OpenMP runtime calls when the region is reached and the unknowns (array
    extents, trip counts) are finally known.
    """

    region_name: str
    band_vars: tuple[str, ...]
    accesses: tuple[AccessStride, ...]

    def free_symbols(self) -> frozenset[str]:
        syms: set[str] = set()
        for a in self.accesses:
            if a.thread_stride is not None:
                syms |= a.thread_stride.free_symbols()
        return frozenset(syms)

    def bind(
        self,
        env: Mapping[str, int],
        *,
        warp_size: int = 32,
        sector_bytes: int = 32,
        cacheline_bytes: int = 128,
    ) -> "BoundIPDA":
        """Resolve all symbolic strides with runtime values.

        ``env`` must bind every free symbol; this is the Figure-2 step where
        the runtime feeds dynamic values into the stored expressions.
        """
        bound: list[BoundAccess] = []
        for a in self.accesses:
            if a.thread_stride is None:
                stride_val: int | None = None
            else:
                stride_val = int(a.thread_stride.evaluate(env))
            cls = classify_stride(stride_val, a.elem_bytes, sector_bytes=sector_bytes)
            if stride_val is None:
                txn = warp_size  # worst case: one transaction per lane
            else:
                txn = transactions_per_warp_access(
                    stride_val * a.elem_bytes,
                    a.elem_bytes,
                    warp_size=warp_size,
                    sector_bytes=sector_bytes,
                )
            false_sharing = bool(
                a.is_store
                and stride_val is not None
                and 0 < abs(stride_val) * a.elem_bytes < cacheline_bytes
            )
            bound.append(
                BoundAccess(
                    stride=a,
                    thread_stride_elems=stride_val,
                    coalescing=cls,
                    transactions_per_access=txn,
                    false_sharing_risk=false_sharing,
                )
            )
        return BoundIPDA(self.region_name, tuple(bound))


@dataclass(frozen=True)
class BoundIPDA:
    """Runtime-resolved coalescing characteristics of a region."""

    region_name: str
    accesses: tuple[BoundAccess, ...]

    def counts(self) -> tuple[int, int]:
        """(#coalesced, #uncoalesced) static memory instructions."""
        coal = sum(1 for a in self.accesses if a.is_coalesced)
        return coal, len(self.accesses) - coal

    def coalesced_fraction(self) -> float:
        """Fraction of static accesses that coalesce (1.0 when no accesses)."""
        if not self.accesses:
            return 1.0
        coal, _ = self.counts()
        return coal / len(self.accesses)

    def mean_transactions(self) -> float:
        """Average transactions per warp-level memory access."""
        if not self.accesses:
            return 1.0
        return sum(a.transactions_per_access for a in self.accesses) / len(
            self.accesses
        )

    def any_false_sharing(self) -> bool:
        return any(a.false_sharing_risk for a in self.accesses)


def analyze_region(region: Region) -> IPDAResult:
    """Run IPDA over a region at compile time.

    Returns symbolic strides; unknowns stay as ``[sym]`` placeholders, to be
    bound by :meth:`IPDAResult.bind` at kernel-launch time.
    """
    tracer = current_tracer()
    if not tracer.enabled:
        return _cached_analyze(region)
    with tracer.span("ipda.analyze", region=region.name) as sp:
        result = _cached_analyze(region)
        sp.set("accesses", len(result.accesses))
        return result


def _cached_analyze(region: Region) -> IPDAResult:
    """Consult the persistent analysis cache before running IPDA.

    Cached entries store only the *symbolic strides* (as ``Expr`` reprs,
    which round-trip exactly through :func:`repro.ir.parse_index`); the
    per-access ``MemoryAccess`` handles are rehydrated from the region
    itself — :func:`memory_accesses` enumerates them in a fixed order —
    so the expensive affine decomposition is what gets skipped.  An
    entry whose access count no longer matches the region is treated as
    corrupt: recomputed, never trusted.
    """
    cache = current_cache()
    if not cache.enabled:
        return _analyze_region(region)
    text = region_to_text(region)
    entry = cache.get_or_compute(
        "ipda.analyze",
        text,
        None,
        lambda: _encode_ipda(_analyze_region(region)),
        validate=_valid_ipda_entry,
    )
    result = _decode_ipda(region, entry)
    if result is None:  # stale shape: recompute and overwrite
        result = _analyze_region(region)
    return result


def _encode_ipda(result: IPDAResult) -> dict:
    return {
        "band_vars": list(result.band_vars),
        "accesses": [
            {
                "thread_stride": (
                    None if a.thread_stride is None else repr(a.thread_stride)
                ),
                "loop_strides": {
                    var: repr(e) for var, e in sorted(a.loop_strides.items())
                },
            }
            for a in result.accesses
        ],
    }


def _valid_ipda_entry(entry) -> bool:
    return (
        isinstance(entry, dict)
        and isinstance(entry.get("band_vars"), list)
        and isinstance(entry.get("accesses"), list)
        and all(
            isinstance(a, dict) and isinstance(a.get("loop_strides"), dict)
            for a in entry["accesses"]
        )
    )


def _decode_ipda(region: Region, entry: dict) -> IPDAResult | None:
    accesses = list(memory_accesses(region))
    if len(accesses) != len(entry["accesses"]):
        return None
    out: list[AccessStride] = []
    for acc, stored in zip(accesses, entry["accesses"]):
        ts = stored["thread_stride"]
        out.append(
            AccessStride(
                acc,
                None if ts is None else parse_index(ts),
                {
                    var: parse_index(e)
                    for var, e in stored["loop_strides"].items()
                },
            )
        )
    return IPDAResult(region.name, tuple(entry["band_vars"]), tuple(out))


def _analyze_region(region: Region) -> IPDAResult:
    band = region.parallel_band()
    band_vars = tuple(lp.var.name for lp in band)
    innermost_band = band_vars[-1]

    out: list[AccessStride] = []
    for acc in memory_accesses(region):
        ivars = frozenset(lp.var.name for lp in acc.loop_path)
        flat = acc.flat_index()
        try:
            form = decompose_affine(flat, ivars)
        except NonAffineError:
            out.append(AccessStride(acc, None, {}))
            continue
        # Inter-thread stride = coefficient of the innermost band variable.
        # Accesses hoisted above the band (none in our IR shape, since the
        # band is outermost) would be uniform.
        if innermost_band in ivars:
            thread_stride: Expr | None = form.coefficient(innermost_band)
        else:  # pragma: no cover - band is always outermost in valid regions
            thread_stride = None
        loop_strides = {
            lp.var.name: form.coefficient(lp.var.name) for lp in acc.loop_path
        }
        out.append(AccessStride(acc, thread_stride, loop_strides))
    return IPDAResult(region.name, band_vars, tuple(out))
