"""IPDA: Iteration Point Difference Analysis (inter-thread stride analysis).

The hybrid-analysis improvement of Section IV.C: symbolic inter-thread
stride expressions built at compile time, resolved with runtime values, and
turned into coalescing classes / memory-transaction counts for the GPU
performance model.
"""

from .analysis import (
    AccessStride,
    BoundAccess,
    BoundIPDA,
    IPDAResult,
    analyze_region,
)
from .coalescing import (
    CoalescingClass,
    classify_stride,
    transactions_per_warp_access,
)

__all__ = [
    "AccessStride",
    "BoundAccess",
    "BoundIPDA",
    "IPDAResult",
    "analyze_region",
    "CoalescingClass",
    "classify_stride",
    "transactions_per_warp_access",
]
