"""Plain-text table rendering for experiment reports.

The harness prints paper-style tables to stdout; this keeps the formatting
in one place and deterministic.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_kv"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    align_right: bool = True,
) -> str:
    """Render an ASCII table with auto-sized columns.

    The first column is always left-aligned (row labels); the rest follow
    ``align_right`` (numbers read better right-aligned).
    """
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    ncols = max(len(r) for r in cells)
    for r in cells:
        r.extend([""] * (ncols - len(r)))
    widths = [max(len(r[i]) for r in cells) for i in range(ncols)]

    def fmt_row(row: list[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            if i == 0 or not align_right:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(cells[0]))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(fmt_row(row))
    lines.append(sep)
    return "\n".join(lines)


def render_kv(pairs: Sequence[tuple[str, object]], *, title: str | None = None) -> str:
    """Render key/value parameter listings (Table II / III style)."""
    width = max(len(k) for k, _ in pairs) if pairs else 0
    lines = [title] if title else []
    for k, v in pairs:
        lines.append(f"  {k.ljust(width)} : {_fmt(v)}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
