"""Shared utilities: statistics and report formatting."""

from .stats import correlation, geomean, mean_absolute_log_error, summarize_ratio
from .tables import render_kv, render_table

__all__ = [
    "correlation",
    "geomean",
    "mean_absolute_log_error",
    "summarize_ratio",
    "render_kv",
    "render_table",
]
