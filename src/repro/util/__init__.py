"""Shared utilities: statistics, report formatting and CLI output."""

from .output import OUTPUT_FORMATS, add_format_argument, emit_json, emit_rows
from .rng import derive_rng, derive_seed
from .stats import correlation, geomean, mean_absolute_log_error, summarize_ratio
from .tables import render_kv, render_table

__all__ = [
    "derive_rng",
    "derive_seed",
    "correlation",
    "geomean",
    "mean_absolute_log_error",
    "summarize_ratio",
    "render_kv",
    "render_table",
    "OUTPUT_FORMATS",
    "add_format_argument",
    "emit_json",
    "emit_rows",
]
