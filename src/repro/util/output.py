"""Shared CLI output formatting: one ``--format`` flag, two renderers.

Every ``repro-paper`` subcommand that produces tabular or structured output
(``select``, ``lint``) registers the flag through :func:`add_format_argument`
and renders through :func:`emit_rows` / :func:`emit_json`, so ``text`` and
``json`` behave identically across subcommands.
"""

from __future__ import annotations

import argparse
import json
from typing import Sequence

from .tables import render_table

__all__ = ["OUTPUT_FORMATS", "add_format_argument", "emit_rows", "emit_json"]

OUTPUT_FORMATS = ("text", "json")


def add_format_argument(parser: argparse.ArgumentParser) -> None:
    """Register the shared ``--format text|json`` flag on a subcommand."""
    parser.add_argument(
        "--format",
        dest="format",
        default="text",
        choices=OUTPUT_FORMATS,
        help="output format (default: text)",
    )


def emit_json(payload) -> str:
    """Canonical JSON rendering used by every subcommand."""
    return json.dumps(payload, indent=2, sort_keys=True)


def emit_rows(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    *,
    title: str | None = None,
    fmt: str = "text",
) -> str:
    """Render tabular results as an ASCII table or a JSON object."""
    if fmt == "json":
        return emit_json(
            {
                "title": title,
                "headers": list(headers),
                "rows": [list(r) for r in rows],
            }
        )
    if fmt != "text":
        raise ValueError(f"unknown output format {fmt!r}; known: {OUTPUT_FORMATS}")
    return render_table(headers, rows, title=title)
