"""Small statistics helpers used by the experiment harness.

Every function accepts any iterable (generators included) and
materializes it exactly once; validation errors name the offending
index and value so a bad data point in a long sweep is identifiable
from the message alone.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["geomean", "mean_absolute_log_error", "correlation", "summarize_ratio"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty input or non-positive values."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    for i, v in enumerate(vals):
        if v <= 0:
            raise ValueError(
                f"geomean requires positive values; values[{i}] = {v!r}"
            )
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def mean_absolute_log_error(
    predicted: Iterable[float], actual: Iterable[float]
) -> float:
    """Mean |log10(pred/actual)| — the natural error metric for speedups."""
    preds = list(predicted)
    acts = list(actual)
    if len(preds) != len(acts):
        raise ValueError(
            f"sequences must be equal length; got {len(preds)} predicted "
            f"vs {len(acts)} actual"
        )
    if not preds:
        raise ValueError("mean_absolute_log_error of empty sequences")
    total = 0.0
    for i, (p, a) in enumerate(zip(preds, acts)):
        if p <= 0:
            raise ValueError(f"predicted[{i}] = {p!r} must be positive")
        if a <= 0:
            raise ValueError(f"actual[{i}] = {a!r} must be positive")
        total += abs(math.log10(p / a))
    return total / len(preds)


def correlation(xs: Iterable[float], ys: Iterable[float]) -> float:
    """Pearson correlation coefficient."""
    xv = list(xs)
    yv = list(ys)
    if len(xv) != len(yv):
        raise ValueError(
            f"sequences must be equal length; got {len(xv)} xs vs {len(yv)} ys"
        )
    if len(xv) < 2:
        raise ValueError(f"correlation needs >= 2 points, got {len(xv)}")
    n = len(xv)
    mx = sum(xv) / n
    my = sum(yv) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xv, yv))
    vx = sum((x - mx) ** 2 for x in xv)
    vy = sum((y - my) ** 2 for y in yv)
    if vx == 0:
        raise ValueError(f"xs has zero variance (all values = {xv[0]!r})")
    if vy == 0:
        raise ValueError(f"ys has zero variance (all values = {yv[0]!r})")
    return cov / math.sqrt(vx * vy)


def summarize_ratio(values: Iterable[float]) -> dict[str, float]:
    """min / geomean / max summary of a set of ratios."""
    vals = list(values)
    if not vals:
        raise ValueError("summarize_ratio of empty sequence")
    return {
        "min": min(vals),
        "geomean": geomean(vals),
        "max": max(vals),
    }
