"""Small statistics helpers used by the experiment harness."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["geomean", "mean_absolute_log_error", "correlation", "summarize_ratio"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty input or non-positive values."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def mean_absolute_log_error(
    predicted: Sequence[float], actual: Sequence[float]
) -> float:
    """Mean |log10(pred/actual)| — the natural error metric for speedups."""
    if len(predicted) != len(actual) or not predicted:
        raise ValueError("sequences must be equal-length and non-empty")
    total = 0.0
    for p, a in zip(predicted, actual):
        if p <= 0 or a <= 0:
            raise ValueError("values must be positive")
        total += abs(math.log10(p / a))
    return total / len(predicted)


def correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length sequences of >= 2 points")
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0 or vy == 0:
        raise ValueError("zero variance")
    return cov / math.sqrt(vx * vy)


def summarize_ratio(values: Sequence[float]) -> dict[str, float]:
    """min / geomean / max summary of a set of ratios."""
    if not values:
        raise ValueError("empty sequence")
    return {
        "min": min(values),
        "geomean": geomean(values),
        "max": max(values),
    }
