"""Independent, reproducible pseudo-random substreams.

A single shared ``random.Random`` makes every consumer's draws depend on
every *other* consumer's draw count: add one trigger to a fault plan (or
one chaos schedule to a replay) and every existing stochastic sequence
reshuffles, invalidating golden tests and making scenarios impossible to
compose.  ``derive_rng`` fixes this the standard way: each consumer gets
its own generator whose seed is a cryptographic hash of the root seed and
the consumer's identity, so streams are

* **independent** — draws from one stream never consume another's state;
* **stable** — a stream's sequence depends only on ``(root, *parts)``,
  never on which other streams exist or in what order they are created;
* **reproducible** — the same identity under the same root seed replays
  the identical sequence on any platform (SHA-256, not ``hash()``).
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "derive_rng"]


def derive_seed(root: int, *parts: object) -> int:
    """A 64-bit seed determined only by ``root`` and the identity parts.

    Parts are folded in by their ``str()`` with an unambiguous separator,
    so ``("ab", "c")`` and ``("a", "bc")`` derive different seeds.
    """
    h = hashlib.sha256(str(int(root)).encode())
    for part in parts:
        h.update(b"\x1f")
        h.update(str(part).encode())
    return int.from_bytes(h.digest()[:8], "big")


def derive_rng(root: int, *parts: object) -> random.Random:
    """An independent ``random.Random`` for the ``(root, *parts)`` identity."""
    return random.Random(derive_seed(root, *parts))
