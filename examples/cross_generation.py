#!/usr/bin/env python3
"""Cross-generation study: how GPU evolution sways offloading decisions.

Section III's point, extended: the same kernels, the same host, three GPU
generations (Kepler → Pascal → Volta) plus a hypothetical follow-on card —
watch decisions flip as bandwidth and interconnects improve.  Defining a
new accelerator is a dataclass literal: the framework needs no other code.
"""

from dataclasses import replace

from repro.machines import (
    AcceleratorSlot,
    NVLINK2,
    PCIE3_X16,
    POWER9,
    Platform,
    TESLA_K80,
    TESLA_P100,
    TESLA_V100,
)
from repro.polybench import benchmark_by_name
from repro.sim import simulate_cpu, simulate_gpu_kernel, simulate_transfers
from repro.util import render_table

#: A hypothetical next-generation card: more SMs, HBM at 1.6 TB/s.
NEXT_GEN = replace(
    TESLA_V100,
    name="NextGen-X",
    num_sms=108,
    clock_ghz=1.7,
    mem_bandwidth_gbs=1600.0,
    l2_kib=40960,
    l2_bandwidth_gbs=4500.0,
    launch_overhead_us=3.0,
)

PLATFORMS = (
    Platform("P9+K80/PCIe", POWER9, (AcceleratorSlot(TESLA_K80, PCIE3_X16),)),
    Platform("P9+P100/PCIe", POWER9, (AcceleratorSlot(TESLA_P100, PCIE3_X16),)),
    Platform("P9+V100/NVLink", POWER9, (AcceleratorSlot(TESLA_V100, NVLINK2),)),
    Platform("P9+NextGen/NVLink", POWER9, (AcceleratorSlot(NEXT_GEN, NVLINK2),)),
)

KERNELS = ("3dconv", "gemm", "atax", "corr")


def main() -> None:
    rows = []
    for bench_name in KERNELS:
        spec = benchmark_by_name(bench_name)
        env = spec.env("benchmark")
        for region in spec.build():
            cells = [region.name]
            for plat in PLATFORMS:
                cpu = simulate_cpu(region, plat.host, env)
                gpu = simulate_gpu_kernel(region, plat.gpu, env)
                xfer = simulate_transfers(region, plat.bus, env)
                speedup = cpu.seconds / (gpu.seconds + xfer.total_seconds)
                mark = "GPU" if speedup > 1 else "cpu"
                cells.append(f"{speedup:5.2f}x {mark}")
            rows.append(cells)
    print(
        render_table(
            ["kernel"] + [p.name for p in PLATFORMS],
            rows,
            title="Offloading speedup across four GPU generations "
            "(benchmark datasets, 160-thread host)",
        )
    )
    print(
        "\nNote how low-intensity kernels (3dconv) flip from slowdown to "
        "speedup as interconnect\nand memory bandwidth grow, while "
        "cache-friendly hosts claw back the CORR kernels."
    )


if __name__ == "__main__":
    main()
