#!/usr/bin/env python3
"""Three tenants share one node through the multi-tenant offload service.

The legacy replay pipeline queues every launch behind one FIFO server,
so a CPU-bound request waits for a GPU-bound one and every transfer
serializes with every compute.  This walkthrough replays the identical
8,000-launch trace twice — once through that FIFO, once through the
offload service (`ReplayConfig.service=True`) — with a skewed tenant
mix (one heavy tenant, two light ones) and a fault storm in the middle,
and then compares what an operator cares about:

* the completion-latency tail, trace-wide and inside the storm;
* per-tenant p99s and the fairness ratio between the best- and
  worst-served tenant;
* what the service's extra machinery did: per-device queues, admission
  batching (shared H2D transfers), transfer/compute overlap.

Selection accuracy barely moves: the service changes *when* launches
run, never *what* the analytical model selects for them.  Everything is
on the simulated clock — same seed, same bytes, every run.  See
docs/ROBUSTNESS.md ("The multi-tenant offload service") for the full
machinery.
"""

from repro.machines import PLATFORM_P9_V100
from repro.replay import (
    ChaosSchedule,
    ChaosWindow,
    ReplayConfig,
    ReplayEngine,
    ServiceConfig,
    WorkloadConfig,
    score_run,
)

STORM = ChaosWindow(
    name="midday-storm",
    kind="fault-storm",
    start_s=2.0,
    stop_s=3.0,
    probability=0.9,
)

WORKLOAD = WorkloadConfig(
    launches=8_000,
    seed=7,
    mean_interarrival_s=6e-4,
    tenants=3,
    tenant_weights=(0.7, 0.2, 0.1),  # one heavy tenant crowding two light ones
)


def _replay(service: bool):
    config = ReplayConfig(
        platform=PLATFORM_P9_V100,
        workload=WORKLOAD,
        chaos=ChaosSchedule(windows=(STORM,), seed=7),
        service=service,
        service_config=ServiceConfig(),
    )
    run = ReplayEngine(config).run()
    return run, score_run(run, recovery_margin_s=STORM.duration_s)


def main() -> None:
    print(
        f"replaying {WORKLOAD.launches} launches x 2 (legacy FIFO, then the "
        f"offload service) on {PLATFORM_P9_V100.name}"
    )
    print(f"tenant shares {WORKLOAD.tenant_weights}, storm over "
          f"[{STORM.start_s:g}s, {STORM.stop_s:g}s) simulated")

    legacy_run, legacy = _replay(service=False)
    service_run, svc = _replay(service=True)

    print("\n=== the tail (same trace, two queueing models) ===")
    print(f"{'':24}{'legacy FIFO':>14}{'service':>14}")
    print(f"{'completion p50':24}{legacy.completion_p50_s:>13.4f}s"
          f"{svc.completion_p50_s:>13.4f}s")
    print(f"{'completion p99':24}{legacy.completion_p99_s:>13.4f}s"
          f"{svc.completion_p99_s:>13.4f}s")
    print(f"{'storm-window p99':24}{legacy.chaos_completion_p99_s:>13.4f}s"
          f"{svc.chaos_completion_p99_s:>13.4f}s")
    print(f"{'steady accuracy':24}{legacy.steady_accuracy:>13.2%} "
          f"{svc.steady_accuracy:>13.2%}")

    print("\n=== per-tenant tails (service run) ===")
    for t in svc.tenants:
        print(
            f"tenant {t.tenant:10} {t.launches:5} launches   "
            f"p50 {t.latency_p50_s:.4f}s   p95 {t.latency_p95_s:.4f}s   "
            f"p99 {t.latency_p99_s:.4f}s"
        )
    print(f"fairness (max/min tenant p99): {svc.fairness_p99:.3f}")

    print("\n=== what the service machinery did ===")
    snap = service_run.queue.snapshot()
    for name, lane in snap["lanes"].items():
        print(
            f"{name:4} lane: {lane['admitted']} served on "
            f"{lane['servers']} servers, max depth {lane['max_depth']}, "
            f"{lane['batches']} batches, "
            f"{lane['transfers_waived']} H2D transfers waived"
        )
    print(
        "\nThe FIFO twin funnels all three tenants through one server, so\n"
        "the storm's retries stall everyone behind the sick device.  The\n"
        "service keeps the host lane flowing, overlaps H2D with compute on\n"
        "the accelerator lane, and batches same-kernel arrivals onto one\n"
        "transfer — the tail shrinks while the *selections* stay put."
    )


if __name__ == "__main__":
    main()
