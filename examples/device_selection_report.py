#!/usr/bin/env python3
"""Run the whole Polybench suite through the offloading runtime.

Produces a per-kernel decision report for one platform and dataset mode —
the end-user view of the framework: what ran where, what the model
believed, and what it cost — plus the suite-level policy comparison.
"""

import argparse

from repro.machines import platform_by_name
from repro.polybench import all_kernel_cases
from repro.runtime import AlwaysGPU, ModelGuided, OffloadingRuntime, Oracle
from repro.util import geomean, render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--platform", default="p9-v100", help="p8-k80 | p9-v100")
    parser.add_argument("--mode", default="benchmark", help="test | benchmark")
    parser.add_argument(
        "--threads", type=int, default=None, help="host team size (default: all)"
    )
    args = parser.parse_args()

    platform = platform_by_name(args.platform)
    runtime = OffloadingRuntime(
        platform, policy=ModelGuided(), num_threads=args.threads
    )

    rows = []
    records = []
    for case in all_kernel_cases(args.mode):
        runtime.compile_region(case.region)
        rec = runtime.launch(case.name, case.env)
        records.append(rec)
        rows.append(
            [
                case.name,
                f"{rec.cpu_seconds * 1e3:.2f}",
                f"{rec.gpu_seconds * 1e3:.2f}",
                f"{rec.predicted_speedup:.2f}x",
                rec.target,
                "ok" if rec.decision_correct else "MISS",
            ]
        )
    print(
        render_table(
            ["kernel", "cpu (ms)", "gpu (ms)", "predicted", "chosen", ""],
            rows,
            title=(
                f"Device selection on {platform.name}, {args.mode} datasets, "
                f"{args.threads or platform.host.hw_threads}-thread host"
            ),
        )
    )

    correct = sum(r.decision_correct for r in records)
    print(f"\ndecision accuracy: {correct}/{len(records)}")
    for name, seconds in (
        ("always-gpu", [r.gpu_seconds for r in records]),
        ("model-guided", [r.executed_seconds for r in records]),
        ("oracle", [r.oracle_seconds for r in records]),
    ):
        speedups = [c.cpu_seconds / s for c, s in zip(records, seconds)]
        print(f"{name:13s}: geomean speedup over host {geomean(speedups):.2f}x")


if __name__ == "__main__":
    main()
