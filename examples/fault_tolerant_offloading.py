#!/usr/bin/env python3
"""Fault-tolerant offloading: retries, fallback, and the circuit breaker.

A production selector must keep serving launches while the accelerator
misbehaves (docs/ROBUSTNESS.md).  This walkthrough drives the same
benchmark-size GEMM through two degraded environments:

1. a *flaky* interconnect losing 25% of DMAs — retries with (simulated)
   exponential backoff absorb most faults, and the health penalty starts
   steering the model-guided selector toward the host;
2. a *dead* GPU — every launch still completes via host fallback, and the
   circuit breaker stops routing to the card after N consecutive
   failures, probing it again only after a cooldown.

Everything is deterministic: same seed, same faults, no real sleeps.
"""

from repro.machines import PLATFORM_P9_V100
from repro.polybench import benchmark_by_name
from repro.runtime import ModelGuided, OffloadingRuntime, scenario_by_name


def drive(title: str, scenario: str, launches: int) -> None:
    runtime = OffloadingRuntime(
        PLATFORM_P9_V100,
        policy=ModelGuided(),
        injector=scenario_by_name(scenario, seed=4),
    )
    (gemm,) = benchmark_by_name("gemm").build()
    runtime.compile_region(gemm)
    env = benchmark_by_name("gemm").env("benchmark")

    print(f"\n=== {title} ===")
    print(f"{'#':>3} {'wanted':>7} {'ran on':>7} {'tries':>5} "
          f"{'faults':>6} {'fallback':>18} {'penalty':>8} {'breaker':>9}")
    for i in range(launches):
        rec = runtime.launch("gemm", env)
        print(
            f"{i:>3} {rec.requested_target:>7} {rec.target:>7} "
            f"{rec.attempts:>5} {len(rec.fault_events):>6} "
            f"{rec.fallback or '-':>18} {runtime.health.penalty():>8.2f} "
            f"{runtime.health.breaker.state.value:>9}"
        )
    h = runtime.health
    print(
        f"device health: {h.successes} ok / {h.failures} failed, "
        f"faults by type {h.fault_counts or '{}'}, "
        f"{runtime.clock.now * 1e3:.1f} ms simulated backoff"
    )


def main() -> None:
    print("fault-tolerant offloading on", PLATFORM_P9_V100.name)
    drive("flaky interconnect (25% DMA loss)", "flaky-transfer", 10)
    drive("dead GPU (every attempt fails)", "dead-gpu", 10)
    print(
        "\nNote the dead-GPU run: the breaker opens after 3 consecutive "
        "failures,\nlaunches keep completing on the host, and the card is "
        "re-probed once per\ncooldown window (half-open) in case it comes "
        "back."
    )


if __name__ == "__main__":
    main()
