#!/usr/bin/env python3
"""Profile-guided refinement of the 50%-branch abstraction (§IV.B).

The static analysis assumes every conditional executes half the time.  For
data-dependent branches that assumption can be wildly wrong — this example
builds a thresholding kernel whose guarded work runs for only a small
fraction of elements, profiles it on a small training input, and shows the
instruction loadout (and therefore both models) correcting themselves.
"""

import numpy as np

from repro.analysis import ProgramAttributeDatabase, extract_loadout, nest_trips
from repro.ir import Region, cmp, sqrt
from repro.machines import PLATFORM_P9_V100
from repro.models import predict_both
from repro.profiling import collect_profile, profiled_loadout
from repro.sim import allocate_arrays


def build_outlier_kernel() -> Region:
    """Expensive per-element work guarded by a rarely-true condition."""
    r = Region("outliers")
    n, m = r.param_tuple("n", "m")
    A = r.array("A", (n, m))
    out = r.array("out", (n,), inout=True)
    t = r.scalar("t")
    with r.parallel_loop("i", n) as i:
        with r.if_(cmp("gt", A[i, 0], t)):
            acc = r.local("acc", 0.0)
            with r.loop("j", m) as j:
                r.assign(acc, acc + sqrt(A[i, j]) * A[i, j])
            r.store(out[i], acc)
    return r


def main() -> None:
    region = build_outlier_kernel()
    env = {"n": 100_000, "m": 2048}
    train_env = {"n": 512, "m": 64}
    threshold = 0.95  # only ~5% of rows qualify

    # --- profile on a small training input -------------------------------
    arrays = allocate_arrays(region, train_env, seed=0)
    profile = collect_profile(region, train_env, {"t": threshold}, arrays=arrays)
    if_stmt = region.body[0].body[0]
    print(
        f"training run: branch taken "
        f"{profile.taken_fraction(if_stmt):.1%} of the time "
        f"(static abstraction assumes 50%)"
    )

    # --- loadout with and without the profile ----------------------------
    static = extract_loadout(region, nest_trips(region, env, default=128))
    profiled = profiled_loadout(region, profile, env)
    print(f"static   loadout: {static.total_insts:12,.0f} insts / work item")
    print(f"profiled loadout: {profiled.total_insts:12,.0f} insts / work item")

    # --- effect on the predictions ----------------------------------------
    db = ProgramAttributeDatabase()
    bound = db.compile_region(region).bind(env)
    for label, loadout in (("50% abstraction", static), ("profiled", profiled)):
        import dataclasses

        patched = dataclasses.replace(bound, loadout=loadout)
        sel = predict_both(patched, PLATFORM_P9_V100, num_threads=4)
        print(
            f"{label:16s}: pred cpu {sel.cpu.seconds * 1e3:9.3f} ms, "
            f"pred gpu {sel.gpu.seconds * 1e3:9.3f} ms -> {sel.winner.upper()}"
        )


if __name__ == "__main__":
    main()
