#!/usr/bin/env python3
"""Traffic-scale replay: a seeded rush of launches through one fault storm.

The experiments sweep the kernel grid uniformly; production traffic does
not.  This walkthrough generates a 10,000-launch seeded trace (Zipf
kernel popularity, bursty arrivals, mixed dataset sizes), replays it
through the model-guided offloading runtime behind a bounded admission
queue, and opens a ninety-percent fault storm over a two-second window
in the middle of the run.  The recovery report at the end answers the
questions an operator would ask:

* did the storm leak into the calm stretches?  (steady-state accuracy
  vs. the overall rate)
* how fast did the stack notice, and how fast did it heal?  (time to
  detect / time to recover for the window)
* what did dispatch cost at the tails?  (p50/p99 overhead)

Everything runs on the simulated clock — same seed, same storm, same
bytes every time.  See docs/ROBUSTNESS.md for the full machinery.
"""

from repro.machines import PLATFORM_P9_V100
from repro.replay import (
    AdmissionConfig,
    ChaosSchedule,
    ChaosWindow,
    ReplayConfig,
    ReplayEngine,
    WorkloadConfig,
    score_run,
)

STORM = ChaosWindow(
    name="midday-storm",
    kind="fault-storm",
    start_s=6.0,
    stop_s=10.0,
    probability=0.9,
)


def main() -> None:
    config = ReplayConfig(
        platform=PLATFORM_P9_V100,
        workload=WorkloadConfig(launches=10_000, seed=11, mean_interarrival_s=2e-3),
        chaos=ChaosSchedule(windows=(STORM,), seed=11),
        admission=AdmissionConfig(capacity=64, policy="degrade"),
    )
    print(f"replaying {config.workload.launches} launches on {config.platform.name}")
    print(
        f"storm: {STORM.probability:.0%} accelerator faults over "
        f"[{STORM.start_s:g}s, {STORM.stop_s:g}s) simulated"
    )

    run = ReplayEngine(config).run()
    # launches that started inside the window, or within one window
    # length after it, are the recovery transient — not steady state
    score = score_run(run, recovery_margin_s=STORM.duration_s)

    print("\n=== trace ===")
    bursts = sum(1 for r in run.requests if r.burst)
    print(f"requests        {score.requests} ({bursts} in burst phases)")
    print(f"horizon         {score.horizon_s:.2f} s simulated")
    print(f"outcomes        {run.outcome_counts()}")
    print(f"queue           {run.queue.snapshot()}")

    print("\n=== selection ===")
    print(f"overall accuracy       {score.overall_accuracy:.2%}")
    print(
        f"steady-state accuracy  {score.steady_accuracy:.2%} "
        f"over {score.steady_launches} launches outside the storm"
    )
    faulted = [r for r in run.records if r.fault_events]
    backoff = sum(r.overhead_seconds for r in faulted)
    print(
        f"retry backoff          p99 {score.overhead_p99_s * 1e3:.2f} ms "
        f"(zero for the {score.launches - len(faulted)} clean launches; "
        f"{backoff * 1e3:.1f} ms total across {len(faulted)} faulted ones)"
    )

    print("\n=== recovery report ===")
    w = score.window(STORM.name)
    print(f"fault events    {score.fault_events} injected, {score.fallbacks} fallbacks")
    print(f"time to detect  {w.ttd_s * 1e3:.1f} ms after the window opened")
    print(f"time to recover {w.ttr_s * 1e3:.1f} ms after it closed")
    health = run.runtime.health
    print(
        f"device health   penalty {health.penalty():.2f}, "
        f"breaker {health.breaker.state.value} at the horizon"
    )
    print(
        "\nThe storm is invisible outside its own window: retries and host\n"
        "fallbacks absorb the faults, the health penalty steers borderline\n"
        "kernels to the CPU while the card misbehaves, and simulated-time\n"
        "decay forgives it once the storm passes."
    )


if __name__ == "__main__":
    main()
