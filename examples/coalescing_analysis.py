#!/usr/bin/env python3
"""IPDA in action: symbolic inter-thread strides and coalescing verdicts.

Reproduces the Section IV.C walkthrough — including the paper's
``A[max * a]`` example whose stride is the *symbolic unknown* ``[max]``,
resolved only at runtime — across a gallery of access patterns.
"""

from repro.ipda import analyze_region
from repro.ir import Region
from repro.machines import TESLA_V100


def gallery() -> list[tuple[Region, dict]]:
    """Kernels with characteristic access patterns and their bindings."""
    kernels = []

    # 1. unit stride: the textbook coalesced case
    r1 = Region("unit_stride")
    n = r1.param("n")
    x = r1.array("x", (n,))
    y = r1.array("y", (n,), output=True)
    with r1.parallel_loop("i", n) as i:
        r1.store(y[i], x[i] * 2.0)
    kernels.append((r1, {"n": 1 << 20}))

    # 2. the paper's example: A[max * a] — stride is the unknown [max]
    r2 = Region("paper_example")
    mx = r2.param("max")
    A = r2.array("A", (mx * mx,), output=True)
    with r2.parallel_loop("a", mx) as a:
        r2.store(A[mx.sym * a.sym], 1.0)
    kernels.append((r2, {"max": 1100}))

    # 3. row-major matrix walked by rows (stride-N across threads)
    r3 = Region("row_walk")
    n3 = r3.param("n")
    M = r3.array("M", (n3, n3))
    s = r3.array("s", (n3,), output=True)
    with r3.parallel_loop("i", n3) as i:
        acc = r3.local("acc", 0.0)
        with r3.loop("j", n3) as j:
            r3.assign(acc, acc + M[i, j])
        r3.store(s[i], acc)
    kernels.append((r3, {"n": 9600}))

    # 4. broadcast: every thread reads the same vector
    r4 = Region("broadcast")
    n4 = r4.param("n")
    M4 = r4.array("M", (n4, n4))
    v = r4.array("v", (n4,))
    out = r4.array("out", (n4,), output=True)
    with r4.parallel_loop("i", n4) as i:
        acc = r4.local("acc", 0.0)
        with r4.loop("j", n4) as j:
            r4.assign(acc, acc + M4[i, j] * v[j])
        r4.store(out[i], acc)
    kernels.append((r4, {"n": 4096}))

    return kernels


def main() -> None:
    gpu = TESLA_V100
    for region, env in gallery():
        result = analyze_region(region)
        print(f"=== {region.name} (band: {', '.join(result.band_vars)}) ===")
        for acc in result.accesses:
            kind = "store" if acc.is_store else "load "
            print(
                f"  {kind} {acc.access.array.name:4s} "
                f"IPD_th = {acc.thread_stride!r}"
            )
        bound = result.bind(env, sector_bytes=gpu.sector_bytes)
        for b in bound.accesses:
            kind = "store" if b.stride.is_store else "load "
            print(
                f"  bound {b.stride.access.array.name:4s} "
                f"stride={b.thread_stride_elems:>6} elems -> "
                f"{b.coalescing.value:12s} "
                f"{b.transactions_per_access:2d} transactions/warp"
                + ("  [false-sharing risk on CPU]" if b.false_sharing_risk else "")
            )
        coal, uncoal = bound.counts()
        print(f"  => #Coal_Mem_insts={coal}  #Uncoal_Mem_insts={uncoal}\n")


if __name__ == "__main__":
    main()
