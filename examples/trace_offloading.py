#!/usr/bin/env python3
"""Tracing the offloading pipeline: spans, metrics, Chrome trace export.

Attach a :class:`repro.obs.Tracer` and a :class:`repro.obs.MetricsRegistry`
to an :class:`~repro.runtime.OffloadingRuntime` and every stage of the
Figure 2 pipeline becomes visible: ``compile`` → ``analyse`` on the
compile side, ``launch`` → ``sim.cpu``/``sim.gpu`` → ``predict`` →
``dispatch`` per launch (docs/OBSERVABILITY.md).  A second, degraded run
under fault injection shows retries and fallbacks landing in the same
trace as instant events and counters.

Everything runs on the simulated clock, so the output is deterministic
and the produced ``trace_offloading.json`` is byte-identical across
runs.  Open it at https://ui.perfetto.dev or in chrome://tracing.
"""

from repro.machines import PLATFORM_P9_V100
from repro.obs import MetricsRegistry, Tracer, chrome_trace_json
from repro.polybench import benchmark_by_name
from repro.runtime import ModelGuided, OffloadingRuntime, scenario_by_name


def sweep(title: str, injector=None) -> tuple[Tracer, MetricsRegistry]:
    tracer = Tracer()
    metrics = MetricsRegistry()
    runtime = OffloadingRuntime(
        PLATFORM_P9_V100,
        policy=ModelGuided(),
        injector=injector,
        tracer=tracer,
        metrics=metrics,
    )
    print(f"\n=== {title} ===")
    for bench in ("gemm", "atax", "2dconv"):
        spec = benchmark_by_name(bench)
        env = spec.env("test")
        for region in spec.build():
            runtime.compile_region(region)
            rec = runtime.launch(region.name, env)
            print(f"  {region.name:<10} -> {rec.target:<4}"
                  f" (attempts={rec.attempts}, faults={len(rec.fault_events)})")
    return tracer, metrics


def show_tree(tracer: Tracer, limit: int = 12) -> None:
    print(f"\nfirst {limit} of {len(tracer)} spans:")
    for span in tracer.spans[:limit]:
        region = span.attrs.get("region", "")
        print(f"  {'  ' * span.depth}{span.name}"
              f"{f' [{region}]' if region else ''}"
              f"  ({span.duration} us)")


def show_metrics(metrics: MetricsRegistry) -> None:
    snap = metrics.snapshot()
    print("\ncounters:")
    for key, value in snap["counters"].items():
        print(f"  {key:<40} {value}")
    for key, hist in snap["histograms"].items():
        print(f"\n{key}: n={hist['count']}, mean |log10 err|="
              f"{hist['sum'] / hist['count']:.3f}")


def main() -> None:
    tracer, metrics = sweep("clean sweep (no faults)")
    show_tree(tracer)
    show_metrics(metrics)

    # the same pipeline under a flaky interconnect: retries and host
    # fallbacks appear as `fault` instants + fallbacks_total counters
    flaky_tracer, flaky_metrics = sweep(
        "degraded sweep (flaky transfers)",
        injector=scenario_by_name("flaky-transfer", seed=7),
    )
    faults = sum(
        v
        for k, v in flaky_metrics.snapshot()["counters"].items()
        if k.startswith("fault_events_total{")
    )
    print(f"\nfault instants recorded: {len(flaky_tracer.instants)}"
          f" (fault_events_total = {faults})")

    path = "trace_offloading.json"
    with open(path, "w") as fh:
        fh.write(chrome_trace_json(flaky_tracer, flaky_metrics) + "\n")
    print(f"wrote {path} — open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
