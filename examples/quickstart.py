#!/usr/bin/env python3
"""Quickstart: write a kernel, analyse it, and let the runtime pick a device.

Walks the full Figure-2 pipeline on a user-written kernel:

1. express an OpenMP-style parallel loop nest in the kernel IR DSL;
2. "compile" it — static analyses populate the Program Attribute Database;
3. reach the region at runtime with concrete sizes — the hybrid models
   predict both targets and the runtime dispatches to the winner;
4. inspect why: the MCA report and the IPDA coalescing verdicts.
"""

from repro.ir import Region, region_to_text
from repro.machines import PLATFORM_P9_V100
from repro.mca import analyze_region as mca_analyze
from repro.analysis import runtime_trips
from repro.runtime import ModelGuided, OffloadingRuntime


def build_saxpy_rows() -> Region:
    """y[i] += alpha * sum_j A[i][j] * x[j] — a row-sweep kernel."""
    r = Region("saxpy_rows")
    n, m = r.param_tuple("n", "m")
    A = r.array("A", (n, m))
    x = r.array("x", (m,))
    y = r.array("y", (n,), inout=True)
    alpha = r.scalar("alpha")
    with r.parallel_loop("i", n) as i:
        acc = r.local("acc", y[i])
        with r.loop("j", m) as j:
            r.assign(acc, acc + alpha * A[i, j] * x[j])
        r.store(y[i], acc)
    return r


def main() -> None:
    platform = PLATFORM_P9_V100
    print(platform.render())
    print()

    region = build_saxpy_rows()
    print(region_to_text(region))
    print()

    runtime = OffloadingRuntime(platform, policy=ModelGuided())
    runtime.compile_region(region)

    for n in (512, 2048, 8192, 16384):
        record = runtime.launch("saxpy_rows", {"n": n, "m": n})
        pred = record.prediction
        print(
            f"n={n:6d}: predicted cpu={pred.cpu.seconds * 1e3:9.3f} ms "
            f"gpu={pred.gpu.seconds * 1e3:9.3f} ms -> run on {record.target.upper()}"
            f"   (measured cpu={record.cpu_seconds * 1e3:9.3f} ms "
            f"gpu={record.gpu_seconds * 1e3:9.3f} ms; "
            f"{'correct' if record.decision_correct else 'WRONG'})"
        )

    print()
    report = mca_analyze(region, platform.host, runtime_trips({"n": 8192, "m": 8192}))
    print(report.render())


if __name__ == "__main__":
    main()
