#!/usr/bin/env python3
"""Selecting among a host and several attached accelerators (§II.A).

Figure 1 shows a host with multiple devices; OpenMP lets the system pick
any of them.  This example builds a node with both a V100 (NVLink) and a
K80 (PCIe) attached and lets the models route each Polybench kernel to the
host, the new card, or the old card — the old GPU still wins nothing, but
the *host* keeps several kernels, which is the paper's point.
"""

from repro.machines import (
    AcceleratorSlot,
    NVLINK2,
    PCIE3_X16,
    POWER9,
    Platform,
    TESLA_K80,
    TESLA_V100,
)
from repro.polybench import all_kernel_cases
from repro.runtime import MultiDeviceRuntime
from repro.util import render_table

DUAL = Platform(
    "P9 + V100/NVLink + K80/PCIe",
    POWER9,
    (
        AcceleratorSlot(TESLA_V100, NVLINK2),
        AcceleratorSlot(TESLA_K80, PCIE3_X16),
    ),
)


def main() -> None:
    runtime = MultiDeviceRuntime(DUAL)
    rows = []
    wins: dict[str, int] = {}
    correct = 0
    cases = all_kernel_cases("benchmark")
    for case in cases:
        runtime.compile_region(case.region)
        rec = runtime.launch(case.name, case.env)
        wins[rec.chosen] = wins.get(rec.chosen, 0) + 1
        correct += rec.decision_correct
        rows.append(
            [case.name]
            + [f"{o.measured_seconds * 1e3:.2f}" for o in rec.outcomes]
            + [rec.chosen.split(" via")[0], "ok" if rec.decision_correct else "MISS"]
        )
    headers = ["kernel"] + [
        o.device_name + " (ms)" for o in rec.outcomes
    ] + ["chosen", ""]
    print(render_table(headers, rows, title=f"Three-way selection on {DUAL.name}"))
    print(f"\ndecision accuracy vs three-way oracle: {correct}/{len(cases)}")
    for dev, count in sorted(wins.items(), key=lambda kv: -kv[1]):
        print(f"  {dev}: chosen for {count} kernels")


if __name__ == "__main__":
    main()
