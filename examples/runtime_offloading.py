#!/usr/bin/env python3
"""An application-shaped demo: adaptive offloading inside a running program.

Section V.B's motivating scenario: "a simple matrix multiplication kernel
makes little sense to accelerate with a GPU when operating on 16x16
matrices, but stands to benefit dramatically when matrices are very
large".  The same compiled region is launched over and over with growing
sizes; the runtime re-evaluates the models with each launch's values and
switches devices at the crossover — negligible decision overhead, no
profiling runs.
"""

import time

from repro.machines import PLATFORM_P9_V100
from repro.polybench import benchmark_by_name
from repro.runtime import ModelGuided, OffloadingRuntime


def main() -> None:
    # a 4-thread host team: fork/join does not drown the small launches
    runtime = OffloadingRuntime(
        PLATFORM_P9_V100, policy=ModelGuided(), num_threads=4
    )
    (gemm,) = benchmark_by_name("gemm").build()
    runtime.compile_region(gemm)

    print("adaptive GEMM offloading on", PLATFORM_P9_V100.name, "(4-thread host)")
    print(f"{'size':>8} {'pred cpu (ms)':>14} {'pred gpu (ms)':>14} "
          f"{'target':>7} {'actual win':>11} {'decision us':>12}")
    prev_target = None
    for n in (16, 64, 256, 512, 1024, 2048, 4096, 9600):
        env = {"ni": n, "nj": n, "nk": n}
        t0 = time.perf_counter()
        rec = runtime.launch("gemm", env)
        decision_us = (time.perf_counter() - t0) * 1e6
        actual = "gpu" if rec.gpu_seconds < rec.cpu_seconds else "cpu"
        flag = ""
        if prev_target is not None and rec.target != prev_target:
            flag = "  <-- crossover"
        prev_target = rec.target
        print(
            f"{n:>8} {rec.prediction.cpu.seconds * 1e3:>14.3f} "
            f"{rec.prediction.gpu.seconds * 1e3:>14.3f} {rec.target:>7} "
            f"{actual:>11} {decision_us:>12.0f}{flag}"
        )
    print(
        "\n(The 'decision us' column includes this prototype's Python "
        "overhead; the models\nthemselves are closed-form — the paper's "
        "point versus ML inference at runtime.)"
    )


if __name__ == "__main__":
    main()
