#!/usr/bin/env python3
"""Region lint walkthrough: catching a data race before it ships.

The selector assumes its input is a race-free parallel loop nest
(docs/LINT.md).  This walkthrough takes Polybench's 2DCONV stencil and
"optimises" it the way a hurried port often does — dropping the output
grid and writing the convolved value back **in place** — and shows the
linter catching the resulting cross-thread races that the analytical
models would happily mispredict over.  A `LintGate` then keeps the racy
variant off the GPU at dispatch time while leaving the correct kernel's
launch records bit-identical.
"""

from repro.ir import Region
from repro.lint import LintGate, lint_region
from repro.machines import PLATFORM_P9_V100
from repro.polybench import benchmark_by_name
from repro.runtime import ModelGuided, OffloadingRuntime


def build_conv2d_inplace() -> Region:
    """3x3 convolution writing back into the grid it reads: a race.

    Thread i stores A[i][j] while threads i-1 and i+1 are still reading
    it — the classic in-place stencil bug.  The bundled 2dconv kernel
    avoids it with the separate A -> B output grid.
    """
    r = Region("2dconv_inplace")
    ni, nj = r.param_tuple("ni", "nj")
    A = r.array("A", (ni, nj), inout=True)
    with r.parallel_loop("i", ni - 2, start=1) as i:
        with r.parallel_loop("j", nj - 2, start=1) as j:
            r.store(
                A[i, j],
                0.2 * A[i - 1, j - 1] - 0.3 * A[i + 0, j - 1]
                + 0.5 * A[i - 1, j + 0] + 0.6 * A[i + 0, j + 0]
                - 0.8 * A[i - 1, j + 1] - 0.9 * A[i + 0, j + 1],
            )
    return r


def main() -> None:
    spec = benchmark_by_name("2dconv")
    env = spec.env("test")

    print("=== 1. the bundled (correct) kernel lints clean ===")
    (clean,) = spec.build()
    print(lint_region(clean, env=env, platform=PLATFORM_P9_V100).render_text())

    print("\n=== 2. the in-place 'optimisation' does not ===")
    racy = build_conv2d_inplace()
    print(lint_region(racy, env=env, platform=PLATFORM_P9_V100).render_text())

    print("\n=== 3. the gate keeps the racy variant off the GPU ===")
    runtime = OffloadingRuntime(
        PLATFORM_P9_V100, policy=ModelGuided(), lint_gate=LintGate(mode="host")
    )
    runtime.compile_region(racy)
    rec = runtime.launch("2dconv_inplace", env)
    print(
        f"policy wanted {rec.requested_target}, ran on {rec.target} "
        f"(fallback={rec.fallback!r}, blocking codes={rec.lint.codes})"
    )

    runtime.compile_region(clean)
    rec = runtime.launch(clean.name, env)
    print(
        f"clean kernel untouched: ran on {rec.target}, "
        f"lint verdict in record: {rec.lint!r}"
    )


if __name__ == "__main__":
    main()
