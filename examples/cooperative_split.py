#!/usr/bin/env python3
"""Cooperative CPU+GPU execution: how much work should each side take?

The paper's introduction motivates device selection with cooperative
schemes (Valero-Lara et al.): sometimes the best answer is not "CPU or
GPU" but "both".  With the analytical models in hand, the optimal static
split of a parallel band is a one-dimensional sweep — this example finds
it for several kernels and shows where cooperation pays and where the
transfer bill makes it pointless.
"""

from repro.analysis import ProgramAttributeDatabase
from repro.calibrate import fit_model_calibration
from repro.machines import PLATFORM_P9_V100
from repro.models import predict_split
from repro.polybench import benchmark_by_name
from repro.util import render_table


def main() -> None:
    platform = PLATFORM_P9_V100
    cal = fit_model_calibration(platform)
    db = ProgramAttributeDatabase()

    rows = []
    for bench in ("gemm", "2dconv", "mvt", "syrk"):
        spec = benchmark_by_name(bench)
        env = spec.env("benchmark")
        for region in spec.build():
            bound = db.compile_region(region).bind(env)
            split = predict_split(bound, platform, calibration=cal)
            rows.append(
                [
                    region.name,
                    f"{split.cpu_only_seconds * 1e3:.1f}",
                    f"{split.gpu_only_seconds * 1e3:.1f}",
                    f"{split.gpu_fraction:.0%}",
                    f"{split.makespan_seconds * 1e3:.1f}",
                    f"{split.speedup_over_best_single:.2f}x",
                    "yes" if split.worthwhile else "no",
                ]
            )
    print(
        render_table(
            [
                "kernel",
                "cpu-only (ms)",
                "gpu-only (ms)",
                "best GPU share",
                "split makespan (ms)",
                "vs best single",
                "split worth it?",
            ],
            rows,
            title=f"Predicted cooperative splits on {platform.name} "
            "(benchmark datasets)",
        )
    )


if __name__ == "__main__":
    main()
