"""Tests for non-rectangular (triangular) loop nests.

Polybench's COVAR/CORR originally use ``for j2 in j1..m`` loops; the suite
port rectangularizes them (DESIGN.md), but the framework itself supports
triangular nests through nest-aware midpoint trip resolution.
"""

import numpy as np
import pytest

from repro.analysis import ProgramAttributeDatabase, nest_trips
from repro.ir import Loop, Region, validate_region
from repro.machines import PLATFORM_P9_V100, POWER9, TESLA_V100
from repro.runtime import ModelGuided, OffloadingRuntime
from repro.sim import (
    allocate_arrays,
    execute_region,
    simulate_cpu,
    simulate_gpu_kernel,
)
from repro.symbolic import EvalError


def build_triangular(name="tri") -> Region:
    """symmat[j1][j2] = sum_i data[i][j1]*data[i][j2] for j2 >= j1."""
    r = Region(name)
    n, m = r.param_tuple("n", "m")
    data = r.array("data", (n, m))
    sym = r.array("symmat", (m, m), output=True)
    with r.parallel_loop("j1", m) as j1:
        with r.loop("j2", m - j1.sym, start=j1) as j2:
            acc = r.local("acc", 0.0)
            with r.loop("i", n) as i:
                r.assign(acc, acc + data[i, j1] * data[i, j2])
            r.store(sym[j1, j2], acc)
    return r


def _loops(region):
    band = region.body[0]
    j2 = band.body[0]
    i = j2.body[1]
    return band, j2, i


class TestNestTrips:
    def test_rectangular_matches_runtime(self):
        from tests.kernels import build_gemm

        region = build_gemm()
        env = {"ni": 100, "nj": 200, "nk": 300}
        trips = nest_trips(region, env)
        j_loop = region.body[0].body[0]
        k_loop = j_loop.body[1]
        assert trips(j_loop) == 200.0
        assert trips(k_loop) == 300.0

    def test_triangular_midpoint(self):
        region = build_triangular()
        band, j2, i = _loops(region)
        trips = nest_trips(region, {"n": 64, "m": 100})
        assert trips(band) == 100.0
        # j1 bound at midpoint 50: average j2 trips = m - 50
        assert trips(j2) == pytest.approx(50.0)
        assert trips(i) == 64.0

    def test_strict_mode_raises_on_missing_params(self):
        region = build_triangular()
        with pytest.raises(EvalError):
            nest_trips(region, {"n": 64})  # m unbound

    def test_default_fallback(self):
        region = build_triangular()
        band, j2, i = _loops(region)
        trips = nest_trips(region, {}, default=128)
        assert trips(band) == 128.0
        assert trips(i) == 128.0

    def test_validates(self):
        validate_region(build_triangular())


class TestTriangularExecution:
    def test_functional_matches_numpy(self):
        region = build_triangular()
        env = {"n": 6, "m": 5}
        arrays = allocate_arrays(region, env, seed=4)
        execute_region(region, arrays, {}, env)
        d = arrays["data"].astype(np.float64)
        full = d.T @ d
        got = arrays["symmat"]
        for j1 in range(5):
            for j2 in range(5):
                if j2 >= j1:
                    assert got[j1, j2] == pytest.approx(full[j1, j2], rel=1e-4)
                else:
                    assert got[j1, j2] == 0.0

    def test_simulators_accept_triangular(self):
        region = build_triangular()
        env = {"n": 1024, "m": 1024}
        cpu = simulate_cpu(region, POWER9, env)
        gpu = simulate_gpu_kernel(region, TESLA_V100, env)
        assert cpu.seconds > 0 and gpu.seconds > 0

    def test_triangular_is_half_the_rectangular_work(self):
        tri = build_triangular("tri_h")
        env = {"n": 2048, "m": 2048}
        tri_time = simulate_cpu(tri, POWER9, env).seconds

        rect = Region("rect_h")
        n, m = rect.param_tuple("n", "m")
        data = rect.array("data", (n, m))
        sym = rect.array("symmat", (m, m), output=True)
        with rect.parallel_loop("j1", m) as j1:
            with rect.loop("j2", m) as j2:
                acc = rect.local("acc", 0.0)
                with rect.loop("i", n) as i:
                    rect.assign(acc, acc + data[i, j1] * data[i, j2])
                rect.store(sym[j1, j2], acc)
        rect_time = simulate_cpu(rect, POWER9, env).seconds
        assert tri_time == pytest.approx(rect_time / 2, rel=0.25)

    def test_full_runtime_pipeline(self):
        region = build_triangular("tri_rt")
        rt = OffloadingRuntime(PLATFORM_P9_V100, policy=ModelGuided())
        rt.compile_region(region)
        rec = rt.launch("tri_rt", {"n": 1024, "m": 1024})
        assert rec.target in ("cpu", "gpu")
        assert rec.prediction is not None

    def test_attribute_db_binds_triangular(self):
        db = ProgramAttributeDatabase()
        region = build_triangular("tri_db")
        attrs = db.compile_region(region)
        bound = attrs.bind({"n": 512, "m": 512})
        # loadout reflects the average (triangular) trip counts
        rect_loads = 512 * 512 * 2
        assert bound.loadout.load_insts == pytest.approx(rect_loads / 2, rel=0.1)
