"""Functional correctness of every Polybench kernel against numpy oracles.

Each benchmark's kernels are interpreted in program order by the reference
executor on small random inputs and compared against the numpy reference.
This validates the IR ports themselves — everything downstream (features,
IPDA, models, simulators) analyses these exact regions.
"""

import numpy as np
import pytest

from repro.ir import validate_region
from repro.polybench import SUITE, all_kernel_cases, benchmark_by_name, kernel_count
from repro.sim import allocate_arrays, execute_region

SMALL = 8  # extent used for every size parameter in correctness runs


def _small_env(spec):
    return {p: SMALL for p in spec.sizes["test"]}


def _small_scalars(spec, env):
    scalars = spec.scalars_for(env)
    # float_n tracks the dataset size parameter
    if "float_n" in scalars:
        scalars["float_n"] = float(env["n"])
    return scalars


@pytest.mark.parametrize("spec", SUITE, ids=lambda s: s.name)
def test_benchmark_matches_numpy_reference(spec):
    env = _small_env(spec)
    scalars = _small_scalars(spec, env)
    regions = spec.build()

    # one shared array pool, keyed by name, seeded deterministically
    pool: dict[str, np.ndarray] = {}
    rng = np.random.default_rng(42)
    for region in regions:
        for arr in region.arrays.values():
            if arr.name not in pool:
                shape = tuple(int(d.evaluate(env)) for d in arr.shape)
                pool[arr.name] = rng.uniform(0.1, 1.0, size=shape).astype(
                    arr.dtype.np
                )
    expected = {k: v.copy() for k, v in pool.items()}

    for region in regions:
        execute_region(region, pool, scalars, env)
    spec.reference(expected, scalars)

    for name in pool:
        np.testing.assert_allclose(
            pool[name],
            expected[name],
            rtol=2e-3,
            atol=1e-5,
            err_msg=f"{spec.name}: array {name!r} diverges from reference",
        )


@pytest.mark.parametrize("spec", SUITE, ids=lambda s: s.name)
def test_benchmark_regions_validate(spec):
    for region in spec.build():
        validate_region(region)


class TestSuiteShape:
    def test_kernel_count_is_24(self):
        assert kernel_count() == 24

    def test_thirteen_benchmarks(self):
        assert len(SUITE) == 13

    def test_region_names_unique(self):
        names = [r.name for spec in SUITE for r in spec.build()]
        assert len(names) == len(set(names))

    def test_lookup_by_name(self):
        assert benchmark_by_name("GEMM").name == "gemm"
        with pytest.raises(KeyError):
            benchmark_by_name("nope")

    def test_modes(self):
        cases_t = all_kernel_cases("test")
        cases_b = all_kernel_cases("benchmark")
        assert len(cases_t) == len(cases_b) == 24
        with pytest.raises(KeyError):
            all_kernel_cases("huge")

    def test_dataset_sizes(self):
        gemm = benchmark_by_name("gemm")
        assert gemm.env("test")["ni"] == 1100
        assert gemm.env("benchmark")["ni"] == 9600
        conv3 = benchmark_by_name("3dconv")
        assert conv3.env("test")["ni"] == 256
        assert conv3.env("benchmark")["ni"] == 640

    def test_corr_has_four_kernels(self):
        assert len(benchmark_by_name("corr").build()) == 4

    def test_covar_has_three_kernels(self):
        assert len(benchmark_by_name("covar").build()) == 3

    def test_kernel_case_metadata(self):
        case = benchmark_by_name("atax").kernels("test")[1]
        assert case.name == "atax_k2"
        assert case.mode == "test"
        assert case.env["nx"] == 1100


def test_allocate_arrays_shapes():
    spec = benchmark_by_name("gemm")
    (region,) = spec.build()
    env = {"ni": 4, "nj": 5, "nk": 6}
    arrays = allocate_arrays(region, env)
    assert arrays["A"].shape == (4, 6)
    assert arrays["B"].shape == (6, 5)
    assert arrays["C"].shape == (4, 5)
    assert arrays["C"].dtype == np.float32
