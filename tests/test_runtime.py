"""Unit tests for the offloading runtime, devices and policies."""

import pytest

from repro.machines import PLATFORM_P8_K80, PLATFORM_P9_V100
from repro.runtime import (
    AcceleratorDevice,
    AlwaysCPU,
    AlwaysGPU,
    HostDevice,
    ModelGuided,
    OffloadingRuntime,
    Oracle,
    policy_by_name,
)

from .kernels import build_gemm, build_vecadd

ENV = {"ni": 512, "nj": 512, "nk": 512}


class TestDevices:
    def test_host_device(self):
        dev = HostDevice(PLATFORM_P9_V100.host, num_threads=4)
        rec = dev.execute(build_gemm(), ENV)
        assert rec.kind == "cpu"
        assert rec.seconds > 0
        assert "x4" in dev.name

    def test_accelerator_device(self):
        dev = AcceleratorDevice(PLATFORM_P9_V100.gpu, PLATFORM_P9_V100.bus)
        rec = dev.execute(build_gemm(), ENV)
        assert rec.kind == "gpu"
        kernel, xfer = rec.detail
        assert rec.seconds == pytest.approx(kernel.seconds + xfer.total_seconds)


class TestPolicies:
    def test_policy_registry(self):
        assert isinstance(policy_by_name("always-gpu"), AlwaysGPU)
        assert isinstance(policy_by_name("ALWAYS-CPU"), AlwaysCPU)
        assert isinstance(policy_by_name("model-guided"), ModelGuided)
        assert isinstance(policy_by_name("oracle"), Oracle)
        with pytest.raises(ValueError, match="always-cpu.*model-guided.*oracle"):
            policy_by_name("random")

    def test_fixed_policies(self):
        gpu_pol = AlwaysGPU()
        cpu_pol = AlwaysCPU()
        assert gpu_pol.choose(None, None, num_threads=None,
                              sim_cpu_seconds=1, sim_gpu_seconds=2)[0] == "gpu"
        assert cpu_pol.choose(None, None, num_threads=None,
                              sim_cpu_seconds=1, sim_gpu_seconds=2)[0] == "cpu"

    def test_oracle_picks_faster(self):
        pol = Oracle()
        assert pol.choose(None, None, num_threads=None,
                          sim_cpu_seconds=2.0, sim_gpu_seconds=1.0)[0] == "gpu"
        assert pol.choose(None, None, num_threads=None,
                          sim_cpu_seconds=1.0, sim_gpu_seconds=2.0)[0] == "cpu"

    def test_model_guided_caches_calibration(self):
        rt = OffloadingRuntime(PLATFORM_P9_V100, policy=ModelGuided())
        rt.compile_region(build_gemm())
        rt.launch("gemm", ENV)
        rt.launch("gemm", {"ni": 256, "nj": 256, "nk": 256})
        assert len(rt.policy._calibrations) == 1


class TestRuntime:
    def test_launch_record_fields(self):
        rt = OffloadingRuntime(PLATFORM_P9_V100, policy=ModelGuided())
        rt.compile_region(build_gemm())
        rec = rt.launch("gemm", ENV)
        assert rec.region_name == "gemm"
        assert rec.target in ("cpu", "gpu")
        assert rec.policy_name == "model-guided"
        assert rec.prediction is not None
        assert rec.executed_seconds in (rec.cpu_seconds, rec.gpu_seconds)
        assert rec.oracle_seconds == min(rec.cpu_seconds, rec.gpu_seconds)
        assert rec.true_speedup == pytest.approx(
            rec.cpu_seconds / rec.gpu_seconds
        )

    def test_launch_unknown_region(self):
        rt = OffloadingRuntime(PLATFORM_P9_V100)
        with pytest.raises(KeyError):
            rt.launch("never-compiled", {})

    def test_oracle_runtime_always_correct(self):
        rt = OffloadingRuntime(PLATFORM_P8_K80, policy=Oracle())
        rt.compile_region(build_gemm())
        rt.compile_region(build_vecadd())
        for name, env in (("gemm", ENV), ("vecadd", {"n": 1 << 20})):
            rec = rt.launch(name, env)
            assert rec.decision_correct
            assert rec.executed_seconds == rec.oracle_seconds

    def test_always_policies_have_no_prediction(self):
        rt = OffloadingRuntime(PLATFORM_P9_V100, policy=AlwaysGPU())
        rt.compile_region(build_vecadd())
        rec = rt.launch("vecadd", {"n": 4096})
        assert rec.prediction is None
        assert rec.target == "gpu"
        assert rec.predicted_speedup is None

    def test_num_threads_respected(self):
        rt4 = OffloadingRuntime(PLATFORM_P9_V100, policy=AlwaysCPU(), num_threads=4)
        rt160 = OffloadingRuntime(PLATFORM_P9_V100, policy=AlwaysCPU())
        for rt in (rt4, rt160):
            rt.compile_region(build_gemm())
        big = {"ni": 2048, "nj": 2048, "nk": 2048}
        assert rt4.launch("gemm", big).cpu_seconds > rt160.launch("gemm", big).cpu_seconds

    def test_same_launch_is_deterministic(self):
        rt = OffloadingRuntime(PLATFORM_P9_V100, policy=ModelGuided())
        rt.compile_region(build_gemm())
        a = rt.launch("gemm", ENV)
        b = rt.launch("gemm", ENV)
        assert a.cpu_seconds == b.cpu_seconds
        assert a.gpu_seconds == b.gpu_seconds
        assert a.target == b.target
