"""Round-trip tests for the textual region parser."""

import numpy as np
import pytest

from repro.ir import (
    ParseError,
    parse_index,
    parse_region,
    region_to_text,
    validate_region,
)
from repro.polybench import SUITE
from repro.sim import allocate_arrays, execute_region

from .kernels import (
    build_colwise,
    build_gemm,
    build_rowwise,
    build_strided_store,
    build_undeclared_reduction,
    build_vecadd,
    build_write_write_race,
)


def roundtrip(region):
    text = region_to_text(region)
    parsed = parse_region(text)
    validate_region(parsed)
    return parsed, text


class TestRoundTrip:
    def test_vecadd_fixed_point(self):
        parsed, text = roundtrip(build_vecadd())
        assert region_to_text(parsed) == text

    def test_gemm_fixed_point(self):
        parsed, text = roundtrip(build_gemm())
        assert region_to_text(parsed) == text

    def test_symbolic_stride_example(self):
        parsed, text = roundtrip(build_strided_store())
        assert region_to_text(parsed) == text

    @pytest.mark.parametrize("spec", SUITE, ids=lambda s: s.name)
    def test_every_polybench_kernel_roundtrips(self, spec):
        for region in spec.build():
            parsed, text = roundtrip(region)
            assert region_to_text(parsed) == text, region.name

    def test_parsed_region_executes_identically(self):
        original = build_gemm()
        parsed, _ = roundtrip(original)
        env = {"ni": 5, "nj": 4, "nk": 3}
        scalars = {"alpha": 1.5, "beta": 0.5}
        a1 = allocate_arrays(original, env, seed=11)
        a2 = {k: v.copy() for k, v in a1.items()}
        execute_region(original, a1, scalars, env)
        execute_region(parsed, a2, scalars, env)
        np.testing.assert_array_equal(a1["C"], a2["C"])

    def test_parsed_region_analyses_identically(self):
        from repro.ipda import analyze_region

        original = build_gemm()
        parsed, _ = roundtrip(original)
        env = {"ni": 64, "nj": 64, "nk": 64}
        assert (
            analyze_region(original).bind(env).counts()
            == analyze_region(parsed).bind(env).counts()
        )

    def test_conditional_roundtrips(self):
        from repro.ir import Region, cmp

        r = Region("cond")
        n = r.param("n")
        A = r.array("A", (n,), inout=True)
        with r.parallel_loop("i", n) as i:
            with r.if_(cmp("gt", A[i], 0.5)):
                r.store(A[i], 0.5)
        parsed, text = roundtrip(r)
        assert region_to_text(parsed) == text

    def test_select_and_sqrt_roundtrip(self):
        from repro.ir import Region, cmp, select, sqrt

        r = Region("sel")
        n = r.param("n")
        A = r.array("A", (n,), inout=True)
        eps = r.scalar("eps")
        with r.parallel_loop("i", n) as i:
            r.store(A[i], select(cmp("le", A[i], eps), 1.0, sqrt(A[i])))
        parsed, text = roundtrip(r)
        assert region_to_text(parsed) == text


class TestCanonicalFixpoint:
    """The printer's output is the cache's canonical form — it must be a
    parser fixpoint for *every* region we ship, broken fixtures included
    (the lint corpus flows through the same analysis cache)."""

    BUILDERS = [
        build_colwise,
        build_gemm,
        build_rowwise,
        build_strided_store,
        build_vecadd,
        build_undeclared_reduction,
        build_write_write_race,
    ]

    @pytest.mark.parametrize("build", BUILDERS, ids=lambda b: b.__name__)
    def test_fixture_fixed_point(self, build):
        # no validate_region here: the broken fixtures are *meant* to be
        # invalid, but they still must print/parse to a stable text
        region = build()
        text = region_to_text(region)
        assert region_to_text(parse_region(text)) == text

    @pytest.mark.parametrize("spec", SUITE, ids=lambda s: s.name)
    def test_polybench_double_roundtrip(self, spec):
        for region in spec.build():
            text = region_to_text(region)
            once = parse_region(text)
            twice = parse_region(region_to_text(once))
            assert region_to_text(twice) == text, region.name


class TestParseIndex:
    def test_roundtrips_region_index_exprs(self):
        from repro.ir.visit import memory_accesses

        for build in TestCanonicalFixpoint.BUILDERS:
            for acc in memory_accesses(build()):
                flat = acc.flat_index()
                assert parse_index(repr(flat)) == flat

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_index("[n] + 1 garbage")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_index("not an index %%")


class TestErrors:
    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_region("this is not a region")

    def test_store_to_undeclared_array(self):
        text = (
            "target region bad {\n"
            "  in f32 A[[n]]\n"
            "  parallel for (i = 0; i < 0 + [n]; i++) {\n"
            "    B[[i]] = 1;\n"
            "  }\n"
            "}"
        )
        with pytest.raises(ParseError):
            parse_region(text)

    def test_undefined_local_read(self):
        text = (
            "target region bad {\n"
            "  out f32 A[[n]]\n"
            "  parallel for (i = 0; i < 0 + [n]; i++) {\n"
            "    A[[i]] = %ghost.1;\n"
            "  }\n"
            "}"
        )
        with pytest.raises(ParseError):
            parse_region(text)

    def test_mismatched_loop_variable(self):
        text = (
            "target region bad {\n"
            "  out f32 A[[n]]\n"
            "  parallel for (i = 0; j < 0 + [n]; i++) {\n"
            "    A[[i]] = 1;\n"
            "  }\n"
            "}"
        )
        with pytest.raises(ParseError):
            parse_region(text)

    def test_unknown_dtype(self):
        with pytest.raises(ParseError):
            parse_region("target region r {\n  in f16 A[[n]]\n}")


class TestHandWritten:
    def test_kernel_authored_as_text(self):
        """Regions can be written as text directly, not only round-tripped."""
        text = """
        target region axpy {
          in f32 x[[n]]
          inout f32 y[[n]]
          scalar f32 a
          parallel for (i = 0; i < [n]; i++) {
            y[[i]] = (y[[i]] + (a * x[[i]]));
          }
        }
        """
        region = parse_region(text)
        validate_region(region)
        env = {"n": 16}
        arrays = allocate_arrays(region, env, seed=5)
        y0 = arrays["y"].copy()
        execute_region(region, arrays, {"a": 2.0}, env)
        np.testing.assert_allclose(
            arrays["y"], y0 + 2.0 * arrays["x"], rtol=1e-6
        )
