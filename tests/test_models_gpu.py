"""Unit tests for the Hong & Kim GPU model with the paper's extensions."""

import dataclasses

import pytest

from repro.analysis import ProgramAttributeDatabase
from repro.codegen import plan_gpu_launch
from repro.ipda import analyze_region
from repro.machines import NVLINK2, PCIE3_X16, TESLA_K80, TESLA_V100
from repro.models import (
    MWPCWPInputs,
    estimate_transfer,
    mwp_cwp,
    predict_gpu_time,
)

from .kernels import build_gemm, build_rowwise, build_vecadd


def _inputs(**kw):
    base = dict(
        n_active_warps=32.0,
        mem_latency=400.0,
        departure_delay=4.0,
        mem_cycles=400.0 * 100,
        comp_cycles=800.0,
        mem_insts=100.0,
        load_bytes_per_warp=128.0,
        active_sms=80,
    )
    base.update(kw)
    return MWPCWPInputs(**base)


class TestMWPCWP:
    def test_memory_bound_regime(self):
        res = mwp_cwp(_inputs(), TESLA_V100)
        assert res.case == "memory-bound"
        assert res.cwp >= res.mwp

    def test_compute_bound_regime(self):
        res = mwp_cwp(
            _inputs(comp_cycles=1e6, mem_cycles=400.0, mem_insts=1.0),
            TESLA_V100,
        )
        assert res.case == "compute-bound"
        # compute-bound wave: Mem_L + Comp x N
        assert res.exec_cycles_one_wave == pytest.approx(400.0 + 1e6 * 32, rel=0.01)

    def test_balanced_regime_when_n_small(self):
        res = mwp_cwp(_inputs(n_active_warps=2.0), TESLA_V100)
        assert res.case == "balanced"

    def test_mwp_capped_by_n(self):
        res = mwp_cwp(_inputs(n_active_warps=4.0), TESLA_V100)
        assert res.mwp <= 4.0

    def test_mwp_without_bw_is_latency_over_departure(self):
        res = mwp_cwp(_inputs(), TESLA_V100)
        assert res.mwp_without_bw == pytest.approx(100.0)

    def test_bandwidth_limits_mwp(self):
        # giant per-warp streams on every SM exhaust peak bandwidth; MWP is
        # clamped to the bandwidth bound (floored at one warp)
        res = mwp_cwp(_inputs(load_bytes_per_warp=4096.0), TESLA_V100)
        assert res.mwp_peak_bw < res.mwp_without_bw
        assert res.mwp == pytest.approx(max(1.0, res.mwp_peak_bw))

    def test_exec_cycles_positive(self):
        for n in (1, 2, 8, 64):
            res = mwp_cwp(_inputs(n_active_warps=float(n)), TESLA_V100)
            assert res.exec_cycles_one_wave > 0


class TestPredictGPUTime:
    def _predict(self, region, env, gpu=TESLA_V100, bus=NVLINK2, plan=None):
        db = ProgramAttributeDatabase()
        bound = db.compile_region(region).bind(env)
        plan = plan or plan_gpu_launch(bound.parallel_iterations, gpu)
        return predict_gpu_time(
            region.name,
            bound.loadout,
            bound.ipda,
            plan,
            gpu,
            bus,
            bound.bytes_to_device,
            bound.bytes_to_host,
        )

    def test_vecadd_fully_coalesced(self):
        pred = self._predict(build_vecadd(), {"n": 1 << 20})
        assert pred.uncoalesced_insts == 0
        assert pred.coalesced_insts == 3

    def test_rowwise_counts_uncoalesced(self):
        pred = self._predict(build_rowwise(), {"n": 4096})
        assert pred.uncoalesced_insts > 0  # the stride-n matrix walk

    def test_omp_rep_multiplies_cycles(self):
        region = build_vecadd()
        env = {"n": 1 << 22}
        db = ProgramAttributeDatabase()
        bound = db.compile_region(region).bind(env)
        plan = plan_gpu_launch(bound.parallel_iterations, TESLA_V100)
        base = predict_gpu_time(
            region.name, bound.loadout, bound.ipda, plan, TESLA_V100, NVLINK2,
            bound.bytes_to_device, bound.bytes_to_host,
        )
        doubled = predict_gpu_time(
            region.name, bound.loadout, bound.ipda,
            dataclasses.replace(plan, omp_rep=plan.omp_rep * 2),
            TESLA_V100, NVLINK2, bound.bytes_to_device, bound.bytes_to_host,
        )
        assert doubled.exec_cycles == pytest.approx(2 * base.exec_cycles)

    def test_transfer_included_in_total(self):
        pred = self._predict(build_gemm(), {"ni": 1024, "nj": 1024, "nk": 1024})
        assert pred.seconds == pytest.approx(
            pred.kernel_seconds + pred.launch_seconds + pred.transfer.total_seconds
        )

    def test_pcie_slower_than_nvlink(self):
        env = {"ni": 2048, "nj": 2048, "nk": 2048}
        nv = self._predict(build_gemm(), env, bus=NVLINK2)
        pc = self._predict(build_gemm(), env, bus=PCIE3_X16)
        assert pc.transfer.total_seconds > 4 * nv.transfer.total_seconds
        assert pc.kernel_seconds == nv.kernel_seconds  # bus only affects transfer

    def test_k80_slower_kernel_than_v100(self):
        env = {"n": 1 << 22}
        k80 = self._predict(build_vecadd(), env, gpu=TESLA_K80, bus=PCIE3_X16)
        v100 = self._predict(build_vecadd(), env, gpu=TESLA_V100, bus=NVLINK2)
        assert k80.kernel_seconds > v100.kernel_seconds

    def test_mismatched_ipda_rejected(self):
        region = build_gemm()
        env = {"ni": 64, "nj": 64, "nk": 64}
        db = ProgramAttributeDatabase()
        bound = db.compile_region(region).bind(env)
        other = analyze_region(build_vecadd()).bind({"n": 64})
        plan = plan_gpu_launch(64, TESLA_V100)
        with pytest.raises(ValueError):
            predict_gpu_time(
                "gemm", bound.loadout, other, plan, TESLA_V100, NVLINK2, 0, 0
            )


class TestTransferModel:
    def test_estimate_adds_directions(self):
        est = estimate_transfer(10**8, 10**7, NVLINK2)
        assert est.total_seconds == pytest.approx(
            est.seconds_to_device + est.seconds_to_host
        )
        assert est.total_bytes == 11 * 10**7

    def test_zero_transfer(self):
        est = estimate_transfer(0, 0, NVLINK2)
        assert est.total_seconds == 0.0
